//! Property-based tests of the substrates: sparse kernels, ILU(0), the
//! doconsider reordering, and the simulator's schedule invariants.

use preprocessed_doacross::core::AccessPattern;
use preprocessed_doacross::doconsider::{
    doconsider_order, is_topological_order, DependenceDag, LevelAssignment,
};
use preprocessed_doacross::sim::{Machine, SimOptions};
use preprocessed_doacross::sparse::{
    dense::{matmul, max_diff},
    ilu0, TriangularMatrix, TripletBuilder,
};
use preprocessed_doacross::trisolve::{SolvePlan, TriSolveLoop};
use proptest::prelude::*;

/// An arbitrary square diagonally-dominant sparse matrix.
fn arb_dominant_matrix(
    max_n: usize,
) -> impl Strategy<Value = preprocessed_doacross::sparse::CsrMatrix> {
    (2..=max_n)
        .prop_flat_map(|n| {
            let offdiag = proptest::collection::vec(((0..n), (0..n), 0.1..1.0f64), 0..(3 * n));
            (Just(n), offdiag)
        })
        .prop_map(|(n, offdiag)| {
            let mut b = TripletBuilder::new(n, n);
            let mut row_sums = vec![0.0f64; n];
            for (r, c, v) in offdiag {
                if r != c {
                    b.push(r, c, -v);
                    row_sums[r] += v;
                }
            }
            for (r, sum) in row_sums.iter().enumerate() {
                b.push(r, r, 1.0 + sum * 1.5);
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn ilu0_reproduces_a_on_its_pattern(a in arb_dominant_matrix(20)) {
        let f = ilu0(&a);
        prop_assert!(f.l.is_lower_triangular());
        prop_assert!(f.u.is_upper_triangular());
        let n = a.nrows();
        let mut ld = f.l.to_dense();
        for (i, row) in ld.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        let prod = matmul(&ld, &f.u.to_dense());
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for (&j, &aij) in a.row_cols(i).iter().zip(a.row_values(i)) {
                prop_assert!(
                    (prod[i][j] - aij).abs() <= 1e-9 * (1.0 + aij.abs()),
                    "(LU)[{}][{}] = {} vs {}", i, j, prod[i][j], aij
                );
            }
        }
    }

    #[test]
    fn triangular_solve_inverts_matvec(a in arb_dominant_matrix(24)) {
        let l = TriangularMatrix::from_strict_lower(&ilu0(&a).l);
        let x: Vec<f64> = (0..l.n()).map(|i| 0.5 + (i % 5) as f64 * 0.25).collect();
        let rhs = l.matvec(&x);
        let got = l.forward_solve(&rhs);
        prop_assert!(max_diff(&got, &x) < 1e-8);
    }

    #[test]
    fn doconsider_order_is_topological_permutation(a in arb_dominant_matrix(24)) {
        let l = TriangularMatrix::from_strict_lower(&ilu0(&a).l);
        let rhs = vec![1.0; l.n()];
        let loop_ = TriSolveLoop::new(&l, &rhs);
        let order = doconsider_order(&loop_);
        // Permutation:
        let mut seen = vec![false; order.len()];
        for &i in &order {
            prop_assert!(!seen[i]);
            seen[i] = true;
        }
        // Topological:
        let dag = DependenceDag::build(&loop_);
        prop_assert!(is_topological_order(&dag, &order));
    }

    #[test]
    fn levels_respect_dependencies(a in arb_dominant_matrix(24)) {
        let l = TriangularMatrix::from_strict_lower(&ilu0(&a).l);
        let dag = DependenceDag::from_predecessors(l.n(), |i| l.row_cols(i).iter().copied());
        let levels = LevelAssignment::compute(&dag);
        for i in 0..l.n() {
            for &p in dag.predecessors(i) {
                prop_assert!(levels.level(p) < levels.level(i));
            }
        }
        prop_assert!(levels.critical_path() <= l.n().max(1));
        prop_assert_eq!(levels.critical_path(), l.critical_path_len());
    }

    #[test]
    fn simulator_time_bounded_by_work_and_critical_path(a in arb_dominant_matrix(20)) {
        let l = TriangularMatrix::from_strict_lower(&ilu0(&a).l);
        let rhs = vec![1.0; l.n()];
        let loop_ = TriSolveLoop::new(&l, &rhs);
        let machine = Machine::multimax();
        let opts = SimOptions { include_inspector: false, light_post: true, chunk: 1 };
        let r = machine.simulate_doacross(&loop_, None, opts);

        // Lower bound: total work / p (no schedule can beat it).
        let n = loop_.iterations() as f64;
        let terms: usize = (0..loop_.iterations()).map(|i| loop_.terms(i)).sum();
        let c = &machine.costs;
        let work = n * (c.schedule_grab + c.iteration_setup + c.publish)
            + terms as f64 * (c.check + c.term);
        prop_assert!(r.t_executor + 1e-9 >= work / 16.0, "exec {} < work/p {}", r.t_executor, work / 16.0);

        // Efficiency and speedup stay physical.
        prop_assert!(r.efficiency <= 1.0 + 1e-9);
        prop_assert!(r.speedup() <= 16.0 + 1e-9);

        // Reordering must not systematically hurt: on arbitrary small
        // instances a level order can lose a little to the natural order
        // (different claim interleavings), but never by much — and it must
        // obey the same physical bounds.
        let plan = SolvePlan::for_matrix(&l);
        let re = machine.simulate_doacross(&loop_, Some(&plan.order), opts);
        prop_assert!(
            re.t_executor <= r.t_executor * 1.15 + machine.costs.region_dispatch,
            "reordered {} vs natural {}", re.t_executor, r.t_executor
        );
        prop_assert!(re.t_executor + 1e-9 >= work / 16.0);
    }
}
