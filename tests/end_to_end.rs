//! Cross-crate integration tests: the full pipeline from PDE operator to
//! parallel triangular solve, and the doacross runtime on the paper's
//! workloads, at host scale.

use preprocessed_doacross::core::{
    seq::run_sequential, BlockedDoacross, Doacross, DoacrossConfig, LinearDoacross, TestLoop,
};
use preprocessed_doacross::par::{Schedule, ThreadPool, WaitStrategy};
use preprocessed_doacross::sparse::{Problem, ProblemKind};
use preprocessed_doacross::trisolve::{
    seq::solve_sequential, verify::assert_solves, DoacrossSolver, LevelScheduledSolver,
    ReorderedSolver,
};

fn pool() -> ThreadPool {
    ThreadPool::new(4)
}

#[test]
fn all_table1_systems_solve_with_all_solvers() {
    let pool = pool();
    for kind in ProblemKind::all() {
        let sys = Problem::build(kind).triangular_system();
        let expect = solve_sequential(&sys.l, &sys.rhs);
        assert_solves(&sys.l, &expect, &sys.rhs, 1e-9);

        let (y_plain, stats) = DoacrossSolver::new(sys.n())
            .solve(&pool, &sys.l, &sys.rhs)
            .expect("valid system");
        assert_eq!(y_plain, expect, "{}: doacross", kind.name());
        assert_eq!(stats.iterations, sys.n());

        let (y_re, _) = ReorderedSolver::new(sys.n())
            .solve(&pool, &sys.l, &sys.rhs)
            .expect("valid system");
        assert_eq!(y_re, expect, "{}: rearranged", kind.name());

        let (y_lvl, _) = LevelScheduledSolver::new()
            .solve(&pool, &sys.l, &sys.rhs)
            .expect("valid system");
        assert_eq!(y_lvl, expect, "{}: level-scheduled", kind.name());

        // Accuracy against the manufactured solution.
        let max_err = expect
            .iter()
            .zip(&sys.solution)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 1e-8, "{}: err {max_err}", kind.name());
    }
}

#[test]
fn figure6_grid_matches_sequential_on_host_threads() {
    let pool = pool();
    for l in 1..=14 {
        for m in [1usize, 5] {
            let loop_ = TestLoop::new(500, m, l);
            let mut expect = loop_.initial_y();
            run_sequential(&loop_, &mut expect);

            let mut y = loop_.initial_y();
            Doacross::for_loop(&loop_)
                .run(&pool, &loop_, &mut y)
                .expect("valid loop");
            assert_eq!(y, expect, "inspected L={l} M={m}");

            let mut y2 = loop_.initial_y();
            LinearDoacross::new(y2.len())
                .run(&pool, &loop_, loop_.linear_subscript(), &mut y2)
                .expect("linear subscript");
            assert_eq!(y2, expect, "linear L={l} M={m}");

            let mut y3 = loop_.initial_y();
            BlockedDoacross::new(64)
                .expect("nonzero block")
                .run(&pool, &loop_, &mut y3)
                .expect("valid loop");
            assert_eq!(y3, expect, "blocked L={l} M={m}");
        }
    }
}

#[test]
fn one_runtime_serves_many_loop_instances() {
    // The reuse story of §2.1: one scratch allocation, many loops.
    let pool = pool();
    let mut runtime = Doacross::new(0);
    for l in [3usize, 4, 8, 11] {
        let loop_ = TestLoop::new(300, 2, l);
        let mut expect = loop_.initial_y();
        run_sequential(&loop_, &mut expect);
        let mut y = loop_.initial_y();
        runtime.run(&pool, &loop_, &mut y).expect("valid loop");
        assert_eq!(y, expect, "L={l}");
        assert!(runtime.scratch_is_clean(), "L={l}");
    }
}

#[test]
fn doacross_runs_under_every_configuration() {
    let pool = pool();
    let loop_ = TestLoop::new(400, 3, 6);
    let mut expect = loop_.initial_y();
    run_sequential(&loop_, &mut expect);
    for schedule in [
        Schedule::StaticBlock,
        Schedule::StaticCyclic,
        Schedule::Dynamic { chunk: 1 },
        Schedule::Dynamic { chunk: 32 },
        Schedule::Guided { min_chunk: 4 },
    ] {
        for wait in [
            WaitStrategy::Spin,
            WaitStrategy::SpinYield { spins: 32 },
            WaitStrategy::Backoff { max_spin_batch: 32 },
        ] {
            for validate in [true, false] {
                let mut rt = Doacross::with_config(
                    loop_.initial_y().len(),
                    DoacrossConfig {
                        schedule,
                        wait,
                        validate_terms: validate,
                        ..Default::default()
                    },
                );
                let mut y = loop_.initial_y();
                rt.run(&pool, &loop_, &mut y).expect("valid loop");
                assert_eq!(y, expect, "{schedule:?} {wait:?} validate={validate}");
            }
        }
    }
}

#[test]
fn oversubscribed_pool_still_correct() {
    // 16 workers on a small host: waits must yield and the solve must
    // still complete and agree (the Multimax-on-a-laptop case).
    let big_pool = ThreadPool::new(16);
    let sys = Problem::build(ProblemKind::Spe2).triangular_system();
    let expect = solve_sequential(&sys.l, &sys.rhs);
    let (y, _) = DoacrossSolver::new(sys.n())
        .solve(&big_pool, &sys.l, &sys.rhs)
        .expect("valid system");
    assert_eq!(y, expect);

    let loop_ = TestLoop::new(2_000, 1, 4); // distance-1 chain
    let mut expect2 = loop_.initial_y();
    run_sequential(&loop_, &mut expect2);
    let mut y2 = loop_.initial_y();
    Doacross::for_loop(&loop_)
        .run(&big_pool, &loop_, &mut y2)
        .expect("valid loop");
    assert_eq!(y2, expect2);
}

#[test]
fn reordered_solver_reduces_stalls_on_host() {
    // The Table 1 mechanism, observed on real threads: same solve, fewer
    // stalls under the doconsider order.
    let pool = pool();
    let sys = Problem::build(ProblemKind::FivePt).triangular_system();
    let (_, plain) = DoacrossSolver::new(sys.n())
        .solve(&pool, &sys.l, &sys.rhs)
        .expect("valid");
    let mut reordered = ReorderedSolver::new(sys.n());
    reordered.prepare(&sys.l);
    let (_, re) = reordered.solve(&pool, &sys.l, &sys.rhs).expect("valid");
    assert_eq!(plain.deps.true_deps, re.deps.true_deps, "same dependencies");
    assert!(
        re.stalls <= plain.stalls,
        "reordering should not increase stalls: {} -> {}",
        plain.stalls,
        re.stalls
    );
}

#[test]
fn facade_engine_serves_concurrent_callers() {
    // The facade's front door: one shared Engine, several threads, mixed
    // structures — exact results and a warm cache.
    use preprocessed_doacross::Engine;

    let engine = Engine::builder().workers(2).cache_capacity(8).build();
    let loops = [
        TestLoop::new(500, 1, 7),
        TestLoop::new(500, 2, 8),
        TestLoop::new(400, 1, 4),
    ];
    let oracles: Vec<Vec<f64>> = loops
        .iter()
        .map(|l| {
            let mut y = l.initial_y();
            run_sequential(l, &mut y);
            y
        })
        .collect();

    std::thread::scope(|scope| {
        for t in 0..3 {
            let engine = engine.clone();
            let (loops, oracles) = (&loops, &oracles);
            scope.spawn(move || {
                for round in 0..3 {
                    for (i, l) in loops.iter().enumerate() {
                        let mut y = l.initial_y();
                        engine.run(l, &mut y).expect("valid loop");
                        assert_eq!(&y, &oracles[i], "thread {t} round {round} loop {i}");
                    }
                }
            });
        }
    });

    let stats = engine.cache_stats();
    assert_eq!(stats.misses, loops.len() as u64, "one plan per structure");
    assert!(stats.hits > 0, "shared cache serves hits across threads");

    // Prepared handles survive cache eviction but not invalidation.
    let prepared = engine.prepare(&loops[0]).expect("cached");
    engine.clear_cache();
    let mut y = loops[0].initial_y();
    prepared.execute(&loops[0], &mut y).expect("eviction-proof");
    assert_eq!(y, oracles[0]);
    engine.invalidate(prepared.fingerprint());
    assert!(prepared.is_stale());
    assert!(prepared.execute(&loops[0], &mut y).is_err());
}
