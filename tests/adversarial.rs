//! Adversarial and failure-injection tests: dependence patterns chosen to
//! stress the runtime's synchronization, scheduling, and error paths.

use preprocessed_doacross::core::{
    seq::run_sequential, Doacross, DoacrossError, IndirectLoop, TestLoop,
};
use preprocessed_doacross::par::{Schedule, ThreadPool, WaitStrategy};

fn pool(n: usize) -> ThreadPool {
    ThreadPool::new(n)
}

/// Fully serial loop: iteration i reads what iteration i-1 wrote, distance
/// 1, maximal stalling. The runtime must degrade gracefully, not deadlock.
#[test]
fn fully_serial_chain_under_all_schedules() {
    let n = 1_000;
    let a: Vec<usize> = (1..=n).collect();
    let rhs: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let l = IndirectLoop::new(n + 1, a, rhs, vec![vec![0.5]; n]).unwrap();
    let mut expect = vec![1.0; n + 1];
    run_sequential(&l, &mut expect);
    for schedule in [
        Schedule::StaticBlock,
        Schedule::StaticCyclic,
        Schedule::Dynamic { chunk: 1 },
        Schedule::Dynamic { chunk: 100 },
    ] {
        let mut rt = Doacross::for_loop(&l);
        rt.config_mut().schedule = schedule;
        let mut y = vec![1.0; n + 1];
        let stats = rt.run(&pool(4), &l, &mut y).unwrap();
        assert_eq!(y, expect, "{schedule:?}");
        // Iteration 0 reads the unwritten element 0; the rest chain.
        assert_eq!(stats.deps.true_deps, (n - 1) as u64, "{schedule:?}");
    }
}

/// Fan-in: the last iteration reads every earlier iteration's output.
#[test]
fn total_fan_in() {
    let n = 300;
    let mut a: Vec<usize> = (0..n).collect();
    a[n - 1] = n - 1;
    let mut rhs: Vec<Vec<usize>> = (0..n).map(|_| vec![]).collect();
    rhs[n - 1] = (0..n - 1).collect();
    let coeff: Vec<Vec<f64>> = rhs.iter().map(|r| vec![1.0; r.len()]).collect();
    let l = IndirectLoop::new(n, a, rhs, coeff).unwrap();
    let y0: Vec<f64> = (0..n).map(|e| e as f64 * 0.01).collect();
    let mut expect = y0.clone();
    run_sequential(&l, &mut expect);
    let mut y = y0;
    let stats = Doacross::for_loop(&l).run(&pool(4), &l, &mut y).unwrap();
    assert_eq!(y, expect);
    assert_eq!(stats.deps.true_deps, (n - 1) as u64);
}

/// Fan-out: every iteration reads iteration 0's output — a single hot
/// ready flag polled by everyone (worst-case coherence traffic).
#[test]
fn total_fan_out_hot_flag() {
    let n = 500;
    let a: Vec<usize> = (0..n).collect();
    let rhs: Vec<Vec<usize>> = (0..n)
        .map(|i| if i == 0 { vec![] } else { vec![0] })
        .collect();
    let coeff: Vec<Vec<f64>> = rhs.iter().map(|r| vec![2.0; r.len()]).collect();
    let l = IndirectLoop::new(n, a, rhs, coeff).unwrap();
    let y0 = vec![1.0; n];
    let mut expect = y0.clone();
    run_sequential(&l, &mut expect);
    for wait in [
        WaitStrategy::Spin,
        WaitStrategy::SpinYield { spins: 8 },
        WaitStrategy::Backoff { max_spin_batch: 16 },
    ] {
        let mut rt = Doacross::for_loop(&l);
        rt.config_mut().wait = wait;
        let mut y = y0.clone();
        rt.run(&pool(4), &l, &mut y).unwrap();
        assert_eq!(y, expect, "{wait:?}");
    }
}

/// Every iteration only references its own output element (pure intra).
#[test]
fn pure_self_reference() {
    let n = 200;
    let a: Vec<usize> = (0..n).collect();
    let rhs: Vec<Vec<usize>> = (0..n).map(|i| vec![i, i, i]).collect();
    let l = IndirectLoop::new(n, a, rhs, vec![vec![1.0; 3]; n]).unwrap();
    let y0 = vec![1.0; n];
    let mut expect = y0.clone();
    run_sequential(&l, &mut expect);
    let mut y = y0;
    let stats = Doacross::for_loop(&l).run(&pool(3), &l, &mut y).unwrap();
    assert_eq!(y, expect);
    assert_eq!(stats.deps.intra, 3 * n as u64);
    assert_eq!(stats.stalls, 0, "intra references never stall");
    // Each element: 1 -> 2 -> 4 -> 8.
    assert!(y.iter().all(|&v| v == 8.0));
}

/// Tiny loops: n = 1 with every reference classification.
#[test]
fn single_iteration_loops() {
    let p = pool(2);
    // Reads an unwritten element.
    let l1 = IndirectLoop::new(2, vec![0], vec![vec![1]], vec![vec![1.0]]).unwrap();
    let mut y = vec![1.0, 5.0];
    Doacross::for_loop(&l1).run(&p, &l1, &mut y).unwrap();
    assert_eq!(y, vec![6.0, 5.0]);
    // Reads itself.
    let l2 = IndirectLoop::new(1, vec![0], vec![vec![0]], vec![vec![1.0]]).unwrap();
    let mut y2 = vec![3.0];
    Doacross::for_loop(&l2).run(&p, &l2, &mut y2).unwrap();
    assert_eq!(y2, vec![6.0]);
}

/// Repeated failures must not poison the runtime: alternate between a loop
/// with an output dependency (rejected) and a valid loop (accepted).
#[test]
fn error_recovery_across_repeated_failures() {
    let p = pool(3);
    let bad = IndirectLoop::new(4, vec![1, 1], vec![vec![], vec![]], vec![vec![], vec![]]).unwrap();
    let good = IndirectLoop::new(
        4,
        vec![2, 3],
        vec![vec![0], vec![2]],
        vec![vec![1.0], vec![1.0]],
    )
    .unwrap();
    let mut rt = Doacross::new(4);
    for round in 0..5 {
        let mut y = vec![1.0, 2.0, 3.0, 4.0];
        let err = rt.run(&p, &bad, &mut y).unwrap_err();
        assert_eq!(
            err,
            DoacrossError::OutputDependency { element: 1 },
            "round {round}"
        );
        assert!(rt.scratch_is_clean(), "round {round}");

        let mut y2 = vec![1.0, 2.0, 3.0, 4.0];
        let mut expect = y2.clone();
        run_sequential(&good, &mut expect);
        rt.run(&p, &good, &mut y2).unwrap();
        assert_eq!(y2, expect, "round {round}");
    }
}

/// Massive oversubscription on a dependence-heavy loop: 32 workers on a
/// small host, distance-1 chain. Yielding wait strategies must keep it live.
#[test]
fn oversubscription_stress() {
    let loop_ = TestLoop::new(2_000, 1, 4);
    let mut expect = loop_.initial_y();
    run_sequential(&loop_, &mut expect);
    let big = pool(32);
    let mut rt = Doacross::for_loop(&loop_);
    rt.config_mut().wait = WaitStrategy::SpinYield { spins: 16 };
    let mut y = loop_.initial_y();
    rt.run(&big, &loop_, &mut y).unwrap();
    assert_eq!(y, expect);
}

/// The same runtime instance driven from different pools.
#[test]
fn one_runtime_many_pools() {
    let loop_ = TestLoop::new(500, 2, 6);
    let mut expect = loop_.initial_y();
    run_sequential(&loop_, &mut expect);
    let mut rt = Doacross::for_loop(&loop_);
    for workers in [1usize, 2, 4, 8] {
        let p = pool(workers);
        let mut y = loop_.initial_y();
        rt.run(&p, &loop_, &mut y).unwrap();
        assert_eq!(y, expect, "workers={workers}");
    }
}

/// Two runtimes driving the same pool from different threads: the pool
/// serializes parallel regions, so both must complete correctly.
#[test]
fn concurrent_runtimes_share_one_pool() {
    let p = std::sync::Arc::new(pool(4));
    let mut joins = Vec::new();
    for t in 0..3 {
        let p = std::sync::Arc::clone(&p);
        joins.push(std::thread::spawn(move || {
            let loop_ = TestLoop::new(400 + t * 37, 2, 6);
            let mut expect = loop_.initial_y();
            run_sequential(&loop_, &mut expect);
            let mut rt = Doacross::for_loop(&loop_);
            for _ in 0..10 {
                let mut y = loop_.initial_y();
                rt.run(&p, &loop_, &mut y).unwrap();
                assert_eq!(y, expect, "thread {t}");
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
}

/// Dense dependence web: every iteration reads three pseudo-random earlier
/// outputs (plus one forward/antidependency), repeatedly, across schedules.
#[test]
fn dense_random_web() {
    let n = 800;
    let a: Vec<usize> = (0..n).map(|i| n + i).collect(); // write upper half
    let rhs: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            let mut v = Vec::new();
            if i > 0 {
                v.push(n + (i * 7919 % i)); // earlier output (true dep)
                v.push(n + (i * 104729 % i)); // another earlier output
            }
            v.push(i); // lower half: never written (old value)
            if i + 1 < n {
                v.push(n + i + 1); // later output (antidependency)
            }
            v
        })
        .collect();
    let coeff: Vec<Vec<f64>> = rhs.iter().map(|r| vec![0.125; r.len()]).collect();
    let l = IndirectLoop::new(2 * n, a, rhs, coeff).unwrap();
    let y0: Vec<f64> = (0..2 * n).map(|e| 1.0 + (e % 13) as f64 * 0.0625).collect();
    let mut expect = y0.clone();
    run_sequential(&l, &mut expect);
    for schedule in [Schedule::multimax(), Schedule::StaticCyclic] {
        let mut rt = Doacross::for_loop(&l);
        rt.config_mut().schedule = schedule;
        let mut y = y0.clone();
        rt.run(&pool(4), &l, &mut y).unwrap();
        assert_eq!(y, expect, "{schedule:?}");
    }
}
