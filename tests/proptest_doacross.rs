//! Property-based tests of the core invariant: for *any* runtime-generated
//! dependence pattern, the preprocessed doacross (in every variant)
//! computes exactly what the sequential loop computes.

use preprocessed_doacross::core::{
    seq::run_sequential, AccessPattern, BlockedDoacross, Doacross, DoacrossConfig, DoacrossError,
    IndirectLoop,
};
use preprocessed_doacross::par::{Schedule, ThreadPool};
use proptest::prelude::*;

/// An arbitrary valid loop: injective lhs (a permutation prefix of the
/// data space), arbitrary rhs references, small coefficients.
fn arb_loop(max_n: usize) -> impl Strategy<Value = (IndirectLoop, Vec<f64>)> {
    (1..=max_n)
        .prop_flat_map(move |n| {
            let data_len = 2 * n + 1;
            let lhs = Just((0..data_len).collect::<Vec<usize>>())
                .prop_shuffle()
                .prop_map(move |perm| perm[..n].to_vec());
            let rhs =
                proptest::collection::vec(proptest::collection::vec(0..data_len, 0..4), n..=n);
            let y0 = proptest::collection::vec(-2.0..2.0f64, data_len..=data_len);
            (lhs, rhs, y0, Just(n), Just(data_len))
        })
        .prop_map(|(lhs, rhs, y0, n, data_len)| {
            // Deterministic small coefficients keep chains bounded.
            let coeff: Vec<Vec<f64>> = rhs
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    r.iter()
                        .enumerate()
                        .map(|(j, _)| 0.25 + ((i + j) % 3) as f64 * 0.125)
                        .collect()
                })
                .collect();
            let loop_ =
                IndirectLoop::new(data_len, lhs, rhs, coeff).expect("valid by construction");
            let _ = n;
            (loop_, y0)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn doacross_equals_sequential_for_any_pattern((loop_, y0) in arb_loop(48)) {
        let pool = ThreadPool::new(3);
        let mut expect = y0.clone();
        run_sequential(&loop_, &mut expect);

        let mut y = y0.clone();
        Doacross::for_loop(&loop_).run(&pool, &loop_, &mut y).expect("injective lhs");
        prop_assert_eq!(&y, &expect);
    }

    #[test]
    fn blocked_equals_sequential_for_any_pattern_and_block_size(
        (loop_, y0) in arb_loop(40),
        block in 1usize..16,
    ) {
        let pool = ThreadPool::new(3);
        let mut expect = y0.clone();
        run_sequential(&loop_, &mut expect);

        let mut y = y0.clone();
        BlockedDoacross::new(block)
            .expect("nonzero")
            .run(&pool, &loop_, &mut y)
            .expect("injective lhs");
        prop_assert_eq!(&y, &expect);
    }

    #[test]
    fn every_schedule_agrees((loop_, y0) in arb_loop(32), chunk in 1usize..8) {
        let pool = ThreadPool::new(3);
        let mut expect = y0.clone();
        run_sequential(&loop_, &mut expect);
        for schedule in [
            Schedule::StaticBlock,
            Schedule::StaticCyclic,
            Schedule::Dynamic { chunk },
            Schedule::Guided { min_chunk: chunk },
        ] {
            let mut rt = Doacross::with_config(
                loop_.data_len(),
                DoacrossConfig { schedule, ..Default::default() },
            );
            let mut y = y0.clone();
            rt.run(&pool, &loop_, &mut y).expect("injective lhs");
            prop_assert_eq!(&y, &expect, "{:?}", schedule);
        }
    }

    #[test]
    fn scratch_invariant_holds_after_every_run((loop_, y0) in arb_loop(32)) {
        let pool = ThreadPool::new(2);
        let mut rt = Doacross::for_loop(&loop_);
        let mut y = y0;
        rt.run(&pool, &loop_, &mut y).expect("injective lhs");
        prop_assert!(rt.scratch_is_clean());
    }

    #[test]
    fn output_dependencies_always_detected(
        n in 2usize..24,
        dup_a in 0usize..24,
        dup_b in 0usize..24,
    ) {
        prop_assume!(dup_a % n != dup_b % n);
        // Force two iterations to write the same element.
        let mut lhs: Vec<usize> = (0..n).collect();
        let target = n; // element outside the identity range
        lhs[dup_a % n] = target;
        lhs[dup_b % n] = target;
        let loop_ = IndirectLoop::new(
            n + 1,
            lhs,
            vec![vec![]; n],
            vec![vec![]; n],
        ).expect("in bounds");
        let pool = ThreadPool::new(2);
        let mut y = vec![0.0; n + 1];
        let err = Doacross::for_loop(&loop_).run(&pool, &loop_, &mut y).unwrap_err();
        prop_assert_eq!(err, DoacrossError::OutputDependency { element: target });
    }
}
