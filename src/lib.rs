//! # preprocessed-doacross
//!
//! A production-quality Rust reproduction of
//!
//! > Joel H. Saltz and Ravi Mirchandaney, *The Preprocessed Doacross
//! > Loop*, ICASE Interim Report 11 / NASA CR-182056 (May 1990); ICPP
//! > 1991.
//!
//! The front door is [`Engine`]: a thread-safe, `Arc`-shareable session
//! that owns the worker pool, the cost-model planner, and a **sharded
//! concurrent plan cache**. It turns the paper's central economy —
//! preprocessing "performed just once, while the doacross loop may be
//! executed many times" (§2.1) — into a serving primitive: the first
//! encounter with a loop *structure* pays fingerprinting, dependence
//! analysis, variant selection, and inspection capture; every later
//! encounter, from any thread, reuses the cached [`PreparedLoop`].
//!
//! ## Quickstart
//!
//! ```
//! use preprocessed_doacross::core::IndirectLoop;
//! use preprocessed_doacross::Engine;
//!
//! // A loop whose dependencies exist only at run time:
//! //   y[a[i]] += 0.5 * y[b[i]]
//! let a = vec![1, 2, 3, 4];
//! let b = vec![0, 1, 2, 3];
//! let rhs: Vec<Vec<usize>> = b.iter().map(|&e| vec![e]).collect();
//! let loop_ = IndirectLoop::new(5, a, rhs, vec![vec![0.5]; 4]).unwrap();
//!
//! let engine = Engine::builder().workers(2).build();
//!
//! // One-shot: plans on first sight, caches the plan.
//! let mut y = vec![1.0, 0.0, 0.0, 0.0, 0.0];
//! engine.run(&loop_, &mut y).unwrap();
//! assert_eq!(y, vec![1.0, 0.5, 0.25, 0.125, 0.0625]);
//!
//! // Prepared handle: a first-class, cloneable value — build once,
//! // execute from many threads, any coefficient values or y contents.
//! let prepared = engine.prepare(&loop_).unwrap();
//! let mut y2 = vec![1.0, 0.0, 0.0, 0.0, 0.0];
//! prepared.execute(&loop_, &mut y2).unwrap();
//! assert_eq!(y2, y);
//! assert_eq!(engine.cache_stats().hits, 1);
//! ```
//!
//! `Engine::builder().calibrated()` prices variants with cost ratios
//! measured on *this* host (via [`sim`]'s calibration) instead of the
//! paper's Encore Multimax preset; `Engine::invalidate` retires the plans
//! (and outstanding handles) of a structure about to be mutated in place.
//!
//! ## Plan persistence
//!
//! Plans are durable: the amortized artifact survives the process that
//! built it. `Engine::save_plans` checkpoints the cache to a versioned,
//! checksummed binary store ([`plan::persist`]), and
//! `EngineBuilder::warm_start` (or `Engine::load_plans`) restores it —
//! recency-preserving, and invalidation-generation-aware, so plans
//! retired before the snapshot stay retired after the restart. A
//! restarted service's first solve of a known structure is then a cache
//! hit, not a preprocessing pass:
//!
//! ```no_run
//! use preprocessed_doacross::Engine;
//!
//! let engine = Engine::builder()
//!     .workers(4)
//!     .warm_start("plans.bin")   // missing = cold start; corrupt =
//!     .try_build()?;             //   quarantined aside + cold start
//! // ... serve traffic; first solves of persisted structures hit ...
//! engine.save_plans("plans.bin")?;
//! # Ok::<(), preprocessed_doacross::EngineError>(())
//! ```
//!
//! Stores are never trusted blindly: loading verifies a whole-file
//! checksum and structurally revalidates every record (writer maps must
//! be injective and in range, claim orders must be permutations, the
//! census must agree with the fingerprint) before anything reaches the
//! cache — never a panic, never a silently wrong plan. A boot-path load
//! (`warm_start` / `Engine::warm_start_plans`) treats a damaged store as
//! a fault to recover from, not an error to die on: the file is renamed
//! aside to `<path>.corrupt-<n>` (the two newest corpses are kept for
//! forensics) and the engine boots cold, so a service caught in a
//! crash-restart loop self-heals instead of crashing on the same bytes
//! forever. The explicit [`Engine::load_plans`] stays strict and fails
//! typed with [`EngineError::Persist`]. `examples/warm_start.rs`
//! demonstrates the restart round trip; `cargo run --release -p
//! doacross-bench --bin warm` measures the first-solve gap it closes.
//!
//! ## Observability
//!
//! `Engine::builder().observability_default()` turns on the [`obs`]
//! layer: every plan build, cache operation, persistence operation,
//! adaptive decision, and completed solve emits a structured
//! [`TraceEvent`] into a bounded in-memory ring; `Engine::metrics_text()`
//! renders the whole registry — cache traffic, per-variant solve-latency
//! histograms, adaptive decision counts, per-structure series — in
//! Prometheus text-exposition format (`Engine::metrics_json()` is the
//! same payload as JSON); and `Engine::recent_solves()` is a flight
//! recorder of the last N solves with variant, provenance, and timing
//! split. Disabled (the default), the whole layer is one branch per
//! would-be event. `examples/observe.rs` walks the surface.
//!
//! ## Profiling
//!
//! Where observability answers *what happened*, the profiler answers
//! *where the nanoseconds went*. `Engine::builder().profiling_default()`
//! (or `.profiling(`[`ProfConfig`]`)`) arms per-worker span recording:
//! every profiled solve deposits timestamped [`SpanKind`] spans — work,
//! ready-flag stalls, barrier waits per wavefront level, and the
//! dispatcher's admission wait — into bounded per-solve arenas, harvested
//! into a [`SolveProfile`] ring ([`engine::Engine::recent_profiles`]).
//! The harvest computes the **realized critical path** (longest
//! per-worker work + barrier-wait chain, plus the dispatch wait) and
//! pairs it with the plan's *priced* cost on calibrated engines, so the
//! cost model's prediction can be audited against measured truth per
//! variant — the same evidence the adaptive layer reads via
//! `Engine::profile_evidence`.
//!
//! The timelines export: `Engine::profile_chrome_trace()` renders the
//! ring as Chrome trace-event JSON (load it in `chrome://tracing` or
//! Perfetto; one process per solve, one track per worker —
//! [`validate_chrome_trace`] checks the structure), [`StreamingSink`]
//! fans live trace events out as NDJSON, and the scrape gains
//! `doacross_profile_*` families including per-level barrier-wait
//! histograms (bounded cardinality: deep levels collapse under
//! `level="other"`). Off (the default), every deposit site is one branch
//! on a stack-local `Option` — the zero-alloc warm path is unchanged,
//! and `BENCH_profile.json` pins the bill both armed and disarmed.
//! `examples/profile.rs` walks the surface.
//!
//! ## Multi-tenant throughput
//!
//! One engine serving many concurrent callers partitions its workers into
//! **sub-pools** ([`sched`]): `Engine::builder().pools(4).workers(2)`
//! builds 4 independent 2-worker pools, and each solve is dispatched to a
//! free pool (stealing a busy one only when all are taken), so tenants
//! stop serializing on one worker set. Admission is bounded —
//! `EngineBuilder::max_pending` callers may wait per pool before the
//! engine fails fast with typed [`EngineError::Saturated`]. By default
//! `pools` is derived from host parallelism, so a plain
//! `Engine::builder().build()` already scales out.
//!
//! Many *small* solves amortize better submitted together:
//! `engine.batch()` collects jobs against prepared handles and
//! `engine.execute_all(batch)` ([`SolveBatch`]) coalesces the
//! sequential-variant ones into a single pool region — one dispatch, one
//! region, N solves — while results and [`core::RunStats`] come back
//! per-job, bit-identical to N serial `execute` calls.
//! `examples/throughput.rs` walks both; `cargo run --release -p
//! doacross-bench --bin throughput` measures them.
//!
//! ## Fault tolerance
//!
//! A multi-tenant engine must contain one tenant's disaster, not share
//! it. The synchronization protocols ([`par`]) are **poison-aware**: when
//! a worker panics mid-region, the pool publishes the fault into a
//! per-region poison word, and every busy-wait and barrier arrival polls
//! it — so the survivors unwind cooperatively instead of spinning forever
//! on a ready flag their dead peer will never raise. The engine catches
//! the fault at the dispatch boundary and surfaces it as typed
//! [`EngineError::SolvePanicked`]; the sub-pool is immediately reusable
//! and co-tenants never notice.
//!
//! `Engine::builder().solve_deadline(..)` arms a per-solve wall-clock
//! budget through the same poll sites, so a wedged solve resolves as
//! typed [`EngineError::SolveTimeout`] instead of hanging its caller.
//! By default the engine then **degrades gracefully**
//! ([`FallbackPolicy::SequentialRetry`]): a faulted parallel solve is
//! replayed once on the sequential variant against the caller's pristine
//! input, delivering the correct answer at reduced speed —
//! `RunStats::attempts` records the demotion, and the trace, flight
//! recorder ([`SolveOutcome`]), and `doacross_fault_*` metrics make every
//! fault visible. [`Engine::execute_with_retry`] adds bounded,
//! jittered backoff for transient [`EngineError::Saturated`] admission
//! failures ([`RetryPolicy`]).
//!
//! All of it is proven by deterministic fault injection: the `failpoint`
//! shim compiles to a no-op branch when disarmed, and the chaos suite
//! (`crates/engine/tests/chaos.rs`, plus `examples/chaos.rs`) injects
//! worker panics, wedges, and saturation into every parallel variant to
//! show each failure mode resolves typed and recoverable.
//!
//! ## The workspace underneath
//!
//! * [`engine`] — the session layer re-exported above: [`Engine`],
//!   [`EngineBuilder`], [`PreparedLoop`], [`EngineError`].
//! * [`core`] — the preprocessed doacross runtime itself (inspector /
//!   executor / postprocessor, plus the §2.3 blocked and linear-subscript
//!   variants).
//! * [`par`] — the parallel substrate (thread pool, self-scheduled
//!   `parallel do`, busy-wait primitives).
//! * [`sparse`] — sparse-matrix substrate: stencil operators, ILU(0), and
//!   the five Table 1 triangular systems.
//! * [`doconsider`] — the iteration-reordering transformation of §3.2.
//! * [`trisolve`] — the triangular solvers the evaluation compares;
//!   `trisolve::EngineSolver` runs them through a shared engine.
//! * [`sim`] — the 16-processor Encore Multimax discrete-event model used
//!   to regenerate Figure 6 and Table 1, plus host calibration.
//! * [`plan`] — the execution-plan subsystem the engine is built on:
//!   pattern fingerprinting, cost-model variant selection (sequential /
//!   doacross / linear / reordered / blocked / wavefront), the
//!   single-owner LRU [`plan::PlanCache`], the sharded
//!   [`plan::ConcurrentPlanCache`], and the [`plan::persist`] codec
//!   behind warm starts. The wavefront variant converts the doacross into
//!   barrier-separated level doalls — zero busy-wait polls — whenever the
//!   cost model predicts the flag bill exceeds the barrier bill.
//! * [`obs`] — the observability layer: the trace-event vocabulary, the
//!   metrics registry and Prometheus/JSON renderers, and the flight
//!   recorder. Zero dependencies; every other crate emits into it.
//! * [`sched`] — the multi-pool scheduler behind
//!   `Engine::builder().pools(n)`: worker partitioning, the lock-light
//!   free-pool dispatcher (CAS on a bitmask, work-stealing fallback), and
//!   bounded admission with per-pool dispatch/steal accounting
//!   ([`PoolStats`]).
//! * [`adapt`] — the adaptive-planning subsystem behind
//!   `Engine::builder().adaptive()`: per-`(structure, variant)` runtime
//!   telemetry, online cost-model refinement (measured `wait_poll` /
//!   `barrier` / per-reference costs blended into the static model), and
//!   the promotion/demotion policy that re-prices a cached plan when its
//!   observed cost diverges from prediction, trials the measured-cheaper
//!   variant, and commits or rolls back on measurement — with hysteresis,
//!   so it can never flip-flop. Learned state (telemetry + host
//!   calibration) persists in v3 plan stores, so a warm-started engine
//!   resumes with what it already knew.

// Audit posture: this facade re-exports the engine; it needs no unsafe code.
#![forbid(unsafe_code)]

pub use doacross_adapt as adapt;
pub use doacross_core as core;
pub use doacross_doconsider as doconsider;
pub use doacross_engine as engine;
pub use doacross_obs as obs;
pub use doacross_par as par;
pub use doacross_plan as plan;
pub use doacross_sched as sched;
pub use doacross_sim as sim;
pub use doacross_sparse as sparse;
pub use doacross_trisolve as trisolve;

pub use doacross_engine::{
    validate_chrome_trace, ChromeTraceStats, Engine, EngineBuilder, EngineError, FallbackPolicy,
    PreparedLoop, ProfConfig, ProfileSummary, RetryPolicy, SolveBatch, SolveProfile, SpanKind,
    StreamingSink,
};
pub use doacross_obs::{ObsConfig, ObsSink, SolveOutcome, SolveRecord, TraceEvent};
pub use doacross_plan::{PersistError, PlanStore};
pub use doacross_sched::PoolStats;

/// Pre-engine compatibility surface, kept while the deprecated entry
/// points exist.
pub mod compat {
    use doacross_core::{DoacrossError, DoacrossLoop, RunStats};
    use doacross_par::ThreadPool;
    use doacross_plan::PlannedDoacross;

    /// Runs `loop_` through the deprecated single-owner
    /// [`PlannedDoacross`] runtime — the pre-engine entry point, preserved
    /// verbatim for callers mid-migration.
    ///
    /// This function is also the workspace's deprecation canary: compiling
    /// it emits the `PlannedDoacross::run` deprecation warning on every
    /// `cargo build`, so the shim cannot be removed silently while this
    /// forwarding path still exists.
    #[deprecated(
        since = "0.1.0",
        note = "use Engine::run — one shared session instead of a per-owner runtime"
    )]
    pub fn run_planned<L: DoacrossLoop + ?Sized>(
        runtime: &mut PlannedDoacross,
        pool: &ThreadPool,
        loop_: &L,
        y: &mut [f64],
    ) -> Result<RunStats, DoacrossError> {
        runtime.run(pool, loop_, y)
    }
}
