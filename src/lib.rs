//! # preprocessed-doacross
//!
//! A production-quality Rust reproduction of
//!
//! > Joel H. Saltz and Ravi Mirchandaney, *The Preprocessed Doacross
//! > Loop*, ICASE Interim Report 11 / NASA CR-182056 (May 1990); ICPP
//! > 1991.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — the preprocessed doacross runtime itself (inspector /
//!   executor / postprocessor, plus the §2.3 blocked and linear-subscript
//!   variants).
//! * [`par`] — the parallel substrate (thread pool, self-scheduled
//!   `parallel do`, busy-wait primitives).
//! * [`sparse`] — sparse-matrix substrate: stencil operators, ILU(0), and
//!   the five Table 1 triangular systems.
//! * [`doconsider`] — the iteration-reordering transformation of §3.2.
//! * [`trisolve`] — the triangular solvers the evaluation compares.
//! * [`sim`] — the 16-processor Encore Multimax discrete-event model used
//!   to regenerate Figure 6 and Table 1.
//! * [`plan`] — the execution-plan subsystem: pattern fingerprinting,
//!   cost-model variant selection (sequential / doacross / linear /
//!   reordered / blocked), and an LRU plan cache that amortizes
//!   preprocessing across repeated loop structures (§2.1's "performed just
//!   once, executed many times", as a system component).
//!
//! ## Quickstart
//!
//! ```
//! use preprocessed_doacross::core::{Doacross, IndirectLoop};
//! use preprocessed_doacross::par::ThreadPool;
//!
//! // A loop whose dependencies exist only at run time:
//! //   y[a[i]] += 0.5 * y[b[i]]
//! let a = vec![1, 2, 3, 4];
//! let b = vec![0, 1, 2, 3];
//! let rhs: Vec<Vec<usize>> = b.iter().map(|&e| vec![e]).collect();
//! let loop_ = IndirectLoop::new(5, a, rhs, vec![vec![0.5]; 4]).unwrap();
//!
//! let pool = ThreadPool::new(2);
//! let mut y = vec![1.0, 0.0, 0.0, 0.0, 0.0];
//! Doacross::for_loop(&loop_).run(&pool, &loop_, &mut y).unwrap();
//! assert_eq!(y, vec![1.0, 0.5, 0.25, 0.125, 0.0625]);
//! ```

pub use doacross_core as core;
pub use doacross_doconsider as doconsider;
pub use doacross_par as par;
pub use doacross_plan as plan;
pub use doacross_sim as sim;
pub use doacross_sparse as sparse;
pub use doacross_trisolve as trisolve;
