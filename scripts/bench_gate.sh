#!/usr/bin/env bash
# bench_gate.sh — the bench-trajectory gate (stub).
#
# The repo commits machine-readable benchmark snapshots (BENCH_*.json) so
# perf claims are reviewable alongside the code that made them. This gate
# keeps those snapshots honest in two tiers:
#
#   default        structural gate (cheap, runs in CI): every committed
#                  BENCH_*.json must parse, carry its expected problem
#                  keys and metrics, and satisfy its internal invariants
#                  (e.g. the observability overhead recorded must be
#                  within the bound the snapshot itself declares).
#
#   --measure      trajectory gate (expensive, run on a quiet host):
#                  regenerates each snapshot with the bench binaries and
#                  fails if a tracked per-solve metric regressed by more
#                  than THRESHOLD_PCT (default 50 — wide, because these
#                  are wall-clock numbers on whatever host runs this; the
#                  gate catches order-of-magnitude cliffs, not jitter).
#
# Exit nonzero on any violation, loudly.

set -euo pipefail
cd "$(dirname "$0")/.."

command -v jq >/dev/null || { echo "bench_gate: jq is required" >&2; exit 2; }

THRESHOLD_PCT="${THRESHOLD_PCT:-50}"
PROBLEMS=(SPE2 SPE5 "5-PT" "7-PT" "9-PT")
fail=0

say() { printf '%s\n' "$*"; }
violation() { say "bench_gate: FAIL: $*" >&2; fail=1; }

# require_metric FILE PROBLEM METRIC — the key must exist and be a number.
require_metric() {
  local file="$1" prob="$2" metric="$3"
  jq -e --arg p "$prob" --arg m "$metric" \
    '.[$p][$m] | numbers' "$file" >/dev/null 2>&1 ||
    violation "$file: missing numeric .$prob.$metric"
}

check_structure() {
  local file="$1"; shift
  [ -f "$file" ] || { violation "$file: committed snapshot is missing"; return; }
  jq -e . "$file" >/dev/null 2>&1 || { violation "$file: not valid JSON"; return; }
  local prob metric
  for prob in "${PROBLEMS[@]}"; do
    for metric in "$@"; do
      require_metric "$file" "$prob" "$metric"
    done
  done
  say "bench_gate: $file: structure OK"
}

check_structure BENCH_wavefront.json doacross_ns wavefront_ns wait_polls levels rows
check_structure BENCH_adaptive.json static_ns adaptive_ns trials promotions samples
check_structure BENCH_obs.json off_ns on_ns overhead trace_events
check_structure BENCH_fault.json off_ns on_ns overhead disarmed_overhead
check_structure BENCH_profile.json off_ns on_ns overhead disarmed_overhead

# BENCH_throughput.json is tenant-keyed, not problem-keyed: every tenant
# point must carry its throughput metrics, and the _meta no-regression
# invariant (multi-pool per-solve within the declared bound of
# single-pool) must hold as recorded.
check_throughput_structure() {
  local file="BENCH_throughput.json" t
  [ -f "$file" ] || { violation "$file: committed snapshot is missing"; return; }
  jq -e . "$file" >/dev/null 2>&1 || { violation "$file: not valid JSON"; return; }
  for t in 1 4 16; do
    local metric
    for metric in solves_per_sec per_solve_ns; do
      jq -e --arg k "tenants_$t" --arg m "$metric" '.[$k][$m] | numbers' "$file" >/dev/null 2>&1 ||
        violation "$file: missing numeric .tenants_$t.$metric"
    done
  done
  local single multi bound asserted
  single="$(jq -r '._meta.single_pool_per_solve_ns // empty' "$file")"
  multi="$(jq -r '._meta.multi_pool_per_solve_ns // empty' "$file")"
  bound="$(jq -r '._meta.pool_overhead_bound // empty' "$file")"
  asserted="$(jq -r '._meta.bound_asserted // empty' "$file")"
  if [ -z "$single" ] || [ -z "$multi" ] || [ -z "$bound" ]; then
    violation "$file: _meta must record single/multi pool per-solve and the bound"
  elif [ "$asserted" = "true" ]; then
    if jq -n --argjson m "$multi" --argjson s "$single" --argjson b "$bound" '$m > ($s * $b)' | grep -qx true; then
      violation "$file: multi-pool per-solve ${multi}ns exceeds ${bound}x single-pool ${single}ns"
    else
      say "bench_gate: $file: multi-pool within declared ${bound}x no-regression bound"
    fi
  fi
}
check_throughput_structure

# Internal invariant: every overhead the obs snapshot records must sit
# within the bound the snapshot itself declares.
if [ -f BENCH_obs.json ]; then
  bound="$(jq -r '._meta.bound // empty' BENCH_obs.json)"
  if [ -z "$bound" ]; then
    violation "BENCH_obs.json: missing ._meta.bound"
  else
    while read -r prob over; do
      if jq -n --argjson o "$over" --argjson b "$bound" '$o > $b' | grep -qx true; then
        violation "BENCH_obs.json: $prob overhead $over exceeds declared bound $bound"
      fi
    done < <(jq -r 'to_entries[] | select(.key != "_meta") | "\(.key) \(.value.overhead)"' BENCH_obs.json)
    say "bench_gate: BENCH_obs.json: overheads within declared bound ${bound}x"
  fi
fi

# Internal invariant: the fault snapshot's disarmed per-solve bill must sit
# within the 2% acceptance bound it declares, and the armed-inert on/off
# ratio within its (looser, noise-envelope) armed bound.
if [ -f BENCH_fault.json ]; then
  bound="$(jq -r '._meta.bound // empty' BENCH_fault.json)"
  armed_bound="$(jq -r '._meta.armed_bound // empty' BENCH_fault.json)"
  if [ -z "$bound" ] || [ -z "$armed_bound" ]; then
    violation "BENCH_fault.json: missing ._meta.bound / ._meta.armed_bound"
  else
    while read -r prob disarmed armed; do
      if jq -n --argjson o "$disarmed" --argjson b "$bound" '$o > $b' | grep -qx true; then
        violation "BENCH_fault.json: $prob disarmed_overhead $disarmed exceeds declared bound $bound"
      fi
      if jq -n --argjson o "$armed" --argjson b "$armed_bound" '$o > $b' | grep -qx true; then
        violation "BENCH_fault.json: $prob armed overhead $armed exceeds declared bound $armed_bound"
      fi
    done < <(jq -r 'to_entries[] | select(.key != "_meta") | "\(.key) \(.value.disarmed_overhead) \(.value.overhead)"' BENCH_fault.json)
    say "bench_gate: BENCH_fault.json: disarmed bill within ${bound}x, armed-inert within ${armed_bound}x"
  fi
fi

# Internal invariant: the profile snapshot's disarmed per-solve bill must
# sit within the 2% acceptance bound it declares, and the armed profiling
# on/off ratio within its declared armed bound.
if [ -f BENCH_profile.json ]; then
  bound="$(jq -r '._meta.bound // empty' BENCH_profile.json)"
  armed_bound="$(jq -r '._meta.armed_bound // empty' BENCH_profile.json)"
  if [ -z "$bound" ] || [ -z "$armed_bound" ]; then
    violation "BENCH_profile.json: missing ._meta.bound / ._meta.armed_bound"
  else
    while read -r prob disarmed armed; do
      if jq -n --argjson o "$disarmed" --argjson b "$bound" '$o > $b' | grep -qx true; then
        violation "BENCH_profile.json: $prob disarmed_overhead $disarmed exceeds declared bound $bound"
      fi
      if jq -n --argjson o "$armed" --argjson b "$armed_bound" '$o > $b' | grep -qx true; then
        violation "BENCH_profile.json: $prob armed overhead $armed exceeds declared bound $armed_bound"
      fi
    done < <(jq -r 'to_entries[] | select(.key != "_meta") | "\(.key) \(.value.disarmed_overhead) \(.value.overhead)"' BENCH_profile.json)
    say "bench_gate: BENCH_profile.json: disarmed bill within ${bound}x, armed within ${armed_bound}x"
  fi
fi

# --- trajectory mode -------------------------------------------------------

# compare FILE METRIC FRESH_DIR — fresh metric may not exceed committed by
# more than THRESHOLD_PCT, per problem.
compare() {
  local file="$1" metric="$2" fresh_dir="$3" prob committed fresh limit
  for prob in "${PROBLEMS[@]}"; do
    committed="$(jq -r --arg p "$prob" --arg m "$metric" '.[$p][$m]' "$file")"
    fresh="$(jq -r --arg p "$prob" --arg m "$metric" '.[$p][$m]' "$fresh_dir/$file")"
    limit="$(jq -n --argjson c "$committed" --argjson t "$THRESHOLD_PCT" '$c * (1 + $t / 100)')"
    if jq -n --argjson f "$fresh" --argjson l "$limit" '$f > $l' | grep -qx true; then
      violation "$file: $prob.$metric regressed: committed $committed, fresh $fresh (> +${THRESHOLD_PCT}%)"
    else
      say "bench_gate: $file: $prob.$metric ok (committed $committed, fresh $fresh)"
    fi
  done
}

# compare_throughput FRESH_DIR — tenant-keyed variant of compare: fresh
# per-solve latency at each tenant count may not exceed committed by more
# than THRESHOLD_PCT. (On a multicore host this is also where the real
# concurrent-speedup trajectory gets re-measured.)
compare_throughput() {
  local file="BENCH_throughput.json" fresh_dir="$1" t committed fresh limit
  for t in 1 4 16; do
    committed="$(jq -r --arg k "tenants_$t" '.[$k].per_solve_ns' "$file")"
    fresh="$(jq -r --arg k "tenants_$t" '.[$k].per_solve_ns' "$fresh_dir/$file")"
    limit="$(jq -n --argjson c "$committed" --argjson t "$THRESHOLD_PCT" '$c * (1 + $t / 100)')"
    if jq -n --argjson f "$fresh" --argjson l "$limit" '$f > $l' | grep -qx true; then
      violation "$file: tenants_$t.per_solve_ns regressed: committed $committed, fresh $fresh (> +${THRESHOLD_PCT}%)"
    else
      say "bench_gate: $file: tenants_$t.per_solve_ns ok (committed $committed, fresh $fresh)"
    fi
  done
}

if [ "${1:-}" = "--measure" ]; then
  fresh_dir="$(mktemp -d)"
  trap 'rm -rf "$fresh_dir"' EXIT
  say "bench_gate: regenerating snapshots (this runs the bench binaries)..."
  cargo build --release -p doacross-bench --bins
  for bin in wavefront adaptive obs throughput fault profile; do
    (cd "$fresh_dir" && "$OLDPWD/target/release/$bin" >/dev/null)
  done
  compare BENCH_wavefront.json wavefront_ns "$fresh_dir"
  compare BENCH_adaptive.json adaptive_ns "$fresh_dir"
  compare BENCH_obs.json on_ns "$fresh_dir"
  compare BENCH_fault.json on_ns "$fresh_dir"
  compare BENCH_profile.json on_ns "$fresh_dir"
  compare_throughput "$fresh_dir"
fi

if [ "$fail" -ne 0 ]; then
  say "bench_gate: violations found" >&2
  exit 1
fi
say "bench_gate: all checks passed"
