#!/usr/bin/env bash
# analysis_gate.sh — the static-analysis gate.
#
# bench_gate.sh keeps the perf claims honest; this gate keeps the
# *soundness* claims honest. Three tiers, all cheap enough for CI:
#
#   lints          cargo clippy --workspace --all-targets -D warnings.
#                  Deprecation stays allowed (-A deprecated): the facade
#                  and bench crates each keep one deliberate use of the
#                  deprecated PlannedDoacross::run path as a migration
#                  canary, and ci.yml separately asserts the canary still
#                  fires.
#
#   audit          every crate root must pin its unsafe posture: either
#                  #![forbid(unsafe_code)] or
#                  #![deny(unsafe_op_in_unsafe_fn)], and every `unsafe`
#                  block or impl in a deny-posture crate must carry a
#                  SAFETY comment within the three lines above it.
#
#   checkers       the machine-checked soundness suites: the interleave
#                  model checker's own tests, the par/sched protocol
#                  models — including the poison-aware wait/barrier
#                  models, whose mutation tests prove the checker still
#                  catches corrupted protocols — the fault-injection
#                  chaos suite (every injected failure mode must resolve
#                  typed and recoverable), and the plan-soundness
#                  verifier's suites (whose seeded schedule mutations
#                  prove the verifier still rejects unsound plans).
#
# Exit nonzero on any violation, loudly.

set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
say() { printf '%s\n' "$*"; }
violation() { say "analysis_gate: FAIL: $*" >&2; fail=1; }

# --- lints ------------------------------------------------------------------

say "analysis_gate: clippy (deny warnings, deprecation canaries allowed)"
cargo clippy --workspace --all-targets --quiet -- -D warnings -A deprecated ||
  violation "clippy reported warnings"

# --- audit ------------------------------------------------------------------

say "analysis_gate: unsafe posture audit"
for root in crates/*/src/lib.rs crates/shims/*/src/lib.rs src/lib.rs; do
  [ -f "$root" ] || continue
  if ! grep -Eq '^#!\[(forbid\(unsafe_code\)|deny\(unsafe_op_in_unsafe_fn\))\]' "$root"; then
    violation "$root: crate root declares neither forbid(unsafe_code) nor deny(unsafe_op_in_unsafe_fn)"
  fi
done

# In deny-posture crates, every `unsafe` keyword outside a comment must have
# a SAFETY comment in the (possibly multi-line) comment block directly above
# it. `unsafe fn` declarations document their contract in their rustdoc
# (`# Safety` section), which the same walk accepts.
audit=$(awk '
  /^[[:space:]]*\/\// { comment[FNR] = $0; next }
  /(^|[^A-Za-z_])unsafe([^A-Za-z_]|$)/ {
    ok = 0
    # `unsafe fn`/`unsafe trait` declarations carry their contract in
    # rustdoc (`# Safety`); the posture lint forces their bodies back
    # through explicit `unsafe {}` blocks, which this walk does check.
    if ($0 ~ /unsafe (fn|trait)/) ok = 1
    for (l = FNR - 1; !ok && (l in comment); l--)
      if (comment[l] ~ /SAFETY|# Safety/) ok = 1
    # One SAFETY comment covers an adjacent cluster of unsafe lines.
    if (FILENAME == lastfile && FNR - lastok <= 1) ok = 1
    if (ok) { lastfile = FILENAME; lastok = FNR }
    else printf "%s:%d: unsafe without a SAFETY comment above it\n", FILENAME, FNR
  }
' $(find crates/core/src crates/par/src crates/engine/src crates/trisolve/src -name '*.rs'))
if [ -n "$audit" ]; then
  while IFS= read -r miss; do violation "$miss"; done <<<"$audit"
fi

# --- checkers ---------------------------------------------------------------

say "analysis_gate: interleave checker self-tests"
cargo test -q -p interleave ||
  violation "interleave checker self-tests failed"

say "analysis_gate: synchronization protocol models (par, sched)"
cargo test -q -p doacross-par --test interleave_models ||
  violation "par protocol models failed (ready flags / spin barrier / poison protocol)"
cargo test -q -p doacross-sched --test interleave_models ||
  violation "sched protocol models failed (free-pool bitmask)"

say "analysis_gate: fault-containment chaos suite (failpoint injection)"
cargo test -q -p doacross-engine --test chaos ||
  violation "chaos suite failed (injected faults must resolve typed and recoverable)"

say "analysis_gate: plan-soundness verifier (mutation kills + equivalence)"
cargo test -q -p doacross-verify ||
  violation "verifier suites failed"
cargo test -q -p doacross-trisolve --test verify_table1 ||
  violation "Table 1 plan-soundness acceptance failed"

# ---------------------------------------------------------------------------

if [ "$fail" -ne 0 ]; then
  say "analysis_gate: FAILED" >&2
  exit 1
fi
say "analysis_gate: OK"
