//! The multi-pool scheduler and batched submission end to end: one shared
//! engine partitioned into sub-pools serves four concurrent tenants, each
//! solving its own structure bit-identically to a sequential oracle; then
//! the same tenants' small solves are submitted as one [`SolveBatch`] and
//! coalesced into a single pool region.
//!
//! The example asserts its own contract as it goes: every tenant's result
//! matches the oracle, the scheduler's per-pool dispatch ledger accounts
//! for every solve, admission never saturated, and the batched results are
//! bit-identical to serial `execute` calls.
//!
//! Run: `cargo run --release --example throughput`

use preprocessed_doacross::core::seq::run_sequential;
use preprocessed_doacross::core::TestLoop;
use preprocessed_doacross::{Engine, SolveBatch};

fn main() {
    const TENANTS: usize = 4;

    // Two sub-pools of one worker each: enough to show real concurrent
    // dispatch on any host, including single-core CI runners.
    let engine = Engine::builder().workers(1).pools(2).build();
    println!(
        "engine: {} sub-pools x {} worker(s) = {} workers total, max_pending {}\n",
        engine.pools(),
        engine.threads(),
        engine.total_workers(),
        engine.max_pending()
    );

    // --- 1. Four tenants, one engine. --------------------------------------
    // Distinct structures (different sizes and dependence shapes), prepared
    // up front in one call.
    let loops: Vec<TestLoop> = (0..TENANTS)
        .map(|t| TestLoop::new(600 + 150 * t, 1 + t % 2, 4 + 2 * t))
        .collect();
    let refs: Vec<&TestLoop> = loops.iter().collect();
    let prepared = engine.prepare_all(&refs).expect("plannable structures");
    assert_eq!(prepared.len(), TENANTS);

    const SOLVES_PER_TENANT: usize = 50;
    std::thread::scope(|scope| {
        for (l, p) in loops.iter().zip(&prepared) {
            scope.spawn(move || {
                let mut oracle = l.initial_y();
                run_sequential(l, &mut oracle);
                for _ in 0..SOLVES_PER_TENANT {
                    let mut y = l.initial_y();
                    p.execute(l, &mut y).expect("valid solve");
                    assert_eq!(y, oracle, "tenant result differs from oracle");
                }
            });
        }
    });

    // Every solve passed through the scheduler's admission gate, and the
    // per-pool ledger accounts for each one.
    let expected = (TENANTS * SOLVES_PER_TENANT) as u64;
    let pool_stats = engine.pool_stats();
    let dispatched: u64 = pool_stats.iter().map(|s| s.dispatches).sum();
    assert_eq!(dispatched, expected, "dispatch ledger covers every solve");
    assert_eq!(engine.saturations(), 0, "admission never saturated");
    println!("== {TENANTS} tenants x {SOLVES_PER_TENANT} solves, all bit-identical ==");
    for s in &pool_stats {
        println!(
            "  pool {}: {} worker(s), {} dispatches ({} stolen)",
            s.pool, s.workers, s.dispatches, s.steals
        );
    }

    // --- 2. The same jobs as one batch. ------------------------------------
    // Serial oracle results first...
    let mut serial_ys: Vec<Vec<f64>> = loops.iter().map(|l| l.initial_y()).collect();
    for ((l, p), y) in loops.iter().zip(&prepared).zip(&mut serial_ys) {
        p.execute(l, y).expect("valid solve");
    }
    // ...then the batch: one submission, one coalesced pool region.
    let mut batch_ys: Vec<Vec<f64>> = loops.iter().map(|l| l.initial_y()).collect();
    let mut batch: SolveBatch<'_, TestLoop> = engine.batch();
    for ((l, p), y) in loops.iter().zip(&prepared).zip(&mut batch_ys) {
        batch.submit(p, l, y);
    }
    let jobs = batch.len();
    let results = engine.execute_all(batch);
    assert_eq!(results.len(), jobs);
    let mut iterations = 0u64;
    for r in results {
        iterations += r.expect("valid batched solve").iterations as u64;
    }
    assert_eq!(batch_ys, serial_ys, "batched results differ from serial");
    println!("\n== batched submission: {jobs} jobs, {iterations} iterations, bit-identical ==");
    println!("throughput surface verified: dispatch ledger, admission, batch all reconcile");
}
