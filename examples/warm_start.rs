//! Warm starts across process restarts: run this example twice.
//!
//! The first run finds no plan store, pays full preprocessing for each
//! structure (`plan:cold`), and checkpoints the engine's plan cache to
//! disk on exit. Every later run warm-starts from that store, so its
//! *first* solve of each structure is already a cache hit (`plan:cached`)
//! — the paper's "preprocess once" economy surviving the process
//! boundary. The example asserts this, so a second run doubles as a
//! smoke test:
//!
//! ```text
//! cargo run --release --example warm_start            # cold, saves store
//! cargo run --release --example warm_start            # warm, asserts hits
//! cargo run --release --example warm_start -- /tmp/x  # explicit store path
//! ```
//!
//! The default store lives under the system temp directory, not
//! `target/`: CI caches `target/` across commits, and a stale store from
//! an older format (or an older fingerprint function) must not leak into
//! unrelated builds.

use preprocessed_doacross::core::PlanProvenance;
use preprocessed_doacross::sparse::{Problem, ProblemKind};
use preprocessed_doacross::trisolve::EngineSolver;
use preprocessed_doacross::Engine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        std::env::temp_dir()
            .join("doacross_warm_start.plans")
            .display()
            .to_string()
    });
    // A fixed worker count keeps plans priced identically across runs; a
    // plan priced for another pool size would be repriced (a miss).
    let engine = Engine::builder()
        .workers(2)
        .cache_capacity(16)
        .warm_start(&path)
        .try_build()?;
    // Gate the assertion on plans actually restored, not on the file
    // existing: a store from a superseded FORMAT_VERSION (e.g. a relic
    // in the temp dir from before a format bump) is a legitimate cold
    // start under the version policy, and this run rewrites it current.
    let restored = engine.cache_len();
    println!(
        "store {path}: {}",
        if restored > 0 {
            format!("loaded, {restored} plans restored")
        } else {
            "no usable plans (first boot or format succession), starting cold".into()
        }
    );

    let solver = EngineSolver::new(engine.clone());
    for kind in [ProblemKind::FivePt, ProblemKind::Spe5] {
        let sys = Problem::build(kind).triangular_system();
        let (y, stats) = solver.solve(&sys.l, &sys.rhs)?;
        assert_eq!(y, sys.l.forward_solve(&sys.rhs), "solves stay bit-exact");
        println!(
            "{:>5}: first solve provenance = {} ({:?} total, inspector {:?})",
            kind.name(),
            stats.provenance,
            stats.total,
            stats.inspector,
        );
        if restored > 0 {
            assert_eq!(
                stats.provenance,
                PlanProvenance::PlanCached,
                "{}: a warm-started engine must hit on its first solve",
                kind.name()
            );
        }
    }

    let saved = engine.save_plans(&path)?;
    println!("checkpointed {saved} plans to {path}");
    Ok(())
}
