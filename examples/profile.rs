//! The solve profiler end to end: a profiling engine runs a wavefront
//! solve and a flat scattered doall, then walks every exported view of
//! where the nanoseconds went — the per-worker span timelines, wait
//! attribution reconciled against [`RunStats`], the realized critical
//! path, the `doacross_profile_*` scrape, and a Chrome trace written to
//! disk that `chrome://tracing` or Perfetto can open directly.
//!
//! The example asserts its own contract as it goes: the wavefront
//! profile must carry one barrier-wait span per worker per crossing
//! (exactly `RunStats::barrier_crossings`), work-span payloads must sum
//! to the iteration count, and the exported trace must validate
//! structurally with one track per worker.
//!
//! Run: `cargo run --release --example profile`

use preprocessed_doacross::core::{AccessPattern, IndirectLoop, RunStats};
use preprocessed_doacross::{validate_chrome_trace, Engine, SolveProfile, SpanKind};

fn main() {
    let engine = Engine::builder()
        .workers(4)
        .pools(1)
        .profiling_default()
        .observability_default()
        .build();
    assert!(engine.profiling_enabled());

    // --- 1. A wavefront solve: barrier-separated level doalls. -----------
    // 64 columns x 20 dependence levels — the planner runs this as one
    // barrier per level, and the profiler stamps each level's work and
    // each worker's barrier wait.
    let grid = preprocessed_doacross::plan::testgrid::deep_grid(64, 20, 3, 7);
    let prepared = engine.prepare(&grid).expect("plannable");
    let mut y: Vec<f64> = (0..grid.data_len())
        .map(|e| 1.0 + (e % 10) as f64)
        .collect();
    let stats: RunStats = prepared.execute(&grid, &mut y).expect("valid solve");
    let wavefront = latest_profile(&engine);
    println!(
        "wavefront solve: {} iterations, {} workers, {} barrier crossings",
        stats.iterations, stats.workers, stats.barrier_crossings
    );
    print_attribution(&wavefront);

    // Wait attribution is the executor's own bookkeeping with
    // timestamps: one barrier-wait span per worker per crossing...
    for worker in 0..stats.workers as u32 {
        let crossings = wavefront
            .spans
            .iter()
            .filter(|s| s.worker == worker && s.kind == SpanKind::BarrierWait)
            .count() as u64;
        assert_eq!(crossings, stats.barrier_crossings, "worker {worker}");
    }
    // ...and the work-span payloads sum to the full iteration space.
    let worked: u64 = wavefront
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Work)
        .map(|s| s.aux)
        .sum();
    assert_eq!(worked, stats.iterations as u64);

    // --- 2. A flat doall for contrast: no barriers at all. ----------------
    let n = 4_000;
    let a: Vec<usize> = (0..n).map(|i| n - 1 - i).collect();
    let flat = IndirectLoop::new(n, a, vec![vec![]; n], vec![vec![]; n]).expect("valid");
    let prepared = engine.prepare(&flat).expect("plannable");
    let mut y = vec![1.0; n];
    let flat_stats = prepared.execute(&flat, &mut y).expect("valid solve");
    let flat_profile = latest_profile(&engine);
    println!(
        "\nflat doall: {} iterations, {} stalls",
        flat_stats.iterations, flat_stats.stalls
    );
    print_attribution(&flat_profile);
    assert_eq!(flat_profile.kind_spans[SpanKind::BarrierWait.index()], 0);
    assert_eq!(
        flat_profile.kind_spans[SpanKind::FlagWait.index()],
        flat_stats.stalls
    );

    // --- 3. The scrape gains doacross_profile_* families. -----------------
    let text = engine.metrics_text();
    assert!(text.contains("doacross_profile_solves_total 2"));
    assert!(text.contains("doacross_profile_barrier_wait_ns_count{level=\"0\"}"));
    let profile_lines: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("doacross_profile_") && !l.contains("_bucket"))
        .collect();
    println!(
        "\nscrape ({} doacross_profile_* samples):",
        profile_lines.len()
    );
    for line in profile_lines.iter().take(8) {
        println!("  {line}");
    }

    // --- 4. Export the Chrome trace and validate it structurally. ---------
    let trace = engine.profile_chrome_trace();
    let summary = validate_chrome_trace(&trace).expect("structurally valid trace");
    // One pid per profiled solve; the wavefront solve's tracks cover
    // every worker plus the dispatcher.
    let wavefront_tracks = summary
        .tracks
        .keys()
        .filter(|(pid, _)| *pid == wavefront.seq)
        .count();
    assert_eq!(wavefront_tracks, stats.workers + 1, "workers + dispatcher");
    let path = std::env::temp_dir().join(format!("doacross-profile-{}.json", std::process::id()));
    std::fs::write(&path, &trace).expect("write trace");
    println!(
        "\nchrome trace: {} events across {} tracks -> {}",
        summary.events,
        summary.tracks.len(),
        path.display()
    );
    println!("open it in chrome://tracing or https://ui.perfetto.dev");

    println!("\nprofile example: all assertions passed");
}

fn latest_profile(engine: &Engine) -> SolveProfile {
    engine
        .recent_profiles()
        .pop()
        .expect("profiled solve landed in the ring")
}

fn print_attribution(profile: &SolveProfile) {
    println!(
        "  attribution: work {}ns, flag-wait {}ns, barrier-wait {}ns, dispatch-wait {}ns \
         ({} spans, realized critical path {}ns)",
        profile.work_ns(),
        profile.flag_wait_ns(),
        profile.barrier_wait_ns(),
        profile.dispatch_wait_ns(),
        profile.spans.len(),
        profile.realized_critical_ns,
    );
}
