//! The observability layer end to end: an instrumented engine runs a
//! mixed workload — several structures (including one deep enough that
//! the cost model picks the wavefront variant), cached reruns, an
//! invalidation, and a save/load cycle — then prints the flight recorder,
//! a slice of the trace, and the full Prometheus scrape.
//!
//! The example asserts its own contract as it goes: the scrape covers
//! cache traffic and per-variant latency histograms with numbers that
//! reconcile against the engine's counters, and the flight recorder holds
//! the solves just executed, newest last.
//!
//! Run: `cargo run --release --example observe`

use preprocessed_doacross::core::TestLoop;
use preprocessed_doacross::obs::ObsProvenance;
use preprocessed_doacross::sparse::{ilu0, stencil::seven_point, TriangularMatrix};
use preprocessed_doacross::trisolve::TriSolveLoop;
use preprocessed_doacross::Engine;

fn main() {
    let engine = Engine::builder()
        .workers(4)
        .cache_capacity(16)
        .observability_default()
        .build();
    assert!(engine.observability_enabled());

    // --- 1. Mixed workload. ----------------------------------------------
    // Flat chains of different depths (flag-based variants) ...
    let loops: Vec<TestLoop> = [(2_000usize, 7usize), (1_500, 8), (2_500, 14)]
        .iter()
        .map(|&(n, l)| TestLoop::new(n, 1, l))
        .collect();
    let mut solves = 0u64;
    for _ in 0..3 {
        for l in &loops {
            let mut y = l.initial_y();
            engine.run(l, &mut y).expect("valid loop");
            solves += 1;
        }
    }
    // ... plus a deep triangular structure the cost model runs as
    // barrier-separated level doalls.
    let a = seven_point(12, 12, 6, 2026);
    let l_factor = TriangularMatrix::from_strict_lower(&ilu0(&a).l);
    let rhs = vec![1.0; l_factor.n()];
    let tri = TriSolveLoop::new(&l_factor, &rhs);
    for _ in 0..2 {
        let mut y = vec![0.0; l_factor.n()];
        engine.run(&tri, &mut y).expect("valid solve");
        solves += 1;
    }

    // An invalidation and a persistence round trip, so those series have
    // traffic too.
    let fp = preprocessed_doacross::plan::PatternFingerprint::of(&loops[0]);
    assert!(engine.invalidate(&fp));
    let store = std::env::temp_dir().join(format!("observe-{}.plans", std::process::id()));
    let saved = engine.save_plans(&store).expect("save");
    let restored = engine.load_plans(&store).expect("load");
    let _ = std::fs::remove_file(&store);
    println!(
        "workload: {solves} solves, 1 invalidation, saved {saved} / restored {restored} plans\n"
    );

    // --- 2. The flight recorder. -----------------------------------------
    let recent = engine.recent_solves();
    assert_eq!(recent.len() as u64, solves, "every solve was recorded");
    assert_eq!(
        recent.last().unwrap().provenance,
        ObsProvenance::PlanCached,
        "the rerun of the triangular structure was cache-served"
    );
    println!("== flight recorder (last {} solves) ==", recent.len());
    for s in recent.iter().rev().take(5) {
        println!(
            "  {} variant={:<10} plan:{:<11} total={}ns polls={} barriers={}",
            s.fp,
            s.variant.as_str(),
            s.provenance.as_str(),
            s.total_ns,
            s.wait_polls,
            s.barrier_crossings
        );
    }

    // --- 3. The trace ring. ----------------------------------------------
    let events = engine.trace_events();
    println!("\n== trace ({} events retained) ==", events.len());
    for e in events.iter().take(6) {
        println!("  seq={:<3} +{:>9}ns {}", e.seq, e.at_ns, e.event.kind());
    }
    println!("  ...");

    // --- 4. The Prometheus scrape. ---------------------------------------
    let text = engine.metrics_text();
    let stats = engine.cache_stats();
    assert!(text.contains(&format!("doacross_cache_hits_total {}", stats.hits)));
    assert!(text.contains(&format!("doacross_cache_misses_total {}", stats.misses)));
    assert!(text.contains("# TYPE doacross_solve_ns histogram"));
    assert!(text.contains("doacross_solves_total{variant="));
    assert!(text.contains("doacross_cache_invalidations_total 1"));
    assert!(text.contains("doacross_store_saves_total 1"));
    let total_solves: u64 = text
        .lines()
        .filter(|l| l.starts_with("doacross_solves_total{"))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(total_solves, solves, "scrape covers every solve");
    println!("\n== metrics_text() ==\n{text}");
    println!("observability surface verified: flight recorder, trace, scrape all reconcile");
}
