//! The engine end to end: fingerprint → cost-model variant selection →
//! sharded concurrent plan cache → preprocessing-free reruns from many
//! threads — plus invalidation retiring stale handles.
//!
//! ```bash
//! cargo run --release --example plan_cache
//! ```

use preprocessed_doacross::core::{PlanProvenance, TestLoop};
use preprocessed_doacross::plan::PatternFingerprint;
use preprocessed_doacross::sparse::{ilu0, stencil::five_point, TriangularMatrix};
use preprocessed_doacross::trisolve::EngineSolver;
use preprocessed_doacross::{Engine, EngineError};

fn main() {
    let engine = Engine::builder().workers(4).cache_capacity(16).build();

    // --- 1. What does the planner decide, and why? -----------------------
    println!("== variant selection across dependence structures ==");
    for (name, l) in [
        ("doall (odd L)", 7usize),
        ("distance-1 chain (L=4)", 4),
        ("stretched deps (L=14)", 14),
    ] {
        let loop_ = TestLoop::new(2_000, 1, l);
        let prepared = engine.prepare(&loop_).expect("plannable");
        println!(
            "  {name:<22} -> {} (critical path {}, avg parallelism {:.1})",
            prepared.variant(),
            prepared.plan().census().critical_path,
            prepared.plan().census().average_parallelism,
        );
    }

    // --- 2. Cold plan, then cached reruns. -------------------------------
    println!("\n== plan cache on the Figure 4 loop ==");
    let loop_ = TestLoop::new(10_000, 2, 8);
    for round in 0..3 {
        let mut y = loop_.initial_y();
        let stats = engine.run(&loop_, &mut y).expect("valid loop");
        println!(
            "  run {round}: preprocessing {} (inspector {:?}, total {:?})",
            stats.provenance, stats.inspector, stats.total,
        );
        assert_eq!(
            stats.provenance,
            if round == 0 {
                PlanProvenance::PlanCold
            } else {
                PlanProvenance::PlanCached
            }
        );
    }

    // --- 3. Many threads, one engine: the redesign's point. --------------
    println!("\n== 4 threads executing one prepared handle ==");
    let prepared = engine.prepare(&loop_).expect("cached");
    let expect = {
        let mut y = loop_.initial_y();
        preprocessed_doacross::core::seq::run_sequential(&loop_, &mut y);
        y
    };
    std::thread::scope(|scope| {
        for t in 0..4 {
            let handle = prepared.clone();
            let (loop_, expect) = (&loop_, &expect);
            scope.spawn(move || {
                let mut y = loop_.initial_y();
                handle.execute(loop_, &mut y).expect("valid");
                assert_eq!(&y, expect, "thread {t}");
            });
        }
    });
    let s = engine.cache_stats();
    println!(
        "  all bit-identical; cache {} hits / {} misses over {} shards (hit rate {:.0}%)",
        s.hits,
        s.misses,
        engine.shards(),
        s.hit_rate() * 100.0
    );

    // --- 4. The fingerprint is structural: values don't matter. ----------
    println!("\n== fingerprints are value-blind ==");
    let a = five_point(16, 16, 1);
    let l = TriangularMatrix::from_strict_lower(&ilu0(&a).l);
    let rhs1 = vec![1.0; l.n()];
    let rhs2: Vec<f64> = (0..l.n()).map(|i| (i % 5) as f64).collect();
    let fp = PatternFingerprint::of(&preprocessed_doacross::trisolve::TriSolveLoop::new(
        &l, &rhs1,
    ));
    println!("  L factor fingerprint: {fp}");

    let solver = EngineSolver::new(engine.clone());
    let (y1, cold) = solver.solve(&l, &rhs1).expect("valid system");
    let (y2, hot) = solver.solve(&l, &rhs2).expect("valid system");
    assert_eq!(y1, l.forward_solve(&rhs1));
    assert_eq!(y2, l.forward_solve(&rhs2));
    println!(
        "  solve(rhs1): {} | solve(rhs2): {} (same structure, plan reused)",
        cold.provenance, hot.provenance
    );

    // --- 5. Invalidation retires stale handles, typed. -------------------
    println!("\n== invalidation fails stale handles fast ==");
    let handle = solver.prepare(&l).expect("cached");
    engine.invalidate(handle.fingerprint());
    let loop_ = preprocessed_doacross::trisolve::TriSolveLoop::new(&l, &rhs1);
    let mut y = vec![0.0; l.n()];
    match handle.execute(&loop_, &mut y) {
        Err(EngineError::StalePlan {
            prepared_generation,
            current_generation,
            ..
        }) => println!(
            "  stale handle rejected (generation {prepared_generation} < {current_generation}); \
             re-prepare to rebuild"
        ),
        other => panic!("expected StalePlan, got {other:?}"),
    }
    let fresh = solver.prepare(&l).expect("replanned");
    fresh.execute(&loop_, &mut y).expect("fresh handle works");
    assert_eq!(y, l.forward_solve(&rhs1));
    println!(
        "  fresh handle (generation {}) solves again.",
        fresh.generation()
    );
}
