//! The execution-plan subsystem end to end: fingerprint → cost-model
//! variant selection → LRU-cached plans → preprocessing-free reruns.
//!
//! ```bash
//! cargo run --release --example plan_cache
//! ```

use preprocessed_doacross::core::{PlanProvenance, TestLoop};
use preprocessed_doacross::par::ThreadPool;
use preprocessed_doacross::plan::{PatternFingerprint, PlannedDoacross, Planner};
use preprocessed_doacross::sparse::{ilu0, stencil::five_point, TriangularMatrix};
use preprocessed_doacross::trisolve::PlanCachedSolver;

fn main() {
    let pool = ThreadPool::new(4);

    // --- 1. What does the planner decide, and why? -----------------------
    println!("== variant selection across dependence structures ==");
    let planner = Planner::new();
    for (name, l) in [
        ("doall (odd L)", 7usize),
        ("distance-1 chain (L=4)", 4),
        ("stretched deps (L=14)", 14),
    ] {
        let loop_ = TestLoop::new(2_000, 1, l);
        let plan = planner.plan(&pool, &loop_).expect("plannable");
        println!(
            "  {name:<22} -> {} (critical path {}, avg parallelism {:.1})",
            plan.variant(),
            plan.census().critical_path,
            plan.census().average_parallelism,
        );
    }

    // --- 2. Cold plan, then cached reruns. -------------------------------
    println!("\n== plan cache on the Figure 4 loop ==");
    let loop_ = TestLoop::new(10_000, 2, 8);
    let mut rt = PlannedDoacross::new(8);
    for round in 0..3 {
        let mut y = loop_.initial_y();
        let stats = rt.run(&pool, &loop_, &mut y).expect("valid loop");
        println!(
            "  run {round}: preprocessing {} (inspector {:?}, total {:?})",
            stats.provenance, stats.inspector, stats.total,
        );
        assert_eq!(
            stats.provenance,
            if round == 0 {
                PlanProvenance::PlanCold
            } else {
                PlanProvenance::PlanCached
            }
        );
    }
    let s = rt.cache_stats();
    println!(
        "  cache: {} hits / {} misses (hit rate {:.0}%)",
        s.hits,
        s.misses,
        s.hit_rate() * 100.0
    );

    // --- 3. The fingerprint is structural: values don't matter. ----------
    println!("\n== fingerprints are value-blind ==");
    let a = five_point(16, 16, 1);
    let l = TriangularMatrix::from_strict_lower(&ilu0(&a).l);
    let rhs1 = vec![1.0; l.n()];
    let rhs2: Vec<f64> = (0..l.n()).map(|i| (i % 5) as f64).collect();
    let fp = PatternFingerprint::of(&preprocessed_doacross::trisolve::TriSolveLoop::new(
        &l, &rhs1,
    ));
    println!("  L factor fingerprint: {fp}");

    let mut solver = PlanCachedSolver::new(4);
    let (y1, cold) = solver.solve(&pool, &l, &rhs1).expect("valid system");
    let (y2, hot) = solver.solve(&pool, &l, &rhs2).expect("valid system");
    assert_eq!(y1, l.forward_solve(&rhs1));
    assert_eq!(y2, l.forward_solve(&rhs2));
    println!(
        "  solve(rhs1): {} | solve(rhs2): {} (same structure, plan reused)",
        cold.provenance, hot.provenance
    );

    // --- 4. Safety rails stay up. ----------------------------------------
    println!("\n== a plan never runs against the wrong loop ==");
    let small = TestLoop::new(100, 1, 7);
    let big = TestLoop::new(200, 1, 7);
    let plan = planner.plan(&pool, &small).expect("plannable");
    let mut y = big.initial_y();
    let err = rt
        .run_with_plan(&pool, &big, &mut y, &plan)
        .expect_err("shape mismatch must be rejected");
    println!("  {err}");
}
