//! Fault-contained execution end to end: deterministic fault injection
//! against a live engine.
//!
//! The `failpoint` shim arms a named site inside the parallel executor to
//! panic a worker at a chosen iteration. The example then shows the whole
//! containment story and asserts its own contract as it goes:
//!
//! 1. With the sequential fallback disabled, the injected panic surfaces
//!    as typed `EngineError::SolvePanicked` — no hang, no abort — and the
//!    same engine solves the same structure correctly on the very next
//!    call: the sub-pool was poisoned, drained, and reused.
//! 2. With the default `FallbackPolicy::SequentialRetry`, the same fault
//!    is absorbed: the engine replays the solve sequentially against the
//!    pristine input and delivers the oracle answer (`attempts == 2`).
//! 3. The fault is fully observable: `SolvePoisoned`/`SolveFellBack`
//!    trace events, `Panicked`/`FellBack` flight-recorder outcomes, and
//!    nonzero `doacross_fault_*` counters in the Prometheus scrape.
//!
//! Run: `cargo run --release --example chaos`

use preprocessed_doacross::core::seq::run_sequential;
use preprocessed_doacross::core::{AccessPattern, IndirectLoop};
use preprocessed_doacross::obs::SolveOutcome;
use preprocessed_doacross::{Engine, EngineError, FallbackPolicy, TraceEvent};

/// A dependence-free scattered doall — the planner runs it as the flat
/// preprocessed doacross, so a mid-region worker panic exercises the
/// poison protocol across the whole pool.
fn victim() -> IndirectLoop {
    let n = 4_000;
    let a: Vec<usize> = (0..n).map(|i| n - 1 - i).collect();
    IndirectLoop::new(n, a, vec![vec![]; n], vec![vec![]; n]).unwrap()
}

const SITE: &str = "core::executor::iter";

fn main() {
    // The injected worker panic and the cooperative unwinds it triggers
    // (`abort_region`'s typed payloads) are all caught by the pool, but
    // the default panic hook would still splatter them over the demo
    // output.
    std::panic::set_hook(Box::new(|info| {
        let expected = info.to_string().contains("failpoint: injected panic")
            || info
                .location()
                .is_some_and(|l| l.file().contains("crates/par/src"));
        if !expected {
            eprintln!("{info}");
        }
    }));

    let loop_ = victim();
    let y0: Vec<f64> = (0..loop_.data_len())
        .map(|e| 1.0 + (e % 10) as f64 / 10.0)
        .collect();
    let mut oracle = y0.clone();
    run_sequential(&loop_, &mut oracle);

    // --- 1. Typed containment: fallback off, the fault reaches the caller.
    let strict = Engine::builder()
        .workers(4)
        .pools(1)
        .fallback(FallbackPolicy::Disabled)
        .observability_default()
        .build();

    failpoint::arm(SITE, failpoint::FailAction::PanicAt { iteration: 3_900 });
    let mut y = y0.clone();
    let err = strict.run(&loop_, &mut y).unwrap_err();
    println!("injected worker panic  -> {err}");
    assert!(
        matches!(err, EngineError::SolvePanicked { .. }),
        "expected SolvePanicked, got {err:?}"
    );
    failpoint::disarm(SITE);

    // The poisoned sub-pool was drained and released: the same engine
    // serves the same structure correctly on the very next call.
    let mut y = y0.clone();
    let stats = strict.run(&loop_, &mut y).unwrap();
    assert_eq!(y, oracle, "recovered solve matches the sequential oracle");
    println!(
        "next solve after fault -> ok ({} workers, attempts {})",
        stats.workers, stats.attempts
    );

    // --- 2. Graceful degradation: the default policy absorbs the fault.
    let engine = Engine::builder()
        .workers(4)
        .pools(1)
        .observability_default()
        .build();
    assert_eq!(engine.fallback_policy(), FallbackPolicy::SequentialRetry);

    failpoint::arm(SITE, failpoint::FailAction::PanicAt { iteration: 3_900 });
    let mut y = y0.clone();
    let stats = engine.run(&loop_, &mut y).unwrap();
    failpoint::disarm(SITE);
    assert_eq!(y, oracle, "fallback delivered the oracle answer");
    assert_eq!(stats.attempts, 2, "one faulted attempt, one replay");
    assert_eq!(stats.workers, 1, "the replay ran sequentially");
    println!(
        "same fault, default policy -> delivered via sequential fallback (attempts {})",
        stats.attempts
    );

    // --- 3. The fault is observable everywhere it should be.
    let events = engine.trace_events();
    assert!(events
        .iter()
        .any(|e| matches!(e.event, TraceEvent::SolvePoisoned { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e.event, TraceEvent::SolveFellBack { .. })));
    let outcomes: Vec<SolveOutcome> = engine.recent_solves().iter().map(|r| r.outcome).collect();
    assert!(outcomes.contains(&SolveOutcome::Panicked));
    assert!(outcomes.contains(&SolveOutcome::FellBack));
    println!("flight recorder outcomes -> {outcomes:?}");

    let scrape = engine.metrics_text();
    for needle in [
        "doacross_fault_panics_total 1",
        "doacross_fault_fallbacks_total 1",
    ] {
        assert!(scrape.contains(needle), "scrape missing `{needle}`");
        println!("scrape: {needle}");
    }

    println!("chaos example: all containment contracts held");
}
