//! Quickstart: parallelize a loop whose dependencies are only known at
//! run time (the paper's Figure 1 situation), through the engine API.
//!
//! ```fortran
//! do i = 1, N
//!     y(a(i)) = y(a(i)) + c * y(b(i))
//! end do
//! ```
//!
//! `a` and `b` are data read from somewhere at run time — no compiler can
//! prove which iterations depend on which. The preprocessed doacross
//! figures it out on the fly and runs the loop in parallel anyway; the
//! `Engine` additionally remembers the analysis, so the second run of the
//! same structure skips it entirely.
//!
//! Run: `cargo run --release --example quickstart`

use preprocessed_doacross::core::{seq::run_sequential, IndirectLoop};
use preprocessed_doacross::Engine;

fn main() {
    // A scrambled dependency pattern: iteration i writes y[a[i]] and reads
    // y[b[i]]. Some reads hit elements written by earlier iterations (true
    // dependencies), some by later ones (antidependencies), some never
    // written at all.
    let n = 12usize;
    let a: Vec<usize> = vec![5, 2, 9, 0, 7, 11, 4, 1, 8, 3, 10, 6];
    let b: Vec<usize> = vec![2, 9, 0, 7, 5, 4, 2, 8, 11, 0, 3, 9];
    let rhs: Vec<Vec<usize>> = b.iter().map(|&e| vec![e]).collect();
    let coeff = vec![vec![0.5]; n];
    let loop_ = IndirectLoop::new(n, a.clone(), rhs, coeff).expect("valid loop");

    let y0: Vec<f64> = (0..n).map(|e| e as f64).collect();

    // Sequential oracle.
    let mut y_seq = y0.clone();
    run_sequential(&loop_, &mut y_seq);

    // One engine for the whole session: workers, planner, and a sharded
    // plan cache behind &self — clones share everything.
    let engine = Engine::builder().workers(4).build();

    let mut y_par = y0.clone();
    let stats = engine.run(&loop_, &mut y_par).expect("no output deps");

    println!("sequential : {y_seq:?}");
    println!("doacross   : {y_par:?}");
    assert_eq!(y_seq, y_par, "bit-identical results");

    println!("\nrun statistics: {stats}");
    println!(
        "reference classification: {} true deps, {} old-value reads, {} intra",
        stats.deps.true_deps, stats.deps.anti_or_unwritten, stats.deps.intra
    );
    println!(
        "preprocessing: {} (first sight of this structure)",
        stats.provenance
    );

    // Same structure again — any coefficients, any y contents: the plan is
    // served from the cache and the inspector never runs.
    let prepared = engine.prepare(&loop_).expect("cached");
    let mut y_again = y0;
    let hot = prepared.execute(&loop_, &mut y_again).expect("valid");
    assert_eq!(y_again, y_seq);
    println!(
        "\nrerun via prepared handle: {} (inspector {:?}), variant {}",
        hot.provenance,
        hot.inspector,
        prepared.variant()
    );
    let s = engine.cache_stats();
    println!(
        "cache: {} hit / {} miss over {} shards",
        s.hits,
        s.misses,
        engine.shards()
    );
}
