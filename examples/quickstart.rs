//! Quickstart: parallelize a loop whose dependencies are only known at
//! run time (the paper's Figure 1 situation).
//!
//! ```fortran
//! do i = 1, N
//!     y(a(i)) = y(a(i)) + c * y(b(i))
//! end do
//! ```
//!
//! `a` and `b` are data read from somewhere at run time — no compiler can
//! prove which iterations depend on which. The preprocessed doacross
//! figures it out on the fly and runs the loop in parallel anyway.
//!
//! Run: `cargo run --release --example quickstart`

use preprocessed_doacross::core::{seq::run_sequential, Doacross, IndirectLoop};
use preprocessed_doacross::par::ThreadPool;

fn main() {
    // A scrambled dependency pattern: iteration i writes y[a[i]] and reads
    // y[b[i]]. Some reads hit elements written by earlier iterations (true
    // dependencies), some by later ones (antidependencies), some never
    // written at all.
    let n = 12usize;
    let a: Vec<usize> = vec![5, 2, 9, 0, 7, 11, 4, 1, 8, 3, 10, 6];
    let b: Vec<usize> = vec![2, 9, 0, 7, 5, 4, 2, 8, 11, 0, 3, 9];
    let rhs: Vec<Vec<usize>> = b.iter().map(|&e| vec![e]).collect();
    let coeff = vec![vec![0.5]; n];
    let loop_ = IndirectLoop::new(n, a.clone(), rhs, coeff).expect("valid loop");

    let y0: Vec<f64> = (0..n).map(|e| e as f64).collect();

    // Sequential oracle.
    let mut y_seq = y0.clone();
    run_sequential(&loop_, &mut y_seq);

    // Preprocessed doacross on a 4-worker pool: inspector fills iter(a(i)),
    // the executor resolves every y[b[i]] against it (busy-waiting only on
    // true dependencies), postprocessing resets the scratch for reuse.
    let pool = ThreadPool::new(4);
    let mut runtime = Doacross::for_loop(&loop_);
    let mut y_par = y0;
    let stats = runtime
        .run(&pool, &loop_, &mut y_par)
        .expect("no output deps");

    println!("sequential : {y_seq:?}");
    println!("doacross   : {y_par:?}");
    assert_eq!(y_seq, y_par, "bit-identical results");

    println!("\nrun statistics: {stats}");
    println!(
        "reference classification: {} true deps, {} old-value reads, {} intra",
        stats.deps.true_deps, stats.deps.anti_or_unwritten, stats.deps.intra
    );
    println!("\nThe runtime is reusable: its iter/ready scratch arrays were reset");
    println!(
        "by the postprocessing phase (clean = {}).",
        runtime.scratch_is_clean()
    );
}
