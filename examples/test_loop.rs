//! The paper's Figure 4 test loop, end to end: dependence census,
//! engine-planned parallel execution on host threads, the §2.3
//! inspector-free linear variant, and the simulated 16-processor
//! efficiency — one row of Figure 6, reproduced live.
//!
//! Run: `cargo run --release --example test_loop [L] [M]`
//! (defaults: L = 8, M = 5)

use preprocessed_doacross::core::{seq::run_sequential, LinearDoacross, TestLoop};
use preprocessed_doacross::sim::{Machine, SimOptions};
use preprocessed_doacross::Engine;

fn main() {
    let mut args = std::env::args().skip(1);
    let l: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(8);
    let m: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(5);
    let n = 10_000usize;

    println!("Figure 4 test loop: N = {n}, M = {m}, L = {l}");
    println!("  y(a(i)) += val(j) * y(b(i) + nbrs(j)),  a(i) = 2i, nbrs(j) = 2j - L\n");

    let loop_ = TestLoop::new(n, m, l);
    let census = loop_.census();
    println!("dependence census: {census:?}");
    if census.is_doall() {
        println!("-> odd L: no cross-iteration dependencies (pure overhead regime)\n");
    } else {
        println!(
            "-> even L: true dependencies at distances {:?}..{:?}\n",
            census.min_true_distance, census.max_true_distance
        );
    }

    // Host-thread execution through the engine: the cost model picks the
    // variant, and the plan is cached for reruns.
    let engine = Engine::builder().build();
    let workers = engine.threads();
    let mut y_seq = loop_.initial_y();
    run_sequential(&loop_, &mut y_seq);

    let prepared = engine.prepare(&loop_).expect("valid loop");
    println!(
        "engine plan: {} (priced for {} workers)",
        prepared.variant(),
        prepared.plan().processors()
    );
    let mut y_par = loop_.initial_y();
    let stats = prepared.execute(&loop_, &mut y_par).expect("valid loop");
    assert_eq!(y_seq, y_par);
    println!("host ({workers} workers), engine:      {stats}");

    // §2.3: a(i) = 2i is linear, so the inspector can be eliminated —
    // shown here against the low-level runtime directly.
    let mut y_lin = loop_.initial_y();
    let mut linear = LinearDoacross::new(loop_.initial_y().len());
    let lin_stats = linear
        .run(engine.pool(), &loop_, loop_.linear_subscript(), &mut y_lin)
        .expect("subscript is linear");
    assert_eq!(y_seq, y_lin);
    println!("host ({workers} workers), linear §2.3: {lin_stats}");

    // Simulated 16-processor Multimax: the Figure 6 y-value for (L, M).
    let machine = Machine::multimax();
    let sim = machine.simulate_doacross(&loop_, None, SimOptions::default());
    println!("\nsimulated Multimax/320: {sim}");
    println!(
        "\nFigure 6 point (L={l}, M={m}): efficiency = {:.3}",
        sim.efficiency
    );
}
