//! The paper's motivating context, end to end: an ILU(0)-preconditioned
//! iterative solver whose inner triangular solves — "a large fraction of
//! the sequential execution time of linear solvers that use Krylov
//! methods" (§3.2) — run as preprocessed doacross loops.
//!
//! Solves `A x = b` for a 5-point operator with preconditioned Richardson
//! iteration: `x ← x + M⁻¹ (b − A x)`, `M = L·U` from ILU(0). Both halves
//! of every `M⁻¹` application (forward and backward substitution) are
//! doacross-parallel, with their doconsider reorderings computed once and
//! amortized across all iterations. The session's `Engine` owns the one
//! worker pool everything runs on — preconditioner applications borrow it
//! via `engine.pool()`.
//!
//! Run: `cargo run --release --example krylov`

use preprocessed_doacross::sparse::{spmv::csr_matvec, stencil::five_point, vec_ops::norm2};
use preprocessed_doacross::trisolve::IluPreconditioner;
use preprocessed_doacross::Engine;

fn main() {
    let (nx, ny) = (48usize, 48usize);
    let a = five_point(nx, ny, 7_1991);
    let n = a.nrows();
    println!("A: 5-point operator on a {nx}x{ny} grid ({n} unknowns)");

    // Manufactured problem: b = A * x_true.
    let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i % 9) as f64 * 0.25).collect();
    let b = csr_matvec(&a, &x_true);

    println!("factoring with ILU(0) and planning both doacross solves...");
    let mut precond = IluPreconditioner::new(&a);
    println!(
        "  L: {} deps; U: {} deps",
        precond.l().nnz(),
        precond.u().nnz()
    );

    // One engine per service: its pool is the session's only pool.
    let engine = Engine::builder().build();
    let workers = engine.threads();

    // Preconditioned Richardson: x += M^-1 (b - A x).
    let mut x = vec![0.0; n];
    let b_norm = norm2(&b);
    println!("\npreconditioned Richardson iteration ({workers} workers):");
    for iter in 0..30 {
        let ax = csr_matvec(&a, &x);
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
        let rel = norm2(&r) / b_norm;
        if iter % 5 == 0 || rel < 1e-10 {
            println!("  iter {iter:>2}: ||r|| / ||b|| = {rel:.3e}");
        }
        if rel < 1e-10 {
            break;
        }
        // Two preprocessed-doacross triangular solves per application, on
        // the engine's workers.
        let z = precond.apply(engine.pool(), &r).expect("valid solves");
        for (xi, zi) in x.iter_mut().zip(&z) {
            *xi += zi;
        }
    }

    let err = x
        .iter()
        .zip(&x_true)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("\nmax |x - x_true| = {err:.3e}");
    assert!(err < 1e-8, "Richardson with ILU(0) must converge on this A");
    println!("converged: every inner triangular solve ran as a preprocessed doacross.");
}
