//! Inside the doconsider transformation: visualize the wavefront structure
//! of a triangular system and how reordering changes the claim sequence.
//!
//! Prints the level histogram of a small ILU(0) factor, the natural vs.
//! doconsider claim orders, and the simulated 16-processor schedules of
//! both — showing where the paper's Table 1 gap comes from.
//!
//! Run: `cargo run --release --example wavefront`

use preprocessed_doacross::doconsider::{level_histogram, DependenceDag, LevelAssignment};
use preprocessed_doacross::sim::Machine;
use preprocessed_doacross::sparse::{ilu0, stencil::five_point, TriangularMatrix};
use preprocessed_doacross::trisolve::{SolvePlan, TriSolveLoop};
use preprocessed_doacross::Engine;

fn main() {
    // Small enough that the level map fits a terminal, large enough that
    // the simulated schedules show the reordering effect.
    let (nx, ny) = (16usize, 12usize);
    let a = five_point(nx, ny, 2026);
    let l = TriangularMatrix::from_strict_lower(&ilu0(&a).l);
    println!(
        "ILU(0) L factor of a {nx}x{ny} five-point operator: {} rows, {} deps\n",
        l.n(),
        l.nnz()
    );

    let dag = DependenceDag::from_predecessors(l.n(), |i| l.row_cols(i).iter().copied());
    let levels = LevelAssignment::compute(&dag);
    let hist = level_histogram(&levels);
    println!(
        "wavefront levels (critical path = {}):",
        levels.critical_path()
    );
    for (k, width) in hist.iter().enumerate() {
        println!("  level {:>2}: {}", k + 1, "#".repeat(*width));
    }

    println!("\nlevel of each grid row (rows = grid y, columns = grid x):");
    for y in 0..ny {
        let row: Vec<String> = (0..nx)
            .map(|x| format!("{:>3}", levels.level(y * nx + x)))
            .collect();
        println!("  {}", row.join(""));
    }
    println!("  (each point's level = 1 + max(level of W and S neighbors) — diagonal wavefronts)");

    let plan = SolvePlan::for_matrix(&l);
    println!("\nnatural claim order : 0 1 2 3 ... (row-major; consecutive claims are dependent)");
    let shown = 16.min(plan.order.len());
    let head: Vec<String> = plan.order[..shown].iter().map(|i| i.to_string()).collect();
    println!(
        "doconsider order    : {} ... (wavefront-major; consecutive claims independent)",
        head.join(" ")
    );

    // What the 16-processor machine does with each order.
    let rhs = vec![1.0; l.n()];
    let loop_ = TriSolveLoop::new(&l, &rhs);
    let machine = Machine::multimax();
    let opts = preprocessed_doacross::sim::SimOptions {
        include_inspector: false,
        light_post: true,
        chunk: 1,
    };
    let natural = machine.simulate_doacross(&loop_, None, opts);
    let reordered = machine.simulate_doacross(&loop_, Some(&plan.order), opts);
    println!("\nsimulated Multimax/320 (16 processors):");
    println!("  natural    : {natural}");
    println!("  doconsider : {reordered}");
    println!(
        "\nreordering removed {} of {} stalls and cut T_par by {:.1}%.",
        natural.stalls - reordered.stalls,
        natural.stalls,
        100.0 * (1.0 - reordered.t_par / natural.t_par)
    );

    // What the engine's cost model concludes about the same structure on
    // the host: the doconsider order is one of the candidates it prices.
    let engine = Engine::builder().build();
    let prepared = engine.prepare(&loop_).expect("plannable");
    let costs = prepared.plan().costs();
    println!(
        "\nengine plan for this structure ({} workers): {}",
        engine.threads(),
        prepared.variant()
    );
    println!(
        "  priced candidates: sequential {:.0}, doacross {:?}, reordered {:?}",
        costs.sequential,
        costs.doacross.map(|c| c.round()),
        costs.reordered.map(|c| c.round()),
    );
}
