//! Inside the doconsider transformation: visualize the wavefront structure
//! of a triangular system, how reordering changes the claim sequence, and
//! the engine *executing* the level structure directly — the wavefront
//! variant, with zero busy-wait polls.
//!
//! Prints the level histogram of a small ILU(0) factor, the natural vs.
//! doconsider claim orders, the simulated 16-processor schedules of both
//! (showing where the paper's Table 1 gap comes from), and then runs a
//! deep 7-point structure through the engine, asserting that the cost
//! model selects the wavefront variant on its own and that the run
//! reports `wait_polls == 0`.
//!
//! Run: `cargo run --release --example wavefront`
//!
//! With a store path argument the engine warm-starts from (and saves to)
//! that plan store, so a second run's first solve is `plan:cached` — the
//! CI smoke that a wavefront plan survives a restart through the v2
//! persistence format:
//! `cargo run --release --example wavefront -- /tmp/wavefront.plans`

use preprocessed_doacross::core::seq::run_sequential;
use preprocessed_doacross::core::PlanProvenance;
use preprocessed_doacross::doconsider::{level_histogram, DependenceDag, LevelAssignment};
use preprocessed_doacross::plan::PlanVariant;
use preprocessed_doacross::sim::Machine;
use preprocessed_doacross::sparse::{
    ilu0, stencil::five_point, stencil::seven_point, TriangularMatrix,
};
use preprocessed_doacross::trisolve::{SolvePlan, TriSolveLoop};
use preprocessed_doacross::Engine;

fn main() {
    // Small enough that the level map fits a terminal, large enough that
    // the simulated schedules show the reordering effect.
    let (nx, ny) = (16usize, 12usize);
    let a = five_point(nx, ny, 2026);
    let l = TriangularMatrix::from_strict_lower(&ilu0(&a).l);
    println!(
        "ILU(0) L factor of a {nx}x{ny} five-point operator: {} rows, {} deps\n",
        l.n(),
        l.nnz()
    );

    let dag = DependenceDag::from_predecessors(l.n(), |i| l.row_cols(i).iter().copied());
    let levels = LevelAssignment::compute(&dag);
    let hist = level_histogram(&levels);
    println!(
        "wavefront levels (critical path = {}):",
        levels.critical_path()
    );
    for (k, width) in hist.iter().enumerate() {
        println!("  level {:>2}: {}", k + 1, "#".repeat(*width));
    }

    println!("\nlevel of each grid row (rows = grid y, columns = grid x):");
    for y in 0..ny {
        let row: Vec<String> = (0..nx)
            .map(|x| format!("{:>3}", levels.level(y * nx + x)))
            .collect();
        println!("  {}", row.join(""));
    }
    println!("  (each point's level = 1 + max(level of W and S neighbors) — diagonal wavefronts)");

    let plan = SolvePlan::for_matrix(&l);
    println!("\nnatural claim order : 0 1 2 3 ... (row-major; consecutive claims are dependent)");
    let shown = 16.min(plan.order.len());
    let head: Vec<String> = plan.order[..shown].iter().map(|i| i.to_string()).collect();
    println!(
        "doconsider order    : {} ... (wavefront-major; consecutive claims independent)",
        head.join(" ")
    );

    // What the 16-processor machine does with each order.
    let rhs = vec![1.0; l.n()];
    let loop_ = TriSolveLoop::new(&l, &rhs);
    let machine = Machine::multimax();
    let opts = preprocessed_doacross::sim::SimOptions {
        include_inspector: false,
        light_post: true,
        chunk: 1,
    };
    let natural = machine.simulate_doacross(&loop_, None, opts);
    let reordered = machine.simulate_doacross(&loop_, Some(&plan.order), opts);
    println!("\nsimulated Multimax/320 (16 processors):");
    println!("  natural    : {natural}");
    println!("  doconsider : {reordered}");
    println!(
        "\nreordering removed {} of {} stalls and cut T_par by {:.1}%.",
        natural.stalls - reordered.stalls,
        natural.stalls,
        100.0 * (1.0 - reordered.t_par / natural.t_par)
    );

    // What the engine's cost model concludes about the same structure on
    // the host: the doconsider order is one of the candidates it prices.
    let engine = Engine::builder().build();
    let prepared = engine.prepare(&loop_).expect("plannable");
    let costs = prepared.plan().costs();
    println!(
        "\nengine plan for this structure ({} workers): {}",
        engine.threads(),
        prepared.variant()
    );
    println!(
        "  priced candidates: sequential {:.0}, doacross {:?}, reordered {:?}, wavefront {:?}",
        costs.sequential,
        costs.doacross.map(|c| c.round()),
        costs.reordered.map(|c| c.round()),
        costs.wavefront.map(|c| c.round()),
    );

    // ------------------------------------------------------------------
    // Executing the level structure: the wavefront variant. A deep 7-point
    // ILU(0) factor has many true dependencies but few levels relative to
    // its size, so at a multicore worker count the cost model converts the
    // doacross into barrier-separated level doalls on its own.
    let store = std::env::args().nth(1);
    let a3d = seven_point(20, 20, 20, 7);
    let l3d = TriangularMatrix::from_strict_lower(&ilu0(&a3d).l);
    let rhs3d: Vec<f64> = (0..l3d.n()).map(|i| 1.0 + (i % 11) as f64 * 0.25).collect();
    let deep = TriSolveLoop::new(&l3d, &rhs3d);

    let mut builder = Engine::builder().workers(4);
    if let Some(path) = &store {
        builder = builder.warm_start(path);
    }
    let engine = builder.try_build().expect("store unreadable or corrupt");

    let prepared = engine.prepare(&deep).expect("plannable");
    assert_eq!(
        prepared.variant(),
        PlanVariant::Wavefront,
        "cost model must pick the wavefront on its own: {:?}",
        prepared.plan().costs()
    );
    let schedule = prepared.plan().level_schedule().expect("carries levels");

    let mut y = vec![0.0; l3d.n()];
    let stats = prepared.execute(&deep, &mut y).expect("valid system");
    let mut oracle = vec![0.0; l3d.n()];
    run_sequential(&deep, &mut oracle);
    assert_eq!(y, oracle, "bit-identical to the sequential solve");
    assert_eq!(stats.wait_polls, 0, "no ready-flag polling, ever");
    assert_eq!(stats.stalls, 0);
    assert!(matches!(
        stats.provenance,
        PlanProvenance::PlanCold | PlanProvenance::PlanCached
    ));

    println!(
        "\nwavefront execution of a 20x20x20 seven-point L factor ({} rows):",
        l3d.n()
    );
    println!(
        "  variant {} with {} levels (max width {}), preprocessing {}",
        prepared.variant(),
        schedule.level_count(),
        schedule.max_width(),
        stats.provenance,
    );
    println!(
        "  {} true dependencies resolved with {} wait polls in {:?}",
        stats.deps.true_deps, stats.wait_polls, stats.total,
    );

    if let Some(path) = &store {
        let saved = engine.save_plans(path).expect("store writable");
        println!("  saved {saved} plan(s) to {path} (run again for a warm start)");
    }
}
