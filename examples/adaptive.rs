//! Adaptive planning end to end: seed the engine with a deliberately
//! mispriced cost model, watch the feedback loop notice and fix it.
//!
//! The mispriced model prices busy-wait polls absurdly high and barriers
//! nearly free, so static selection picks the wavefront for a Table 1
//! triangular structure. The adaptive engine records every solve,
//! notices the observed cost diverging from the prediction, probes the
//! sequential baseline, refines the model from its own measurements, and
//! promotes the measured-cheaper variant — swapping the cached plan with
//! a generation bump, so handles prepared before the promotion fail
//! typed instead of running the superseded plan. Every solve before,
//! during, and after adaptation is asserted bit-identical to the
//! sequential oracle: adaptation is a pure performance decision.
//!
//! Run: `cargo run --release --example adaptive`

use preprocessed_doacross::core::seq::run_sequential;
use preprocessed_doacross::engine::{AdaptiveConfig, EngineError};
use preprocessed_doacross::plan::Planner;
use preprocessed_doacross::sim::CostModel;
use preprocessed_doacross::sparse::{Problem, ProblemKind};
use preprocessed_doacross::trisolve::TriSolveLoop;
use preprocessed_doacross::Engine;

fn main() {
    let mispriced = CostModel {
        wait_poll: 500.0,
        barrier: 0.001,
        post_per_iter: 0.01,
        region_dispatch: 1.0,
        ..CostModel::multimax()
    };
    let engine = Engine::builder()
        .workers(2)
        .planner(Planner::with_costs(mispriced))
        .adaptive_config(AdaptiveConfig {
            min_samples: 4,
            eval_interval: 5,
            divergence: 1.3,
            hysteresis: 1.05,
            max_trials: 3,
            confidence: 4,
        })
        .build();
    assert!(engine.is_adaptive());

    let sys = Problem::build(ProblemKind::FivePt).triangular_system();
    let loop_ = TriSolveLoop::new(&sys.l, &sys.rhs);
    let mut oracle = vec![0.0; sys.n()];
    run_sequential(&loop_, &mut oracle);
    assert_eq!(oracle, sys.l.forward_solve(&sys.rhs));

    let before = engine.prepare(&loop_).expect("plannable");
    println!(
        "mispriced static pick for {} ({} rows): {}",
        ProblemKind::FivePt.name(),
        sys.n(),
        before.variant()
    );

    const SOLVES: usize = 30;
    let mut last_samples = 0;
    for round in 1..=SOLVES {
        let mut y = vec![0.0; sys.n()];
        let stats = engine.run(&loop_, &mut y).expect("solvable");
        assert_eq!(y, oracle, "round {round}: bit-identical to the oracle");
        let samples = engine.telemetry_totals().expect("adaptive").samples;
        assert!(samples > last_samples, "telemetry grows every solve");
        last_samples = samples;
        if round == 1 || round == SOLVES {
            println!(
                "  solve {round:>2}: {:?} total, provenance {}, {} telemetry samples",
                stats.total, stats.provenance, samples
            );
        }
    }

    let stats = engine.adaptive_stats().expect("adaptive");
    let after = engine.prepare(&loop_).expect("plannable");
    println!(
        "after {SOLVES} solves: serving {}, {} repricings, {} baseline probes, \
         {} trials, {} promoted, {} demoted",
        after.variant(),
        stats.repricings,
        stats.baseline_probes,
        stats.trials,
        stats.promotions,
        stats.demotions
    );

    if stats.promotions > 0 {
        // The promotion retired the pre-adaptation handle: generation
        // bumped, stale executes fail typed, and the promoted plan still
        // computes the oracle bit for bit.
        assert!(before.is_stale(), "old handles observe the generation bump");
        let mut y = vec![0.0; sys.n()];
        match before.execute(&loop_, &mut y).unwrap_err() {
            EngineError::StalePlan { .. } => {}
            other => panic!("stale handle must fail typed, got {other}"),
        }
        let mut y = vec![0.0; sys.n()];
        after.execute(&loop_, &mut y).expect("promoted plan runs");
        assert_eq!(y, oracle, "promotion kept results bit-identical");
        println!(
            "promotion verified: {} -> {} (stale handles fail typed, results bit-identical)",
            before.variant(),
            after.variant()
        );
    } else {
        println!("no promotion fired on this host (prediction within the divergence band)");
    }
}
