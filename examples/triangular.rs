//! Sparse triangular solve (the paper's §3.2 application): generate a
//! Table 1 problem, ILU(0)-factor it, and solve with all four solvers —
//! sequential, preprocessed doacross, doconsider-rearranged doacross, and
//! the level-scheduled baseline — verifying they agree bit for bit.
//!
//! Run: `cargo run --release --example triangular [spe2|spe5|5pt|7pt|9pt]`
//! (default: 5pt)

use preprocessed_doacross::par::ThreadPool;
use preprocessed_doacross::sparse::{Problem, ProblemKind};
use preprocessed_doacross::trisolve::{
    seq::solve_sequential, verify::assert_solves, DoacrossSolver, LevelScheduledSolver,
    ReorderedSolver,
};

fn main() {
    let kind = match std::env::args().nth(1).as_deref() {
        Some("spe2") => ProblemKind::Spe2,
        Some("spe5") => ProblemKind::Spe5,
        Some("7pt") => ProblemKind::SevenPt,
        Some("9pt") => ProblemKind::NinePt,
        _ => ProblemKind::FivePt,
    };

    println!(
        "building {} (as specified in the paper's appendix)...",
        kind.name()
    );
    let problem = Problem::build(kind);
    let sys = problem.triangular_system();
    println!(
        "  A: {} equations; L factor: {} strictly-lower nonzeros",
        sys.n(),
        sys.l.nnz()
    );

    let workers = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(2);
    let pool = ThreadPool::new(workers);

    // 1. Sequential (Figure 7 verbatim).
    let y_seq = solve_sequential(&sys.l, &sys.rhs);
    assert_solves(&sys.l, &y_seq, &sys.rhs, 1e-10);

    // 2. Preprocessed doacross, natural row order.
    let mut plain = DoacrossSolver::new(sys.n());
    let (y_plain, stats_plain) = plain.solve(&pool, &sys.l, &sys.rhs).expect("valid");
    assert_eq!(y_plain, y_seq, "doacross == sequential, bitwise");
    println!("\npreprocessed doacross ({workers} workers): {stats_plain}");

    // 3. Doconsider-rearranged doacross.
    let mut reordered = ReorderedSolver::new(sys.n());
    let plan = reordered.prepare(&sys.l);
    println!(
        "\ndoconsider plan: {} wavefronts (critical path), avg parallelism {:.1}, planned in {:?}",
        plan.critical_path(),
        plan.levels.average_parallelism(),
        plan.planning_time
    );
    let (y_re, stats_re) = reordered.solve(&pool, &sys.l, &sys.rhs).expect("valid");
    assert_eq!(y_re, y_seq, "rearranged == sequential, bitwise");
    println!("rearranged doacross:  {stats_re}");
    println!(
        "stall reduction: {} -> {} ({}x)",
        stats_plain.stalls,
        stats_re.stalls,
        if stats_re.stalls > 0 {
            stats_plain.stalls / stats_re.stalls.max(1)
        } else {
            stats_plain.stalls
        }
    );

    // 4. Level-scheduled baseline.
    let mut level = LevelScheduledSolver::new();
    let (y_lvl, lvl_stats) = level.solve(&pool, &sys.l, &sys.rhs).expect("valid");
    assert_eq!(y_lvl, y_seq, "level-scheduled == sequential, bitwise");
    println!(
        "\nlevel-scheduled baseline: {} levels in {:?}",
        lvl_stats.levels, lvl_stats.solve_time
    );

    // The manufactured solution lets us check accuracy end to end.
    let max_err = y_seq
        .iter()
        .zip(&sys.solution)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("\nmax |y - manufactured solution| = {max_err:.2e}");
    println!("all four solvers agree bit for bit.");
}
