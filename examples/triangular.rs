//! Sparse triangular solve (the paper's §3.2 application): generate a
//! Table 1 problem, ILU(0)-factor it, and solve with all the solvers the
//! evaluation compares — sequential, preprocessed doacross,
//! doconsider-rearranged doacross, the level-scheduled baseline, and the
//! engine-cached solver — verifying they agree bit for bit.
//!
//! Run: `cargo run --release --example triangular [spe2|spe5|5pt|7pt|9pt]`
//! (default: 5pt)

use preprocessed_doacross::core::PlanProvenance;
use preprocessed_doacross::sparse::{Problem, ProblemKind};
use preprocessed_doacross::trisolve::{
    seq::solve_sequential, verify::assert_solves, DoacrossSolver, EngineSolver,
    LevelScheduledSolver, ReorderedSolver,
};
use preprocessed_doacross::Engine;

fn main() {
    let kind = match std::env::args().nth(1).as_deref() {
        Some("spe2") => ProblemKind::Spe2,
        Some("spe5") => ProblemKind::Spe5,
        Some("7pt") => ProblemKind::SevenPt,
        Some("9pt") => ProblemKind::NinePt,
        _ => ProblemKind::FivePt,
    };

    println!(
        "building {} (as specified in the paper's appendix)...",
        kind.name()
    );
    let problem = Problem::build(kind);
    let sys = problem.triangular_system();
    println!(
        "  A: {} equations; L factor: {} strictly-lower nonzeros",
        sys.n(),
        sys.l.nnz()
    );

    // One engine: its pool serves every solver below, and its plan cache
    // serves the engine-cached solves.
    let engine = Engine::builder().build();
    let workers = engine.threads();
    let pool = engine.pool();

    // 1. Sequential (Figure 7 verbatim).
    let y_seq = solve_sequential(&sys.l, &sys.rhs);
    assert_solves(&sys.l, &y_seq, &sys.rhs, 1e-10);

    // 2. Preprocessed doacross, natural row order.
    let mut plain = DoacrossSolver::new(sys.n());
    let (y_plain, stats_plain) = plain.solve(pool, &sys.l, &sys.rhs).expect("valid");
    assert_eq!(y_plain, y_seq, "doacross == sequential, bitwise");
    println!("\npreprocessed doacross ({workers} workers): {stats_plain}");

    // 3. Doconsider-rearranged doacross.
    let mut reordered = ReorderedSolver::new(sys.n());
    let plan = reordered.prepare(&sys.l);
    println!(
        "\ndoconsider plan: {} wavefronts (critical path), avg parallelism {:.1}, planned in {:?}",
        plan.critical_path(),
        plan.levels.average_parallelism(),
        plan.planning_time
    );
    let (y_re, stats_re) = reordered.solve(pool, &sys.l, &sys.rhs).expect("valid");
    assert_eq!(y_re, y_seq, "rearranged == sequential, bitwise");
    println!("rearranged doacross:  {stats_re}");
    println!(
        "stall reduction: {} -> {} ({}x)",
        stats_plain.stalls,
        stats_re.stalls,
        if stats_re.stalls > 0 {
            stats_plain.stalls / stats_re.stalls.max(1)
        } else {
            stats_plain.stalls
        }
    );

    // 4. Level-scheduled baseline.
    let mut level = LevelScheduledSolver::new();
    let (y_lvl, lvl_stats) = level.solve(pool, &sys.l, &sys.rhs).expect("valid");
    assert_eq!(y_lvl, y_seq, "level-scheduled == sequential, bitwise");
    println!(
        "\nlevel-scheduled baseline: {} levels in {:?}",
        lvl_stats.levels, lvl_stats.solve_time
    );

    // 5. Engine-cached: the cost model picks the variant, the plan is
    // cached, and the second solve skips preprocessing entirely.
    let solver = EngineSolver::new(engine.clone());
    let (y_eng, cold) = solver.solve(&sys.l, &sys.rhs).expect("valid");
    assert_eq!(y_eng, y_seq, "engine == sequential, bitwise");
    let (_, hot) = solver.solve(&sys.l, &sys.rhs).expect("valid");
    assert_eq!(cold.provenance, PlanProvenance::PlanCold);
    assert_eq!(hot.provenance, PlanProvenance::PlanCached);
    println!(
        "\nengine-cached solver: cold {:?} -> cached {:?} (inspector {:?})",
        cold.total, hot.total, hot.inspector
    );

    // The manufactured solution lets us check accuracy end to end.
    let max_err = y_seq
        .iter()
        .zip(&sys.solution)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("\nmax |y - manufactured solution| = {max_err:.2e}");
    println!("all solvers agree bit for bit.");
}
