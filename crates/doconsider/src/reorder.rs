//! The doconsider permutation: level-sorted iteration claim order.
//!
//! Sorting iterations by wavefront level (stable within a level) puts
//! mutually independent iterations next to each other in the claim
//! sequence. Under self-scheduling, consecutive claims go to different
//! processors, so processors stop claiming chains of directly dependent
//! iterations — which is precisely how the plain preprocessed doacross
//! loses time on the Table 1 solves (efficiencies 0.32–0.46), and why the
//! rearranged version recovers it (0.63–0.75).

use crate::dag::DependenceDag;
use crate::levels::LevelAssignment;
use doacross_core::AccessPattern;

/// Computes the doconsider claim order for `pattern`: iterations sorted by
/// dependence level, stable within a level. The result is a permutation of
/// `0..n` and a topological order of the true dependencies, suitable for
/// `Doacross::run_with_order`.
pub fn doconsider_order<P: AccessPattern + ?Sized>(pattern: &P) -> Vec<usize> {
    let dag = DependenceDag::build(pattern);
    let levels = LevelAssignment::compute(&dag);
    order_from_levels(&levels)
}

/// The level-sorted permutation for a precomputed [`LevelAssignment`]
/// (counting sort by level — O(n + levels), stable).
pub fn order_from_levels(levels: &LevelAssignment) -> Vec<usize> {
    let n = levels.len();
    let nlevels = levels.critical_path();
    let mut counts = vec![0usize; nlevels + 1];
    for &l in levels.levels() {
        counts[l] += 1;
    }
    let mut starts = vec![0usize; nlevels + 1];
    for l in 1..=nlevels {
        starts[l] = starts[l - 1] + counts[l - 1];
    }
    let mut order = vec![0usize; n];
    for (i, &l) in levels.levels().iter().enumerate() {
        order[starts[l]] = i;
        starts[l] += 1;
    }
    order
}

/// Inverts a permutation: `inv[order[k]] == k`.
///
/// # Panics
/// Panics if `order` is not a permutation of `0..order.len()`.
pub fn invert_permutation(order: &[usize]) -> Vec<usize> {
    let n = order.len();
    let mut inv = vec![usize::MAX; n];
    for (k, &i) in order.iter().enumerate() {
        assert!(i < n && inv[i] == usize::MAX, "not a permutation");
        inv[i] = k;
    }
    inv
}

/// Whether `order` claims every true-dependence writer before its readers.
pub fn is_topological_order(dag: &DependenceDag, order: &[usize]) -> bool {
    if order.len() != dag.len() {
        return false;
    }
    let pos = invert_permutation(order);
    (0..dag.len()).all(|i| dag.predecessors(i).iter().all(|&p| pos[p] < pos[i]))
}

/// The smallest claim-distance between any dependent pair under `order`:
/// `min over edges (w → i) of pos[i] − pos[w]`. Returns `None` for a
/// dependence-free loop.
///
/// This is the quantity the doconsider transformation maximizes: under
/// self-scheduling on `p` processors, a dependent pair closer than ≈`p`
/// claim slots executes concurrently and the reader stalls. The natural
/// order of a distance-1 chain has gap 1 (maximal stalling); a level order
/// pushes every gap to at least the width of the predecessor's level.
pub fn min_dependence_gap(dag: &DependenceDag, order: &[usize]) -> Option<usize> {
    assert_eq!(order.len(), dag.len(), "order must cover the loop");
    let pos = invert_permutation(order);
    let mut min_gap: Option<usize> = None;
    for i in 0..dag.len() {
        for &w in dag.predecessors(i) {
            debug_assert!(pos[w] < pos[i], "order must be topological");
            let gap = pos[i] - pos[w];
            min_gap = Some(min_gap.map_or(gap, |g| g.min(gap)));
        }
    }
    min_gap
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_core::IndirectLoop;

    fn chain(n: usize) -> IndirectLoop {
        let a: Vec<usize> = (1..=n).collect();
        let rhs: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        IndirectLoop::new(n + 1, a, rhs, vec![vec![1.0]; n]).unwrap()
    }

    #[test]
    fn chain_order_is_identity() {
        let order = doconsider_order(&chain(6));
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn independent_order_is_identity_by_stability() {
        let n = 5;
        let a: Vec<usize> = (0..n).collect();
        let l = IndirectLoop::new(n, a, vec![vec![]; n], vec![vec![]; n]).unwrap();
        assert_eq!(doconsider_order(&l), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn interleaved_chains_are_grouped_by_level() {
        // Two independent chains interleaved in iteration order:
        //   chain A: 0 -> 2 -> 4 ; chain B: 1 -> 3 -> 5
        // Levels: [1,1,2,2,3,3] -> order groups wavefronts together.
        let a = vec![2, 3, 4, 5, 6, 7];
        let rhs = vec![vec![], vec![], vec![2], vec![3], vec![4], vec![5]];
        let coeff = vec![vec![], vec![], vec![1.0], vec![1.0], vec![1.0], vec![1.0]];
        let l = IndirectLoop::new(8, a, rhs, coeff).unwrap();
        let order = doconsider_order(&l);
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
        // Same loop but with the chains' dependence distances = 1 (claim
        // order matters): A: 0 -> 1, B: 2 -> 3 becomes levels [1,2,1,2].
        let a2 = vec![4, 5, 6, 7];
        let rhs2 = vec![vec![], vec![4], vec![], vec![6]];
        let coeff2 = vec![vec![], vec![1.0], vec![], vec![1.0]];
        let l2 = IndirectLoop::new(8, a2, rhs2, coeff2).unwrap();
        let order2 = doconsider_order(&l2);
        assert_eq!(order2, vec![0, 2, 1, 3], "level-1 first, then level-2");
    }

    #[test]
    fn order_is_always_topological() {
        let l = chain(20);
        let dag = crate::dag::DependenceDag::build(&l);
        let order = doconsider_order(&l);
        assert!(is_topological_order(&dag, &order));
        // Reversed chain order is not.
        let rev: Vec<usize> = (0..20).rev().collect();
        assert!(!is_topological_order(&dag, &rev));
    }

    #[test]
    fn invert_round_trips() {
        let order = vec![3usize, 1, 0, 2];
        let inv = invert_permutation(&order);
        assert_eq!(inv, vec![2, 1, 3, 0]);
        for (k, &i) in order.iter().enumerate() {
            assert_eq!(inv[i], k);
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn invert_rejects_duplicates() {
        let _ = invert_permutation(&[0, 0, 2]);
    }

    #[test]
    fn wrong_length_is_not_topological() {
        let dag = crate::dag::DependenceDag::from_predecessors(3, |_| Vec::<usize>::new());
        assert!(!is_topological_order(&dag, &[0, 1]));
    }

    #[test]
    fn dependence_gap_of_chain_is_one_either_way() {
        let dag = crate::dag::DependenceDag::from_predecessors(5, |i| {
            if i > 0 {
                vec![i - 1]
            } else {
                vec![]
            }
        });
        let natural: Vec<usize> = (0..5).collect();
        assert_eq!(min_dependence_gap(&dag, &natural), Some(1));
    }

    #[test]
    fn dependence_gap_none_for_doall() {
        let dag = crate::dag::DependenceDag::from_predecessors(4, |_| Vec::<usize>::new());
        assert_eq!(min_dependence_gap(&dag, &[0, 1, 2, 3]), None);
    }

    #[test]
    fn doconsider_widens_the_gap_on_interleaved_chains() {
        // Iterations 0..8 in two chains with distance-1 deps in natural
        // order: A: 0->1->2->3, B: 4->5->6->7 via lhs/rhs structure.
        // Natural order gap = 1. Level order interleaves the chains:
        // levels [1,2,3,4,1,2,3,4] -> order [0,4,1,5,2,6,3,7] -> gap = 2.
        let a = vec![8, 9, 10, 11, 12, 13, 14, 15];
        let rhs = vec![
            vec![],
            vec![8],
            vec![9],
            vec![10],
            vec![],
            vec![12],
            vec![13],
            vec![14],
        ];
        let coeff: Vec<Vec<f64>> = rhs.iter().map(|r| vec![1.0; r.len()]).collect();
        let l = IndirectLoop::new(16, a, rhs, coeff).unwrap();
        let dag = crate::dag::DependenceDag::build(&l);
        let natural: Vec<usize> = (0..8).collect();
        let level = doconsider_order(&l);
        assert_eq!(level, vec![0, 4, 1, 5, 2, 6, 3, 7]);
        assert_eq!(min_dependence_gap(&dag, &natural), Some(1));
        assert_eq!(min_dependence_gap(&dag, &level), Some(2));
    }
}
