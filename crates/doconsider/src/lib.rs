//! # doacross-doconsider — iteration reordering for doacross loops
//!
//! Implements the *doconsider* transformation the paper applies in §3.2
//! (their reference \[4\]: Saltz, Mirchandaney & Crowley, "The doconsider
//! loop", ICS 1989): reorder a doacross loop's iterations so that
//! dependent iterations are claimed far apart, which "leaves the
//! inter-iteration dependencies unchanged but reduces the effects of these
//! dependencies on performance". Table 1's "Preprocessed Doacross
//! Iterations Rearranged" column is the preprocessed doacross executed in
//! a doconsider order.
//!
//! The pipeline:
//!
//! 1. [`dag::DependenceDag`] — the runtime true-dependence DAG extracted
//!    from an [`AccessPattern`] (the same information the inspector
//!    gathers, in graph form).
//! 2. [`levels`] — wavefront assignment: `level(i) = 1 + max(level of
//!    predecessors)`. All iterations of one level are mutually
//!    independent; the number of levels is the dependence-critical path.
//! 3. [`reorder::doconsider_order`] — the level-sorted permutation (stable
//!    within a level to preserve locality), a valid topological claim
//!    order for `doacross_core::Doacross::run_with_order`.
//!
//! Like the paper's inspector, all of this is execution-time preprocessing:
//! it is computed from index arrays that only exist at run time, and its
//! cost is part of the method's overhead (the benches report it).
//!
//! [`AccessPattern`]: doacross_core::AccessPattern

// Audit posture: this crate needs no unsafe code; keep it that way.
#![forbid(unsafe_code)]
pub mod dag;
pub mod levels;
pub mod reorder;

pub use dag::DependenceDag;
pub use levels::{level_histogram, LevelAssignment};
pub use reorder::{doconsider_order, invert_permutation, is_topological_order, min_dependence_gap};
