//! Wavefront (level) assignment over the true-dependence DAG.
//!
//! `level(i) = 1 + max(level(p) for p in predecessors(i))`, with sources at
//! level 1. Iterations sharing a level are mutually independent, so the
//! levels are the solve's *wavefronts*; the level count is the dependence
//! critical path, and `n / levels` is the average exploitable parallelism —
//! the quantity that decides how well Table 1's triangular solves can do on
//! 16 processors.

use crate::dag::DependenceDag;

/// The level (wavefront) of every iteration, plus summary statistics.
#[derive(Debug, Clone)]
pub struct LevelAssignment {
    /// `level[i] ∈ 1..=nlevels`.
    levels: Vec<usize>,
    nlevels: usize,
}

impl LevelAssignment {
    /// Computes levels with one forward sweep (predecessors always precede
    /// their dependents in iteration order, so a single in-order pass
    /// suffices — O(nodes + edges)).
    pub fn compute(dag: &DependenceDag) -> Self {
        let n = dag.len();
        let mut levels = vec![0usize; n];
        let mut nlevels = 0usize;
        for i in 0..n {
            let mut lvl = 1usize;
            for &p in dag.predecessors(i) {
                lvl = lvl.max(levels[p] + 1);
            }
            levels[i] = lvl;
            nlevels = nlevels.max(lvl);
        }
        Self { levels, nlevels }
    }

    /// Number of iterations.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the assignment is empty.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The level of iteration `i` (1-based).
    #[inline]
    pub fn level(&self, i: usize) -> usize {
        self.levels[i]
    }

    /// All levels, indexed by iteration.
    pub fn levels(&self) -> &[usize] {
        &self.levels
    }

    /// Number of distinct levels — the dependence critical path length.
    pub fn critical_path(&self) -> usize {
        self.nlevels
    }

    /// Average wavefront width `n / nlevels` (0 for an empty loop): the
    /// average parallelism available to a machine with enough processors.
    pub fn average_parallelism(&self) -> f64 {
        if self.nlevels == 0 {
            0.0
        } else {
            self.levels.len() as f64 / self.nlevels as f64
        }
    }
}

/// Iterations per level: `histogram[l - 1]` is the width of level `l`.
pub fn level_histogram(assignment: &LevelAssignment) -> Vec<usize> {
    let mut hist = vec![0usize; assignment.critical_path()];
    for &l in assignment.levels() {
        hist[l - 1] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DependenceDag;

    #[test]
    fn chain_levels_are_positions() {
        let dag = DependenceDag::from_predecessors(5, |i| if i > 0 { vec![i - 1] } else { vec![] });
        let lv = LevelAssignment::compute(&dag);
        assert_eq!(lv.levels(), &[1, 2, 3, 4, 5]);
        assert_eq!(lv.critical_path(), 5);
        assert_eq!(lv.average_parallelism(), 1.0);
        assert_eq!(level_histogram(&lv), vec![1; 5]);
    }

    #[test]
    fn independent_iterations_share_level_one() {
        let dag = DependenceDag::from_predecessors(8, |_| Vec::<usize>::new());
        let lv = LevelAssignment::compute(&dag);
        assert!(lv.levels().iter().all(|&l| l == 1));
        assert_eq!(lv.critical_path(), 1);
        assert_eq!(lv.average_parallelism(), 8.0);
        assert_eq!(level_histogram(&lv), vec![8]);
    }

    #[test]
    fn diamond_dag_levels() {
        //      0
        //    /   \
        //   1     2
        //    \   /
        //      3
        let dag = DependenceDag::from_predecessors(4, |i| match i {
            1 | 2 => vec![0],
            3 => vec![1, 2],
            _ => vec![],
        });
        let lv = LevelAssignment::compute(&dag);
        assert_eq!(lv.levels(), &[1, 2, 2, 3]);
        assert_eq!(level_histogram(&lv), vec![1, 2, 1]);
        assert_eq!(lv.critical_path(), 3);
    }

    #[test]
    fn level_is_longest_path_not_shortest() {
        // 3 depends on 0 (short path) and on 2 (via 0->1->2 long path).
        let dag = DependenceDag::from_predecessors(4, |i| match i {
            1 => vec![0],
            2 => vec![1],
            3 => vec![0, 2],
            _ => vec![],
        });
        let lv = LevelAssignment::compute(&dag);
        assert_eq!(lv.level(3), 4, "longest chain 0->1->2->3");
    }

    #[test]
    fn empty_assignment() {
        let dag = DependenceDag::from_predecessors(0, |_| Vec::<usize>::new());
        let lv = LevelAssignment::compute(&dag);
        assert!(lv.is_empty());
        assert_eq!(lv.critical_path(), 0);
        assert_eq!(lv.average_parallelism(), 0.0);
        assert!(level_histogram(&lv).is_empty());
    }
}
