//! The runtime true-dependence DAG of a doacross loop.
//!
//! Node `i` is iteration `i`; an edge `w → i` (with `w < i`) exists when
//! iteration `i` reads an element that iteration `w` writes. These are the
//! executor's `check < 0` references — exactly the references that can make
//! iteration `i` busy-wait. Antidependencies (`check > 0`) never cause
//! waiting in the preprocessed doacross (the old value is read from `y`),
//! so they impose no ordering constraint on the claim order and are not
//! edges here.

use doacross_core::{AccessPattern, MAXINT};

/// A compact CSR-style predecessor list: for each iteration, the earlier
/// iterations it truly depends on (deduplicated, ascending).
#[derive(Debug, Clone)]
pub struct DependenceDag {
    offsets: Vec<usize>,
    preds: Vec<usize>,
}

impl DependenceDag {
    /// Builds the DAG for `pattern` by replaying the inspector (a writer
    /// map over the data space) and classifying every reference — O(data
    /// space + total references).
    pub fn build<P: AccessPattern + ?Sized>(pattern: &P) -> Self {
        let n = pattern.iterations();
        // Writer map, as the inspector would fill it.
        let mut writer = vec![MAXINT; pattern.data_len()];
        for i in 0..n {
            writer[pattern.lhs(i)] = i as i64;
        }
        let mut offsets = vec![0usize; n + 1];
        let mut preds: Vec<usize> = Vec::new();
        let mut scratch: Vec<usize> = Vec::new();
        for i in 0..n {
            scratch.clear();
            for j in 0..pattern.terms(i) {
                let w = writer[pattern.term_element(i, j)];
                if w != MAXINT && (w as usize) < i {
                    scratch.push(w as usize);
                }
            }
            scratch.sort_unstable();
            scratch.dedup();
            preds.extend_from_slice(&scratch);
            offsets[i + 1] = preds.len();
        }
        Self { offsets, preds }
    }

    /// Builds the DAG directly from predecessor lists (used by solvers that
    /// already have the structure, e.g. a triangular matrix's rows).
    ///
    /// Each `preds_of(i)` entry must be `< i`.
    pub fn from_predecessors<F, I>(n: usize, preds_of: F) -> Self
    where
        F: Fn(usize) -> I,
        I: IntoIterator<Item = usize>,
    {
        let mut offsets = vec![0usize; n + 1];
        let mut preds: Vec<usize> = Vec::new();
        let mut scratch: Vec<usize> = Vec::new();
        for i in 0..n {
            scratch.clear();
            for p in preds_of(i) {
                assert!(p < i, "predecessor {p} of iteration {i} is not earlier");
                scratch.push(p);
            }
            scratch.sort_unstable();
            scratch.dedup();
            preds.extend_from_slice(&scratch);
            offsets[i + 1] = preds.len();
        }
        Self { offsets, preds }
    }

    /// Number of iterations (nodes).
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the loop has no iterations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of (deduplicated) true-dependence edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.preds.len()
    }

    /// The true-dependence predecessors of iteration `i` (ascending).
    #[inline]
    pub fn predecessors(&self, i: usize) -> &[usize] {
        &self.preds[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Iterations with no predecessors — claimable immediately.
    pub fn sources(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len()).filter(|&i| self.predecessors(i).is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_core::IndirectLoop;

    fn chain(n: usize) -> IndirectLoop {
        let a: Vec<usize> = (1..=n).collect();
        let rhs: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        IndirectLoop::new(n + 1, a, rhs, vec![vec![1.0]; n]).unwrap()
    }

    #[test]
    fn chain_produces_path_graph() {
        let dag = DependenceDag::build(&chain(5));
        assert_eq!(dag.len(), 5);
        assert_eq!(dag.edge_count(), 4);
        assert!(dag.predecessors(0).is_empty());
        for i in 1..5 {
            assert_eq!(dag.predecessors(i), &[i - 1]);
        }
        assert_eq!(dag.sources().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn independent_loop_has_no_edges() {
        let n = 10;
        let a: Vec<usize> = (0..n).collect();
        let rhs: Vec<Vec<usize>> = (0..n).map(|_| vec![]).collect();
        let l = IndirectLoop::new(n, a, rhs, vec![vec![]; n]).unwrap();
        let dag = DependenceDag::build(&l);
        assert_eq!(dag.edge_count(), 0);
        assert_eq!(dag.sources().count(), n);
    }

    #[test]
    fn antidependencies_are_not_edges() {
        // Iteration 0 reads the element iteration 1 writes: an
        // antidependency, which never causes waiting.
        let l = IndirectLoop::new(
            2,
            vec![0, 1],
            vec![vec![1], vec![0]],
            vec![vec![1.0], vec![1.0]],
        )
        .unwrap();
        let dag = DependenceDag::build(&l);
        assert!(dag.predecessors(0).is_empty());
        assert_eq!(dag.predecessors(1), &[0], "1 reads 0's output: true dep");
    }

    #[test]
    fn duplicate_references_are_deduplicated() {
        let l = IndirectLoop::new(
            3,
            vec![0, 1, 2],
            vec![vec![], vec![0, 0, 0], vec![0, 1, 0]],
            vec![vec![], vec![1.0; 3], vec![1.0; 3]],
        )
        .unwrap();
        let dag = DependenceDag::build(&l);
        assert_eq!(dag.predecessors(1), &[0]);
        assert_eq!(dag.predecessors(2), &[0, 1]);
        assert_eq!(dag.edge_count(), 3);
    }

    #[test]
    fn from_predecessors_round_trip() {
        let dag = DependenceDag::from_predecessors(4, |i| if i == 3 { vec![0, 1] } else { vec![] });
        assert_eq!(dag.predecessors(3), &[0, 1]);
        assert_eq!(dag.edge_count(), 2);
        assert_eq!(dag.sources().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "not earlier")]
    fn forward_predecessor_rejected() {
        let _ = DependenceDag::from_predecessors(2, |i| if i == 0 { vec![1] } else { vec![] });
    }

    #[test]
    fn empty_dag() {
        let dag = DependenceDag::from_predecessors(0, |_| Vec::<usize>::new());
        assert!(dag.is_empty());
        assert_eq!(dag.edge_count(), 0);
    }
}
