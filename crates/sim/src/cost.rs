//! The simulator's cost model.
//!
//! All costs are in abstract machine cycles (the unit cancels out of every
//! efficiency; only ratios matter). The `multimax` preset is calibrated so
//! that the dependence-free (odd-`L`) Figure 6 plateaus land where the
//! paper reports them: ≈ 0.33 parallel efficiency for `M = 1` and ≈ 0.50
//! for `M = 5` on 16 processors. Those two equations pin the overhead
//! ratios (see the field docs); everything else — the even-`L` curves, the
//! Table 1 bands — follows from the schedule dynamics, not from further
//! tuning.

/// Per-action costs of the simulated machine (abstract cycles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Claiming one iteration from the shared self-scheduling counter
    /// (fetch-add plus cache traffic).
    pub schedule_grab: f64,
    /// Fixed per-iteration executor work: loading `a(i)`, seeding the
    /// accumulator (Figure 5 S2), loop setup.
    pub iteration_setup: f64,
    /// Per-reference dependency check: the `iter` load and the three-way
    /// compare (Figure 5 S3/S6).
    pub check: f64,
    /// Per-reference useful arithmetic in the transformed loop
    /// (`val(j) * y(..)` plus the add and index arithmetic).
    pub term: f64,
    /// One failed poll of a `ready` flag while busy-waiting (S4).
    pub wait_poll: f64,
    /// Publishing the iteration's result (`ynew` store + `ready` release).
    pub publish: f64,
    /// Inspector work per iteration (`iter(a(i)) = i`).
    pub inspect_per_iter: f64,
    /// Postprocessing work per iteration (reset `iter`/`ready`, copy back).
    pub post_per_iter: f64,
    /// Entering/leaving a parallel region (pool dispatch + join), per
    /// region.
    pub region_dispatch: f64,
    /// One crossing of an in-region spin barrier (sense-reversing, all
    /// processors participating) — the per-level price of the wavefront
    /// (level-scheduled) executor. Far cheaper than `region_dispatch`:
    /// spinners stay in user space and never return to the pool's
    /// dispatch path.
    pub barrier: f64,
    /// Sequential loop: fixed per-iteration cost.
    pub seq_iter: f64,
    /// Sequential loop: per-reference cost.
    pub seq_term: f64,
}

impl CostModel {
    /// Calibrated to the paper's Encore Multimax/320 observations.
    ///
    /// With `seq_iter = 2`, `seq_term = 1`, the dependence-free efficiency
    /// is `(seq_iter + M·seq_term) / (overhead_per_iter + M·(term +
    /// check))`. The paper's plateaus give two equations:
    ///
    /// * `M = 1`: `3 / (O + 1.25) = 1/3`  →  `O = 7.75`
    /// * `M = 5`: `7 / (O + 6.25) = 1/2`  →  `O = 7.75`
    ///
    /// (`O` = grab + setup + publish + inspector + postprocessing per
    /// iteration, and `term + check = 1.25`.) The preset distributes `O`
    /// and the per-term 1.25 across actions in proportions typical of the
    /// runtime's instruction mix; the `term`/`publish` split additionally
    /// controls the distance-1 pipeline rate (`term + publish`), which the
    /// Table 1 natural-order solves are sensitive to.
    pub fn multimax() -> Self {
        Self {
            schedule_grab: 1.5,
            iteration_setup: 1.0,
            check: 0.7,
            term: 0.55,
            wait_poll: 0.25,
            publish: 0.25,
            inspect_per_iter: 2.5,
            post_per_iter: 2.5,
            region_dispatch: 50.0,
            // A handful of contended atomic operations per crossing —
            // a few counter grabs' worth of cache traffic.
            barrier: 4.0,
            seq_iter: 2.0,
            seq_term: 1.0,
        }
    }

    /// Total fixed (dependence-independent) doacross overhead per
    /// iteration: everything except per-term work and waiting.
    pub fn overhead_per_iteration(&self) -> f64 {
        self.schedule_grab
            + self.iteration_setup
            + self.publish
            + self.inspect_per_iter
            + self.post_per_iter
    }

    /// Sequential cost of a loop with `n` iterations and `total_terms`
    /// references.
    pub fn sequential_time(&self, n: usize, total_terms: usize) -> f64 {
        self.seq_iter * n as f64 + self.seq_term * total_terms as f64
    }

    /// The closed-form dependence-free efficiency on any processor count
    /// (large-`n` limit): useful as an analytic cross-check of the
    /// simulator.
    pub fn doall_efficiency(&self, terms_per_iter: usize) -> f64 {
        let m = terms_per_iter as f64;
        let seq = self.seq_iter + m * self.seq_term;
        let par = self.overhead_per_iteration() + m * (self.term + self.check);
        seq / par
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::multimax()
    }
}

/// Runtime-measured per-action costs, in the same normalized units as the
/// [`CostModel`] they refine. Produced by `doacross-adapt`'s telemetry
/// layer from real solves; consumed by [`CostModel::refined_from`].
///
/// Every field is optional: a constant is `Some` only once enough
/// independent evidence exists for it (the recorder's confidence
/// threshold), and a `None` leaves the base model's value untouched.
/// `weight` is how far to move from the base toward the observation —
/// the recorder grows it with the sample count, so a freshly-started
/// engine prices like its preset and an engine that has watched thousands
/// of solves prices like its hardware.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ObservedConstants {
    /// Measured cost of one `ready`-flag poll (model units).
    pub wait_poll: Option<f64>,
    /// Measured cost of one in-region spin-barrier crossing (model units).
    pub barrier: Option<f64>,
    /// Measured per-reference executor cost — the observed `term + check`
    /// aggregate (model units). Split across the two fields in the base
    /// model's proportions.
    pub chain_per_term: Option<f64>,
    /// Blend factor in `[0, 1]`: 0 keeps the base model, 1 takes the
    /// observation outright. Values outside the interval are clamped.
    pub weight: f64,
}

impl ObservedConstants {
    /// Whether any constant carries usable evidence.
    pub fn has_evidence(&self) -> bool {
        self.weight > 0.0
            && (self.wait_poll.is_some() || self.barrier.is_some() || self.chain_per_term.is_some())
    }
}

fn lerp(base: f64, observed: Option<f64>, w: f64) -> f64 {
    match observed {
        // Evidence must be physical: a non-finite or non-positive
        // measurement is recorder noise and never displaces the base.
        Some(obs) if obs.is_finite() && obs > 0.0 => base + (obs - base) * w,
        _ => base,
    }
}

impl CostModel {
    /// A copy of `base` with the runtime-observed constants blended in:
    /// `refined = base + (observed − base) · weight` per constant, the
    /// online cost-model refinement behind `doacross-adapt`. Constants
    /// without evidence (`None`, non-finite, or non-positive) keep their
    /// base values, so refinement can only move selection toward what the
    /// machine actually measured — never invent a cost out of noise.
    pub fn refined_from(base: &CostModel, observed: &ObservedConstants) -> CostModel {
        let w = observed.weight.clamp(0.0, 1.0);
        let mut refined = *base;
        refined.wait_poll = lerp(base.wait_poll, observed.wait_poll, w);
        refined.barrier = lerp(base.barrier, observed.barrier, w);
        // The per-reference aggregate is observed as one number (telemetry
        // cannot separate the `iter` load from the multiply); preserve the
        // base's term/check split while matching the measured sum.
        let base_per_term = base.term + base.check;
        let refined_per_term = lerp(base_per_term, observed.chain_per_term, w);
        if base_per_term > 0.0 {
            let scale = refined_per_term / base_per_term;
            refined.term = base.term * scale;
            refined.check = base.check * scale;
        }
        refined
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multimax_calibration_hits_paper_plateaus() {
        let c = CostModel::multimax();
        assert!(
            (c.doall_efficiency(1) - 1.0 / 3.0).abs() < 0.01,
            "M=1 -> 0.33"
        );
        assert!((c.doall_efficiency(5) - 0.5).abs() < 0.01, "M=5 -> 0.50");
    }

    #[test]
    fn overhead_decomposition_sums() {
        let c = CostModel::multimax();
        assert!((c.overhead_per_iteration() - 7.75).abs() < 1e-12);
    }

    #[test]
    fn sequential_time_is_linear() {
        let c = CostModel::multimax();
        assert_eq!(c.sequential_time(10, 50), 2.0 * 10.0 + 1.0 * 50.0);
        assert_eq!(c.sequential_time(0, 0), 0.0);
    }

    #[test]
    fn refined_from_blends_only_evidenced_constants() {
        let base = CostModel::multimax();
        let obs = ObservedConstants {
            wait_poll: Some(2.25),
            barrier: None,
            chain_per_term: Some(2.5),
            weight: 0.5,
        };
        assert!(obs.has_evidence());
        let refined = CostModel::refined_from(&base, &obs);
        assert!((refined.wait_poll - (0.25 + (2.25 - 0.25) * 0.5)).abs() < 1e-12);
        assert_eq!(refined.barrier, base.barrier, "no evidence, no change");
        // term + check moves halfway from 1.25 to 2.5, split preserved.
        let per_term = refined.term + refined.check;
        assert!((per_term - 1.875).abs() < 1e-12, "{per_term}");
        assert!((refined.term / refined.check - base.term / base.check).abs() < 1e-12);
        // Untouched constants survive bit-for-bit.
        assert_eq!(refined.region_dispatch, base.region_dispatch);
        assert_eq!(refined.seq_iter, base.seq_iter);
    }

    #[test]
    fn refined_from_rejects_unphysical_evidence_and_clamps_weight() {
        let base = CostModel::multimax();
        for bad in [f64::NAN, f64::INFINITY, 0.0, -3.0] {
            let refined = CostModel::refined_from(
                &base,
                &ObservedConstants {
                    wait_poll: Some(bad),
                    barrier: Some(bad),
                    chain_per_term: Some(bad),
                    weight: 1.0,
                },
            );
            assert_eq!(refined, base, "evidence {bad} must be ignored");
        }
        // weight > 1 clamps to the observation, never overshoots.
        let refined = CostModel::refined_from(
            &base,
            &ObservedConstants {
                barrier: Some(10.0),
                weight: 7.0,
                ..Default::default()
            },
        );
        assert_eq!(refined.barrier, 10.0);
        // Zero weight is a no-op regardless of evidence.
        let refined = CostModel::refined_from(
            &base,
            &ObservedConstants {
                barrier: Some(10.0),
                weight: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(refined, base);
    }

    #[test]
    fn more_terms_amortize_overhead() {
        let c = CostModel::multimax();
        assert!(c.doall_efficiency(5) > c.doall_efficiency(1));
        assert!(c.doall_efficiency(50) > c.doall_efficiency(5));
        // Asymptote: seq_term / (term + check) = 1 / 1.25 = 0.8.
        assert!(c.doall_efficiency(100_000) < 0.8);
    }
}
