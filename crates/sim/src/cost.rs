//! The simulator's cost model.
//!
//! All costs are in abstract machine cycles (the unit cancels out of every
//! efficiency; only ratios matter). The `multimax` preset is calibrated so
//! that the dependence-free (odd-`L`) Figure 6 plateaus land where the
//! paper reports them: ≈ 0.33 parallel efficiency for `M = 1` and ≈ 0.50
//! for `M = 5` on 16 processors. Those two equations pin the overhead
//! ratios (see the field docs); everything else — the even-`L` curves, the
//! Table 1 bands — follows from the schedule dynamics, not from further
//! tuning.

/// Per-action costs of the simulated machine (abstract cycles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Claiming one iteration from the shared self-scheduling counter
    /// (fetch-add plus cache traffic).
    pub schedule_grab: f64,
    /// Fixed per-iteration executor work: loading `a(i)`, seeding the
    /// accumulator (Figure 5 S2), loop setup.
    pub iteration_setup: f64,
    /// Per-reference dependency check: the `iter` load and the three-way
    /// compare (Figure 5 S3/S6).
    pub check: f64,
    /// Per-reference useful arithmetic in the transformed loop
    /// (`val(j) * y(..)` plus the add and index arithmetic).
    pub term: f64,
    /// One failed poll of a `ready` flag while busy-waiting (S4).
    pub wait_poll: f64,
    /// Publishing the iteration's result (`ynew` store + `ready` release).
    pub publish: f64,
    /// Inspector work per iteration (`iter(a(i)) = i`).
    pub inspect_per_iter: f64,
    /// Postprocessing work per iteration (reset `iter`/`ready`, copy back).
    pub post_per_iter: f64,
    /// Entering/leaving a parallel region (pool dispatch + join), per
    /// region.
    pub region_dispatch: f64,
    /// One crossing of an in-region spin barrier (sense-reversing, all
    /// processors participating) — the per-level price of the wavefront
    /// (level-scheduled) executor. Far cheaper than `region_dispatch`:
    /// spinners stay in user space and never return to the pool's
    /// dispatch path.
    pub barrier: f64,
    /// Sequential loop: fixed per-iteration cost.
    pub seq_iter: f64,
    /// Sequential loop: per-reference cost.
    pub seq_term: f64,
}

impl CostModel {
    /// Calibrated to the paper's Encore Multimax/320 observations.
    ///
    /// With `seq_iter = 2`, `seq_term = 1`, the dependence-free efficiency
    /// is `(seq_iter + M·seq_term) / (overhead_per_iter + M·(term +
    /// check))`. The paper's plateaus give two equations:
    ///
    /// * `M = 1`: `3 / (O + 1.25) = 1/3`  →  `O = 7.75`
    /// * `M = 5`: `7 / (O + 6.25) = 1/2`  →  `O = 7.75`
    ///
    /// (`O` = grab + setup + publish + inspector + postprocessing per
    /// iteration, and `term + check = 1.25`.) The preset distributes `O`
    /// and the per-term 1.25 across actions in proportions typical of the
    /// runtime's instruction mix; the `term`/`publish` split additionally
    /// controls the distance-1 pipeline rate (`term + publish`), which the
    /// Table 1 natural-order solves are sensitive to.
    pub fn multimax() -> Self {
        Self {
            schedule_grab: 1.5,
            iteration_setup: 1.0,
            check: 0.7,
            term: 0.55,
            wait_poll: 0.25,
            publish: 0.25,
            inspect_per_iter: 2.5,
            post_per_iter: 2.5,
            region_dispatch: 50.0,
            // A handful of contended atomic operations per crossing —
            // a few counter grabs' worth of cache traffic.
            barrier: 4.0,
            seq_iter: 2.0,
            seq_term: 1.0,
        }
    }

    /// Total fixed (dependence-independent) doacross overhead per
    /// iteration: everything except per-term work and waiting.
    pub fn overhead_per_iteration(&self) -> f64 {
        self.schedule_grab
            + self.iteration_setup
            + self.publish
            + self.inspect_per_iter
            + self.post_per_iter
    }

    /// Sequential cost of a loop with `n` iterations and `total_terms`
    /// references.
    pub fn sequential_time(&self, n: usize, total_terms: usize) -> f64 {
        self.seq_iter * n as f64 + self.seq_term * total_terms as f64
    }

    /// The closed-form dependence-free efficiency on any processor count
    /// (large-`n` limit): useful as an analytic cross-check of the
    /// simulator.
    pub fn doall_efficiency(&self, terms_per_iter: usize) -> f64 {
        let m = terms_per_iter as f64;
        let seq = self.seq_iter + m * self.seq_term;
        let par = self.overhead_per_iteration() + m * (self.term + self.check);
        seq / par
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::multimax()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multimax_calibration_hits_paper_plateaus() {
        let c = CostModel::multimax();
        assert!(
            (c.doall_efficiency(1) - 1.0 / 3.0).abs() < 0.01,
            "M=1 -> 0.33"
        );
        assert!((c.doall_efficiency(5) - 0.5).abs() < 0.01, "M=5 -> 0.50");
    }

    #[test]
    fn overhead_decomposition_sums() {
        let c = CostModel::multimax();
        assert!((c.overhead_per_iteration() - 7.75).abs() < 1e-12);
    }

    #[test]
    fn sequential_time_is_linear() {
        let c = CostModel::multimax();
        assert_eq!(c.sequential_time(10, 50), 2.0 * 10.0 + 1.0 * 50.0);
        assert_eq!(c.sequential_time(0, 0), 0.0);
    }

    #[test]
    fn more_terms_amortize_overhead() {
        let c = CostModel::multimax();
        assert!(c.doall_efficiency(5) > c.doall_efficiency(1));
        assert!(c.doall_efficiency(50) > c.doall_efficiency(5));
        // Asymptote: seq_term / (term + check) = 1 / 1.25 = 0.8.
        assert!(c.doall_efficiency(100_000) < 0.8);
    }
}
