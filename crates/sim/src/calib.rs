//! Host calibration of the cost model.
//!
//! The [`CostModel::multimax`] preset encodes the paper's Encore
//! Multimax/320 overhead ratios. This module measures the *host's* actual
//! ratios — sequential per-term and per-iteration costs, the doacross
//! executor's per-term and per-iteration overheads, and the pool's region
//! dispatch latency — and assembles a [`CostModel`] in the same normalized
//! units (`seq_term = 1`). Simulating with a calibrated model answers
//! "what would this host look like with `p` processors", while the preset
//! answers "what did the paper's machine look like".
//!
//! Methodology: the dependence-free (odd-`L`) Figure 4 loop at two values
//! of `M` gives two linear equations in (per-iteration, per-term) costs
//! for both the sequential loop and the single-worker doacross; a
//! difference quotient separates the coefficients. All measurements are
//! best-of-`reps` to suppress scheduler noise.

use crate::cost::CostModel;
use doacross_core::{seq::run_sequential, Doacross, TestLoop};
use doacross_par::{SpinBarrier, ThreadPool};
use std::time::{Duration, Instant};

/// A host-derived cost model plus the physical meaning of its unit.
#[derive(Debug, Clone)]
pub struct CalibratedModel {
    /// Costs normalized so `seq_term == 1.0`.
    pub model: CostModel,
    /// Nanoseconds per cost unit on the measured host.
    pub unit_ns: f64,
}

fn best_of<F: FnMut() -> Duration>(reps: usize, mut f: F) -> Duration {
    (0..reps.max(1)).map(|_| f()).min().expect("reps >= 1")
}

/// Per-iteration nanoseconds of the sequential Figure 4 loop at inner trip
/// count `m` (odd `L` so the loop is dependence-free).
fn seq_ns_per_iter(n: usize, m: usize, reps: usize) -> f64 {
    let loop_ = TestLoop::new(n, m, 7);
    let y0 = loop_.initial_y();
    let t = best_of(reps, || {
        let mut y = y0.clone();
        let start = Instant::now();
        run_sequential(&loop_, &mut y);
        let e = start.elapsed();
        std::hint::black_box(&y);
        e
    });
    t.as_nanos() as f64 / n as f64
}

/// Per-iteration nanoseconds of the full single-worker preprocessed
/// doacross (inspector + executor + postprocessor) at inner trip count `m`.
fn doacross_ns_per_iter(pool: &ThreadPool, n: usize, m: usize, reps: usize) -> f64 {
    let loop_ = TestLoop::new(n, m, 7);
    let y0 = loop_.initial_y();
    let mut rt = Doacross::for_loop(&loop_);
    rt.config_mut().validate_terms = false;
    let t = best_of(reps, || {
        let mut y = y0.clone();
        let start = Instant::now();
        rt.run(pool, &loop_, &mut y).expect("doall test loop");
        let e = start.elapsed();
        std::hint::black_box(&y);
        e
    });
    t.as_nanos() as f64 / n as f64
}

/// Measures the host and assembles a normalized [`CostModel`].
///
/// `reps` trades calibration time against noise (5–10 is plenty). The
/// per-action split of the measured aggregate overhead reuses the Multimax
/// preset's proportions — the aggregates are what the measurements can
/// actually separate; the split only affects how the simulator attributes
/// (not how much it charges).
pub fn calibrate(reps: usize) -> CalibratedModel {
    let n = 20_000;
    let (m_lo, m_hi) = (1usize, 5usize);
    let dm = (m_hi - m_lo) as f64;

    let seq_lo = seq_ns_per_iter(n, m_lo, reps);
    let seq_hi = seq_ns_per_iter(n, m_hi, reps);
    let seq_term_ns = ((seq_hi - seq_lo) / dm).max(0.1);
    let seq_iter_ns = (seq_lo - seq_term_ns * m_lo as f64).max(0.1);

    let pool = ThreadPool::new(1);
    let par_lo = doacross_ns_per_iter(&pool, n, m_lo, reps);
    let par_hi = doacross_ns_per_iter(&pool, n, m_hi, reps);
    let par_term_ns = ((par_hi - par_lo) / dm).max(seq_term_ns);
    let overhead_ns = (par_lo - par_term_ns * m_lo as f64).max(0.1);

    let dispatch_ns = {
        let t = best_of(reps, || {
            let start = Instant::now();
            pool.run(|_| {});
            start.elapsed()
        });
        t.as_nanos() as f64
    };

    // In-region spin-barrier crossing, measured with two real participants
    // (the smallest configuration where a crossing involves actual
    // cross-thread traffic) — the per-level price of the wavefront
    // executor.
    let barrier_ns = {
        const CROSSINGS: usize = 4_096;
        let two = ThreadPool::new(2);
        let barrier = SpinBarrier::new(2);
        let t = best_of(reps, || {
            let start = Instant::now();
            two.run(|_| {
                for _ in 0..CROSSINGS {
                    barrier.wait();
                }
            });
            start.elapsed()
        });
        (t.as_nanos() as f64 / CROSSINGS as f64).max(0.1)
    };

    // Normalize: one unit = one sequential term.
    let unit_ns = seq_term_ns;
    let seq_iter = seq_iter_ns / unit_ns;
    let per_term = par_term_ns / unit_ns; // term + check combined
    let overhead = overhead_ns / unit_ns; // grab+setup+publish+pre+post

    // Attribute aggregates using the preset's proportions.
    let preset = CostModel::multimax();
    let preset_term_total = preset.term + preset.check;
    let preset_overhead = preset.overhead_per_iteration();
    CalibratedModel {
        model: CostModel {
            schedule_grab: overhead * preset.schedule_grab / preset_overhead,
            iteration_setup: overhead * preset.iteration_setup / preset_overhead,
            check: per_term * preset.check / preset_term_total,
            term: per_term * preset.term / preset_term_total,
            wait_poll: per_term * 0.2,
            publish: overhead * preset.publish / preset_overhead,
            inspect_per_iter: overhead * preset.inspect_per_iter / preset_overhead,
            post_per_iter: overhead * preset.post_per_iter / preset_overhead,
            region_dispatch: dispatch_ns / unit_ns,
            barrier: barrier_ns / unit_ns,
            seq_iter,
            seq_term: 1.0,
        },
        unit_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_produces_a_physical_model() {
        let c = calibrate(3);
        let m = &c.model;
        assert!(c.unit_ns > 0.0);
        for (name, v) in [
            ("schedule_grab", m.schedule_grab),
            ("iteration_setup", m.iteration_setup),
            ("check", m.check),
            ("term", m.term),
            ("publish", m.publish),
            ("inspect_per_iter", m.inspect_per_iter),
            ("post_per_iter", m.post_per_iter),
            ("region_dispatch", m.region_dispatch),
            ("barrier", m.barrier),
            ("seq_iter", m.seq_iter),
        ] {
            assert!(v > 0.0, "{name} = {v}");
        }
        assert_eq!(m.seq_term, 1.0, "normalization anchor");
        // The doacross must cost at least as much per term as the plain
        // loop (it adds the dependency check).
        assert!(m.term + m.check >= 1.0 - 1e-9);
        // Dependence-free efficiency is a proper fraction.
        let eff = m.doall_efficiency(1);
        assert!(eff > 0.0 && eff < 1.0, "eff = {eff}");
    }

    #[test]
    fn calibrated_machine_simulates() {
        use crate::machine::{Machine, SimOptions};
        use doacross_core::TestLoop;
        let c = calibrate(2);
        let machine = Machine {
            processors: 16,
            costs: c.model,
        };
        let r = machine.simulate_doacross(&TestLoop::new(2_000, 1, 7), None, SimOptions::default());
        assert!(r.efficiency > 0.0 && r.efficiency <= 1.0);
    }
}
