//! Simulation outputs.

/// The outcome of one simulated doacross run, in abstract machine cycles.
#[derive(Debug, Clone, Default)]
pub struct SimResult {
    /// Simulated processors.
    pub processors: usize,
    /// Iterations executed.
    pub iterations: usize,
    /// Sequential execution time of the same loop (`T_seq`).
    pub t_seq: f64,
    /// Parallel end-to-end time (`T_par`): inspector + executor + post.
    pub t_par: f64,
    /// Inspector phase time (0 when the inspector is eliminated).
    pub t_inspector: f64,
    /// Executor phase time.
    pub t_executor: f64,
    /// Postprocessor phase time.
    pub t_post: f64,
    /// Parallel efficiency `T_seq / (p · T_par)` — the paper's §3 metric.
    pub efficiency: f64,
    /// Total processor-cycles spent busy-waiting on `ready` flags.
    pub wait_cycles: f64,
    /// True-dependency references that stalled (writer unfinished at first
    /// check).
    pub stalls: u64,
    /// All true-dependency references.
    pub true_deps: u64,
}

impl SimResult {
    /// Speedup `T_seq / T_par`.
    pub fn speedup(&self) -> f64 {
        if self.t_par == 0.0 {
            0.0
        } else {
            self.t_seq / self.t_par
        }
    }

    /// Fraction of total processor time lost to busy-waiting.
    pub fn wait_fraction(&self) -> f64 {
        let total = self.t_par * self.processors as f64;
        if total == 0.0 {
            0.0
        } else {
            self.wait_cycles / total
        }
    }
}

impl std::fmt::Display for SimResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "p={} n={}: T_seq={:.0} T_par={:.0} (insp {:.0} / exec {:.0} / post {:.0}) \
             eff={:.3} speedup={:.2} stalls={}/{} wait={:.1}%",
            self.processors,
            self.iterations,
            self.t_seq,
            self.t_par,
            self.t_inspector,
            self.t_executor,
            self.t_post,
            self.efficiency,
            self.speedup(),
            self.stalls,
            self.true_deps,
            100.0 * self.wait_fraction(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let r = SimResult {
            processors: 4,
            t_seq: 100.0,
            t_par: 50.0,
            wait_cycles: 20.0,
            ..Default::default()
        };
        assert_eq!(r.speedup(), 2.0);
        assert_eq!(r.wait_fraction(), 0.1);
    }

    #[test]
    fn zero_time_edge_cases() {
        let r = SimResult::default();
        assert_eq!(r.speedup(), 0.0);
        assert_eq!(r.wait_fraction(), 0.0);
    }

    #[test]
    fn display_is_informative() {
        let r = SimResult {
            processors: 16,
            iterations: 100,
            ..Default::default()
        };
        let s = r.to_string();
        assert!(s.contains("p=16"));
        assert!(s.contains("n=100"));
    }
}
