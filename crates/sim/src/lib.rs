//! # doacross-sim — deterministic multiprocessor simulator
//!
//! The paper's measurements were taken on a 16-processor Encore
//! Multimax/320 (13 MHz APC/02 boards). This workspace runs on whatever
//! host executes the tests — typically with far fewer cores — so absolute
//! 16-way timings cannot be measured directly. This crate substitutes a
//! **discrete-event model of the machine**: `p` equal-speed processors
//! self-scheduling a doacross loop's iterations, with a calibrated
//! [`CostModel`] for every runtime action the construct performs
//! (claiming an iteration, the per-reference dependency check, busy-wait
//! stalls, flag publication, inspector/postprocessor sweeps).
//!
//! Why the substitution preserves the paper's claims: every Figure 6 /
//! Table 1 number is a *schedule* property — who waits for whom, for how
//! long, and how much bookkeeping surrounds the real work. The simulator
//! executes the exact iteration-level schedule the real runtime produces
//! (same self-scheduled claim order, same true-dependency stalls) and
//! derives time from it deterministically; the host-thread runtime
//! (`doacross-core`) validates functional correctness and qualitative
//! behaviour at host scale, while the simulator extrapolates to the
//! paper's 16 processors.
//!
//! ```
//! use doacross_core::TestLoop;
//! use doacross_sim::Machine;
//!
//! let machine = Machine::multimax(); // 16 processors, calibrated costs
//! let loop_ = TestLoop::new(10_000, 1, 7); // odd L: no dependencies
//! let result = machine.simulate_doacross(&loop_, None, Default::default());
//! // The paper's odd-L, M=1 efficiency plateau is ≈ 0.33.
//! assert!((result.efficiency - 0.33).abs() < 0.05);
//! ```

// Audit posture: this crate needs no unsafe code; keep it that way.
#![forbid(unsafe_code)]
pub mod calib;
pub mod cost;
pub mod machine;
pub mod result;

pub use calib::{calibrate, CalibratedModel};
pub use cost::{CostModel, ObservedConstants};
pub use machine::{Machine, SimOptions};
pub use result::SimResult;
