//! The simulated shared-memory machine.
//!
//! The executor simulation replays the runtime's exact scheduling
//! discipline: processors claim iterations (or chunks) from a shared
//! counter in order, each claimed iteration runs the Figure 5 body, and a
//! true-dependency reference to an unfinished writer stalls the claiming
//! processor until the writer's (simulated) completion instant. Because
//! claims are chronological and true dependencies point to earlier claim
//! slots, a single pass over claim slots — always advancing the earliest-
//! available processor — is a complete discrete-event simulation.

use crate::cost::CostModel;
use crate::result::SimResult;
use doacross_core::{AccessPattern, MAXINT};

/// Knobs of a simulated run.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Iterations claimed per counter grab (the paper's Multimax policy is
    /// 1).
    pub chunk: usize,
    /// Simulate the inspector phase. Disable for the §2.3 linear-subscript
    /// variant, which eliminates execution-time preprocessing entirely
    /// (e.g. the triangular solve's identity subscript).
    pub include_inspector: bool,
    /// Halve the postprocessing cost: models consumers that read the
    /// result from `ynew` directly, so postprocessing only resets flags
    /// (no copy-back) — the configuration a solver library would use.
    pub light_post: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            chunk: 1,
            include_inspector: true,
            light_post: false,
        }
    }
}

/// A `p`-processor shared-memory machine with a [`CostModel`].
#[derive(Debug, Clone)]
pub struct Machine {
    /// Number of processors.
    pub processors: usize,
    /// Per-action costs.
    pub costs: CostModel,
}

impl Machine {
    /// A machine with `processors` equal-speed processors and the
    /// calibrated Multimax cost model.
    pub fn new(processors: usize) -> Self {
        assert!(processors > 0, "machine needs at least one processor");
        Self {
            processors,
            costs: CostModel::multimax(),
        }
    }

    /// The paper's testbed: 16 processors.
    pub fn multimax() -> Self {
        Self::new(16)
    }

    /// Sequential execution time of `pattern` (the paper's `T_seq`).
    pub fn sequential_time<P: AccessPattern + ?Sized>(&self, pattern: &P) -> f64 {
        let n = pattern.iterations();
        let total_terms: usize = (0..n).map(|i| pattern.terms(i)).sum();
        self.costs.sequential_time(n, total_terms)
    }

    /// Simulates a preprocessed-doacross run of `pattern`, optionally
    /// claiming iterations in `order` (a topological permutation, e.g. a
    /// doconsider order).
    ///
    /// # Panics
    /// Panics if `order` is non-topological (a writer simulated after its
    /// reader) or not a permutation.
    pub fn simulate_doacross<P: AccessPattern + ?Sized>(
        &self,
        pattern: &P,
        order: Option<&[usize]>,
        opts: SimOptions,
    ) -> SimResult {
        let n = pattern.iterations();
        let p = self.processors;
        let c = &self.costs;
        let chunk = opts.chunk.max(1);
        if let Some(ord) = order {
            assert_eq!(ord.len(), n, "order length must match iteration count");
        }

        // Writer map, as the inspector would fill it.
        let mut writer = vec![MAXINT; pattern.data_len()];
        for i in 0..n {
            writer[pattern.lhs(i)] = i as i64;
        }

        // Phase times for the embarrassingly parallel sweeps.
        let t_inspector = if opts.include_inspector && n > 0 {
            c.region_dispatch + (n as f64 * c.inspect_per_iter) / p as f64
        } else {
            0.0
        };
        let post_cost = if opts.light_post {
            c.post_per_iter * 0.5
        } else {
            c.post_per_iter
        };
        let t_post = if n > 0 {
            c.region_dispatch + (n as f64 * post_cost) / p as f64
        } else {
            0.0
        };

        // Executor: chronological claim simulation.
        let mut proc_time = vec![0.0f64; p];
        let mut completion = vec![f64::NAN; n];
        let mut wait_cycles = 0.0f64;
        let mut stalls = 0u64;
        let mut true_deps = 0u64;
        let mut next_slot = 0usize;
        while next_slot < n {
            // Earliest-available processor claims the next chunk.
            let proc = (0..p)
                .min_by(|&a, &b| proc_time[a].total_cmp(&proc_time[b]))
                .expect("at least one processor");
            let mut t = proc_time[proc] + c.schedule_grab;
            let hi = (next_slot + chunk).min(n);
            for slot in next_slot..hi {
                let i = order.map_or(slot, |o| o[slot]);
                t += c.iteration_setup;
                let iv = i as i64;
                for j in 0..pattern.terms(i) {
                    t += c.check;
                    let w = writer[pattern.term_element(i, j)];
                    if w != MAXINT && w < iv {
                        true_deps += 1;
                        let done = completion[w as usize];
                        assert!(
                            !done.is_nan(),
                            "writer {w} claimed after its reader {i}: order is not topological"
                        );
                        if done > t {
                            stalls += 1;
                            // Busy-wait until the writer publishes; the
                            // final successful poll costs one flag load.
                            wait_cycles += done - t;
                            t = done + c.wait_poll;
                        }
                    }
                    t += c.term;
                }
                t += c.publish;
                completion[i] = t;
            }
            proc_time[proc] = t;
            next_slot = hi;
        }
        let exec_busy = proc_time.iter().copied().fold(0.0f64, f64::max);
        let t_executor = if n > 0 {
            c.region_dispatch + exec_busy
        } else {
            0.0
        };

        let t_seq = self.sequential_time(pattern);
        let t_par = t_inspector + t_executor + t_post;
        let efficiency = if t_par > 0.0 {
            t_seq / (p as f64 * t_par)
        } else {
            0.0
        };
        SimResult {
            processors: p,
            iterations: n,
            t_seq,
            t_par,
            t_inspector,
            t_executor,
            t_post,
            efficiency,
            wait_cycles,
            stalls,
            true_deps,
        }
    }
}

impl Machine {
    /// Simulates a level-scheduled (barrier-per-wavefront) execution of
    /// `pattern`: levels run as doalls separated by a region dispatch/join,
    /// with no dependency checks, flags, or waiting inside a level.
    ///
    /// `level_sizes[l]` is the number of iterations in wavefront `l`; terms
    /// are charged per iteration exactly as in the doacross executor, minus
    /// the check cost (no `iter` lookups are needed once levels are known).
    pub fn simulate_level_scheduled<P: AccessPattern + ?Sized>(
        &self,
        pattern: &P,
        order: &[usize],
        level_sizes: &[usize],
    ) -> SimResult {
        let n = pattern.iterations();
        assert_eq!(order.len(), n, "order must cover all iterations");
        assert_eq!(
            level_sizes.iter().sum::<usize>(),
            n,
            "levels must partition the iterations"
        );
        let p = self.processors as f64;
        let c = &self.costs;
        let mut t_total = 0.0f64;
        let mut cursor = 0usize;
        for &width in level_sizes {
            // Work in this wavefront, ideally balanced over p processors;
            // a level cannot finish faster than its largest single row.
            let mut work = 0.0f64;
            let mut max_row = 0.0f64;
            for &i in &order[cursor..cursor + width] {
                let row = c.schedule_grab
                    + c.iteration_setup
                    + pattern.terms(i) as f64 * c.term
                    + c.publish;
                work += row;
                max_row = max_row.max(row);
            }
            cursor += width;
            t_total += c.region_dispatch + (work / p).max(max_row);
        }
        let t_seq = self.sequential_time(pattern);
        let efficiency = if t_total > 0.0 {
            t_seq / (p * t_total)
        } else {
            0.0
        };
        SimResult {
            processors: self.processors,
            iterations: n,
            t_seq,
            t_par: t_total,
            t_inspector: 0.0,
            t_executor: t_total,
            t_post: 0.0,
            efficiency,
            wait_cycles: 0.0,
            stalls: 0,
            true_deps: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_core::{IndirectLoop, TestLoop};

    fn doall_loop(n: usize, m: usize) -> TestLoop {
        TestLoop::new(n, m, 7) // odd L: no dependencies
    }

    #[test]
    fn odd_l_plateaus_match_the_paper() {
        let machine = Machine::multimax();
        let r1 = machine.simulate_doacross(&doall_loop(10_000, 1), None, SimOptions::default());
        let r5 = machine.simulate_doacross(&doall_loop(10_000, 5), None, SimOptions::default());
        assert!(
            (r1.efficiency - 1.0 / 3.0).abs() < 0.02,
            "M=1: {}",
            r1.efficiency
        );
        assert!((r5.efficiency - 0.5).abs() < 0.02, "M=5: {}", r5.efficiency);
        assert_eq!(r1.stalls, 0);
        assert_eq!(r5.stalls, 0);
    }

    #[test]
    fn even_l_efficiency_rises_monotonically() {
        // Non-decreasing along L, with a genuine rise from the serialized
        // regime (small L) to the overhead plateau (large L) — the curve
        // flattens once dependence distances exceed the in-flight window,
        // exactly as Figure 6 does.
        let machine = Machine::multimax();
        for m in [1usize, 5] {
            let mut effs = Vec::new();
            for l in [4usize, 6, 8, 10, 12, 14] {
                let t = TestLoop::new(10_000, m, l);
                let r = machine.simulate_doacross(&t, None, SimOptions::default());
                effs.push(r.efficiency);
            }
            for w in effs.windows(2) {
                assert!(w[1] >= w[0] - 1e-12, "M={m}: {effs:?}");
            }
            assert!(
                effs.last().unwrap() > &(effs[0] * 1.5),
                "M={m}: plateau should clearly exceed the serialized regime: {effs:?}"
            );
        }
    }

    #[test]
    fn short_distance_dependencies_serialize() {
        // L=4, M=1: distance-1 chain -> far below the doall plateau.
        let machine = Machine::multimax();
        let chained =
            machine.simulate_doacross(&TestLoop::new(10_000, 1, 4), None, SimOptions::default());
        let free =
            machine.simulate_doacross(&TestLoop::new(10_000, 1, 7), None, SimOptions::default());
        assert!(chained.efficiency < free.efficiency / 2.0);
        assert!(chained.stalls > 0);
        assert!(chained.wait_cycles > 0.0);
    }

    #[test]
    fn single_processor_has_no_stalls_and_overhead_bound_efficiency() {
        let machine = Machine::new(1);
        let r = machine.simulate_doacross(&TestLoop::new(2_000, 1, 4), None, SimOptions::default());
        assert_eq!(r.stalls, 0, "in-order single processor never waits");
        // Efficiency at p=1 is the pure overhead ratio.
        assert!((r.efficiency - machine.costs.doall_efficiency(1)).abs() < 0.05);
    }

    #[test]
    fn eliminating_inspector_and_copy_back_raises_efficiency() {
        let machine = Machine::multimax();
        let t = doall_loop(10_000, 1);
        let full = machine.simulate_doacross(&t, None, SimOptions::default());
        let lean = machine.simulate_doacross(
            &t,
            None,
            SimOptions {
                include_inspector: false,
                light_post: true,
                chunk: 1,
            },
        );
        assert_eq!(lean.t_inspector, 0.0);
        assert!(lean.efficiency > full.efficiency);
    }

    #[test]
    fn chunking_reduces_grab_overhead_for_doalls() {
        let machine = Machine::multimax();
        let t = doall_loop(10_000, 1);
        let c1 = machine.simulate_doacross(&t, None, SimOptions::default());
        let c8 = machine.simulate_doacross(
            &t,
            None,
            SimOptions {
                chunk: 8,
                ..Default::default()
            },
        );
        assert!(c8.t_executor < c1.t_executor);
    }

    #[test]
    fn topological_order_enables_parallelism_on_chained_loop() {
        // Two interleaved distance-1 chains; a level order interleaves
        // them so stalls shrink.
        let machine = Machine::multimax();
        let t = TestLoop::new(10_000, 1, 4);
        let natural = machine.simulate_doacross(&t, None, SimOptions::default());
        // L=4, M=1: iteration i depends on i-1. The only valid orders are
        // essentially the natural one, so instead check the simulator's
        // order plumbing with an explicitly identical permutation.
        let identity: Vec<usize> = (0..t.iterations()).collect();
        let same = machine.simulate_doacross(&t, Some(&identity), SimOptions::default());
        assert!((natural.t_par - same.t_par).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "not topological")]
    fn non_topological_order_is_detected() {
        let n = 4;
        let a: Vec<usize> = (1..=n).collect();
        let rhs: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        let l = IndirectLoop::new(n + 1, a, rhs, vec![vec![1.0]; n]).unwrap();
        let machine = Machine::new(2);
        let rev: Vec<usize> = (0..n).rev().collect();
        let _ = machine.simulate_doacross(&l, Some(&rev), SimOptions::default());
    }

    #[test]
    fn empty_loop_simulates_to_zero() {
        let l = IndirectLoop::new(0, vec![], vec![], vec![]).unwrap();
        let machine = Machine::multimax();
        let r = machine.simulate_doacross(&l, None, SimOptions::default());
        assert_eq!(r.t_par, 0.0);
        assert_eq!(r.efficiency, 0.0);
    }

    #[test]
    fn speedup_never_exceeds_processor_count() {
        let machine = Machine::multimax();
        for l in [4usize, 7, 10, 14] {
            let t = TestLoop::new(5_000, 3, l);
            let r = machine.simulate_doacross(&t, None, SimOptions::default());
            assert!(r.speedup() <= 16.0 + 1e-9, "L={l}");
            assert!(r.efficiency <= 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        let _ = Machine::new(0);
    }

    #[test]
    fn doall_efficiency_is_processor_count_independent() {
        // Work conservation: for a dependence-free loop the efficiency is
        // the overhead ratio, regardless of p (large-n limit).
        let t = doall_loop(20_000, 1);
        let baseline = Machine::new(2)
            .simulate_doacross(&t, None, SimOptions::default())
            .efficiency;
        for p in [4usize, 8, 32] {
            let e = Machine::new(p)
                .simulate_doacross(&t, None, SimOptions::default())
                .efficiency;
            assert!((e - baseline).abs() < 0.02, "p={p}: {e} vs {baseline}");
        }
    }

    #[test]
    fn level_scheduled_doall_is_one_region() {
        // A dependence-free loop has a single level; the level-scheduled
        // time is one dispatch plus balanced work.
        let n = 1_000;
        let a: Vec<usize> = (0..n).collect();
        let rhs: Vec<Vec<usize>> = (0..n).map(|_| vec![]).collect();
        let l = IndirectLoop::new(n, a, rhs, vec![vec![]; n]).unwrap();
        let machine = Machine::multimax();
        let order: Vec<usize> = (0..n).collect();
        let r = machine.simulate_level_scheduled(&l, &order, &[n]);
        let c = &machine.costs;
        let per_iter = c.schedule_grab + c.iteration_setup + c.publish;
        let expect = c.region_dispatch + n as f64 * per_iter / 16.0;
        assert!((r.t_par - expect).abs() < 1e-6, "{} vs {expect}", r.t_par);
    }

    #[test]
    fn level_scheduled_chain_pays_a_dispatch_per_level() {
        // A pure chain has n levels of one iteration each: barrier cost
        // dominates, which is exactly why the paper's flag-based doacross
        // exists.
        let n = 100;
        let a: Vec<usize> = (1..=n).collect();
        let rhs: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        let l = IndirectLoop::new(n + 1, a, rhs, vec![vec![1.0]; n]).unwrap();
        let machine = Machine::multimax();
        let order: Vec<usize> = (0..n).collect();
        let levels = vec![1usize; n];
        let lvl = machine.simulate_level_scheduled(&l, &order, &levels);
        let doacross = machine.simulate_doacross(&l, None, SimOptions::default());
        assert!(
            lvl.t_par > doacross.t_par,
            "barrier-per-level must lose on a chain: {} vs {}",
            lvl.t_par,
            doacross.t_par
        );
        assert!(lvl.t_par >= n as f64 * machine.costs.region_dispatch);
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn level_sizes_must_partition() {
        let l =
            IndirectLoop::new(2, vec![0, 1], vec![vec![], vec![]], vec![vec![], vec![]]).unwrap();
        let machine = Machine::new(2);
        let _ = machine.simulate_level_scheduled(&l, &[0, 1], &[1]);
    }
}
