//! Acceptance check for the soundness verifier against the paper's five
//! Table 1 problems: for every structure, the plan the engine selects must
//! be *proven* to cover every dependence the sparse triangular system
//! implies — full translation validation through `Engine::verify_plan`,
//! plus a direct pass over all legal variants of one structure.

use doacross_core::AccessPattern;
use doacross_engine::Engine;
use doacross_plan::SyncSchedule;
use doacross_sparse::table1_problems;
use doacross_trisolve::TriSolveLoop;

#[test]
fn all_five_table1_selected_plans_verify_sound() {
    let engine = Engine::builder().workers(4).observability_default().build();
    for problem in table1_problems() {
        let sys = problem.triangular_system();
        let loop_ = TriSolveLoop::new(&sys.l, &sys.rhs);
        let report = engine
            .verify_plan(&loop_)
            .unwrap_or_else(|err| panic!("{}: selected plan unsound: {err}", problem.kind.name()));
        assert_eq!(report.iterations, sys.l.n(), "{}", problem.kind.name());
        // A triangular solve row reads strictly earlier unknowns: every
        // reference is a flow dependence, and the verifier must have
        // walked all of them.
        assert_eq!(
            report.references,
            report.flow_edges,
            "{}: triangular structure is pure flow",
            problem.kind.name()
        );
        assert!(report.flow_edges > 0, "{}", problem.kind.name());
    }
    // Both verify outcomes are observable; five sound plans were counted.
    let metrics = engine.metrics_text();
    assert!(
        metrics.contains("doacross_verify_passes_total 5"),
        "verify outcomes must be exported: {metrics}"
    );
    assert!(metrics.contains("doacross_verify_failures_total 0"));
}

/// The same Table 1 structure proves sound under *every* schedule that is
/// legal for it — not just the cost model's winner — exercising all the
/// flag-based rules on real sparse structure.
#[test]
fn first_table1_structure_sound_under_all_legal_schedules() {
    let problem = &table1_problems()[0];
    let sys = problem.triangular_system();
    let loop_ = TriSolveLoop::new(&sys.l, &sys.rhs);
    let n = loop_.iterations();

    let writers =
        doacross_core::PreparedInspection::from_writer_map(n, &(0..n as i64).collect::<Vec<_>>())
            .expect("identity subscript map");
    doacross_verify::verify_pattern(&loop_, &SyncSchedule::FlagsNatural { writers: &writers })
        .expect("flat doacross covers a lower-triangular solve");
    doacross_verify::verify_pattern(
        &loop_,
        &SyncSchedule::FlagsLinear {
            subscript: TriSolveLoop::subscript(),
        },
    )
    .expect("a(i) = i is the inspector-free fast path");
    let natural: Vec<usize> = (0..n).collect();
    doacross_verify::verify_pattern(
        &loop_,
        &SyncSchedule::FlagsOrdered {
            writers: &writers,
            order: &natural,
        },
    )
    .expect("natural order is topological for a triangular system");
    doacross_verify::verify_pattern(&loop_, &SyncSchedule::Sequential).expect("always sound");
}
