//! Solve planning: the runtime preprocessing shared by the reordered and
//! level-scheduled solvers.
//!
//! For a given triangular structure, [`SolvePlan`] computes the
//! true-dependence wavefront levels and the doconsider (level-sorted)
//! claim order once; the plan is then reused across every solve with that
//! structure — the same amortization argument the paper makes for its
//! inspector: sparse solvers call the triangular solve once per Krylov
//! iteration on a fixed structure, so per-structure preprocessing is paid
//! once and used many times.

use doacross_doconsider::{
    level_histogram, reorder::order_from_levels, DependenceDag, LevelAssignment,
};
use doacross_sparse::TriangularMatrix;
use std::time::{Duration, Instant};

/// Precomputed reordering information for one triangular structure.
#[derive(Debug, Clone)]
pub struct SolvePlan {
    /// Wavefront level of every row.
    pub levels: LevelAssignment,
    /// Level-sorted (doconsider) claim order; rows of one level are
    /// contiguous.
    pub order: Vec<usize>,
    /// Rows per level (`histogram[l-1]` = width of level `l`).
    pub histogram: Vec<usize>,
    /// Wall time spent planning (the preprocessing cost to report).
    pub planning_time: Duration,
}

impl SolvePlan {
    /// Builds the plan for `l`'s dependence structure.
    pub fn for_matrix(l: &TriangularMatrix) -> Self {
        let start = Instant::now();
        let dag = DependenceDag::from_predecessors(l.n(), |i| l.row_cols(i).iter().copied());
        let levels = LevelAssignment::compute(&dag);
        let order = order_from_levels(&levels);
        let histogram = level_histogram(&levels);
        Self {
            levels,
            order,
            histogram,
            planning_time: start.elapsed(),
        }
    }

    /// Number of wavefronts (the dependence critical path in rows).
    pub fn critical_path(&self) -> usize {
        self.levels.critical_path()
    }

    /// The contiguous range of `order` positions holding level `level`
    /// (1-based).
    pub fn level_range(&self, level: usize) -> std::ops::Range<usize> {
        debug_assert!(level >= 1 && level <= self.histogram.len());
        let start: usize = self.histogram[..level - 1].iter().sum();
        start..start + self.histogram[level - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_sparse::{ilu0, stencil::five_point, CsrMatrix, TriangularMatrix};

    #[test]
    fn plan_for_bidiagonal_chain() {
        let m = CsrMatrix::from_parts(4, 4, vec![0, 0, 1, 2, 3], vec![0, 1, 2], vec![1.0; 3]);
        let l = TriangularMatrix::from_strict_lower(&m);
        let plan = SolvePlan::for_matrix(&l);
        assert_eq!(plan.critical_path(), 4);
        assert_eq!(plan.order, vec![0, 1, 2, 3]);
        assert_eq!(plan.histogram, vec![1; 4]);
        assert_eq!(plan.level_range(1), 0..1);
        assert_eq!(plan.level_range(4), 3..4);
    }

    #[test]
    fn plan_for_grid_factor_has_wide_levels() {
        let a = five_point(10, 10, 55);
        let l = TriangularMatrix::from_strict_lower(&ilu0(&a).l);
        let plan = SolvePlan::for_matrix(&l);
        // A 10x10 five-point ILU(0) L factor has wavefronts along
        // anti-diagonals: critical path 19, widths 1..10..1.
        assert_eq!(plan.critical_path(), 19);
        assert_eq!(plan.histogram.iter().sum::<usize>(), 100);
        assert_eq!(*plan.histogram.iter().max().unwrap(), 10);
        // level ranges tile 0..n in order.
        let mut next = 0;
        for lvl in 1..=plan.critical_path() {
            let r = plan.level_range(lvl);
            assert_eq!(r.start, next);
            next = r.end;
        }
        assert_eq!(next, 100);
        // Order must place each level's rows contiguously.
        for lvl in 1..=plan.critical_path() {
            for k in plan.level_range(lvl) {
                assert_eq!(plan.levels.level(plan.order[k]), lvl);
            }
        }
    }

    #[test]
    fn empty_matrix_plan() {
        let m = CsrMatrix::from_parts(0, 0, vec![0], vec![], vec![]);
        let l = TriangularMatrix::from_strict_lower(&m);
        let plan = SolvePlan::for_matrix(&l);
        assert_eq!(plan.critical_path(), 0);
        assert!(plan.order.is_empty());
    }
}
