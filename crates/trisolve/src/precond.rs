//! ILU(0) preconditioner application `z = U⁻¹ L⁻¹ r` with both halves run
//! as preprocessed doacross loops — the paper's motivating context:
//! "The solution of these sparse triangular systems accounts for a large
//! fraction of the sequential execution time of linear solvers that use
//! Krylov methods" (§3.2, citing Baxter et al. 1988).
//!
//! The preconditioner owns both solvers and their doconsider plans, so the
//! per-structure preprocessing is paid once and amortized over the many
//! applications a Krylov iteration performs — the same amortization the
//! paper's postprocessing phase is designed around.

use crate::reordered::ReorderedSolver;
use crate::upper::UpperSolver;
use doacross_core::DoacrossError;
use doacross_par::ThreadPool;
use doacross_sparse::{ilu0, CsrMatrix, TriangularMatrix, UpperTriangularMatrix};

/// An ILU(0) preconditioner with doacross-parallel forward and backward
/// solves.
///
/// ```
/// use doacross_par::ThreadPool;
/// use doacross_sparse::stencil::five_point;
/// use doacross_trisolve::IluPreconditioner;
///
/// let a = five_point(6, 6, 11);
/// let mut m = IluPreconditioner::new(&a);
/// let pool = ThreadPool::new(2);
/// let r = vec![1.0; m.n()];
/// let z = m.apply(&pool, &r).unwrap();       // U^-1 L^-1 r, both doacross
/// assert_eq!(z, m.apply_sequential(&r));     // bit-identical
/// ```
#[derive(Debug)]
pub struct IluPreconditioner {
    l: TriangularMatrix,
    u: UpperTriangularMatrix,
    lower: ReorderedSolver,
    upper: UpperSolver,
}

impl IluPreconditioner {
    /// Factors `a` with ILU(0) and prepares both solvers (including their
    /// doconsider reorderings).
    pub fn new(a: &CsrMatrix) -> Self {
        let factors = ilu0(a);
        let l = TriangularMatrix::from_strict_lower(&factors.l);
        let u = UpperTriangularMatrix::from_upper(&factors.u);
        let mut lower = ReorderedSolver::new(l.n());
        lower.prepare(&l);
        let upper = UpperSolver::new(u.n()).with_reordering();
        Self { l, u, lower, upper }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.l.n()
    }

    /// The unit lower-triangular factor.
    pub fn l(&self) -> &TriangularMatrix {
        &self.l
    }

    /// The upper-triangular factor.
    pub fn u(&self) -> &UpperTriangularMatrix {
        &self.u
    }

    /// Applies the preconditioner: returns `z = U⁻¹ L⁻¹ r`.
    pub fn apply(&mut self, pool: &ThreadPool, r: &[f64]) -> Result<Vec<f64>, DoacrossError> {
        let (w, _) = self.lower.solve(pool, &self.l, r)?;
        let (z, _) = self.upper.solve(pool, &self.u, &w)?;
        Ok(z)
    }

    /// Sequential reference application (for validation): same two solves
    /// with the scalar kernels.
    pub fn apply_sequential(&self, r: &[f64]) -> Vec<f64> {
        let w = self.l.forward_solve(r);
        self.u.backward_solve(&w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_sparse::spmv::csr_matvec;
    use doacross_sparse::stencil::five_point;
    use doacross_sparse::vec_ops::max_abs_diff;

    #[test]
    fn parallel_apply_matches_sequential_bitwise() {
        let a = five_point(10, 9, 101);
        let mut p = IluPreconditioner::new(&a);
        let pool = ThreadPool::new(4);
        let r: Vec<f64> = (0..p.n()).map(|i| (i % 5) as f64 - 2.0).collect();
        let z_par = p.apply(&pool, &r).unwrap();
        let z_seq = p.apply_sequential(&r);
        assert_eq!(z_par, z_seq);
    }

    #[test]
    fn preconditioner_approximates_inverse() {
        // For a diagonally dominant A, M = (LU)^{-1} should reduce the
        // residual substantially in one Richardson step:
        //   x1 = M^{-1} b  =>  ||b - A x1|| << ||b||.
        let a = five_point(12, 12, 103);
        let mut p = IluPreconditioner::new(&a);
        let pool = ThreadPool::new(2);
        let b = vec![1.0; p.n()];
        let x1 = p.apply(&pool, &b).unwrap();
        let ax1 = csr_matvec(&a, &x1);
        let res = max_abs_diff(&ax1, &b);
        assert!(
            res < 0.5,
            "one preconditioned step should cut the residual: {res}"
        );
    }

    #[test]
    fn apply_is_repeatable() {
        let a = five_point(6, 6, 107);
        let mut p = IluPreconditioner::new(&a);
        let pool = ThreadPool::new(2);
        let r = vec![1.0; p.n()];
        let z1 = p.apply(&pool, &r).unwrap();
        let z2 = p.apply(&pool, &r).unwrap();
        assert_eq!(z1, z2, "scratch reuse must be clean across applications");
    }
}
