//! # doacross-trisolve — sparse triangular solvers (paper §3.2)
//!
//! The paper's application workload: solving unit lower-triangular systems
//! from incomplete factorizations, whose row-to-row dependencies are
//! "determined by the values assigned to the data structure column during
//! program execution" (Figure 7) and therefore invisible to a compiler.
//!
//! Four solvers over the same [`TriangularMatrix`]:
//!
//! * [`seq::solve_sequential`] — Figure 7 verbatim; the paper's `T_seq`.
//! * [`solver::DoacrossSolver`] — the preprocessed doacross solve
//!   (Table 1 column "Preprocessed Doacross"). Because the output subscript
//!   is the identity (`y(i)` ← row `i`), the §2.3 linear-subscript variant
//!   applies: no inspector, no `iter` array.
//! * [`reordered::ReorderedSolver`] — the same executor claiming rows in
//!   the doconsider (wavefront-sorted) order (Table 1 column "Preprocessed
//!   Doacross Iterations Rearranged").
//! * [`level_sched::LevelScheduledSolver`] — a barrier-per-wavefront
//!   solver, the classic alternative, included as an ablation baseline.
//!
//! On top of these, [`cached::EngineSolver`] routes solves through a
//! shared `doacross_engine::Engine`: per-structure execution plans
//! (cost-model selected variant + captured preprocessing) held in a
//! sharded concurrent LRU cache, so repeated solves — the
//! Krylov-iteration workload — skip preprocessing entirely, and one
//! solver instance serves concurrent solve threads through `&self`.
//! (The pre-engine [`cached::PlanCachedSolver`] remains as a deprecated
//! `&mut` shim.)
//!
//! All four produce bit-identical results (same per-row reduction order),
//! which the test suites exploit.
//!
//! [`TriangularMatrix`]: doacross_sparse::TriangularMatrix

// Audit posture: every dereference inside an `unsafe fn` must name its
// own justification in an explicit `unsafe {}` block.
#![deny(unsafe_op_in_unsafe_fn)]
pub mod blocked_solver;
pub mod cached;
pub mod fig7;
pub mod level_sched;
pub mod plan;
pub mod precond;
pub mod reordered;
pub mod seq;
pub mod solver;
pub mod upper;
pub mod verify;

pub use blocked_solver::BlockedSolver;
pub use cached::EngineSolver;
#[allow(deprecated)]
pub use cached::PlanCachedSolver;
pub use fig7::TriSolveLoop;
pub use level_sched::LevelScheduledSolver;
pub use plan::SolvePlan;
pub use precond::IluPreconditioner;
pub use reordered::ReorderedSolver;
pub use solver::DoacrossSolver;
pub use upper::{UpperSolveLoop, UpperSolver};
