//! Strip-mined triangular solve: the §2.3 blocked doacross applied to the
//! §3.2 application.
//!
//! The Figure 7 solve has the identity output subscript, so a block of `B`
//! rows writes exactly the element window `[lo, hi)` — the blocked
//! runtime's scratch arrays shrink from `n` elements to `B`, the paper's
//! memory-reduction claim in its sharpest form. Dependencies reaching into
//! earlier blocks are served from `y` (each block's postprocessing copies
//! results back before the next block starts); within-block dependencies
//! use the flags as usual.

use crate::fig7::TriSolveLoop;
use doacross_core::{BlockedDoacross, DoacrossConfig, DoacrossError, RunStats};
use doacross_par::ThreadPool;
use doacross_sparse::TriangularMatrix;

/// Strip-mined preprocessed-doacross solver with `block_size` rows per
/// outer step.
#[derive(Debug)]
pub struct BlockedSolver {
    runtime: BlockedDoacross,
}

impl BlockedSolver {
    /// Solver executing `block_size` rows per sequential outer step.
    pub fn new(block_size: usize) -> Result<Self, DoacrossError> {
        Self::with_config(block_size, DoacrossConfig::default())
    }

    /// Solver with explicit doacross configuration.
    pub fn with_config(block_size: usize, config: DoacrossConfig) -> Result<Self, DoacrossError> {
        Ok(Self {
            runtime: BlockedDoacross::with_config(block_size, config)?,
        })
    }

    /// Rows per block.
    pub fn block_size(&self) -> usize {
        self.runtime.block_size()
    }

    /// Scratch elements currently allocated — at most `block_size` for the
    /// identity-subscript solve, vs. `n` for the flat solver.
    pub fn scratch_capacity(&self) -> usize {
        self.runtime.scratch_capacity()
    }

    /// Solves `L y = rhs`; bit-identical to the sequential solve.
    pub fn solve(
        &mut self,
        pool: &ThreadPool,
        l: &TriangularMatrix,
        rhs: &[f64],
    ) -> Result<(Vec<f64>, RunStats), DoacrossError> {
        let loop_ = TriSolveLoop::new(l, rhs);
        let mut y = vec![0.0; l.n()];
        let stats = self.runtime.run(pool, &loop_, &mut y)?;
        Ok((y, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_sparse::{ilu0, stencil::five_point};

    fn system(seed: u64) -> (TriangularMatrix, Vec<f64>) {
        let a = five_point(11, 10, seed);
        let l = TriangularMatrix::from_strict_lower(&ilu0(&a).l);
        let rhs: Vec<f64> = (0..l.n()).map(|i| 0.25 + (i % 8) as f64).collect();
        (l, rhs)
    }

    #[test]
    fn blocked_solve_matches_sequential_for_many_block_sizes() {
        let (l, rhs) = system(81);
        let expect = l.forward_solve(&rhs);
        let pool = ThreadPool::new(4);
        for bs in [1usize, 7, 16, 64, 1000] {
            let mut solver = BlockedSolver::new(bs).unwrap();
            let (y, stats) = solver.solve(&pool, &l, &rhs).unwrap();
            assert_eq!(y, expect, "block_size={bs}");
            assert_eq!(stats.blocks, l.n().div_ceil(bs));
        }
    }

    #[test]
    fn scratch_is_block_sized() {
        let (l, rhs) = system(82);
        let pool = ThreadPool::new(2);
        let mut solver = BlockedSolver::new(16).unwrap();
        solver.solve(&pool, &l, &rhs).unwrap();
        assert_eq!(solver.block_size(), 16);
        assert_eq!(
            solver.scratch_capacity(),
            16,
            "identity subscript -> window == block"
        );
        assert!(solver.scratch_capacity() < l.n());
    }

    #[test]
    fn zero_block_rejected() {
        assert!(matches!(
            BlockedSolver::new(0),
            Err(DoacrossError::EmptyBlock)
        ));
    }

    #[test]
    fn solver_is_reusable() {
        let pool = ThreadPool::new(2);
        let mut solver = BlockedSolver::new(32).unwrap();
        for seed in [1u64, 2] {
            let (l, rhs) = system(seed);
            let (y, _) = solver.solve(&pool, &l, &rhs).unwrap();
            assert_eq!(y, l.forward_solve(&rhs), "seed {seed}");
        }
    }
}
