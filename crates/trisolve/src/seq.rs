//! Sequential triangular solve — the paper's `T_seq` baseline.

use doacross_sparse::TriangularMatrix;
use std::time::{Duration, Instant};

/// Figure 7 verbatim: sequential forward substitution. Returns `y`.
pub fn solve_sequential(l: &TriangularMatrix, rhs: &[f64]) -> Vec<f64> {
    l.forward_solve(rhs)
}

/// Timed sequential solve, averaged over `reps` repetitions (the paper
/// reports milliseconds for a single solve; averaging suppresses timer
/// noise on fast systems).
pub fn time_sequential(l: &TriangularMatrix, rhs: &[f64], reps: usize) -> (Vec<f64>, Duration) {
    assert!(reps > 0, "need at least one repetition");
    let mut y = Vec::new();
    let start = Instant::now();
    for _ in 0..reps {
        y = l.forward_solve(rhs);
    }
    (y, start.elapsed() / reps as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_sparse::{ilu0, stencil::five_point, TriangularMatrix};

    #[test]
    fn timed_solve_matches_untimed() {
        let a = five_point(8, 8, 44);
        let l = TriangularMatrix::from_strict_lower(&ilu0(&a).l);
        let rhs: Vec<f64> = (0..l.n()).map(|i| i as f64 * 0.5).collect();
        let (y, t) = time_sequential(&l, &rhs, 3);
        assert_eq!(y, solve_sequential(&l, &rhs));
        assert!(t >= Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_reps_rejected() {
        let a = five_point(2, 2, 1);
        let l = TriangularMatrix::from_strict_lower(&ilu0(&a).l);
        let _ = time_sequential(&l, &[0.0; 4], 0);
    }
}
