//! Level-scheduled (barrier-per-wavefront) triangular solver.
//!
//! The classic alternative to the paper's flag-based doacross: execute one
//! wavefront at a time as a doall, with a join between wavefronts. No
//! per-element `ready` flags or busy waiting — but every level boundary is
//! a full synchronization, so performance degrades when levels are narrow
//! (many levels × few rows). Included as an ablation baseline: the paper's
//! construct and this solver bracket the design space (fine-grained
//! dataflow sync vs. coarse barrier sync) over the same wavefront
//! preprocessing.

use crate::plan::SolvePlan;
use doacross_core::DoacrossError;
use doacross_par::{parallel_for, Schedule, SharedSlice, ThreadPool};
use doacross_sparse::TriangularMatrix;
use std::time::{Duration, Instant};

/// Timing breakdown of a level-scheduled solve.
#[derive(Debug, Clone, Default)]
pub struct LevelSolveStats {
    /// Wavefronts executed.
    pub levels: usize,
    /// Rows solved.
    pub rows: usize,
    /// Total solve wall time (excludes planning).
    pub solve_time: Duration,
}

/// Barrier-synchronized wavefront solver with a cached plan.
#[derive(Debug)]
pub struct LevelScheduledSolver {
    schedule: Schedule,
    plan: Option<SolvePlan>,
}

impl LevelScheduledSolver {
    /// Solver using the default (self-scheduling) intra-level schedule.
    pub fn new() -> Self {
        Self {
            schedule: Schedule::multimax(),
            plan: None,
        }
    }

    /// Solver with an explicit intra-level schedule.
    pub fn with_schedule(schedule: Schedule) -> Self {
        Self {
            schedule,
            plan: None,
        }
    }

    /// Computes (or recomputes) and caches the wavefront plan for `l`.
    pub fn prepare(&mut self, l: &TriangularMatrix) -> &SolvePlan {
        self.plan = Some(SolvePlan::for_matrix(l));
        self.plan.as_ref().expect("just set")
    }

    /// The cached plan, if any.
    pub fn plan(&self) -> Option<&SolvePlan> {
        self.plan.as_ref()
    }

    /// Solves `L y = rhs` one wavefront at a time. Bit-identical to the
    /// sequential solve (same per-row reduction order).
    pub fn solve(
        &mut self,
        pool: &ThreadPool,
        l: &TriangularMatrix,
        rhs: &[f64],
    ) -> Result<(Vec<f64>, LevelSolveStats), DoacrossError> {
        if rhs.len() != l.n() {
            return Err(DoacrossError::DataLenMismatch {
                got: rhs.len(),
                expected: l.n(),
            });
        }
        if self
            .plan
            .as_ref()
            .map(|p| p.order.len() != l.n())
            .unwrap_or(true)
        {
            self.prepare(l);
        }
        let plan = self.plan.as_ref().expect("plan prepared");
        let mut y = vec![0.0; l.n()];
        let start = Instant::now();
        {
            let y_view = SharedSlice::new(&mut y);
            for level in 1..=plan.critical_path() {
                let range = plan.level_range(level);
                let order = &plan.order[range];
                // Doall over one wavefront: every row's dependencies are in
                // earlier wavefronts, already completed and published by the
                // previous region's join.
                parallel_for(pool, order.len(), self.schedule, |k| {
                    let i = order[k];
                    let mut acc = rhs[i];
                    for (&col, &coeff) in l.row_cols(i).iter().zip(l.row_values(i)) {
                        // SAFETY: col's level < i's level; its write was
                        // ordered by the previous parallel_for join. Writes
                        // within a level are disjoint (one row per k).
                        acc -= coeff * unsafe { y_view.read(col) };
                    }
                    // SAFETY: row i belongs to exactly one wavefront slot.
                    unsafe { y_view.write(i, acc) };
                });
            }
        }
        let stats = LevelSolveStats {
            levels: plan.critical_path(),
            rows: l.n(),
            solve_time: start.elapsed(),
        };
        Ok((y, stats))
    }
}

impl Default for LevelScheduledSolver {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_sparse::{ilu0, stencil::seven_point, CsrMatrix, TriangularMatrix};

    fn system(seed: u64) -> (TriangularMatrix, Vec<f64>) {
        let a = seven_point(5, 4, 3, seed);
        let l = TriangularMatrix::from_strict_lower(&ilu0(&a).l);
        let rhs: Vec<f64> = (0..l.n()).map(|i| 0.5 + (i % 13) as f64).collect();
        (l, rhs)
    }

    #[test]
    fn matches_sequential_bitwise() {
        let (l, rhs) = system(61);
        let pool = ThreadPool::new(4);
        let mut solver = LevelScheduledSolver::new();
        let (y, stats) = solver.solve(&pool, &l, &rhs).unwrap();
        assert_eq!(y, l.forward_solve(&rhs));
        assert_eq!(stats.rows, l.n());
        assert_eq!(stats.levels, SolvePlan::for_matrix(&l).critical_path());
    }

    #[test]
    fn all_schedules_agree() {
        let (l, rhs) = system(62);
        let pool = ThreadPool::new(3);
        let expect = l.forward_solve(&rhs);
        for schedule in [
            Schedule::StaticBlock,
            Schedule::StaticCyclic,
            Schedule::Dynamic { chunk: 2 },
        ] {
            let mut solver = LevelScheduledSolver::with_schedule(schedule);
            let (y, _) = solver.solve(&pool, &l, &rhs).unwrap();
            assert_eq!(y, expect, "{schedule:?}");
        }
    }

    #[test]
    fn rhs_length_checked() {
        let (l, _) = system(63);
        let pool = ThreadPool::new(2);
        let mut solver = LevelScheduledSolver::new();
        let bad = vec![0.0; 3];
        assert!(matches!(
            solver.solve(&pool, &l, &bad),
            Err(DoacrossError::DataLenMismatch { .. })
        ));
    }

    #[test]
    fn diagonal_system_single_level() {
        let m = CsrMatrix::from_parts(6, 6, vec![0; 7], vec![], vec![]);
        let l = TriangularMatrix::from_strict_lower(&m);
        let pool = ThreadPool::new(2);
        let mut solver = LevelScheduledSolver::new();
        let rhs = vec![2.0; 6];
        let (y, stats) = solver.solve(&pool, &l, &rhs).unwrap();
        assert_eq!(y, rhs);
        assert_eq!(stats.levels, 1);
    }
}
