//! The Figure 7 loop as a [`DoacrossLoop`].
//!
//! ```fortran
//! do i = 1, n
//!     y(i) = rhs(i)
//!     do j = low(i), high(i)
//!         y(i) = y(i) - a(j) * y(column(j))
//!     end do
//! end do
//! ```
//!
//! Mapping onto the doacross traits: `lhs(i) = i` (identity — the §2.3
//! linear subscript with `c = 1, d = 0`), `term_element(i, j) =
//! column(low(i) + j)`, `init(i, _) = rhs(i)`, and
//! `combine = acc − a(j)·operand`. Every reference is a true dependency
//! (`column(j) < i` in a strictly lower-triangular structure), so the
//! executor's three-way check always takes the S3–S5 branch — the paper's
//! triangular solve is the pure-waiting stress case for the construct.

use doacross_core::{AccessPattern, DoacrossLoop, LinearSubscript};
use doacross_sparse::TriangularMatrix;
use std::ops::Range;

/// Borrowing adapter: a `(L, rhs)` pair viewed as a doacross loop over rows.
#[derive(Debug, Clone, Copy)]
pub struct TriSolveLoop<'a> {
    l: &'a TriangularMatrix,
    rhs: &'a [f64],
}

impl<'a> TriSolveLoop<'a> {
    /// Wraps the system `L y = rhs`.
    ///
    /// # Panics
    /// Panics if `rhs.len() != l.n()`.
    pub fn new(l: &'a TriangularMatrix, rhs: &'a [f64]) -> Self {
        assert_eq!(rhs.len(), l.n(), "rhs length must match the matrix");
        Self { l, rhs }
    }

    /// The identity output subscript (`a(i) = i`) — hands the solver the
    /// paper's inspector-free fast path.
    pub fn subscript() -> LinearSubscript {
        LinearSubscript::new(1, 0)
    }

    /// The wrapped matrix.
    pub fn matrix(&self) -> &TriangularMatrix {
        self.l
    }
}

impl AccessPattern for TriSolveLoop<'_> {
    #[inline]
    fn iterations(&self) -> usize {
        self.l.n()
    }

    #[inline]
    fn data_len(&self) -> usize {
        self.l.n()
    }

    #[inline]
    fn lhs(&self, i: usize) -> usize {
        i
    }

    #[inline]
    fn terms(&self, i: usize) -> usize {
        self.l.high(i) - self.l.low(i)
    }

    #[inline]
    fn term_element(&self, i: usize, j: usize) -> usize {
        self.l.column()[self.l.low(i) + j]
    }

    fn block_window(&self, iter_range: Range<usize>) -> Range<usize> {
        // Identity lhs: the write window is the iteration range itself.
        iter_range
    }
}

impl DoacrossLoop for TriSolveLoop<'_> {
    #[inline]
    fn init(&self, i: usize, _old_lhs: f64) -> f64 {
        self.rhs[i]
    }

    #[inline]
    fn combine(&self, i: usize, j: usize, acc: f64, operand: f64) -> f64 {
        acc - self.l.coeff()[self.l.low(i) + j] * operand
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_core::seq::run_sequential;
    use doacross_sparse::{ilu0, stencil::five_point, CsrMatrix};

    fn small() -> (TriangularMatrix, Vec<f64>) {
        let a = five_point(6, 6, 33);
        let l = TriangularMatrix::from_strict_lower(&ilu0(&a).l);
        let rhs: Vec<f64> = (0..l.n()).map(|i| 1.0 + (i % 5) as f64).collect();
        (l, rhs)
    }

    #[test]
    fn adapter_shape_matches_matrix() {
        let (l, rhs) = small();
        let loop_ = TriSolveLoop::new(&l, &rhs);
        assert_eq!(loop_.iterations(), 36);
        assert_eq!(loop_.data_len(), 36);
        for i in 0..l.n() {
            assert_eq!(loop_.lhs(i), i);
            assert_eq!(loop_.terms(i), l.row_cols(i).len());
            for (j, &col) in l.row_cols(i).iter().enumerate() {
                assert_eq!(loop_.term_element(i, j), col);
            }
        }
    }

    #[test]
    fn sequential_oracle_equals_forward_solve() {
        // run_sequential over the adapter must reproduce the matrix's own
        // forward substitution bit for bit (same reduction order).
        let (l, rhs) = small();
        let loop_ = TriSolveLoop::new(&l, &rhs);
        let mut y = vec![0.0; l.n()];
        run_sequential(&loop_, &mut y);
        assert_eq!(y, l.forward_solve(&rhs));
    }

    #[test]
    fn block_window_is_iteration_range() {
        let (l, rhs) = small();
        let loop_ = TriSolveLoop::new(&l, &rhs);
        assert_eq!(loop_.block_window(3..9), 3..9);
    }

    #[test]
    fn subscript_is_identity() {
        let s = TriSolveLoop::subscript();
        assert_eq!(s.at(0), 0);
        assert_eq!(s.at(41), 41);
    }

    #[test]
    #[should_panic(expected = "rhs length")]
    fn mismatched_rhs_rejected() {
        let m = CsrMatrix::from_parts(2, 2, vec![0, 0, 1], vec![0], vec![1.0]);
        let l = TriangularMatrix::from_strict_lower(&m);
        let rhs = vec![1.0];
        let _ = TriSolveLoop::new(&l, &rhs);
    }
}
