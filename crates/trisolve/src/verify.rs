//! Solution verification helpers shared by tests, examples and benches.

use doacross_sparse::{vec_ops::max_abs_diff, TriangularMatrix};

/// Max-norm residual `‖L y − rhs‖_∞` (unit diagonal included in `L y`).
pub fn residual(l: &TriangularMatrix, y: &[f64], rhs: &[f64]) -> f64 {
    max_abs_diff(&l.matvec(y), rhs)
}

/// Asserts that `y` solves `L y = rhs` to within `tol` (relative to the
/// right-hand side's magnitude) — panics with a diagnostic otherwise.
pub fn assert_solves(l: &TriangularMatrix, y: &[f64], rhs: &[f64], tol: f64) {
    let r = residual(l, y, rhs);
    let scale = rhs.iter().fold(1.0f64, |m, v| m.max(v.abs()));
    assert!(
        r <= tol * scale,
        "residual {r} exceeds tolerance {tol} (scale {scale})"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_sparse::{ilu0, stencil::five_point};

    #[test]
    fn residual_zero_for_exact_solve() {
        let a = five_point(7, 7, 91);
        let l = TriangularMatrix::from_strict_lower(&ilu0(&a).l);
        let rhs: Vec<f64> = (0..l.n()).map(|i| i as f64).collect();
        let y = l.forward_solve(&rhs);
        assert!(residual(&l, &y, &rhs) < 1e-9);
        assert_solves(&l, &y, &rhs, 1e-9);
    }

    #[test]
    #[should_panic(expected = "exceeds tolerance")]
    fn bad_solution_detected() {
        let a = five_point(4, 4, 92);
        let l = TriangularMatrix::from_strict_lower(&ilu0(&a).l);
        let rhs = vec![1.0; l.n()];
        let wrong = vec![9.0; l.n()];
        assert_solves(&l, &wrong, &rhs, 1e-9);
    }
}
