//! Backward substitution (`U x = rhs`) as a preprocessed doacross —
//! extending the paper's Figure 7 forward solve to the other half of an
//! ILU preconditioner application.
//!
//! In a backward solve, row `i` depends on rows `j > i`: dependencies point
//! *forward* in row order, which a doacross cannot wait on. The fix is an
//! index reversal: iterate `k = 0..n` over rows `i = n−1−k`. In `k`-space
//! every dependency points backward again (`row j > i` ⇔ `iteration
//! n−1−j < k`), so the unmodified executor machinery applies. The non-unit
//! diagonal division is the [`DoacrossLoop::finish`] hook.

use crate::plan::SolvePlan;
use doacross_core::{
    AccessPattern, Doacross, DoacrossConfig, DoacrossError, DoacrossLoop, RunStats,
};
use doacross_doconsider::{reorder::order_from_levels, DependenceDag, LevelAssignment};
use doacross_par::ThreadPool;
use doacross_sparse::UpperTriangularMatrix;
use std::ops::Range;
use std::time::Instant;

/// The backward solve viewed as a doacross loop over reversed rows.
#[derive(Debug, Clone, Copy)]
pub struct UpperSolveLoop<'a> {
    u: &'a UpperTriangularMatrix,
    rhs: &'a [f64],
}

impl<'a> UpperSolveLoop<'a> {
    /// Wraps the system `U x = rhs`.
    ///
    /// # Panics
    /// Panics if `rhs.len() != u.n()`.
    pub fn new(u: &'a UpperTriangularMatrix, rhs: &'a [f64]) -> Self {
        assert_eq!(rhs.len(), u.n(), "rhs length must match the matrix");
        Self { u, rhs }
    }

    /// Row solved by iteration `k`.
    #[inline]
    fn row(&self, k: usize) -> usize {
        self.u.n() - 1 - k
    }
}

impl AccessPattern for UpperSolveLoop<'_> {
    #[inline]
    fn iterations(&self) -> usize {
        self.u.n()
    }

    #[inline]
    fn data_len(&self) -> usize {
        self.u.n()
    }

    /// Iteration `k` writes `x[n−1−k]` — injective, reversed identity.
    #[inline]
    fn lhs(&self, k: usize) -> usize {
        self.row(k)
    }

    #[inline]
    fn terms(&self, k: usize) -> usize {
        let i = self.row(k);
        self.u.row_cols(i).len()
    }

    #[inline]
    fn term_element(&self, k: usize, j: usize) -> usize {
        self.u.row_cols(self.row(k))[j]
    }

    fn block_window(&self, iter_range: Range<usize>) -> Range<usize> {
        if iter_range.is_empty() {
            return 0..0;
        }
        // lhs decreases with k: window is [row(end-1), row(start)].
        self.row(iter_range.end - 1)..self.row(iter_range.start) + 1
    }
}

impl DoacrossLoop for UpperSolveLoop<'_> {
    #[inline]
    fn init(&self, k: usize, _old_lhs: f64) -> f64 {
        self.rhs[self.row(k)]
    }

    #[inline]
    fn combine(&self, k: usize, j: usize, acc: f64, operand: f64) -> f64 {
        let i = self.row(k);
        acc - self.u.row_values(i)[j] * operand
    }

    /// The backward solve's diagonal division.
    #[inline]
    fn finish(&self, k: usize, acc: f64) -> f64 {
        acc / self.u.diag()[self.row(k)]
    }
}

/// Preprocessed-doacross backward solver, with an optional cached
/// doconsider reordering (in `k`-space).
#[derive(Debug)]
pub struct UpperSolver {
    runtime: Doacross,
    plan: Option<SolvePlan>,
    reorder: bool,
}

impl UpperSolver {
    /// Solver for systems up to dimension `n`, natural (reversed-row)
    /// claim order.
    pub fn new(n: usize) -> Self {
        Self::with_config(n, DoacrossConfig::default())
    }

    /// Solver with explicit configuration.
    pub fn with_config(n: usize, config: DoacrossConfig) -> Self {
        Self {
            runtime: Doacross::with_config(n, config),
            plan: None,
            reorder: false,
        }
    }

    /// Enables the doconsider (wavefront-sorted) claim order; the plan is
    /// computed on first solve and cached.
    pub fn with_reordering(mut self) -> Self {
        self.reorder = true;
        self
    }

    /// The cached plan, if reordering is enabled and a solve has run.
    pub fn plan(&self) -> Option<&SolvePlan> {
        self.plan.as_ref()
    }

    fn plan_for(&mut self, u: &UpperTriangularMatrix) -> &SolvePlan {
        let needs = self
            .plan
            .as_ref()
            .map(|p| p.order.len() != u.n())
            .unwrap_or(true);
        if needs {
            let start = Instant::now();
            let n = u.n();
            // Predecessors in k-space: iteration k depends on iterations
            // n-1-j for every stored column j of row n-1-k.
            let dag = DependenceDag::from_predecessors(n, |k| {
                let i = n - 1 - k;
                u.row_cols(i).iter().map(move |&j| n - 1 - j)
            });
            let levels = LevelAssignment::compute(&dag);
            let order = order_from_levels(&levels);
            let histogram = doacross_doconsider::level_histogram(&levels);
            self.plan = Some(SolvePlan {
                levels,
                order,
                histogram,
                planning_time: start.elapsed(),
            });
        }
        self.plan.as_ref().expect("plan prepared")
    }

    /// Solves `U x = rhs` in parallel; bit-identical to
    /// [`UpperTriangularMatrix::backward_solve`].
    pub fn solve(
        &mut self,
        pool: &ThreadPool,
        u: &UpperTriangularMatrix,
        rhs: &[f64],
    ) -> Result<(Vec<f64>, RunStats), DoacrossError> {
        let loop_ = UpperSolveLoop::new(u, rhs);
        let mut x = vec![0.0; u.n()];
        let stats = if self.reorder {
            let order = self.plan_for(u).order.clone();
            self.runtime
                .run_with_order(pool, &loop_, &mut x, Some(&order))?
        } else {
            self.runtime.run(pool, &loop_, &mut x)?
        };
        Ok((x, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_core::seq::run_sequential;
    use doacross_sparse::{ilu0, stencil::five_point, CsrMatrix};

    fn system(seed: u64) -> (UpperTriangularMatrix, Vec<f64>) {
        let a = five_point(9, 8, seed);
        let u = UpperTriangularMatrix::from_upper(&ilu0(&a).u);
        let rhs: Vec<f64> = (0..u.n()).map(|i| 1.0 + (i % 6) as f64 * 0.5).collect();
        (u, rhs)
    }

    #[test]
    fn sequential_oracle_equals_backward_solve() {
        let (u, rhs) = system(71);
        let loop_ = UpperSolveLoop::new(&u, &rhs);
        let mut x = vec![0.0; u.n()];
        run_sequential(&loop_, &mut x);
        assert_eq!(x, u.backward_solve(&rhs));
    }

    #[test]
    fn parallel_solver_matches_bitwise() {
        let (u, rhs) = system(72);
        let expect = u.backward_solve(&rhs);
        let pool = ThreadPool::new(4);
        let mut solver = UpperSolver::new(u.n());
        let (x, stats) = solver.solve(&pool, &u, &rhs).unwrap();
        assert_eq!(x, expect);
        assert_eq!(stats.deps.true_deps, u.nnz() as u64);
    }

    #[test]
    fn reordered_solver_matches_and_reduces_stalls_structurally() {
        let (u, rhs) = system(73);
        let expect = u.backward_solve(&rhs);
        let pool = ThreadPool::new(4);
        let mut solver = UpperSolver::new(u.n()).with_reordering();
        let (x, _) = solver.solve(&pool, &u, &rhs).unwrap();
        assert_eq!(x, expect);
        let plan = solver.plan().expect("plan cached");
        assert!(plan.critical_path() >= 1);
        assert_eq!(plan.order.len(), u.n());
    }

    #[test]
    fn diagonal_only_system() {
        let m = CsrMatrix::from_parts(3, 3, vec![0, 1, 2, 3], vec![0, 1, 2], vec![2.0, 4.0, 8.0]);
        let u = UpperTriangularMatrix::from_upper(&m);
        let pool = ThreadPool::new(2);
        let mut solver = UpperSolver::new(3);
        let (x, stats) = solver.solve(&pool, &u, &[2.0, 4.0, 8.0]).unwrap();
        assert_eq!(x, vec![1.0, 1.0, 1.0]);
        assert_eq!(stats.deps.total(), 0);
    }

    #[test]
    fn block_window_covers_reversed_lhs() {
        let (u, rhs) = system(74);
        let loop_ = UpperSolveLoop::new(&u, &rhs);
        let w = loop_.block_window(3..9);
        for k in 3..9 {
            assert!(w.contains(&loop_.lhs(k)));
        }
    }
}
