//! The preprocessed-doacross triangular solver (Table 1, column
//! "Preprocessed Doacross").

use crate::fig7::TriSolveLoop;
use doacross_core::{Doacross, DoacrossConfig, DoacrossError, LinearDoacross, RunStats};
use doacross_par::ThreadPool;
use doacross_sparse::TriangularMatrix;

/// Which doacross machinery backs the solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverBackend {
    /// §2.3 linear-subscript fast path (`a(i) = i`): no inspector, no
    /// `iter` array. The natural choice for Figure 7 and the default.
    Linear,
    /// Full inspector/executor pipeline — what a compiler that cannot see
    /// the identity subscript would emit. Kept for overhead ablations.
    Inspected,
}

/// Reusable preprocessed-doacross solver for unit lower-triangular systems.
///
/// ```
/// use doacross_par::ThreadPool;
/// use doacross_sparse::{ilu0, stencil::five_point, TriangularMatrix};
/// use doacross_trisolve::DoacrossSolver;
///
/// let a = five_point(8, 8, 7);
/// let l = TriangularMatrix::from_strict_lower(&ilu0(&a).l);
/// let rhs = vec![1.0; l.n()];
/// let pool = ThreadPool::new(2);
/// let mut solver = DoacrossSolver::new(l.n());
/// let (y, _stats) = solver.solve(&pool, &l, &rhs).unwrap();
/// assert_eq!(y, l.forward_solve(&rhs));
/// ```
#[derive(Debug)]
pub struct DoacrossSolver {
    backend: SolverBackend,
    linear: LinearDoacross,
    inspected: Doacross,
}

impl DoacrossSolver {
    /// Solver for systems up to dimension `n`, linear backend, default
    /// configuration.
    pub fn new(n: usize) -> Self {
        Self::with_config(n, SolverBackend::Linear, DoacrossConfig::default())
    }

    /// Solver with an explicit backend and configuration.
    pub fn with_config(n: usize, backend: SolverBackend, config: DoacrossConfig) -> Self {
        Self {
            backend,
            linear: LinearDoacross::with_config(n, config),
            inspected: Doacross::with_config(n, config),
        }
    }

    /// The backend in use.
    pub fn backend(&self) -> SolverBackend {
        self.backend
    }

    /// Selects the backend (useful for ablations on one allocation).
    pub fn set_backend(&mut self, backend: SolverBackend) {
        self.backend = backend;
    }

    /// Solves `L y = rhs` in parallel; returns `y` and the run statistics.
    ///
    /// The result is bit-identical to [`TriangularMatrix::forward_solve`]:
    /// each row performs the same reduction in the same order, only the
    /// cross-row schedule differs.
    pub fn solve(
        &mut self,
        pool: &ThreadPool,
        l: &TriangularMatrix,
        rhs: &[f64],
    ) -> Result<(Vec<f64>, RunStats), DoacrossError> {
        self.solve_ordered(pool, l, rhs, None)
    }

    /// Solves claiming rows in `order` (a topological permutation, e.g.
    /// from `SolvePlan`); `None` claims rows in natural order.
    pub fn solve_ordered(
        &mut self,
        pool: &ThreadPool,
        l: &TriangularMatrix,
        rhs: &[f64],
        order: Option<&[usize]>,
    ) -> Result<(Vec<f64>, RunStats), DoacrossError> {
        let loop_ = TriSolveLoop::new(l, rhs);
        // The executor's `init` ignores the old value (it seeds from rhs),
        // so y's initial contents are arbitrary.
        let mut y = vec![0.0; l.n()];
        let stats = match self.backend {
            SolverBackend::Linear => self.linear.run_with_order(
                pool,
                &loop_,
                TriSolveLoop::subscript(),
                &mut y,
                order,
            )?,
            SolverBackend::Inspected => {
                self.inspected.run_with_order(pool, &loop_, &mut y, order)?
            }
        };
        Ok((y, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_sparse::{ilu0, stencil::five_point, vec_ops::max_abs_diff, CsrMatrix};

    fn grid_system(nx: usize, ny: usize, seed: u64) -> (TriangularMatrix, Vec<f64>) {
        let a = five_point(nx, ny, seed);
        let l = TriangularMatrix::from_strict_lower(&ilu0(&a).l);
        let rhs: Vec<f64> = (0..l.n()).map(|i| 1.0 + (i % 9) as f64 * 0.25).collect();
        (l, rhs)
    }

    #[test]
    fn both_backends_match_sequential_bitwise() {
        let (l, rhs) = grid_system(12, 10, 77);
        let expect = l.forward_solve(&rhs);
        let pool = ThreadPool::new(4);
        for backend in [SolverBackend::Linear, SolverBackend::Inspected] {
            let mut solver = DoacrossSolver::with_config(l.n(), backend, DoacrossConfig::default());
            let (y, stats) = solver.solve(&pool, &l, &rhs).unwrap();
            assert_eq!(y, expect, "{backend:?}");
            assert_eq!(stats.iterations, l.n());
            assert_eq!(
                stats.deps.true_deps,
                l.nnz() as u64,
                "every off-diagonal is a true dependency ({backend:?})"
            );
        }
    }

    #[test]
    fn solver_is_reusable_across_systems() {
        let pool = ThreadPool::new(2);
        let mut solver = DoacrossSolver::new(0);
        for seed in [1u64, 2, 3] {
            let (l, rhs) = grid_system(9, 7, seed);
            let (y, _) = solver.solve(&pool, &l, &rhs).unwrap();
            assert!(
                max_abs_diff(&y, &l.forward_solve(&rhs)) == 0.0,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn single_worker_solve_works() {
        let (l, rhs) = grid_system(6, 6, 5);
        let pool = ThreadPool::new(1);
        let mut solver = DoacrossSolver::new(l.n());
        let (y, _) = solver.solve(&pool, &l, &rhs).unwrap();
        assert_eq!(y, l.forward_solve(&rhs));
    }

    #[test]
    fn diagonal_system_is_trivially_parallel() {
        let m = CsrMatrix::from_parts(5, 5, vec![0; 6], vec![], vec![]);
        let l = TriangularMatrix::from_strict_lower(&m);
        let rhs = vec![3.0; 5];
        let pool = ThreadPool::new(2);
        let mut solver = DoacrossSolver::new(5);
        let (y, stats) = solver.solve(&pool, &l, &rhs).unwrap();
        assert_eq!(y, rhs);
        assert_eq!(stats.deps.total(), 0);
        assert_eq!(stats.stalls, 0);
    }

    #[test]
    fn backend_switching() {
        let (l, rhs) = grid_system(5, 5, 9);
        let pool = ThreadPool::new(2);
        let mut solver = DoacrossSolver::new(l.n());
        assert_eq!(solver.backend(), SolverBackend::Linear);
        let (y1, _) = solver.solve(&pool, &l, &rhs).unwrap();
        solver.set_backend(SolverBackend::Inspected);
        let (y2, _) = solver.solve(&pool, &l, &rhs).unwrap();
        assert_eq!(y1, y2);
    }
}
