//! Plan-cached triangular solves: the Krylov-iteration fast path.
//!
//! A preconditioned iterative solver calls the triangular solve once (or
//! twice) per iteration on a **fixed** sparsity structure with changing
//! right-hand sides — the exact workload the paper's amortization argument
//! is about. [`EngineSolver`] routes each solve through a shared
//! [`doacross_engine::Engine`]: the first solve of a structure
//! fingerprints it, runs the cost model, and caches the chosen variant's
//! preprocessing products; every subsequent solve of that structure (any
//! rhs — the fingerprint covers index arrays only) skips inspection,
//! dependence analysis, and ordering entirely, observable via
//! [`doacross_core::PlanProvenance::PlanCached`] in the returned stats.
//!
//! Unlike [`crate::ReorderedSolver`], which pins one strategy and one
//! structure, the engine holds a sharded LRU of plans across *many*
//! structures — e.g. the L and U factors of several preconditioners in one
//! service — and because every entry point is `&self`, one solver instance
//! serves concurrent solve threads without external locking.
//!
//! [`PlanCachedSolver`] is the pre-engine `&mut` API, kept as a thin
//! deprecated shim over a private engine.

use crate::fig7::TriSolveLoop;
use doacross_core::{DoacrossConfig, DoacrossError, RunStats};
use doacross_engine::{Engine, EngineError, PreparedLoop};
use doacross_par::ThreadPool;
use doacross_plan::{CacheStats, Planner};
use doacross_sparse::TriangularMatrix;

/// Thread-safe preprocessed-doacross triangular solver over a shared
/// [`Engine`] (see module docs).
///
/// ```
/// use doacross_engine::Engine;
/// use doacross_sparse::{ilu0, stencil::five_point, TriangularMatrix};
/// use doacross_trisolve::EngineSolver;
/// use doacross_core::PlanProvenance;
///
/// let a = five_point(8, 8, 3);
/// let l = TriangularMatrix::from_strict_lower(&ilu0(&a).l);
/// let solver = EngineSolver::new(Engine::builder().workers(2).build());
///
/// let rhs1 = vec![1.0; l.n()];
/// let (y1, cold) = solver.solve(&l, &rhs1).unwrap();
/// assert_eq!(y1, l.forward_solve(&rhs1));
/// assert_eq!(cold.provenance, PlanProvenance::PlanCold);
///
/// // A different rhs on the same structure hits the cached plan.
/// let rhs2: Vec<f64> = (0..l.n()).map(|i| (i % 7) as f64).collect();
/// let (y2, hot) = solver.solve(&l, &rhs2).unwrap();
/// assert_eq!(y2, l.forward_solve(&rhs2));
/// assert_eq!(hot.provenance, PlanProvenance::PlanCached);
/// ```
#[derive(Debug, Clone)]
pub struct EngineSolver {
    engine: Engine,
}

impl EngineSolver {
    /// Solver over `engine` — typically a clone of a session-wide engine,
    /// so triangular solves share the pool and plan cache with everything
    /// else the service runs.
    pub fn new(engine: Engine) -> Self {
        Self { engine }
    }

    /// Solver over `engine`, warm-started from the plan store at `path`:
    /// structures solved (and saved) by a previous process start cached,
    /// so the first solve after a restart skips preprocessing. A missing
    /// file is a clean cold start; a corrupt, truncated, or
    /// version-mismatched store fails with
    /// [`doacross_engine::EngineError::Persist`].
    pub fn with_warm_start(
        engine: Engine,
        path: impl AsRef<std::path::Path>,
    ) -> Result<Self, EngineError> {
        engine.warm_start_plans(path)?;
        Ok(Self { engine })
    }

    /// Checkpoints the engine's plan cache to `path` (see
    /// [`doacross_engine::Engine::save_plans`]); returns the number of
    /// plans saved.
    pub fn save_plans(&self, path: impl AsRef<std::path::Path>) -> Result<usize, EngineError> {
        self.engine.save_plans(path)
    }

    /// Solves `L y = rhs`; returns `y` (bit-identical to
    /// [`TriangularMatrix::forward_solve`]) and the run statistics, whose
    /// `provenance` field tells whether this solve reused a cached plan.
    pub fn solve(
        &self,
        l: &TriangularMatrix,
        rhs: &[f64],
    ) -> Result<(Vec<f64>, RunStats), EngineError> {
        let loop_ = TriSolveLoop::new(l, rhs);
        // The executor's `init` seeds from rhs, so y's initial contents are
        // arbitrary.
        let mut y = vec![0.0; l.n()];
        let stats = self.engine.run(&loop_, &mut y)?;
        Ok((y, stats))
    }

    /// Resolves the structure of `l` to a reusable [`PreparedLoop`] handle
    /// without solving. The handle is keyed on the sparsity structure
    /// alone, so it executes any [`TriSolveLoop`] over `l` regardless of
    /// rhs.
    pub fn prepare(&self, l: &TriangularMatrix) -> Result<PreparedLoop, EngineError> {
        // Fingerprints are value-blind: a zero rhs carries the structure.
        let rhs = vec![0.0; l.n()];
        self.engine.prepare(&TriSolveLoop::new(l, &rhs))
    }

    /// The shared engine (plan/cache introspection, invalidation).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Plan-cache traffic counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.engine.cache_stats()
    }
}

/// Pre-engine plan-cached solver: `&mut self`, caller-supplied pool.
///
/// Kept as a compatibility shim: internally it lazily builds a private
/// [`Engine`] sized to the worker count of the pool passed to
/// [`PlanCachedSolver::solve`] (solves run on the engine's own workers;
/// the passed pool only determines the count, and a count change rebuilds
/// the engine, dropping cached plans). New code should construct an
/// [`EngineSolver`] over a shared engine instead.
#[deprecated(
    since = "0.1.0",
    note = "use EngineSolver over a shared doacross_engine::Engine; this shim \
            spawns a private engine per worker-count and cannot be shared \
            across threads"
)]
#[derive(Debug)]
pub struct PlanCachedSolver {
    cache_capacity: usize,
    planner: Planner,
    config: DoacrossConfig,
    engine: Option<Engine>,
}

#[allow(deprecated)]
impl PlanCachedSolver {
    /// Solver holding up to `cache_capacity` structure plans.
    pub fn new(cache_capacity: usize) -> Self {
        Self::with_parts(cache_capacity, Planner::new(), DoacrossConfig::default())
    }

    /// Solver with an explicit planner (e.g. host-calibrated costs) and
    /// doacross configuration.
    pub fn with_parts(cache_capacity: usize, planner: Planner, config: DoacrossConfig) -> Self {
        Self {
            cache_capacity,
            planner,
            config,
            engine: None,
        }
    }

    /// Solves `L y = rhs`; see [`EngineSolver::solve`]. `pool` supplies
    /// the worker count the internal engine runs with.
    pub fn solve(
        &mut self,
        pool: &ThreadPool,
        l: &TriangularMatrix,
        rhs: &[f64],
    ) -> Result<(Vec<f64>, RunStats), DoacrossError> {
        let workers = pool.threads();
        if self.engine.as_ref().is_none_or(|e| e.threads() != workers) {
            self.engine = Some(
                Engine::builder()
                    .workers(workers)
                    .cache_capacity(self.cache_capacity)
                    .planner(self.planner.clone())
                    .config(self.config)
                    .build(),
            );
        }
        let engine = self.engine.as_ref().expect("just ensured");
        let loop_ = TriSolveLoop::new(l, rhs);
        let mut y = vec![0.0; l.n()];
        match engine.run(&loop_, &mut y) {
            Ok(stats) => Ok((y, stats)),
            Err(EngineError::Doacross(err)) => Err(err),
            Err(
                EngineError::StalePlan { .. }
                | EngineError::Persist(_)
                | EngineError::Saturated { .. }
                | EngineError::Unsound(_)
                | EngineError::SolvePanicked { .. }
                | EngineError::SolveTimeout { .. },
            ) => {
                unreachable!(
                    "the shim never invalidates, warm-starts, saturates, or explicitly \
                     verifies its private engine (default admission bounds are far above \
                     one caller, and run() does not call verify_plan); fault containment \
                     cannot surface either: no solve deadline is configured and the \
                     default sequential fallback absorbs worker panics"
                )
            }
        }
    }

    /// Plan-cache traffic counters (zeroed until the first solve).
    pub fn cache_stats(&self) -> CacheStats {
        self.engine
            .as_ref()
            .map(Engine::cache_stats)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_core::PlanProvenance;
    use doacross_sparse::{ilu0, stencil::five_point, vec_ops::max_abs_diff};

    fn grid_factor(nx: usize, ny: usize, seed: u64) -> TriangularMatrix {
        TriangularMatrix::from_strict_lower(&ilu0(&five_point(nx, ny, seed)).l)
    }

    fn solver(workers: usize, capacity: usize) -> EngineSolver {
        EngineSolver::new(
            Engine::builder()
                .workers(workers)
                .cache_capacity(capacity)
                .build(),
        )
    }

    #[test]
    fn repeated_solves_hit_the_cache_and_stay_exact() {
        let l = grid_factor(12, 10, 7);
        let solver = solver(4, 4);
        for round in 0..5 {
            let rhs: Vec<f64> = (0..l.n())
                .map(|i| 1.0 + ((i + round) % 9) as f64 * 0.25)
                .collect();
            let (y, stats) = solver.solve(&l, &rhs).unwrap();
            assert_eq!(y, l.forward_solve(&rhs), "round {round}");
            if round == 0 {
                assert_eq!(stats.provenance, PlanProvenance::PlanCold);
            } else {
                assert_eq!(
                    stats.provenance,
                    PlanProvenance::PlanCached,
                    "round {round}"
                );
                assert_eq!(stats.inspector, std::time::Duration::ZERO);
            }
        }
        let s = solver.cache_stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 4);
    }

    #[test]
    fn multiple_structures_share_one_solver() {
        let solver = solver(2, 8);
        let factors: Vec<TriangularMatrix> = [(9, 7, 1u64), (8, 8, 2), (6, 11, 3)]
            .iter()
            .map(|&(nx, ny, s)| grid_factor(nx, ny, s))
            .collect();
        // Interleave solves across structures: each structure planned once.
        for round in 0..3 {
            for l in &factors {
                let rhs = vec![1.0 + round as f64; l.n()];
                let (y, _) = solver.solve(l, &rhs).unwrap();
                assert!(max_abs_diff(&y, &l.forward_solve(&rhs)) == 0.0);
            }
        }
        let s = solver.cache_stats();
        assert_eq!(s.misses, 3, "one plan per structure");
        assert_eq!(s.hits, 6);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn concurrent_tenants_solve_through_one_engine_solver() {
        // The multi-tenant workload the engine redesign exists for: three
        // threads, three preconditioner factors, one shared solver — all
        // solves exact, every structure planned exactly once.
        let solver = solver(2, 8);
        let factors: Vec<TriangularMatrix> = [(10, 6, 11u64), (7, 9, 12), (8, 8, 13)]
            .iter()
            .map(|&(nx, ny, s)| grid_factor(nx, ny, s))
            .collect();
        std::thread::scope(|scope| {
            for t in 0..3usize {
                let solver = &solver;
                let factors = &factors;
                scope.spawn(move || {
                    for round in 0..4usize {
                        for (fi, l) in factors.iter().enumerate() {
                            let rhs: Vec<f64> = (0..l.n())
                                .map(|i| 1.0 + ((i + t + round) % 5) as f64)
                                .collect();
                            let (y, _) = solver.solve(l, &rhs).unwrap();
                            assert_eq!(y, l.forward_solve(&rhs), "tenant {t} factor {fi}");
                        }
                    }
                });
            }
        });
        let s = solver.cache_stats();
        assert_eq!(s.misses, 3, "build-under-lock: one plan per structure");
        assert_eq!(s.hits + s.misses, 3 * 4 * 3);
    }

    #[test]
    fn warm_started_solver_hits_on_its_first_solve() {
        let path = std::env::temp_dir().join(format!(
            "doacross-trisolve-warm-{}.plans",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let l = grid_factor(11, 9, 42);
        let rhs = vec![1.0; l.n()];

        // "First process": missing store → cold start, solve, checkpoint.
        let first = EngineSolver::with_warm_start(
            Engine::builder().workers(2).cache_capacity(8).build(),
            &path,
        )
        .unwrap();
        let (_, stats) = first.solve(&l, &rhs).unwrap();
        assert_eq!(stats.provenance, PlanProvenance::PlanCold);
        assert_eq!(first.save_plans(&path).unwrap(), 1);

        // "Restarted process": same structure, first solve is a hit.
        let second = EngineSolver::with_warm_start(
            Engine::builder().workers(2).cache_capacity(8).build(),
            &path,
        )
        .unwrap();
        let (y, stats) = second.solve(&l, &rhs).unwrap();
        assert_eq!(stats.provenance, PlanProvenance::PlanCached);
        assert_eq!(stats.inspector, std::time::Duration::ZERO);
        assert_eq!(y, l.forward_solve(&rhs));
        let s = second.cache_stats();
        assert_eq!((s.hits, s.misses), (1, 0), "restart skipped the replan");

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn prepared_handles_cover_any_rhs() {
        let l = grid_factor(10, 10, 55);
        let solver = solver(4, 2);
        let prepared = solver.prepare(&l).unwrap();
        for round in 0..3 {
            let rhs: Vec<f64> = (0..l.n()).map(|i| ((i * round) % 7) as f64).collect();
            let loop_ = TriSolveLoop::new(&l, &rhs);
            let mut y = vec![0.0; l.n()];
            prepared.execute(&loop_, &mut y).unwrap();
            assert_eq!(y, l.forward_solve(&rhs), "round {round}");
        }
    }

    #[test]
    fn trisolve_plans_pick_a_parallel_variant_on_grids() {
        // The 10x10 five-point ILU(0) factor has average parallelism ≈ 5;
        // the planner must not fall back to sequential on 4 workers.
        let l = grid_factor(10, 10, 55);
        let solver = solver(4, 2);
        let rhs = vec![1.0; l.n()];
        let (_, stats) = solver.solve(&l, &rhs).unwrap();
        assert!(
            stats.workers > 1,
            "expected a parallel plan for a wide wavefront structure"
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shim_still_solves_exactly() {
        let l = grid_factor(9, 9, 21);
        let pool = ThreadPool::new(2);
        let mut shim = PlanCachedSolver::new(4);
        assert_eq!(shim.cache_stats(), CacheStats::default());
        for round in 0..3 {
            let rhs = vec![1.0 + round as f64 * 0.5; l.n()];
            let (y, stats) = shim.solve(&pool, &l, &rhs).unwrap();
            assert_eq!(y, l.forward_solve(&rhs), "round {round}");
            assert_eq!(
                stats.provenance,
                if round == 0 {
                    PlanProvenance::PlanCold
                } else {
                    PlanProvenance::PlanCached
                }
            );
        }
        assert_eq!(shim.cache_stats().hits, 2);

        // A pool-size change rebuilds the private engine (fresh cache).
        let bigger = ThreadPool::new(4);
        let rhs = vec![2.0; l.n()];
        let (y, stats) = shim.solve(&bigger, &l, &rhs).unwrap();
        assert_eq!(y, l.forward_solve(&rhs));
        assert_eq!(stats.provenance, PlanProvenance::PlanCold);
    }
}
