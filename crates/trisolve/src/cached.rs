//! Plan-cached triangular solves: the Krylov-iteration fast path.
//!
//! A preconditioned iterative solver calls the triangular solve once (or
//! twice) per iteration on a **fixed** sparsity structure with changing
//! right-hand sides — the exact workload the paper's amortization argument
//! is about. [`PlanCachedSolver`] routes each solve through
//! `doacross-plan`: the first solve of a structure fingerprints it, runs
//! the cost model, and caches the chosen variant's preprocessing products;
//! every subsequent solve of that structure (any rhs — the fingerprint
//! covers index arrays only) skips inspection, dependence analysis, and
//! ordering entirely, observable via
//! [`doacross_core::PlanProvenance::PlanCached`] in the returned stats.
//!
//! Unlike [`crate::ReorderedSolver`], which pins one strategy and one
//! structure, this solver holds an LRU of plans across *many* structures —
//! e.g. the L and U factors of several preconditioners in one service.

use crate::fig7::TriSolveLoop;
use doacross_core::{DoacrossConfig, DoacrossError, RunStats};
use doacross_par::ThreadPool;
use doacross_plan::{CacheStats, PlannedDoacross, Planner};
use doacross_sparse::TriangularMatrix;

/// Preprocessed-doacross triangular solver with a fingerprint-keyed LRU
/// plan cache (see module docs).
///
/// ```
/// use doacross_par::ThreadPool;
/// use doacross_sparse::{ilu0, stencil::five_point, TriangularMatrix};
/// use doacross_trisolve::PlanCachedSolver;
/// use doacross_core::PlanProvenance;
///
/// let a = five_point(8, 8, 3);
/// let l = TriangularMatrix::from_strict_lower(&ilu0(&a).l);
/// let pool = ThreadPool::new(2);
/// let mut solver = PlanCachedSolver::new(4);
///
/// let rhs1 = vec![1.0; l.n()];
/// let (y1, cold) = solver.solve(&pool, &l, &rhs1).unwrap();
/// assert_eq!(y1, l.forward_solve(&rhs1));
/// assert_eq!(cold.provenance, PlanProvenance::PlanCold);
///
/// // A different rhs on the same structure hits the cached plan.
/// let rhs2: Vec<f64> = (0..l.n()).map(|i| (i % 7) as f64).collect();
/// let (y2, hot) = solver.solve(&pool, &l, &rhs2).unwrap();
/// assert_eq!(y2, l.forward_solve(&rhs2));
/// assert_eq!(hot.provenance, PlanProvenance::PlanCached);
/// ```
#[derive(Debug)]
pub struct PlanCachedSolver {
    runtime: PlannedDoacross,
}

impl PlanCachedSolver {
    /// Solver holding up to `cache_capacity` structure plans.
    pub fn new(cache_capacity: usize) -> Self {
        Self::with_parts(cache_capacity, Planner::new(), DoacrossConfig::default())
    }

    /// Solver with an explicit planner (e.g. host-calibrated costs) and
    /// doacross configuration.
    pub fn with_parts(cache_capacity: usize, planner: Planner, config: DoacrossConfig) -> Self {
        Self {
            runtime: PlannedDoacross::with_parts(cache_capacity, planner, config),
        }
    }

    /// Solves `L y = rhs`; returns `y` (bit-identical to
    /// [`TriangularMatrix::forward_solve`]) and the run statistics, whose
    /// `provenance` field tells whether this solve reused a cached plan.
    pub fn solve(
        &mut self,
        pool: &ThreadPool,
        l: &TriangularMatrix,
        rhs: &[f64],
    ) -> Result<(Vec<f64>, RunStats), DoacrossError> {
        let loop_ = TriSolveLoop::new(l, rhs);
        // The executor's `init` seeds from rhs, so y's initial contents are
        // arbitrary.
        let mut y = vec![0.0; l.n()];
        let stats = self.runtime.run(pool, &loop_, &mut y)?;
        Ok((y, stats))
    }

    /// The underlying planned runtime (plan/cache introspection).
    pub fn runtime(&self) -> &PlannedDoacross {
        &self.runtime
    }

    /// Mutable access to the underlying planned runtime.
    pub fn runtime_mut(&mut self) -> &mut PlannedDoacross {
        &mut self.runtime
    }

    /// Plan-cache traffic counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.runtime.cache_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_core::PlanProvenance;
    use doacross_sparse::{ilu0, stencil::five_point, vec_ops::max_abs_diff};

    fn grid_factor(nx: usize, ny: usize, seed: u64) -> TriangularMatrix {
        TriangularMatrix::from_strict_lower(&ilu0(&five_point(nx, ny, seed)).l)
    }

    #[test]
    fn repeated_solves_hit_the_cache_and_stay_exact() {
        let l = grid_factor(12, 10, 7);
        let pool = ThreadPool::new(4);
        let mut solver = PlanCachedSolver::new(4);
        for round in 0..5 {
            let rhs: Vec<f64> = (0..l.n())
                .map(|i| 1.0 + ((i + round) % 9) as f64 * 0.25)
                .collect();
            let (y, stats) = solver.solve(&pool, &l, &rhs).unwrap();
            assert_eq!(y, l.forward_solve(&rhs), "round {round}");
            if round == 0 {
                assert_eq!(stats.provenance, PlanProvenance::PlanCold);
            } else {
                assert_eq!(
                    stats.provenance,
                    PlanProvenance::PlanCached,
                    "round {round}"
                );
                assert_eq!(stats.inspector, std::time::Duration::ZERO);
            }
        }
        let s = solver.cache_stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 4);
    }

    #[test]
    fn multiple_structures_share_one_solver() {
        let pool = ThreadPool::new(2);
        let mut solver = PlanCachedSolver::new(4);
        let factors: Vec<TriangularMatrix> = [(9, 7, 1u64), (8, 8, 2), (6, 11, 3)]
            .iter()
            .map(|&(nx, ny, s)| grid_factor(nx, ny, s))
            .collect();
        // Interleave solves across structures: each structure planned once.
        for round in 0..3 {
            for l in &factors {
                let rhs = vec![1.0 + round as f64; l.n()];
                let (y, _) = solver.solve(&pool, l, &rhs).unwrap();
                assert!(max_abs_diff(&y, &l.forward_solve(&rhs)) == 0.0);
            }
        }
        let s = solver.cache_stats();
        assert_eq!(s.misses, 3, "one plan per structure");
        assert_eq!(s.hits, 6);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn trisolve_plans_pick_a_parallel_variant_on_grids() {
        // The 10x10 five-point ILU(0) factor has average parallelism ≈ 5;
        // the planner must not fall back to sequential on 4 workers.
        let l = grid_factor(10, 10, 55);
        let pool = ThreadPool::new(4);
        let mut solver = PlanCachedSolver::new(2);
        let rhs = vec![1.0; l.n()];
        let (_, stats) = solver.solve(&pool, &l, &rhs).unwrap();
        assert!(
            stats.workers > 1,
            "expected a parallel plan for a wide wavefront structure"
        );
    }
}
