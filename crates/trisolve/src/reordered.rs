//! Doconsider-reordered doacross solve (Table 1, column "Preprocessed
//! Doacross Iterations Rearranged").
//!
//! "A modified loop was produced by carrying out the loop iterations in a
//! more advantageous order. This reordering of loop iterations leaves the
//! inter-iteration dependencies unchanged but reduces the effects of these
//! dependencies on performance. […] The resulting loop is parallelized
//! using the preprocessed doacross mechanism" (§3.2). The advantageous
//! order is the wavefront-sorted doconsider permutation from
//! [`SolvePlan`]; under self-scheduling it hands consecutive processors
//! mutually independent rows, so waiting collapses to the level-boundary
//! stragglers instead of every dependent pair.

use crate::fig7::TriSolveLoop;
use crate::plan::SolvePlan;
use crate::solver::{DoacrossSolver, SolverBackend};
use doacross_core::{DoacrossConfig, DoacrossError, RunStats};
use doacross_par::ThreadPool;
use doacross_sparse::TriangularMatrix;

/// Preprocessed-doacross solver with a cached doconsider reordering.
///
/// The plan (wavefront levels + claim order) is computed once per
/// structure and reused across solves, mirroring the paper's amortization
/// of runtime preprocessing over the many triangular solves of a Krylov
/// iteration.
///
/// ```
/// use doacross_par::ThreadPool;
/// use doacross_sparse::{ilu0, stencil::five_point, TriangularMatrix};
/// use doacross_trisolve::ReorderedSolver;
///
/// let a = five_point(8, 8, 3);
/// let l = TriangularMatrix::from_strict_lower(&ilu0(&a).l);
/// let rhs = vec![1.0; l.n()];
/// let pool = ThreadPool::new(2);
///
/// let mut solver = ReorderedSolver::new(l.n());
/// let plan = solver.prepare(&l);
/// assert_eq!(plan.critical_path(), 15); // 8x8 grid -> 15 wavefronts
/// let (y, _) = solver.solve(&pool, &l, &rhs).unwrap();
/// assert_eq!(y, l.forward_solve(&rhs));
/// ```
#[derive(Debug)]
pub struct ReorderedSolver {
    inner: DoacrossSolver,
    plan: Option<SolvePlan>,
}

impl ReorderedSolver {
    /// Solver for systems up to dimension `n`, default configuration.
    pub fn new(n: usize) -> Self {
        Self::with_config(n, DoacrossConfig::default())
    }

    /// Solver with explicit doacross configuration (linear backend — the
    /// identity subscript needs no inspector).
    pub fn with_config(n: usize, config: DoacrossConfig) -> Self {
        Self {
            inner: DoacrossSolver::with_config(n, SolverBackend::Linear, config),
            plan: None,
        }
    }

    /// Computes (or recomputes) the doconsider plan for `l` and caches it.
    /// Returns the plan for inspection (critical path, level widths,
    /// planning time).
    pub fn prepare(&mut self, l: &TriangularMatrix) -> &SolvePlan {
        self.plan = Some(SolvePlan::for_matrix(l));
        self.plan.as_ref().expect("just set")
    }

    /// The cached plan, if [`ReorderedSolver::prepare`] has run.
    pub fn plan(&self) -> Option<&SolvePlan> {
        self.plan.as_ref()
    }

    /// Solves `L y = rhs` claiming rows in the doconsider order. Computes
    /// the plan on first use; callers that change `l`'s structure must call
    /// [`ReorderedSolver::prepare`] again (using a stale plan for a
    /// different structure is caught by the runtime's topological-order
    /// validation in full-validation mode).
    pub fn solve(
        &mut self,
        pool: &ThreadPool,
        l: &TriangularMatrix,
        rhs: &[f64],
    ) -> Result<(Vec<f64>, RunStats), DoacrossError> {
        if self
            .plan
            .as_ref()
            .map(|p| p.order.len() != l.n())
            .unwrap_or(true)
        {
            self.prepare(l);
        }
        let order = self.plan.as_ref().expect("plan prepared").order.clone();
        let _ = TriSolveLoop::new(l, rhs); // shape check (rhs length)
        self.inner.solve_ordered(pool, l, rhs, Some(&order))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_sparse::{ilu0, stencil::five_point, CsrMatrix};

    fn grid_system(nx: usize, ny: usize, seed: u64) -> (TriangularMatrix, Vec<f64>) {
        let a = five_point(nx, ny, seed);
        let l = TriangularMatrix::from_strict_lower(&ilu0(&a).l);
        let rhs: Vec<f64> = (0..l.n()).map(|i| (i % 11) as f64 * 0.5 + 1.0).collect();
        (l, rhs)
    }

    #[test]
    fn reordered_matches_sequential_bitwise() {
        let (l, rhs) = grid_system(11, 9, 31);
        let expect = l.forward_solve(&rhs);
        let pool = ThreadPool::new(4);
        let mut solver = ReorderedSolver::new(l.n());
        let (y, stats) = solver.solve(&pool, &l, &rhs).unwrap();
        assert_eq!(y, expect);
        assert_eq!(stats.deps.true_deps, l.nnz() as u64);
    }

    #[test]
    fn plan_is_cached_across_solves() {
        let (l, rhs) = grid_system(8, 8, 13);
        let pool = ThreadPool::new(2);
        let mut solver = ReorderedSolver::new(l.n());
        assert!(solver.plan().is_none());
        solver.solve(&pool, &l, &rhs).unwrap();
        let cp = solver.plan().unwrap().critical_path();
        assert!(cp > 0);
        // Second solve reuses the plan (same pointer contents).
        let order_before = solver.plan().unwrap().order.clone();
        solver.solve(&pool, &l, &rhs).unwrap();
        assert_eq!(solver.plan().unwrap().order, order_before);
    }

    #[test]
    fn explicit_prepare_reports_structure() {
        let (l, _) = grid_system(10, 10, 21);
        let mut solver = ReorderedSolver::new(l.n());
        let plan = solver.prepare(&l);
        assert_eq!(plan.critical_path(), 19, "10x10 ILU(0) wavefronts");
        assert_eq!(plan.order.len(), 100);
    }

    #[test]
    fn plan_recomputed_when_dimension_changes() {
        let (l1, rhs1) = grid_system(6, 6, 1);
        let (l2, rhs2) = grid_system(9, 9, 2);
        let pool = ThreadPool::new(2);
        let mut solver = ReorderedSolver::new(l1.n().max(l2.n()));
        solver.solve(&pool, &l1, &rhs1).unwrap();
        assert_eq!(solver.plan().unwrap().order.len(), 36);
        solver.solve(&pool, &l2, &rhs2).unwrap();
        assert_eq!(solver.plan().unwrap().order.len(), 81);
        let y = solver.solve(&pool, &l2, &rhs2).unwrap().0;
        assert_eq!(y, l2.forward_solve(&rhs2));
    }

    #[test]
    fn diagonal_matrix_order_is_identity() {
        let m = CsrMatrix::from_parts(4, 4, vec![0; 5], vec![], vec![]);
        let l = TriangularMatrix::from_strict_lower(&m);
        let mut solver = ReorderedSolver::new(4);
        let plan = solver.prepare(&l);
        assert_eq!(plan.order, vec![0, 1, 2, 3]);
        assert_eq!(plan.critical_path(), 1);
    }
}
