//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no crates.io access, so this shim provides the
//! exact API surface the workspace uses — `Mutex` with a non-poisoning
//! `lock()` and `Condvar::wait(&mut guard)` — backed by `std::sync`.
//! Poisoned locks are recovered transparently (`parking_lot` has no poison
//! concept; the pool's panic handling latches failures separately).

// Audit posture: this shim needs no unsafe code; keep it that way.
#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// Mutex with `parking_lot`'s panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0.lock().unwrap_or_else(|poison| poison.into_inner()),
        ))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

/// Guard returned by [`Mutex::lock`]. The inner `Option` is only `None`
/// transiently inside [`Condvar::wait`].
#[derive(Debug)]
pub struct MutexGuard<'a, T>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside wait")
    }
}

/// Condition variable with `parking_lot`'s `wait(&mut guard)` signature.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present outside wait");
        let inner = self
            .0
            .wait(inner)
            .unwrap_or_else(|poison| poison.into_inner());
        guard.0 = Some(inner);
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0usize);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 1);
        assert_eq!(m.into_inner(), 1);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let shared2 = Arc::clone(&shared);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*shared2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (lock, cv) = &*shared;
            *lock.lock() = true;
            cv.notify_all();
        }
        waiter.join().unwrap();
    }
}
