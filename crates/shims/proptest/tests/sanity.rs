//! Harness sanity: the `proptest!` macro must actually run the configured
//! number of accepted cases, honor `prop_assume!` rejections, and report
//! `prop_assert!` failures as panics.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

static ACCEPTED: AtomicU32 = AtomicU32::new(0);

// Not a #[test] itself: invoked (and therefore counted) exactly once by
// `accepted_case_count_is_exact` below.
proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[allow(dead_code)]
    fn counts_cases(x in 0usize..100, v in proptest::collection::vec(0usize..10, 0..5)) {
        // Reject ~one fifth of inputs; the harness must regenerate until 48
        // cases were *accepted*.
        prop_assume!(x >= 20);
        prop_assert!(v.len() < 5);
        ACCEPTED.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn accepted_case_count_is_exact() {
    counts_cases();
    assert_eq!(ACCEPTED.load(Ordering::Relaxed), 48);
}

#[test]
fn failures_panic_with_location() {
    let result = std::panic::catch_unwind(|| {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
            #[allow(unused)]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    });
    let msg = *result.unwrap_err().downcast::<String>().unwrap();
    assert!(msg.contains("proptest case failed"), "{msg}");
    assert!(msg.contains("x was"), "{msg}");
}
