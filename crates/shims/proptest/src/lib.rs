//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of proptest the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map` / `prop_shuffle`,
//! range and tuple strategies, [`collection::vec`], [`strategy::Just`],
//! `prop_oneof!`, and the `proptest!` / `prop_assert*` / `prop_assume!`
//! macros. Differences from real proptest:
//!
//! * **No shrinking.** A failing case reports the panic message only.
//! * **Deterministic seeding.** The RNG is seeded from the test's module
//!   path and name, so every run explores the same cases (reproducible by
//!   construction, at the cost of fresh exploration between runs).

// Audit posture: this shim needs no unsafe code; keep it that way.
#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections (`proptest::collection`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for [`vec`]: a fixed size or a range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(!r.is_empty(), "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(!r.is_empty(), "empty size range");
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing a `Vec` of values from `element`, with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.min, self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import, as in `proptest::prelude::*`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ...)`
/// becomes a regular test that generates `config.cases` accepted inputs and
/// runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $($(#[$meta:meta])+ fn $name:ident(
        $($pat:pat in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let strategy = ($($strat,)+);
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::generate(&strategy, &mut rng);
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.max_global_rejects,
                                "proptest: {} prop_assume rejections exceeded the \
                                 configured maximum of {}",
                                rejected,
                                config.max_global_rejects,
                            );
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case failed: {}", msg);
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!(
                    "{} (at {}:{})",
                    format_args!($($fmt)+),
                    file!(),
                    line!()
                )),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format_args!($($fmt)+)
        );
    }};
}

/// Discards the current case (counted against `max_global_rejects`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Picks uniformly among the listed strategies (all must yield the same
/// value type). Weights are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}
