//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of type `Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces the final value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then a value from the strategy the
    /// closure builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Randomly permutes the generated collection.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shuffleable,
    {
        Shuffle { inner: self }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Collections that [`Strategy::prop_shuffle`] can permute.
pub trait Shuffleable {
    fn shuffle(&mut self, rng: &mut TestRng);
}

impl<T> Shuffleable for Vec<T> {
    fn shuffle(&mut self, rng: &mut TestRng) {
        // Fisher–Yates.
        for i in (1..self.len()).rev() {
            let j = rng.usize_in(0, i);
            self.swap(i, j);
        }
    }
}

/// See [`Strategy::prop_shuffle`].
#[derive(Debug, Clone)]
pub struct Shuffle<S> {
    inner: S,
}

impl<S> Strategy for Shuffle<S>
where
    S: Strategy,
    S::Value: Shuffleable,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let mut value = self.inner.generate(rng);
        value.shuffle(rng);
        value
    }
}

/// Boxes a strategy for use in [`Union`] (the `prop_oneof!` macro).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Uniform choice among strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.usize_in(0, self.options.len() - 1);
        self.options[pick].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(!self.is_empty(), "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(!self.is_empty(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    (*self.start() as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*
    };
}

int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_test("strategy::tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rng();
        for _ in 0..200 {
            let v = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let w = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&w));
            let x = (2usize..=2).generate(&mut rng);
            assert_eq!(x, 2);
            let f = (-1.5..2.5f64).generate(&mut rng);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = rng();
        let s = (1usize..5)
            .prop_flat_map(|n| crate::collection::vec(0usize..10, n..=n).prop_map(move |v| (n, v)));
        for _ in 0..50 {
            let (n, v) = s.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = rng();
        let s = Just((0..50).collect::<Vec<usize>>()).prop_shuffle();
        let v = s.generate(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<usize>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn union_picks_every_arm_eventually() {
        let mut rng = rng();
        let u = Union::new(vec![boxed(Just(1usize)), boxed(Just(2usize))]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut rng)] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
