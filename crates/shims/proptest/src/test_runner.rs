//! Harness types: configuration, case outcomes, and the deterministic RNG.

/// Runner configuration (`proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Accepted cases to run per test.
    pub cases: u32,
    /// Maximum `prop_assume!` rejections across the whole test before it is
    /// considered unable to generate valid inputs.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Outcome of a failed or discarded test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the generated input.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

/// Deterministic xoshiro256**-based RNG, seeded from the test's name so
/// every run explores the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG for the named test (pass `concat!(module_path!(), "::", name)`).
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives the SplitMix64 seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        lo + (self.next_u64() as u128 % span) as usize
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn usize_in_covers_inclusive_bounds() {
        let mut rng = TestRng::for_test("bounds");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.usize_in(0, 3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
