//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`, and
//! the `criterion_group!` / `criterion_main!` macros — with a simple
//! wall-clock measurement loop: warm up for `warm_up_time`, then time
//! `sample_size` samples whose batch size targets `measurement_time`, and
//! print the median ns/iteration. No statistics beyond min/median/max, no
//! HTML reports, no comparison to saved baselines.

// Audit posture: this shim needs no unsafe code; keep it that way.
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Throughput annotation (recorded, reported as elements/second).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    /// Median nanoseconds per iteration, filled by `iter`.
    result_ns: f64,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            std::hint::black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Choose a batch size so that sample_size batches roughly fill the
        // measurement budget.
        let target_batch =
            self.measurement_time.as_secs_f64() / (self.sample_size as f64 * per_iter.max(1e-9));
        let batch = target_batch.ceil().max(1.0) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = samples_ns[samples_ns.len() / 2];
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            result_ns: f64::NAN,
        };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            result_ns: f64::NAN,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    pub fn finish(&mut self) {}

    fn report(&mut self, id: &BenchmarkId, bencher: &Bencher) {
        let ns = bencher.result_ns;
        let time = if ns >= 1e9 {
            format!("{:.3} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.3} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.3} µs", ns / 1e3)
        } else {
            format!("{ns:.1} ns")
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.1} Melem/s)", n as f64 / ns * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.1} MiB/s)", n as f64 / ns * 1e9 / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!("{}/{:<40} {:>12}/iter{}", self.name, id.id, time, rate);
        self.criterion
            .results
            .push((format!("{}/{}", self.name, id.id), bencher.result_ns));
    }
}

/// The benchmark manager passed to every `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {
    /// `(full id, median ns/iter)` for everything run so far.
    pub results: Vec<(String, f64)>,
}

impl Criterion {
    /// One-off benchmark outside any group (default sampling parameters).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("criterion").bench_function(id, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group {name}");
        BenchmarkGroup {
            name,
            criterion: self,
            sample_size: 10,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }
}

/// Re-export for convenience, as real criterion does.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags (e.g. --bench); nothing to parse.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_a_finite_sample() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(5));
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.finish();
        }
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].1.is_finite() && c.results[0].1 >= 0.0);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
