//! Shim synchronization types: model atomics with vector-clock
//! happens-before, a race-detected non-atomic cell, and the blocking
//! spin-poll primitive.
//!
//! Under a checked execution every operation is a decision point; outside
//! one (the types are also usable from plain unit tests) they degrade to
//! straightforward mutex-protected operations with no scheduling.
//!
//! ## Memory-model fidelity
//!
//! The model is the pragmatic release/acquire fragment the workspace
//! actually relies on, not full C11:
//!
//! - a `Release` (or stronger) store publishes the writer's vector clock
//!   on the atomic; an `Acquire` (or stronger) load joins it — this is the
//!   edge the executor's ready-flag protocol and the barrier's generation
//!   counter depend on;
//! - a `Relaxed` store *clears* the published clock: readers that acquire
//!   after it see no happens-before edge, so a data access "protected" by
//!   a relaxed flag is reported as a race (the bug the checker exists to
//!   catch);
//! - read-modify-writes join both ways when they acquire/release, and
//!   leave the published clock in place when relaxed (a release sequence
//!   headed by the last release store survives relaxed RMWs, matching how
//!   the barrier's `fetch_add` arrivals compose).

use crate::exec::VClock;
use crate::with_ctx;
use crate::FailureKind;
use std::sync::atomic::Ordering;
use std::sync::{Mutex, MutexGuard, PoisonError};

fn acquires(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn releases(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct AtomicInner {
    value: u64,
    /// Clock published by the last release store (extended by subsequent
    /// releasing RMWs); empty after a relaxed store.
    msg: VClock,
}

/// A model atomic over a `u64` payload. [`AtomicUsize`] and [`AtomicBool`]
/// are thin wrappers over the same machinery.
pub struct AtomicU64 {
    inner: Mutex<AtomicInner>,
}

impl AtomicU64 {
    /// Creates the atomic with an initial value. Construction is not a
    /// decision point (it happens in the model's setup, before threads).
    pub fn new(value: u64) -> Self {
        AtomicU64 {
            inner: Mutex::new(AtomicInner {
                value,
                msg: VClock::default(),
            }),
        }
    }

    /// Atomic load; `Acquire`-or-stronger joins the publisher's clock.
    pub fn load(&self, ord: Ordering) -> u64 {
        match with_ctx() {
            Some((exec, tid)) => exec.step(tid, |st| {
                let inner = relock(&self.inner);
                if acquires(ord) {
                    st.clocks[tid].join(&inner.msg);
                }
                st.clocks[tid].bump(tid);
                Ok(inner.value)
            }),
            None => relock(&self.inner).value,
        }
    }

    /// Atomic store; `Release`-or-stronger publishes the writer's clock,
    /// `Relaxed` clears it.
    pub fn store(&self, value: u64, ord: Ordering) {
        match with_ctx() {
            Some((exec, tid)) => exec.step(tid, |st| {
                st.clocks[tid].bump(tid);
                let mut inner = relock(&self.inner);
                inner.value = value;
                inner.msg = if releases(ord) {
                    st.clocks[tid].clone()
                } else {
                    VClock::default()
                };
                st.mod_count += 1;
                Ok(())
            }),
            None => relock(&self.inner).value = value,
        }
    }

    /// Atomic read-modify-write with `f`; returns the previous value.
    fn rmw(&self, ord: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
        match with_ctx() {
            Some((exec, tid)) => exec.step(tid, |st| {
                let mut inner = relock(&self.inner);
                if acquires(ord) {
                    st.clocks[tid].join(&inner.msg);
                }
                st.clocks[tid].bump(tid);
                let prev = inner.value;
                inner.value = f(prev);
                if releases(ord) {
                    // RMWs extend the release sequence rather than
                    // replacing it: join instead of overwrite.
                    let clock = st.clocks[tid].clone();
                    inner.msg.join(&clock);
                }
                st.mod_count += 1;
                Ok(prev)
            }),
            None => {
                let mut inner = relock(&self.inner);
                let prev = inner.value;
                inner.value = f(prev);
                prev
            }
        }
    }

    /// Atomic add; returns the previous value.
    pub fn fetch_add(&self, v: u64, ord: Ordering) -> u64 {
        self.rmw(ord, |prev| prev.wrapping_add(v))
    }

    /// Atomic bitwise OR; returns the previous value.
    pub fn fetch_or(&self, v: u64, ord: Ordering) -> u64 {
        self.rmw(ord, |prev| prev | v)
    }

    /// Atomic bitwise AND; returns the previous value.
    pub fn fetch_and(&self, v: u64, ord: Ordering) -> u64 {
        self.rmw(ord, |prev| prev & v)
    }

    /// Atomic compare-exchange. On success behaves as a `success`-ordered
    /// RMW; on failure as a `failure`-ordered load.
    pub fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        match with_ctx() {
            Some((exec, tid)) => exec.step(tid, |st| {
                let mut inner = relock(&self.inner);
                if inner.value == current {
                    if acquires(success) {
                        st.clocks[tid].join(&inner.msg);
                    }
                    st.clocks[tid].bump(tid);
                    inner.value = new;
                    if releases(success) {
                        let clock = st.clocks[tid].clone();
                        inner.msg.join(&clock);
                    }
                    st.mod_count += 1;
                    Ok(Ok(current))
                } else {
                    if acquires(failure) {
                        st.clocks[tid].join(&inner.msg);
                    }
                    st.clocks[tid].bump(tid);
                    Ok(Err(inner.value))
                }
            }),
            None => {
                let mut inner = relock(&self.inner);
                if inner.value == current {
                    inner.value = new;
                    Ok(current)
                } else {
                    Err(inner.value)
                }
            }
        }
    }
}

/// A model atomic `usize` (delegates to [`AtomicU64`]).
pub struct AtomicUsize(AtomicU64);

impl AtomicUsize {
    /// Creates the atomic with an initial value.
    pub fn new(value: usize) -> Self {
        AtomicUsize(AtomicU64::new(value as u64))
    }

    /// Atomic load.
    pub fn load(&self, ord: Ordering) -> usize {
        self.0.load(ord) as usize
    }

    /// Atomic store.
    pub fn store(&self, value: usize, ord: Ordering) {
        self.0.store(value as u64, ord);
    }

    /// Atomic add; returns the previous value.
    pub fn fetch_add(&self, v: usize, ord: Ordering) -> usize {
        self.0.fetch_add(v as u64, ord) as usize
    }

    /// Atomic compare-exchange.
    pub fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        self.0
            .compare_exchange(current as u64, new as u64, success, failure)
            .map(|v| v as usize)
            .map_err(|v| v as usize)
    }
}

/// A model atomic `bool` (delegates to [`AtomicU64`]).
pub struct AtomicBool(AtomicU64);

impl AtomicBool {
    /// Creates the atomic with an initial value.
    pub fn new(value: bool) -> Self {
        AtomicBool(AtomicU64::new(value as u64))
    }

    /// Atomic load.
    pub fn load(&self, ord: Ordering) -> bool {
        self.0.load(ord) != 0
    }

    /// Atomic store.
    pub fn store(&self, value: bool, ord: Ordering) {
        self.0.store(value as u64, ord);
    }
}

struct SharedInner<T> {
    value: T,
    /// Last write: `(tid, epoch)` — the writer's own component at the
    /// moment of the write.
    last_write: Option<(usize, u64)>,
    /// Per-thread epoch of the most recent read.
    read_epochs: Vec<u64>,
}

/// A non-atomic shared cell with FastTrack-style race detection.
///
/// Every access is a decision point. An access races when the previous
/// write (for any access) or any previous read (for a write) is not
/// ordered before it by the vector clocks the atomics propagate.
pub struct Shared<T> {
    label: &'static str,
    inner: Mutex<SharedInner<T>>,
}

impl<T> Shared<T> {
    /// Creates the cell.
    pub fn new(value: T) -> Self {
        Self::named("shared", value)
    }

    /// Creates the cell with a label used in race reports.
    pub fn named(label: &'static str, value: T) -> Self {
        Shared {
            label,
            inner: Mutex::new(SharedInner {
                value,
                last_write: None,
                read_epochs: Vec::new(),
            }),
        }
    }

    fn check_read(
        &self,
        st: &mut crate::exec::ExecState,
        tid: usize,
        inner: &mut SharedInner<T>,
    ) -> Result<(), FailureKind> {
        if let Some((w, epoch)) = inner.last_write {
            if w != tid && st.clocks[tid].get(w) < epoch {
                return Err(FailureKind::Race {
                    what: format!(
                        "read of `{}` by thread {tid} races with write by thread {w}",
                        self.label
                    ),
                });
            }
        }
        st.clocks[tid].bump(tid);
        let epoch = st.clocks[tid].get(tid);
        if inner.read_epochs.len() <= tid {
            inner.read_epochs.resize(tid + 1, 0);
        }
        inner.read_epochs[tid] = inner.read_epochs[tid].max(epoch);
        Ok(())
    }

    fn check_write(
        &self,
        st: &mut crate::exec::ExecState,
        tid: usize,
        inner: &mut SharedInner<T>,
    ) -> Result<(), FailureKind> {
        if let Some((w, epoch)) = inner.last_write {
            if w != tid && st.clocks[tid].get(w) < epoch {
                return Err(FailureKind::Race {
                    what: format!(
                        "write of `{}` by thread {tid} races with write by thread {w}",
                        self.label
                    ),
                });
            }
        }
        for (r, &epoch) in inner.read_epochs.iter().enumerate() {
            if r != tid && st.clocks[tid].get(r) < epoch {
                return Err(FailureKind::Race {
                    what: format!(
                        "write of `{}` by thread {tid} races with read by thread {r}",
                        self.label
                    ),
                });
            }
        }
        st.clocks[tid].bump(tid);
        inner.last_write = Some((tid, st.clocks[tid].get(tid)));
        Ok(())
    }

    /// Reads through `f` (a decision point under a checked execution).
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        match with_ctx() {
            Some((exec, tid)) => exec.step(tid, |st| {
                let mut inner = relock(&self.inner);
                self.check_read(st, tid, &mut inner)?;
                Ok(f(&inner.value))
            }),
            None => f(&relock(&self.inner).value),
        }
    }

    /// Writes through `f` (a decision point under a checked execution).
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        match with_ctx() {
            Some((exec, tid)) => exec.step(tid, |st| {
                let mut inner = relock(&self.inner);
                self.check_write(st, tid, &mut inner)?;
                Ok(f(&mut inner.value))
            }),
            None => f(&mut relock(&self.inner).value),
        }
    }
}

impl<T: Copy> Shared<T> {
    /// Reads the value (a decision point under a checked execution).
    pub fn read(&self) -> T {
        self.with(|v| *v)
    }

    /// Writes the value (a decision point under a checked execution).
    pub fn write(&self, value: T) {
        self.with_mut(|slot| *slot = value);
    }
}

/// Polls `cond` until it returns `true`.
///
/// Under a checked execution the thread blocks between false polls and is
/// only rescheduled after some atomic write has happened — which is what
/// lets the scheduler prove deadlock: if every live thread is blocked and
/// nothing can change the state they poll, the model has hung and the
/// checker reports [`FailureKind::Deadlock`] instead of spinning forever.
///
/// Outside a checked execution this is a plain spin loop.
pub fn spin_until(mut cond: impl FnMut() -> bool) {
    match with_ctx() {
        Some((exec, tid)) => loop {
            let snapshot = exec.mod_count();
            if cond() {
                return;
            }
            exec.block_on_change(tid, snapshot);
        },
        None => {
            while !cond() {
                std::hint::spin_loop();
            }
        }
    }
}
