//! Offline loom-style interleaving checker for the workspace's
//! synchronization primitives.
//!
//! The doacross executor's correctness hangs on a handful of hand-rolled
//! release/acquire protocols: the per-element ready flags (`par::wait`),
//! the sense-reversing wavefront barrier (`par::sync::SpinBarrier`), and
//! the scheduler's CAS free-pool bitmask (`doacross-sched`). Ordinary unit
//! tests only ever see the interleavings the host happens to produce; this
//! crate model-checks the *algorithms* across schedules.
//!
//! A model is a setup closure (builds the shared state from this crate's
//! shim types) plus one closure per thread. [`check`] runs the model under
//! a cooperative scheduler — real OS threads, but only one runs at a time,
//! and every shim operation is a decision point — and explores schedules by
//! exhaustive depth-first replay; [`check_random`] explores a seeded sample
//! instead, for models whose state space is too large to exhaust.
//!
//! The shim types ([`AtomicU64`], [`AtomicUsize`], [`AtomicBool`],
//! [`Shared`], [`spin_until`]) mirror the `std::sync::atomic` API but
//! track vector clocks: release stores publish the writer's clock, acquire
//! loads join it, and every [`Shared`] access is checked for ordering
//! against prior accesses — an unordered pair is reported as
//! [`FailureKind::Race`]. Blocking polls ([`spin_until`]) park the thread
//! until some atomic write lands, which lets the scheduler prove
//! [`FailureKind::Deadlock`] instead of hanging. Model assertion failures
//! surface as [`FailureKind::Panic`]; runaway models as
//! [`FailureKind::StepLimit`]. Every failure carries the granted-thread
//! schedule that produced it as a replayable counterexample.
//!
//! ```
//! use interleave::{check, Config, AtomicU64, Ordering, Shared, spin_until};
//!
//! struct Model {
//!     data: Shared<u64>,
//!     flag: AtomicU64,
//! }
//!
//! let report = check(
//!     &Config::default(),
//!     || Model { data: Shared::new(0), flag: AtomicU64::new(0) },
//!     &[
//!         &|m: &Model| {
//!             m.data.write(42);
//!             m.flag.store(1, Ordering::Release);
//!         },
//!         &|m: &Model| {
//!             spin_until(|| m.flag.load(Ordering::Acquire) == 1);
//!             assert_eq!(m.data.read(), 42);
//!         },
//!     ],
//! )
//! .expect("the release/acquire handoff is sound");
//! assert!(report.exhaustive);
//! ```
//!
//! This is an offline shim: no external dependency, `std` only. It checks
//! models of the primitives (the algorithms restated in shim types), not
//! the primitives' production code itself — the model tests under
//! `crates/par/tests` and `crates/sched/tests` keep the two in sync.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod exec;
mod sync;

pub use std::sync::atomic::Ordering;
pub use sync::{spin_until, AtomicBool, AtomicU64, AtomicUsize, Shared};

use exec::{Abort, Drive, Exec};
use std::cell::RefCell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

thread_local! {
    static CTX: RefCell<Option<(Arc<Exec>, usize)>> = const { RefCell::new(None) };
}

/// The checked-execution context of the calling thread, if it is a model
/// thread inside [`check`] / [`check_random`].
pub(crate) fn with_ctx() -> Option<(Arc<Exec>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// Exploration limits and the random seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Config {
    /// Abort an execution (as [`FailureKind::StepLimit`]) after this many
    /// decision points — a backstop against unbounded models.
    pub max_steps: u64,
    /// Stop DFS exploration (non-exhaustively) after this many executions.
    pub max_executions: u64,
    /// Number of executions [`check_random`] samples.
    pub random_iterations: u64,
    /// Seed for the random exploration; a fixed seed keeps CI
    /// deterministic.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_steps: 20_000,
            max_executions: 50_000,
            random_iterations: 2_000,
            seed: 0x5EED_CAFE,
        }
    }
}

/// Why a model failed under some schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// A model thread panicked (an assertion in the model fired).
    Panic {
        /// Index of the panicking thread.
        thread: usize,
        /// The panic payload, stringified.
        message: String,
    },
    /// Every live thread was blocked with nothing left to wake it.
    Deadlock {
        /// Indices of the threads parked in [`spin_until`].
        blocked: Vec<usize>,
    },
    /// Two accesses to a [`Shared`] cell were not ordered by
    /// happens-before.
    Race {
        /// Human-readable description naming the cell and the threads.
        what: String,
    },
    /// The execution exceeded [`Config::max_steps`] decision points.
    StepLimit {
        /// Steps taken when the limit tripped.
        steps: u64,
    },
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Panic { thread, message } => {
                write!(f, "thread {thread} panicked: {message}")
            }
            FailureKind::Deadlock { blocked } => {
                write!(
                    f,
                    "deadlock: threads {blocked:?} blocked with no possible wakeup"
                )
            }
            FailureKind::Race { what } => write!(f, "data race: {what}"),
            FailureKind::StepLimit { steps } => {
                write!(f, "step limit exceeded after {steps} decision points")
            }
        }
    }
}

/// A failing schedule: the kind of failure plus the counterexample.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Failure {
    /// What went wrong.
    pub kind: FailureKind,
    /// The granted-thread schedule that produced the failure, in order —
    /// a replayable counterexample (model code must be deterministic).
    pub schedule: Vec<usize>,
    /// How many executions ran before the failure was found.
    pub executions: u64,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (execution {}, schedule {:?})",
            self.kind, self.executions, self.schedule
        )
    }
}

impl std::error::Error for Failure {}

/// A clean exploration: how much of the schedule space was covered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Report {
    /// Executions explored.
    pub executions: u64,
    /// `true` when the DFS exhausted every schedule (within
    /// [`Config::max_executions`]); random exploration never sets this.
    pub exhaustive: bool,
}

/// Runs one controlled execution with the given decision function.
fn run_once<S: Sync>(
    max_steps: u64,
    setup: &mut dyn FnMut() -> S,
    threads: &[&(dyn Fn(&S) + Sync)],
    decide: &mut dyn FnMut(usize, usize) -> usize,
) -> Drive {
    let state = setup();
    let exec = Exec::new(threads.len());
    std::thread::scope(|scope| {
        for (tid, body) in threads.iter().enumerate() {
            let exec = Arc::clone(&exec);
            let state = &state;
            scope.spawn(move || {
                CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
                let result = catch_unwind(AssertUnwindSafe(|| body(state)));
                CTX.with(|c| *c.borrow_mut() = None);
                match result {
                    Ok(()) => exec.finish(tid, None),
                    Err(payload) => {
                        if payload.downcast_ref::<Abort>().is_some() {
                            exec.finish(tid, None);
                        } else {
                            let message = payload
                                .downcast_ref::<&'static str>()
                                .map(|s| (*s).to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "non-string panic payload".to_string());
                            exec.finish(tid, Some(message));
                        }
                    }
                }
            });
        }
        exec.drive(max_steps, decide)
    })
}

/// Exhaustively explores every schedule of the model by depth-first
/// replay, up to [`Config::max_executions`].
///
/// `setup` builds fresh shared state for each execution; `threads` holds
/// one closure per model thread. Returns the first failing schedule found,
/// or a [`Report`] saying whether the space was exhausted. Model closures
/// must be deterministic given the schedule (no wall clock, no OS
/// randomness) — replay depends on it.
pub fn check<S: Sync>(
    cfg: &Config,
    mut setup: impl FnMut() -> S,
    threads: &[&(dyn Fn(&S) + Sync)],
) -> Result<Report, Failure> {
    assert!(!threads.is_empty(), "a model needs at least one thread");
    let mut prefix: Vec<usize> = Vec::new();
    let mut executions: u64 = 0;
    loop {
        executions += 1;
        let drive = run_once(cfg.max_steps, &mut setup, threads, &mut |k, _width| {
            prefix.get(k).copied().unwrap_or(0)
        });
        if let Some(kind) = drive.failure {
            return Err(Failure {
                kind,
                schedule: drive.granted,
                executions,
            });
        }
        // Backtrack: bump the deepest decision that still has an untried
        // branch; exploration is exhausted when none remains.
        let mut depth = drive.choices.len();
        let next = loop {
            if depth == 0 {
                break None;
            }
            depth -= 1;
            if drive.choices[depth] + 1 < drive.widths[depth] {
                let mut p = drive.choices[..depth].to_vec();
                p.push(drive.choices[depth] + 1);
                break Some(p);
            }
        };
        match next {
            None => {
                return Ok(Report {
                    executions,
                    exhaustive: true,
                })
            }
            Some(p) => prefix = p,
        }
        if executions >= cfg.max_executions {
            return Ok(Report {
                executions,
                exhaustive: false,
            });
        }
    }
}

/// Explores [`Config::random_iterations`] schedules drawn from a seeded
/// generator — for models whose schedule space is too large for [`check`].
///
/// Deterministic for a fixed [`Config::seed`].
pub fn check_random<S: Sync>(
    cfg: &Config,
    mut setup: impl FnMut() -> S,
    threads: &[&(dyn Fn(&S) + Sync)],
) -> Result<Report, Failure> {
    assert!(!threads.is_empty(), "a model needs at least one thread");
    for iteration in 0..cfg.random_iterations {
        let mut rng =
            splitmix(cfg.seed ^ (iteration.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let drive = run_once(cfg.max_steps, &mut setup, threads, &mut |_k, width| {
            (xorshift(&mut rng) % width as u64) as usize
        });
        if let Some(kind) = drive.failure {
            return Err(Failure {
                kind,
                schedule: drive.granted,
                executions: iteration + 1,
            });
        }
    }
    Ok(Report {
        executions: cfg.random_iterations,
        exhaustive: false,
    })
}

/// One splitmix64 round, used to whiten the per-iteration seed.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (x ^ (x >> 31)) | 1
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Handoff {
        data: Shared<u64>,
        flag: AtomicU64,
    }

    fn handoff() -> Handoff {
        Handoff {
            data: Shared::named("payload", 0),
            flag: AtomicU64::new(0),
        }
    }

    #[test]
    fn release_acquire_handoff_is_exhaustively_sound() {
        let report = check(
            &Config::default(),
            handoff,
            &[
                &|m: &Handoff| {
                    m.data.write(7);
                    m.flag.store(1, Ordering::Release);
                },
                &|m: &Handoff| {
                    spin_until(|| m.flag.load(Ordering::Acquire) == 1);
                    assert_eq!(m.data.read(), 7);
                },
            ],
        )
        .expect("sound protocol");
        assert!(report.exhaustive);
        assert!(report.executions > 1, "must have explored real branching");
    }

    #[test]
    fn relaxed_publish_is_reported_as_a_race() {
        let failure = check(
            &Config::default(),
            handoff,
            &[
                &|m: &Handoff| {
                    m.data.write(7);
                    m.flag.store(1, Ordering::Relaxed);
                },
                &|m: &Handoff| {
                    spin_until(|| m.flag.load(Ordering::Acquire) == 1);
                    let _ = m.data.read();
                },
            ],
        )
        .expect_err("relaxed publication must race");
        assert!(
            matches!(&failure.kind, FailureKind::Race { what } if what.contains("payload")),
            "{failure}"
        );
        assert!(!failure.schedule.is_empty());
    }

    #[test]
    fn dropped_store_is_reported_as_deadlock() {
        let failure = check(
            &Config::default(),
            handoff,
            &[
                &|m: &Handoff| {
                    m.data.write(7);
                    // Flag store dropped: the reader can never proceed.
                },
                &|m: &Handoff| {
                    spin_until(|| m.flag.load(Ordering::Acquire) == 1);
                },
            ],
        )
        .expect_err("a waiter with no signaller must deadlock");
        assert!(
            matches!(&failure.kind, FailureKind::Deadlock { blocked } if blocked == &[1]),
            "{failure}"
        );
    }

    #[test]
    fn model_assertions_surface_as_panic_failures() {
        let failure = check(
            &Config::default(),
            || AtomicU64::new(0),
            &[&|a: &AtomicU64| {
                a.store(3, Ordering::Release);
                assert_eq!(a.load(Ordering::Acquire), 4, "deliberate model bug");
            }],
        )
        .expect_err("the assertion must fire");
        assert!(
            matches!(&failure.kind, FailureKind::Panic { thread: 0, message } if message.contains("deliberate model bug")),
            "{failure}"
        );
    }

    #[test]
    fn unbounded_models_hit_the_step_limit() {
        let cfg = Config {
            max_steps: 64,
            ..Config::default()
        };
        let failure = check(
            &cfg,
            || AtomicU64::new(0),
            &[&|a: &AtomicU64| loop {
                a.fetch_add(1, Ordering::Relaxed);
            }],
        )
        .expect_err("an infinite model must trip the backstop");
        assert!(
            matches!(failure.kind, FailureKind::StepLimit { steps } if steps >= 64),
            "{failure}"
        );
    }

    #[test]
    fn random_exploration_finds_the_same_race() {
        let failure = check_random(
            &Config::default(),
            handoff,
            &[
                &|m: &Handoff| {
                    m.data.write(7);
                    m.flag.store(1, Ordering::Relaxed);
                },
                &|m: &Handoff| {
                    spin_until(|| m.flag.load(Ordering::Acquire) == 1);
                    let _ = m.data.read();
                },
            ],
        )
        .expect_err("random exploration must find the race");
        assert!(
            matches!(failure.kind, FailureKind::Race { .. }),
            "{failure}"
        );
    }

    #[test]
    fn cas_loop_claims_exclusively() {
        // Two threads CAS-claim the same bit; the loser must observe the
        // claim and not touch the slot. Exhaustive over all schedules.
        struct M {
            mask: AtomicU64,
            slot: Shared<u64>,
        }
        let claim = |m: &M| {
            if m.mask
                .compare_exchange(1, 0, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                m.slot.with_mut(|v| *v += 1);
                m.mask.fetch_or(1, Ordering::Release);
            }
        };
        let report = check(
            &Config::default(),
            || M {
                mask: AtomicU64::new(1),
                slot: Shared::named("slot", 0),
            },
            &[&claim, &claim],
        )
        .expect("CAS claim is exclusive");
        assert!(report.exhaustive);
    }

    #[test]
    fn shims_degrade_to_plain_operations_outside_a_checked_execution() {
        let a = AtomicU64::new(1);
        assert_eq!(a.fetch_add(2, Ordering::SeqCst), 1);
        assert_eq!(a.load(Ordering::SeqCst), 3);
        assert_eq!(
            a.compare_exchange(3, 9, Ordering::SeqCst, Ordering::SeqCst),
            Ok(3)
        );
        let b = AtomicBool::new(false);
        b.store(true, Ordering::Release);
        assert!(b.load(Ordering::Acquire));
        let u = AtomicUsize::new(5);
        assert_eq!(u.fetch_add(1, Ordering::Relaxed), 5);
        let s = Shared::new(10u64);
        s.write(11);
        assert_eq!(s.read(), 11);
        let mut polled = false;
        spin_until(|| {
            polled = true;
            true
        });
        assert!(polled);
    }

    #[test]
    fn failure_display_names_the_schedule() {
        let failure = Failure {
            kind: FailureKind::Deadlock { blocked: vec![1] },
            schedule: vec![0, 0, 1],
            executions: 3,
        };
        let text = failure.to_string();
        assert!(text.contains("deadlock"), "{text}");
        assert!(text.contains("[0, 0, 1]"), "{text}");
    }
}
