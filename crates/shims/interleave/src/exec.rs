//! The cooperative scheduler: one controlled execution of a model.
//!
//! Model threads are real OS threads, but only one makes progress at a
//! time. Every shim operation (atomic access, shared-cell access, blocking
//! poll) is a *decision point*: the thread announces it has reached one and
//! parks until the scheduler grants it the token. The scheduler waits until
//! every live thread is parked at a point (or blocked), picks one — from a
//! DFS replay prefix or a seeded RNG — and hands over the token. The
//! granted thread performs exactly one operation under the execution lock,
//! then runs its local (non-shared) code and parks at the next point.
//!
//! Because all shared state is only touched inside granted operations, the
//! whole execution is serialized and deterministic for a given choice
//! sequence, which is what makes exhaustive replay-based DFS possible.

use crate::FailureKind;
use std::panic::panic_any;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Sentinel panic payload used to unwind model threads when the execution
/// is being torn down (failure found, or another thread panicked). Caught
/// by the per-thread wrapper and *not* reported as a model panic.
pub(crate) struct Abort;

/// Vector clock: `clock[t]` is the newest epoch of thread `t` whose effects
/// are ordered before the owner's next action.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    pub(crate) fn new(n: usize) -> Self {
        VClock(vec![0; n])
    }

    /// Pointwise maximum — the happens-before join.
    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a = (*a).max(*b);
        }
    }

    pub(crate) fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    pub(crate) fn bump(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }
}

/// What a model thread is doing, as seen by the scheduler.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Executing local code (or its granted operation); the scheduler must
    /// wait for it to reach its next decision point.
    Running,
    /// Parked at a decision point, eligible for the next grant.
    AtPoint,
    /// Parked inside [`crate::spin_until`] after observing a false
    /// condition; eligible only once `mod_count` exceeds the snapshot.
    Blocked {
        /// `mod_count` at the time the spinner last saw the condition false.
        snapshot: u64,
    },
    /// The model closure returned (or unwound).
    Done,
}

/// Mutable state of one controlled execution, shared by all model threads
/// and the scheduler under a single mutex.
pub(crate) struct ExecState {
    pub(crate) phases: Vec<Phase>,
    /// Thread granted the token; consumed by that thread.
    pub(crate) grant: Option<usize>,
    /// Bumped by every atomic write; blocked spinners wait for it to move.
    pub(crate) mod_count: u64,
    /// Decision points granted so far in this execution.
    pub(crate) steps: u64,
    /// Tear-down flag: parked threads unwind with [`Abort`] when set.
    pub(crate) abort: bool,
    /// First failure observed (panic, race, deadlock, step limit).
    pub(crate) failure: Option<FailureKind>,
    /// Per-thread vector clocks for happens-before tracking.
    pub(crate) clocks: Vec<VClock>,
    /// The schedule so far: granted thread ids, in order.
    pub(crate) granted: Vec<usize>,
}

/// One controlled execution, shared by the scheduler and all model threads.
pub(crate) struct Exec {
    state: Mutex<ExecState>,
    cv: Condvar,
}

impl Exec {
    pub(crate) fn new(n_threads: usize) -> Arc<Self> {
        Arc::new(Exec {
            state: Mutex::new(ExecState {
                phases: vec![Phase::Running; n_threads],
                grant: None,
                mod_count: 0,
                steps: 0,
                abort: false,
                failure: None,
                clocks: (0..n_threads).map(|_| VClock::new(n_threads)).collect(),
                granted: Vec::new(),
            }),
            cv: Condvar::new(),
        })
    }

    /// Locks the state, tolerating poison: a model thread that panics while
    /// holding the lock (race detection aborts by unwinding) must not wedge
    /// the scheduler or the surviving threads.
    pub(crate) fn lock(&self) -> MutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn wait<'a>(&self, guard: MutexGuard<'a, ExecState>) -> MutexGuard<'a, ExecState> {
        self.cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn notify_all(&self) {
        self.cv.notify_all();
    }

    /// Parks `tid` at a decision point and blocks until the scheduler
    /// grants it the token, then runs `op` under the execution lock and
    /// returns its result. `op` gets the state (for clocks / `mod_count`)
    /// and may report a failure, which tears the execution down.
    pub(crate) fn step<R>(
        &self,
        tid: usize,
        op: impl FnOnce(&mut ExecState) -> Result<R, FailureKind>,
    ) -> R {
        let mut st = self.lock();
        st.phases[tid] = Phase::AtPoint;
        self.notify_all();
        loop {
            if st.abort {
                drop(st);
                panic_any(Abort);
            }
            if st.grant == Some(tid) {
                break;
            }
            st = self.wait(st);
        }
        st.grant = None;
        st.steps += 1;
        st.granted.push(tid);
        match op(&mut st) {
            Ok(r) => {
                st.phases[tid] = Phase::Running;
                drop(st);
                self.notify_all();
                r
            }
            Err(kind) => {
                if st.failure.is_none() {
                    st.failure = Some(kind);
                }
                st.abort = true;
                drop(st);
                self.notify_all();
                panic_any(Abort);
            }
        }
    }

    /// Parks `tid` as blocked-on-change: it becomes eligible for a grant
    /// only once `mod_count` has advanced past `snapshot`. Returns when
    /// granted (the caller re-polls its condition).
    pub(crate) fn block_on_change(&self, tid: usize, snapshot: u64) {
        let mut st = self.lock();
        st.phases[tid] = Phase::Blocked { snapshot };
        self.notify_all();
        loop {
            if st.abort {
                drop(st);
                panic_any(Abort);
            }
            if st.grant == Some(tid) {
                break;
            }
            st = self.wait(st);
        }
        st.grant = None;
        st.steps += 1;
        st.granted.push(tid);
        st.phases[tid] = Phase::Running;
        drop(st);
        self.notify_all();
    }

    /// Marks `tid` finished. `panicked` carries a model panic message (an
    /// [`Abort`] unwind passes `None`). The first real panic becomes the
    /// execution's failure and tears everything down.
    pub(crate) fn finish(&self, tid: usize, panicked: Option<String>) {
        let mut st = self.lock();
        st.phases[tid] = Phase::Done;
        if let Some(message) = panicked {
            if st.failure.is_none() {
                st.failure = Some(FailureKind::Panic {
                    thread: tid,
                    message,
                });
            }
            st.abort = true;
        }
        drop(st);
        self.notify_all();
    }

    /// Current `mod_count`, for the spinner's blocked-snapshot.
    pub(crate) fn mod_count(&self) -> u64 {
        self.lock().mod_count
    }

    /// The scheduler loop: drives one execution to completion.
    ///
    /// `decide(k, width)` picks the k-th choice among `width` runnable
    /// threads (sorted by tid). Returns the branching record for DFS
    /// backtracking plus the failure, if any. Must be called from the
    /// driver thread while the model threads run.
    pub(crate) fn drive(
        &self,
        max_steps: u64,
        mut decide: impl FnMut(usize, usize) -> usize,
    ) -> Drive {
        let mut choices = Vec::new();
        let mut widths = Vec::new();
        loop {
            let mut st = self.lock();
            // Wait until no thread is mid-operation or running local code.
            loop {
                let settled =
                    st.grant.is_none() && st.phases.iter().all(|p| !matches!(p, Phase::Running));
                if st.abort || settled {
                    break;
                }
                st = self.wait(st);
            }
            if st.abort {
                // A thread recorded a failure (panic or race). Unwind the
                // rest and wait for them to finish.
                return self.teardown(st, choices, widths);
            }
            if st.phases.iter().all(|p| matches!(p, Phase::Done)) {
                let failure = st.failure.take();
                let granted = std::mem::take(&mut st.granted);
                return Drive {
                    choices,
                    widths,
                    granted,
                    failure,
                };
            }
            let runnable: Vec<usize> = st
                .phases
                .iter()
                .enumerate()
                .filter_map(|(tid, p)| match p {
                    Phase::AtPoint => Some(tid),
                    Phase::Blocked { snapshot } if *snapshot < st.mod_count => Some(tid),
                    _ => None,
                })
                .collect();
            if runnable.is_empty() {
                let blocked: Vec<usize> = st
                    .phases
                    .iter()
                    .enumerate()
                    .filter_map(|(tid, p)| matches!(p, Phase::Blocked { .. }).then_some(tid))
                    .collect();
                st.failure = Some(FailureKind::Deadlock { blocked });
                st.abort = true;
                return self.teardown(st, choices, widths);
            }
            if st.steps >= max_steps {
                st.failure = Some(FailureKind::StepLimit { steps: st.steps });
                st.abort = true;
                return self.teardown(st, choices, widths);
            }
            let width = runnable.len();
            // A diverging replay (the model was nondeterministic) clamps
            // rather than panicking; the DFS then explores from there.
            let choice = decide(choices.len(), width).min(width - 1);
            choices.push(choice);
            widths.push(width);
            st.grant = Some(runnable[choice]);
            drop(st);
            self.notify_all();
        }
    }

    /// Wakes every parked thread into an [`Abort`] unwind and waits for
    /// all of them to report [`Phase::Done`].
    fn teardown(
        &self,
        mut st: MutexGuard<'_, ExecState>,
        choices: Vec<usize>,
        widths: Vec<usize>,
    ) -> Drive {
        st.abort = true;
        self.notify_all();
        while !st.phases.iter().all(|p| matches!(p, Phase::Done)) {
            st = self.wait(st);
        }
        let failure = st.failure.take();
        let granted = std::mem::take(&mut st.granted);
        Drive {
            choices,
            widths,
            granted,
            failure,
        }
    }
}

/// Outcome of one driven execution.
pub(crate) struct Drive {
    /// Index chosen at each decision point.
    pub(crate) choices: Vec<usize>,
    /// Number of runnable threads at each decision point.
    pub(crate) widths: Vec<usize>,
    /// The granted-thread schedule, for counterexample reporting.
    pub(crate) granted: Vec<usize>,
    pub(crate) failure: Option<FailureKind>,
}
