//! Deterministic fault-injection sites for the doacross workspace — an
//! offline stand-in for the `fail` crate's failpoint idea, shaped for this
//! engine's hot paths.
//!
//! A *site* is a `&'static str` name compiled into production code
//! (`"core::executor::iter"`, `"sched::acquire"`, …). Tests arm a site
//! with a [`FailAction`]; production code consults the registry and
//! injects the armed fault — a panic at a chosen iteration, a busy-wait
//! delay, or a synthetic saturation. Disarmed (the production default)
//! every consultation is one `Relaxed` load of a process-wide counter and
//! a predicted-not-taken branch.
//!
//! # Hot-path discipline
//!
//! Per-iteration code must NOT consult the registry per iteration. The
//! intended pattern is a per-region snapshot:
//!
//! ```
//! let site = failpoint::lookup("core::executor::iter"); // once per region
//! for i in 0..100u64 {
//!     failpoint::hit(site, i); // Option<FailAction> on the stack
//!     // ... real work ...
//! }
//! ```
//!
//! `lookup` pays the registry lock only when at least one site anywhere is
//! armed; `hit(None, _)` is a branch on a stack local. Sites consulted
//! once per solve (`sched::acquire`, `engine::execute`) may use the
//! stateful helpers ([`fire_saturate`], [`maybe_delay`]) directly.
//!
//! # Determinism
//!
//! Actions are plain values: `PanicAt { iteration }` fires exactly when
//! the instrumented code reaches that iteration index, every time, on
//! whichever worker owns it — no randomness, no clocks. `Saturate`
//! carries a countdown so a test can inject N rejections and then observe
//! recovery. Arm/disarm between solves, not during one; the per-region
//! snapshot means a mid-region re-arm is simply not observed until the
//! next region.
//!
//! The registry is process-global: test binaries that arm sites must
//! serialize those tests (the chaos suites take a shared mutex).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// The fault a site injects when armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Panic when the instrumented code reaches this iteration index —
    /// the worker that owns the iteration dies, deterministically.
    PanicAt {
        /// Iteration index (as passed to [`hit`]) that triggers the panic.
        iteration: u64,
    },
    /// Busy-wait approximately this many nanoseconds at every hit — slows
    /// a region down deterministically enough to trip a solve deadline.
    DelayNs {
        /// Nanoseconds to burn per hit (0 = take the armed path but inject
        /// nothing, for measuring the armed-path overhead itself).
        ns: u64,
    },
    /// Report synthetic saturation for the next `times` fires, then go
    /// inert (stay armed, stop firing) — lets a test inject N rejections
    /// and then watch recovery.
    Saturate {
        /// Remaining fires.
        times: u64,
    },
}

/// Number of armed sites, process-wide. The disarmed fast path is one
/// `Relaxed` load of this counter.
static ARMED: AtomicUsize = AtomicUsize::new(0);

fn registry() -> &'static Mutex<HashMap<&'static str, FailAction>> {
    static REGISTRY: OnceLock<Mutex<HashMap<&'static str, FailAction>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// `true` when any site anywhere is armed. One `Relaxed` load.
#[inline]
pub fn enabled() -> bool {
    ARMED.load(Ordering::Relaxed) != 0
}

/// Arms `site` with `action`, replacing any previous action on the site.
pub fn arm(site: &'static str, action: FailAction) {
    let mut sites = registry().lock().expect("failpoint registry poisoned");
    if sites.insert(site, action).is_none() {
        ARMED.fetch_add(1, Ordering::Relaxed);
    }
}

/// Disarms `site`. Idempotent.
pub fn disarm(site: &'static str) {
    let mut sites = registry().lock().expect("failpoint registry poisoned");
    if sites.remove(site).is_some() {
        ARMED.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Disarms every site — test teardown.
pub fn disarm_all() {
    let mut sites = registry().lock().expect("failpoint registry poisoned");
    let n = sites.len();
    sites.clear();
    ARMED.fetch_sub(n, Ordering::Relaxed);
}

/// The action armed on `site`, if any — the once-per-region snapshot.
/// Disarmed cost: one `Relaxed` load and a branch.
#[inline]
pub fn lookup(site: &'static str) -> Option<FailAction> {
    if !enabled() {
        return None;
    }
    registry()
        .lock()
        .expect("failpoint registry poisoned")
        .get(site)
        .copied()
}

/// Executes a snapshotted action for iteration `iter`: panics on a
/// matching [`FailAction::PanicAt`], burns the armed delay, ignores
/// saturation actions (those belong to [`fire_saturate`] sites).
///
/// # Panics
///
/// Deliberately, when the armed action says so — that is the injection.
#[inline]
pub fn hit(site: Option<FailAction>, iter: u64) {
    let Some(action) = site else { return };
    match action {
        FailAction::PanicAt { iteration } if iteration == iter => {
            panic!("failpoint: injected panic at iteration {iter}")
        }
        FailAction::PanicAt { .. } => {}
        FailAction::DelayNs { ns } => burn(ns),
        FailAction::Saturate { .. } => {}
    }
}

/// For saturation sites (`sched::acquire`): `true` when the site is armed
/// with [`FailAction::Saturate`] and fires remain; decrements the
/// countdown. Disarmed cost: one `Relaxed` load and a branch.
#[inline]
pub fn fire_saturate(site: &'static str) -> bool {
    if !enabled() {
        return false;
    }
    let mut sites = registry().lock().expect("failpoint registry poisoned");
    match sites.get_mut(site) {
        Some(FailAction::Saturate { times }) if *times > 0 => {
            *times -= 1;
            true
        }
        _ => false,
    }
}

/// For once-per-solve delay sites: burns the armed delay, if any.
/// Disarmed cost: one `Relaxed` load and a branch.
#[inline]
pub fn maybe_delay(site: &'static str) {
    if !enabled() {
        return;
    }
    if let Some(FailAction::DelayNs { ns }) = lookup(site) {
        burn(ns);
    }
}

/// Busy-waits ~`ns` nanoseconds. A spin wait, not a sleep: OS sleep
/// granularity would turn a 50µs injection into milliseconds and make
/// deadline tests flaky.
fn burn(ns: u64) {
    if ns == 0 {
        return;
    }
    let until = Instant::now() + Duration::from_nanos(ns);
    while Instant::now() < until {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    // The registry is process-global; these tests serialize on it.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disarmed_sites_are_inert_and_cheap() {
        let _s = serial();
        disarm_all();
        assert!(!enabled());
        assert_eq!(lookup("core::executor::iter"), None);
        hit(None, 0);
        assert!(!fire_saturate("sched::acquire"));
        maybe_delay("engine::execute");
    }

    #[test]
    fn panic_at_fires_exactly_on_its_iteration() {
        let _s = serial();
        disarm_all();
        arm("t::iter", FailAction::PanicAt { iteration: 3 });
        let site = lookup("t::iter");
        assert!(site.is_some());
        for i in 0..3 {
            hit(site, i); // must not fire
        }
        let err =
            catch_unwind(AssertUnwindSafe(|| hit(site, 3))).expect_err("iteration 3 must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected panic at iteration 3"), "{msg}");
        hit(site, 4); // past the armed iteration: inert again
        disarm("t::iter");
        assert_eq!(lookup("t::iter"), None);
        assert!(!enabled());
    }

    #[test]
    fn saturate_counts_down_then_goes_inert() {
        let _s = serial();
        disarm_all();
        arm("t::acquire", FailAction::Saturate { times: 2 });
        assert!(fire_saturate("t::acquire"));
        assert!(fire_saturate("t::acquire"));
        assert!(!fire_saturate("t::acquire"), "countdown exhausted");
        assert!(enabled(), "exhausted but still armed");
        disarm_all();
    }

    #[test]
    fn delay_burns_at_least_the_armed_time() {
        let _s = serial();
        disarm_all();
        arm("t::delay", FailAction::DelayNs { ns: 200_000 });
        let start = Instant::now();
        maybe_delay("t::delay");
        assert!(start.elapsed() >= Duration::from_micros(200));
        disarm_all();
    }

    #[test]
    fn rearming_replaces_without_double_counting() {
        let _s = serial();
        disarm_all();
        arm("t::site", FailAction::DelayNs { ns: 1 });
        arm("t::site", FailAction::DelayNs { ns: 2 });
        assert_eq!(lookup("t::site"), Some(FailAction::DelayNs { ns: 2 }));
        disarm("t::site");
        assert!(!enabled(), "armed count must return to zero");
    }
}
