//! Offline stand-in for the `rand` crate.
//!
//! Provides `rngs::SmallRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen::<f64>()` — the only surface the workspace uses (seeded,
//! reproducible synthetic matrix coefficients). The generator is
//! xoshiro256** seeded through SplitMix64, the same construction the real
//! `SmallRng` uses on 64-bit targets; statistical quality far exceeds what
//! the synthetic test matrices need.

// Audit posture: this shim needs no unsafe code; keep it that way.
#![forbid(unsafe_code)]

/// Seeding by `u64`, as in `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Conversion of raw generator output into a sample, as in
/// `rand::distributions::Standard`.
pub trait SampleUniform {
    fn from_u64(bits: u64) -> Self;
}

impl SampleUniform for f64 {
    /// Uniform in `[0, 1)`: the top 53 bits scaled by 2⁻⁵³.
    fn from_u64(bits: u64) -> Self {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for u64 {
    fn from_u64(bits: u64) -> Self {
        bits
    }
}

impl SampleUniform for u32 {
    fn from_u64(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

/// Sampling methods, as in `rand::Rng`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen<T: SampleUniform>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** — the algorithm behind `rand::rngs::SmallRng` on
    /// 64-bit platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_samples_are_unit_interval_and_varied() {
        let mut rng = SmallRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..1000).map(|_| rng.gen::<f64>()).collect();
        assert!(samples.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }
}
