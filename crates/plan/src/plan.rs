//! The execution plan: captured preprocessing products plus the chosen
//! variant.

use crate::census::PlanCensus;
use crate::fingerprint::PatternFingerprint;
use doacross_core::{AccessPattern, LevelSchedule, LinearSubscript, PreparedInspection};
use doacross_verify::{SoundnessReport, SoundnessViolation, SyncSchedule};
use std::time::Duration;

/// Which runtime the planner selected for the pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanVariant {
    /// Run the source loop sequentially: the dependence structure (or loop
    /// size) leaves no profitable parallelism.
    Sequential,
    /// The flat preprocessed doacross, consuming the plan's prebuilt writer
    /// map (no inspector at run time).
    Doacross,
    /// The §2.3 linear-subscript executor `a(i) = c·i + d`: no inspector
    /// *and* no writer map at all.
    Linear(LinearSubscript),
    /// The flat doacross claiming iterations in the plan's doconsider
    /// (wavefront-sorted) order, consuming the prebuilt writer map.
    Reordered,
    /// The §2.3 strip-mined doacross — the legal fallback for loops whose
    /// left-hand side repeats elements at iteration gaps ≥ `block_size`.
    Blocked {
        /// Iterations per `L_outer` step.
        block_size: usize,
    },
    /// Level-scheduled wavefront execution: every dependence level runs as
    /// a barrier-separated doall over the plan's prebuilt
    /// [`LevelSchedule`] — no ready-flag polling, no writer map at all.
    /// Selected when the predicted poll/stall bill of the flag-based
    /// variants exceeds the predicted `levels × barrier` cost.
    Wavefront,
}

/// Collapses a variant to its observability family (payloads dropped:
/// candidates are priced and counted per family).
impl From<PlanVariant> for doacross_obs::ObsVariant {
    fn from(v: PlanVariant) -> Self {
        match v {
            PlanVariant::Sequential => doacross_obs::ObsVariant::Sequential,
            PlanVariant::Doacross => doacross_obs::ObsVariant::Doacross,
            PlanVariant::Linear(_) => doacross_obs::ObsVariant::Linear,
            PlanVariant::Reordered => doacross_obs::ObsVariant::Reordered,
            PlanVariant::Blocked { .. } => doacross_obs::ObsVariant::Blocked,
            PlanVariant::Wavefront => doacross_obs::ObsVariant::Wavefront,
        }
    }
}

impl std::fmt::Display for PlanVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanVariant::Sequential => write!(f, "sequential"),
            PlanVariant::Doacross => write!(f, "doacross"),
            PlanVariant::Linear(s) => write!(f, "linear(a(i) = {}*i + {})", s.c, s.d),
            PlanVariant::Reordered => write!(f, "reordered"),
            PlanVariant::Blocked { block_size } => write!(f, "blocked({block_size})"),
            PlanVariant::Wavefront => write!(f, "wavefront"),
        }
    }
}

/// Predicted per-run cost (abstract cost-model cycles) of every candidate
/// the planner evaluated; `None` means the variant was not legal or not
/// applicable for the pattern.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VariantCosts {
    pub sequential: f64,
    pub doacross: Option<f64>,
    pub linear: Option<f64>,
    pub reordered: Option<f64>,
    pub blocked: Option<f64>,
    pub wavefront: Option<f64>,
}

impl VariantCosts {
    /// The predicted price of `variant`'s candidate (`None` when the
    /// planner never priced it — illegal or inapplicable for the pattern).
    /// Payloads (`Linear`'s subscript, `Blocked`'s block size) are ignored:
    /// candidates are priced per variant family.
    pub fn of(&self, variant: PlanVariant) -> Option<f64> {
        match variant {
            PlanVariant::Sequential => Some(self.sequential),
            PlanVariant::Doacross => self.doacross,
            PlanVariant::Linear(_) => self.linear,
            PlanVariant::Reordered => self.reordered,
            PlanVariant::Blocked { .. } => self.blocked,
            PlanVariant::Wavefront => self.wavefront,
        }
    }

    /// All candidate prices in `doacross_obs::ObsVariant::index` order —
    /// the shape the tracing layer records with each plan build.
    pub fn as_candidate_prices(&self) -> doacross_obs::CandidatePrices {
        [
            Some(self.sequential),
            self.doacross,
            self.linear,
            self.reordered,
            self.blocked,
            self.wavefront,
        ]
    }
}

/// A reusable, cached execution recipe for one access pattern: the
/// preprocessing products the paper computes per run, captured once.
///
/// Everything in here is a pure function of the pattern's *structure*
/// (which the [`PatternFingerprint`] key guards), so one plan serves every
/// execution of every loop sharing that structure — different coefficient
/// values, different right-hand sides, different `y` contents.
#[derive(Debug)]
pub struct ExecutionPlan {
    pub(crate) fingerprint: PatternFingerprint,
    /// Worker count the cost model priced the variants for.
    pub(crate) processors: usize,
    pub(crate) variant: PlanVariant,
    pub(crate) census: PlanCensus,
    /// Writer map for [`PlanVariant::Doacross`] / [`PlanVariant::Reordered`].
    pub(crate) prepared: Option<PreparedInspection>,
    /// Doconsider claim order for [`PlanVariant::Reordered`].
    pub(crate) order: Option<Vec<usize>>,
    /// Level structure + operand classes for [`PlanVariant::Wavefront`].
    pub(crate) levels: Option<LevelSchedule>,
    /// Detected linear subscript (kept even when another variant won, for
    /// introspection).
    pub(crate) linear: Option<LinearSubscript>,
    pub(crate) costs: VariantCosts,
    /// Wall time spent building this plan — the cost a cache hit saves.
    pub(crate) build_time: Duration,
}

impl ExecutionPlan {
    /// The fingerprint of the pattern this plan was built for.
    pub fn fingerprint(&self) -> &PatternFingerprint {
        &self.fingerprint
    }

    /// The selected variant.
    pub fn variant(&self) -> PlanVariant {
        self.variant
    }

    /// The worker count the cost model priced the variants for. A plan
    /// applied under a different pool size still computes correct results,
    /// but its variant choice may no longer be the cheapest —
    /// [`crate::PlannedDoacross`] treats such a cache entry as a miss and
    /// replans.
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// The dependence census the selection was based on.
    pub fn census(&self) -> &PlanCensus {
        &self.census
    }

    /// The prebuilt writer map, when the variant consumes one.
    pub fn prepared(&self) -> Option<&PreparedInspection> {
        self.prepared.as_ref()
    }

    /// The doconsider claim order, when the variant uses one.
    pub fn order(&self) -> Option<&[usize]> {
        self.order.as_deref()
    }

    /// The wavefront level schedule, when the variant consumes one.
    pub fn level_schedule(&self) -> Option<&LevelSchedule> {
        self.levels.as_ref()
    }

    /// The detected linear left-hand-side subscript, if any.
    pub fn linear_subscript(&self) -> Option<LinearSubscript> {
        self.linear
    }

    /// Predicted per-run costs of all evaluated candidates.
    pub fn costs(&self) -> &VariantCosts {
        &self.costs
    }

    /// Wall time spent building the plan.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Projects the plan onto its synchronization schedule — the lossless
    /// view `doacross-verify` checks. Fails (as an artifact mismatch) only
    /// when the variant's required artifact is missing, which no planner
    /// build produces; the projection exists so persisted or hand-built
    /// plans cannot dodge verification by dropping an artifact.
    pub fn sync_schedule(&self) -> Result<SyncSchedule<'_>, SoundnessViolation> {
        let missing = |what: &'static str| SoundnessViolation::ArtifactMismatch {
            what,
            expected: 1,
            got: 0,
        };
        Ok(match self.variant {
            PlanVariant::Sequential => SyncSchedule::Sequential,
            PlanVariant::Doacross => SyncSchedule::FlagsNatural {
                writers: self.prepared.as_ref().ok_or(missing("writer map"))?,
            },
            PlanVariant::Linear(subscript) => SyncSchedule::FlagsLinear { subscript },
            PlanVariant::Reordered => SyncSchedule::FlagsOrdered {
                writers: self.prepared.as_ref().ok_or(missing("writer map"))?,
                order: self.order.as_deref().ok_or(missing("claim order"))?,
            },
            PlanVariant::Blocked { block_size } => SyncSchedule::Blocked { block_size },
            PlanVariant::Wavefront => SyncSchedule::Wavefront {
                schedule: self.levels.as_ref().ok_or(missing("level schedule"))?,
            },
        })
    }

    /// Full soundness verification against the pattern the plan claims to
    /// serve: statically proves the synchronization schedule covers every
    /// flow/anti/output dependence the index arrays imply. This is
    /// translation validation — the verifier re-derives the dependence
    /// structure itself, sharing no code with the census or the planner.
    pub fn verify_against<P: AccessPattern + ?Sized>(
        &self,
        pattern: &P,
    ) -> Result<SoundnessReport, SoundnessViolation> {
        doacross_verify::verify_pattern(pattern, &self.sync_schedule()?)
    }

    /// Pattern-free soundness verification: everything provable from the
    /// plan's artifacts and census alone. This is what persisted-plan
    /// loading runs (the index arrays are not in the store).
    pub fn verify_artifacts(&self) -> Result<(), SoundnessViolation> {
        doacross_verify::verify_artifacts(&self.census.facts(), &self.sync_schedule()?)
    }

    /// Approximate heap footprint in bytes (writer map + order + level
    /// schedule), for cache sizing decisions.
    pub fn memory_bytes(&self) -> usize {
        let map = self
            .prepared
            .as_ref()
            .map_or(0, |p| p.data_len() * std::mem::size_of::<i64>());
        let order = self
            .order
            .as_ref()
            .map_or(0, |o| o.len() * std::mem::size_of::<usize>());
        let levels = self.levels.as_ref().map_or(0, |l| l.memory_bytes());
        map + order + levels
    }
}

impl std::fmt::Display for ExecutionPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "plan {} for {} ({} true deps, critical path {}, built in {:?})",
            self.variant,
            self.fingerprint,
            self.census.true_deps,
            self.census.critical_path,
            self.build_time,
        )
    }
}
