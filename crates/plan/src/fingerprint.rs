//! Structural fingerprints of access patterns.
//!
//! A plan cache needs a key that (a) is identical for two loops with the
//! same runtime dependence structure and (b) is cheap relative to the
//! preprocessing it lets callers skip. [`PatternFingerprint`] hashes the
//! information [`AccessPattern`] exposes — iteration count, data-space
//! size, every `lhs(i)`, and every `term_element(i, j)` — with two
//! independently-seeded 64-bit FNV-1a streams plus exact structural totals.
//! Cost: one multiply-xor per subscript, a single sequential scan; the
//! planner's inspection + dependence analysis + ordering is several passes
//! and allocations on top of that, which is exactly the spread the cache
//! amortizes.
//!
//! Collisions require two different index-array contents to agree on both
//! 64-bit streams *and* on all exact counts — probability ≈ 2⁻¹²⁸ per pair;
//! we accept that, as every content-addressed cache does.

use doacross_core::AccessPattern;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
/// Second stream: different offset basis (splitmix of the first) so the two
/// streams are not trivially correlated.
const FNV_OFFSET_2: u64 = 0x9E37_79B9_7F4A_7C15;
/// Mixed into the second stream with each row's term count. Without it the
/// second stream absorbed only subscript values, so two patterns with the
/// same flattened term stream but different per-row splits could agree on
/// `hash2` whenever a moved element's rotation happened to match a
/// left-hand side's — collapsing the advertised 128 bits to 64 for exactly
/// the row-boundary class of collisions. Absorbing the count (xor a
/// sentinel, so rows with 0 terms still perturb the stream differently
/// than absorbing a subscript would) keeps the streams independent.
const ROW_SENTINEL: u64 = 0xA076_1D64_78BD_642F;

#[inline]
fn fnv_step(h: u64, word: u64) -> u64 {
    // FNV-1a over the word's 8 bytes, unrolled as one xor-multiply per byte
    // would be; hashing the whole word per step keeps the scan at one
    // multiply per subscript.
    (h ^ word).wrapping_mul(FNV_PRIME)
}

/// A 128-bit structural hash plus exact shape totals of an access pattern.
///
/// Two patterns with equal fingerprints have (with cache-grade confidence)
/// identical iteration counts, data spaces, left-hand-side subscripts, and
/// right-hand-side subscripts — i.e. identical dependence structure, which
/// is everything the preprocessed doacross's inspector, census, and
/// reordering depend on. Coefficient *values* are deliberately excluded:
/// they do not affect preprocessing, so loops differing only in values
/// share a plan (the triangular-solve case: one structure, many right-hand
/// sides).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PatternFingerprint {
    hash: u64,
    hash2: u64,
    iterations: usize,
    data_len: usize,
    total_terms: u64,
}

impl PatternFingerprint {
    /// Fingerprints `pattern` in one sequential scan.
    pub fn of<P: AccessPattern + ?Sized>(pattern: &P) -> Self {
        let iterations = pattern.iterations();
        let data_len = pattern.data_len();
        let mut h1 = fnv_step(fnv_step(FNV_OFFSET, iterations as u64), data_len as u64);
        let mut h2 = fnv_step(fnv_step(FNV_OFFSET_2, data_len as u64), iterations as u64);
        let mut total_terms = 0u64;
        for i in 0..iterations {
            let lhs = pattern.lhs(i) as u64;
            h1 = fnv_step(h1, lhs);
            h2 = fnv_step(h2, lhs.rotate_left(17));
            let terms = pattern.terms(i);
            h1 = fnv_step(h1, terms as u64);
            h2 = fnv_step(h2, terms as u64 ^ ROW_SENTINEL);
            total_terms += terms as u64;
            for j in 0..terms {
                let e = pattern.term_element(i, j) as u64;
                h1 = fnv_step(h1, e);
                h2 = fnv_step(h2, e.rotate_left(31));
            }
        }
        Self {
            hash: h1,
            hash2: h2,
            iterations,
            data_len,
            total_terms,
        }
    }

    /// Iteration count of the fingerprinted pattern.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Data-space size of the fingerprinted pattern.
    pub fn data_len(&self) -> usize {
        self.data_len
    }

    /// Total right-hand-side references of the fingerprinted pattern.
    pub fn total_terms(&self) -> u64 {
        self.total_terms
    }

    /// The first 64-bit hash stream. The sharded plan cache routes on the
    /// top bits of this value; they are as uniformly distributed as the
    /// rest of the hash, so shards load-balance across structures.
    pub fn high_bits(&self) -> u64 {
        self.hash
    }

    /// The five words of the fingerprint in a fixed serialization order —
    /// the persist codec's view, and an allocation-free total-order key
    /// for consumers that need deterministic fingerprint ordering (the
    /// telemetry recorder sorts snapshots with it). Paired with
    /// [`PatternFingerprint::from_raw`]; treat the words as opaque.
    pub fn to_raw(self) -> [u64; 5] {
        [
            self.hash,
            self.hash2,
            self.iterations as u64,
            self.data_len as u64,
            self.total_terms,
        ]
    }

    /// Rebuilds a fingerprint from [`PatternFingerprint::to_raw`] words.
    /// Returns `None` when a count does not fit the host's `usize` (a
    /// store written on a 64-bit host read on a 32-bit one).
    pub(crate) fn from_raw(raw: [u64; 5]) -> Option<Self> {
        Some(Self {
            hash: raw[0],
            hash2: raw[1],
            iterations: usize::try_from(raw[2]).ok()?,
            data_len: usize::try_from(raw[3]).ok()?,
            total_terms: raw[4],
        })
    }
}

/// The observability identity of a fingerprint: its two hash streams.
/// Shape totals are dropped — 128 bits already identify the structure for
/// tracing and metric labels.
impl From<&PatternFingerprint> for doacross_obs::FpId {
    fn from(fp: &PatternFingerprint) -> Self {
        doacross_obs::FpId(fp.hash, fp.hash2)
    }
}

impl std::fmt::Display for PatternFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:016x}{:016x} (n={}, data={}, refs={})",
            self.hash, self.hash2, self.iterations, self.data_len, self.total_terms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_core::{IndirectLoop, TestLoop};

    fn sample() -> IndirectLoop {
        IndirectLoop::new(
            8,
            vec![1, 3, 5],
            vec![vec![0, 2], vec![1], vec![3, 4]],
            vec![vec![1.0, 2.0], vec![3.0], vec![4.0, 5.0]],
        )
        .unwrap()
    }

    #[test]
    fn stable_across_calls_and_instances() {
        let a = PatternFingerprint::of(&sample());
        let b = PatternFingerprint::of(&sample());
        assert_eq!(a, b);
        assert_eq!(a.iterations(), 3);
        assert_eq!(a.data_len(), 8);
        assert_eq!(a.total_terms(), 5);
    }

    #[test]
    fn coefficients_do_not_affect_the_fingerprint() {
        let structure_only = IndirectLoop::new(
            8,
            vec![1, 3, 5],
            vec![vec![0, 2], vec![1], vec![3, 4]],
            vec![vec![9.0, 9.0], vec![9.0], vec![9.0, 9.0]],
        )
        .unwrap();
        assert_eq!(
            PatternFingerprint::of(&sample()),
            PatternFingerprint::of(&structure_only),
            "values are not structure"
        );
    }

    #[test]
    fn any_subscript_change_changes_the_fingerprint() {
        let base = PatternFingerprint::of(&sample());
        let lhs_changed = IndirectLoop::new(
            8,
            vec![1, 3, 6],
            vec![vec![0, 2], vec![1], vec![3, 4]],
            vec![vec![1.0, 2.0], vec![3.0], vec![4.0, 5.0]],
        )
        .unwrap();
        assert_ne!(base, PatternFingerprint::of(&lhs_changed));
        let rhs_changed = IndirectLoop::new(
            8,
            vec![1, 3, 5],
            vec![vec![0, 2], vec![2], vec![3, 4]],
            vec![vec![1.0, 2.0], vec![3.0], vec![4.0, 5.0]],
        )
        .unwrap();
        assert_ne!(base, PatternFingerprint::of(&rhs_changed));
        let data_len_changed = IndirectLoop::new(
            9,
            vec![1, 3, 5],
            vec![vec![0, 2], vec![1], vec![3, 4]],
            vec![vec![1.0, 2.0], vec![3.0], vec![4.0, 5.0]],
        )
        .unwrap();
        assert_ne!(base, PatternFingerprint::of(&data_len_changed));
    }

    #[test]
    fn term_boundaries_matter() {
        // Same flattened reference stream, different per-iteration split:
        // [ [0,2], [1] ] vs [ [0], [2,1] ].
        let a = IndirectLoop::new(
            4,
            vec![0, 1],
            vec![vec![0, 2], vec![1]],
            vec![vec![1.0; 2], vec![1.0]],
        )
        .unwrap();
        let b = IndirectLoop::new(
            4,
            vec![0, 1],
            vec![vec![0], vec![2, 1]],
            vec![vec![1.0], vec![1.0; 2]],
        )
        .unwrap();
        assert_ne!(PatternFingerprint::of(&a), PatternFingerprint::of(&b));
    }

    #[test]
    fn row_boundary_split_perturbs_both_streams() {
        // Adversarial pair for the *second* stream: same flattened term
        // stream, different per-row split, and the row-1 left-hand side
        // chosen so rot17(lhs) equals rot31(element) — 16384 = 1 << 14,
        // rot17(1 << 14) = 1 << 31 = rot31(1). Before the per-row sentinel
        // was absorbed into the second stream, these two patterns agreed
        // on `hash2` exactly (the moved element masqueraded as the lhs in
        // the interleaved stream), leaving only 64 effective bits for the
        // row-boundary collision class.
        let lhs = vec![0usize, 1 << 14];
        let a = IndirectLoop::new(
            (1 << 14) + 1,
            lhs.clone(),
            vec![vec![1], vec![]],
            vec![vec![1.0], vec![]],
        )
        .unwrap();
        let b = IndirectLoop::new(
            (1 << 14) + 1,
            lhs,
            vec![vec![], vec![1]],
            vec![vec![], vec![1.0]],
        )
        .unwrap();
        let fa = PatternFingerprint::of(&a);
        let fb = PatternFingerprint::of(&b);
        assert_ne!(fa, fb);
        assert_ne!(fa.hash, fb.hash, "first stream separates the split");
        assert_ne!(
            fa.hash2, fb.hash2,
            "second stream must also separate per-row term counts"
        );
    }

    #[test]
    fn raw_words_round_trip() {
        let fp = PatternFingerprint::of(&sample());
        let rebuilt = PatternFingerprint::from_raw(fp.to_raw()).unwrap();
        assert_eq!(fp, rebuilt);
        assert_eq!(rebuilt.high_bits(), fp.high_bits());
    }

    #[test]
    fn testloop_parameterizations_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for l in 1..=14 {
            for m in [1usize, 5] {
                assert!(
                    seen.insert(PatternFingerprint::of(&TestLoop::new(100, m, l))),
                    "L={l} M={m} collided"
                );
            }
        }
    }

    #[test]
    fn empty_pattern_fingerprints() {
        let e = IndirectLoop::new(0, vec![], vec![], vec![]).unwrap();
        let fp = PatternFingerprint::of(&e);
        assert_eq!(fp.iterations(), 0);
        assert_eq!(fp.total_terms(), 0);
        assert_eq!(fp, PatternFingerprint::of(&e));
    }

    #[test]
    fn display_includes_shape() {
        let text = PatternFingerprint::of(&sample()).to_string();
        assert!(text.contains("n=3"));
        assert!(text.contains("refs=5"));
    }
}
