//! [`ConcurrentPlanCache`]: the sharded, internally-synchronized plan
//! cache behind `doacross_engine::Engine`.
//!
//! The single-owner [`PlanCache`](crate::PlanCache) is `&mut`-only — fine
//! for a solver that owns its runtime, useless for a session object served
//! from many threads. This type shards the key space across `N`
//! mutex-guarded [`PlanCache`]s, routed by the top bits of the
//! [`PatternFingerprint`]'s hash, so concurrent callers contend only when
//! their structures land in the same shard. Each shard keeps its own LRU
//! recency and counters; [`ConcurrentPlanCache::stats`] merges them.
//!
//! Two deliberate design points:
//!
//! * **Builds happen under the shard lock.** A cache miss holds its
//!   shard's mutex while the planner runs, so a second thread racing on
//!   the *same* structure blocks briefly and then hits, instead of both
//!   planning the same pattern. Other shards stay available throughout.
//!   (Plan builds take microseconds-to-milliseconds; the alternative —
//!   duplicate builds with last-writer-wins — wastes strictly more work.)
//! * **Invalidation is a generation bump, not just a removal.** Plans are
//!   handed out as `Arc`s, so dropping a cache entry cannot recall handles
//!   already in flight. Each fingerprint carries a monotonically
//!   increasing *generation* (0 until first invalidated); a handle records
//!   the generation it was prepared under plus the shared atomic cell
//!   tracking the current one, so staleness checks on the execute hot path
//!   are one lock-free load ([`ConcurrentPlanCache::generation_of`] is the
//!   lock-taking query for callers without a cell).

use crate::cache::{CacheStats, PlanCache};
use crate::fingerprint::PatternFingerprint;
use crate::persist::PlanStore;
use crate::plan::ExecutionPlan;
use doacross_obs::{Obs, TraceEvent};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Upper bound on the shard count (a power of two; beyond this the
/// per-shard LRUs are too small to be useful).
pub const MAX_SHARDS: usize = 4096;

/// Fallback shard count when the host's parallelism cannot be queried.
pub const FALLBACK_SHARDS: usize = 8;

/// Upper bound for [`default_shard_count`]: shards exist to keep
/// concurrent callers off each other's locks, and callers are threads —
/// beyond a generous multiple of any sane machine's core count, extra
/// shards only fragment the LRU capacity.
pub const DEFAULT_SHARDS_CAP: usize = 64;

/// Shard count matched to *this host*: the available parallelism, rounded
/// up to a power of two and clamped to `1..=`[`DEFAULT_SHARDS_CAP`]
/// ([`FALLBACK_SHARDS`] when the host cannot be queried). Contention on
/// the cache scales with the threads that can actually run concurrently,
/// so a 1-core container gets one shard (its whole capacity in one LRU)
/// while a 32-way server gets 32.
///
/// `shard_of` depends on the shard count, so a routing is only stable for
/// the lifetime of one cache — which is all the engine needs; persisted
/// stores are keyed by fingerprint, not by shard.
pub fn default_shard_count() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(FALLBACK_SHARDS)
        .clamp(1, DEFAULT_SHARDS_CAP)
        .next_power_of_two()
}

/// One shard's occupancy and traffic, as reported by
/// [`ConcurrentPlanCache::shard_stats`] — the observability hook for
/// capacity tuning: a shard whose `len` sits at `capacity` while others
/// idle means the fingerprint distribution is skewed for this workload
/// and the shard count (or total capacity) wants adjusting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index (`0..shard_count`).
    pub shard: usize,
    /// Plans currently resident in this shard.
    pub len: usize,
    /// This shard's plan capacity.
    pub capacity: usize,
    /// This shard's traffic counters.
    pub stats: CacheStats,
}

impl ShardStats {
    /// `len / capacity` (0 for a zero-capacity shard).
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.len as f64 / self.capacity as f64
        }
    }
}

struct Shard {
    lru: PlanCache,
    /// Per-fingerprint generation cells. Handed out as `Arc`s by
    /// [`ConcurrentPlanCache::get_or_build`] so prepared-loop handles can
    /// check staleness with one atomic load instead of taking this
    /// shard's lock on every execute. Writes (invalidation bumps) happen
    /// under the shard lock; reads are lock-free.
    ///
    /// Growth is pruned on cache misses: cells nobody watches
    /// (`strong_count == 1`) that were never invalidated (`load == 0`)
    /// are dropped, so the map is bounded by live handles plus distinct
    /// fingerprints ever invalidated — not by cache traffic.
    generations: HashMap<PatternFingerprint, Arc<AtomicU64>>,
}

impl Shard {
    fn generation_of(&self, key: &PatternFingerprint) -> u64 {
        self.generations
            .get(key)
            .map_or(0, |cell| cell.load(Ordering::Acquire))
    }

    fn generation_cell(&mut self, key: &PatternFingerprint) -> Arc<AtomicU64> {
        Arc::clone(
            self.generations
                .entry(*key)
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }
}

/// Sharded fingerprint-keyed plan cache, safe to share via `&self` (see
/// module docs).
pub struct ConcurrentPlanCache {
    shards: Box<[Mutex<Shard>]>,
    /// `64 − log2(shards.len())`: shard index = fingerprint high bits.
    shift: u32,
    /// Trace emitter for hit/miss/evict/invalidate/swap events (disabled
    /// by default — one branch per operation). Events are emitted *after*
    /// the shard lock is released so observability never extends the
    /// critical section.
    obs: Obs,
}

impl ConcurrentPlanCache {
    /// Cache holding up to `capacity` plans in total, spread over
    /// `shards` shards (rounded up to a power of two, clamped to
    /// `1..=`[`MAX_SHARDS`]). Each shard holds `ceil(capacity / shards)`
    /// plans, so the realized total capacity may slightly exceed
    /// `capacity`. A capacity of 0 is legal and makes every lookup a miss.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let nshards = shards.clamp(1, MAX_SHARDS).next_power_of_two();
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(nshards)
        };
        let shards: Box<[Mutex<Shard>]> = (0..nshards)
            .map(|_| {
                Mutex::new(Shard {
                    lru: PlanCache::new(per_shard),
                    generations: HashMap::new(),
                })
            })
            .collect();
        Self {
            shift: 64 - nshards.trailing_zeros(),
            shards,
            obs: Obs::disabled(),
        }
    }

    /// Attaches an observability handle; subsequent cache operations emit
    /// [`TraceEvent`]s through it. Called by the engine builder before the
    /// cache is shared.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total plan capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.shards.len() * self.shards[0].lock().lru.capacity()
    }

    /// Plans currently held, summed over shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().lru.len()).sum()
    }

    /// Whether no shard holds a plan.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().lru.is_empty())
    }

    /// Merged traffic counters of all shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in self.shards.iter() {
            total.absorb(&shard.lock().lru.stats());
        }
        total
    }

    /// Per-shard occupancy and traffic, in shard order. Shards are locked
    /// one at a time, so each row is internally consistent but the vector
    /// is not a global atomic cut — the same contract as
    /// [`ConcurrentPlanCache::snapshot`], and enough for capacity tuning.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(index, shard)| {
                let shard = shard.lock();
                ShardStats {
                    shard: index,
                    len: shard.lru.len(),
                    capacity: shard.lru.capacity(),
                    stats: shard.lru.stats(),
                }
            })
            .collect()
    }

    /// The shard index `key` routes to — lets callers correlate a
    /// fingerprint with its [`ShardStats`] row.
    pub fn shard_of(&self, key: &PatternFingerprint) -> usize {
        if self.shards.len() == 1 {
            0
        } else {
            (key.high_bits() >> self.shift) as usize
        }
    }

    /// Whether a plan for `key` is cached (no recency or counter effects).
    pub fn contains(&self, key: &PatternFingerprint) -> bool {
        self.shard(key).lock().lru.contains(key)
    }

    /// Drops every plan from every shard. Traffic counters and generations
    /// survive (a cleared cache does not resurrect invalidated handles).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.lock().lru.clear();
        }
    }

    /// Looks up `key`, marking it most recently used in its shard.
    pub fn get(&self, key: &PatternFingerprint) -> Option<Arc<ExecutionPlan>> {
        let plan = self.shard(key).lock().lru.get(key);
        if self.obs.enabled() {
            self.obs.emit(match plan {
                Some(_) => TraceEvent::CacheHit { fp: key.into() },
                None => TraceEvent::CacheMiss { fp: key.into() },
            });
        }
        plan
    }

    /// Stores `plan` under its own fingerprint in the owning shard.
    pub fn insert(&self, plan: Arc<ExecutionPlan>) {
        let key = *plan.fingerprint();
        let evicted = self.shard(&key).lock().lru.insert(plan);
        if self.obs.enabled() {
            if let Some(out) = &evicted {
                self.obs.emit(TraceEvent::CacheEvicted {
                    fp: out.fingerprint().into(),
                });
            }
        }
    }

    /// The current generation of `key`: 0 until the first
    /// [`ConcurrentPlanCache::invalidate`], incremented by each one.
    pub fn generation_of(&self, key: &PatternFingerprint) -> u64 {
        self.shard(key).lock().generation_of(key)
    }

    /// Invalidates `key`: drops any cached plan and bumps the key's
    /// generation so handles prepared under earlier generations fail fast.
    /// Returns `true` when a cached plan was actually dropped. The
    /// generation advances either way — a plan already evicted from the
    /// LRU can still be live behind `Arc` handles.
    pub fn invalidate(&self, key: &PatternFingerprint) -> bool {
        let mut shard = self.shard(key).lock();
        let generation = shard.generation_cell(key).fetch_add(1, Ordering::AcqRel) + 1;
        let dropped = shard.lru.remove(key).is_some();
        drop(shard);
        if self.obs.enabled() {
            self.obs.emit(TraceEvent::CacheInvalidated {
                fp: key.into(),
                generation,
                dropped,
            });
        }
        dropped
    }

    /// Replaces the cached plan for `plan`'s own fingerprint and bumps the
    /// key's generation, atomically with respect to the owning shard — the
    /// adaptive promotion/demotion primitive. Handles prepared under the
    /// old plan observe the bump and fail fast with a typed staleness
    /// error instead of silently executing the superseded variant;
    /// re-preparing serves the new plan. Returns the key's new generation.
    pub fn swap_plan(&self, plan: Arc<ExecutionPlan>) -> u64 {
        let key = *plan.fingerprint();
        let variant = plan.variant();
        let mut shard = self.shard(&key).lock();
        let generation = shard.generation_cell(&key).fetch_add(1, Ordering::AcqRel) + 1;
        let evicted = shard.lru.insert(plan); // replaces in place for an existing key
        drop(shard);
        if self.obs.enabled() {
            self.obs.emit(TraceEvent::PlanSwapped {
                fp: (&key).into(),
                variant: variant.into(),
                generation,
            });
            if let Some(out) = &evicted {
                self.obs.emit(TraceEvent::CacheEvicted {
                    fp: out.fingerprint().into(),
                });
            }
        }
        generation
    }

    /// Looks up `key` (an entry failing `matches` counts as a miss, as in
    /// [`PlanCache::get_matching`]); on a miss, builds a plan with `build`
    /// — while holding the shard lock, see module docs — and stores it.
    /// Returns the plan, the key's shared generation cell (the lock-free
    /// watch point for staleness checks), the generation **read while the
    /// shard lock was held** — so the (plan, generation) pair is
    /// consistent even against a concurrent [`ConcurrentPlanCache::swap_plan`]
    /// or [`ConcurrentPlanCache::invalidate`]; a caller re-reading the
    /// cell after unlocking could pair the *old* plan with the *new*
    /// generation and never observe staleness — and whether this was a
    /// hit.
    #[allow(clippy::type_complexity)]
    pub fn get_or_build<E>(
        &self,
        key: &PatternFingerprint,
        matches: impl Fn(&ExecutionPlan) -> bool,
        build: impl FnOnce() -> Result<ExecutionPlan, E>,
    ) -> Result<(Arc<ExecutionPlan>, Arc<AtomicU64>, u64, bool), E> {
        let mut shard = self.shard(key).lock();
        let cell = shard.generation_cell(key);
        let generation = cell.load(Ordering::Acquire);
        if let Some(plan) = shard.lru.get_matching(key, &matches) {
            drop(shard);
            if self.obs.enabled() {
                self.obs.emit(TraceEvent::CacheHit { fp: key.into() });
            }
            return Ok((plan, cell, generation, true));
        }
        // Miss: prune generation cells nobody can observe anymore (no
        // outstanding handle, never invalidated) so the map stays bounded;
        // the build below dwarfs this sweep.
        shard
            .generations
            .retain(|k, c| k == key || Arc::strong_count(c) > 1 || c.load(Ordering::Relaxed) > 0);
        let plan = Arc::new(build()?);
        let evicted = shard.lru.insert(Arc::clone(&plan));
        drop(shard);
        if self.obs.enabled() {
            self.obs.emit(TraceEvent::CacheMiss { fp: key.into() });
            if let Some(out) = &evicted {
                self.obs.emit(TraceEvent::CacheEvicted {
                    fp: out.fingerprint().into(),
                });
            }
        }
        Ok((plan, cell, generation, false))
    }

    /// Captures every resident plan (per-shard MRU-first, tagged with its
    /// key's current generation) plus all nonzero invalidation generations
    /// into a [`PlanStore`] — the cross-run warm-start artifact.
    ///
    /// Shards are locked one at a time, so each shard's view is internally
    /// consistent but the snapshot as a whole is not a global atomic cut;
    /// for the intended use (quiescent save at shutdown / periodic
    /// checkpoint) that is exactly enough.
    pub fn snapshot(&self) -> PlanStore {
        let mut store = PlanStore::new();
        for shard in self.shards.iter() {
            let shard = shard.lock();
            for key in shard.lru.keys_by_recency() {
                let plan = shard
                    .lru
                    .peek(&key)
                    .expect("recency-listed key is resident");
                store.push_entry(shard.generation_of(&key), Arc::clone(plan));
            }
            for (key, cell) in shard.generations.iter() {
                let generation = cell.load(Ordering::Acquire);
                if generation > 0 {
                    store.push_generation(*key, generation);
                }
            }
        }
        store
    }

    /// Restores `store` into this cache: generation counters first (so
    /// invalidations survive the restart — `fetch_max`, never backwards),
    /// then the plans, least recently used first so the store's recency
    /// becomes each shard's recency. A stored plan whose key's current
    /// generation has advanced past the one it was captured under was
    /// invalidated after the snapshot and is **dropped**, not resurrected.
    /// Restores count as insertions, never as hits or misses. Returns the
    /// number of plans *inserted*; if the store outsizes a shard's
    /// capacity, normal LRU eviction applies during the restore, so the
    /// final resident count ([`ConcurrentPlanCache::len`]) can be smaller
    /// — the most recently used plans win, as everywhere else.
    pub fn warm_from(&self, store: &PlanStore) -> usize {
        for (key, generation) in store.generations() {
            let mut shard = self.shard(key).lock();
            shard
                .generation_cell(key)
                .fetch_max(generation, Ordering::AcqRel);
        }
        let mut restored = 0;
        for (generation, plan) in store.entries.iter().rev() {
            let key = plan.fingerprint();
            let mut shard = self.shard(key).lock();
            if shard.lru.capacity() == 0 {
                continue;
            }
            if shard.generation_of(key) > *generation {
                continue; // invalidated since this plan was captured
            }
            shard.lru.insert(Arc::clone(plan));
            restored += 1;
        }
        restored
    }

    fn shard(&self, key: &PatternFingerprint) -> &Mutex<Shard> {
        &self.shards[self.shard_of(key)]
    }
}

impl std::fmt::Debug for ConcurrentPlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentPlanCache")
            .field("shards", &self.shard_count())
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::Planner;
    use doacross_core::IndirectLoop;
    use doacross_par::ThreadPool;

    fn scatter_loop(n: usize) -> IndirectLoop {
        let a: Vec<usize> = (0..n).collect();
        IndirectLoop::new(n, a, vec![vec![]; n], vec![vec![]; n]).unwrap()
    }

    fn build_plan(pool: &ThreadPool, l: &IndirectLoop) -> Arc<ExecutionPlan> {
        Arc::new(Planner::new().plan(pool, l).unwrap())
    }

    #[test]
    fn shard_count_normalizes_to_powers_of_two() {
        assert_eq!(ConcurrentPlanCache::new(16, 0).shard_count(), 1);
        assert_eq!(ConcurrentPlanCache::new(16, 1).shard_count(), 1);
        assert_eq!(ConcurrentPlanCache::new(16, 3).shard_count(), 4);
        assert_eq!(ConcurrentPlanCache::new(16, 8).shard_count(), 8);
        assert_eq!(
            ConcurrentPlanCache::new(16, usize::MAX).shard_count(),
            MAX_SHARDS
        );
    }

    #[test]
    fn capacity_spreads_over_shards() {
        let cache = ConcurrentPlanCache::new(10, 4);
        assert_eq!(cache.capacity(), 12, "ceil(10/4) = 3 per shard");
        assert_eq!(ConcurrentPlanCache::new(0, 4).capacity(), 0);
    }

    #[test]
    fn hit_miss_and_merged_stats() {
        let pool = ThreadPool::new(2);
        // Ample per-shard capacity (24/4 = 6): no evictions regardless of
        // how the six fingerprints distribute over the shards.
        let cache = ConcurrentPlanCache::new(24, 4);
        let loops: Vec<IndirectLoop> = (1..=6).map(scatter_loop).collect();
        for l in &loops {
            let key = crate::PatternFingerprint::of(l);
            assert!(cache.get(&key).is_none());
            cache.insert(build_plan(&pool, l));
            assert!(cache.contains(&key));
            assert!(cache.get(&key).is_some());
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (6, 6, 6));
        assert_eq!(cache.len(), 6);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn get_or_build_builds_once_per_key() {
        let pool = ThreadPool::new(2);
        let cache = ConcurrentPlanCache::new(8, 2);
        let l = scatter_loop(9);
        let key = crate::PatternFingerprint::of(&l);
        let mut builds = 0;
        for round in 0..3 {
            let (plan, cell, generation, hit) = cache
                .get_or_build(
                    &key,
                    |_| true,
                    || {
                        builds += 1;
                        Planner::new().plan(&pool, &l)
                    },
                )
                .unwrap();
            assert_eq!(hit, round > 0);
            assert_eq!(cell.load(Ordering::Acquire), 0);
            assert_eq!(generation, 0, "generation read under the shard lock");
            assert_eq!(plan.fingerprint(), &key);
        }
        assert_eq!(builds, 1);
    }

    #[test]
    fn get_or_build_generation_is_consistent_with_the_returned_plan() {
        // Regression for the prepare-vs-swap race: the generation a
        // handle records must be the one read while the shard lock held
        // both the plan and the counter — after any number of swaps and
        // invalidations, (plan, generation) pairs stay consistent, so a
        // later bump always makes the pair observable as stale.
        let pool = ThreadPool::new(2);
        let cache = ConcurrentPlanCache::new(8, 2);
        let l = scatter_loop(21);
        let key = crate::PatternFingerprint::of(&l);
        cache.invalidate(&key); // generation 1 before anything is cached
        let (plan, cell, generation, hit) = cache
            .get_or_build(&key, |_| true, || Planner::new().plan(&pool, &l))
            .unwrap();
        assert!(!hit);
        assert_eq!(generation, 1, "the under-lock value, not a stale 0");
        assert_eq!(cell.load(Ordering::Acquire), generation);

        // A swap after the lookup bumps past the recorded generation:
        // the pair (plan, 1) is now verifiably stale.
        let bumped = cache.swap_plan(build_plan(&pool, &l));
        assert_eq!(bumped, 2);
        assert!(cell.load(Ordering::Acquire) > generation);
        let served = cache.get(&key).expect("swapped plan resident");
        assert!(!Arc::ptr_eq(&served, &plan), "old pair no longer served");
    }

    #[test]
    fn invalidation_bumps_generation_and_drops_the_plan() {
        let pool = ThreadPool::new(2);
        let cache = ConcurrentPlanCache::new(8, 2);
        let l = scatter_loop(5);
        let key = crate::PatternFingerprint::of(&l);
        assert_eq!(cache.generation_of(&key), 0);
        assert!(!cache.invalidate(&key), "nothing cached yet");
        assert_eq!(cache.generation_of(&key), 1, "generation advances anyway");

        cache.insert(build_plan(&pool, &l));
        assert!(cache.invalidate(&key), "cached plan dropped");
        assert_eq!(cache.generation_of(&key), 2);
        assert!(!cache.contains(&key));

        // A rebuild after invalidation serves the *new* generation, and
        // the cell keeps tracking later invalidations lock-free.
        let (_, cell, _, hit) = cache
            .get_or_build(&key, |_| true, || Planner::new().plan(&pool, &l))
            .unwrap();
        assert!(!hit);
        assert_eq!(cell.load(Ordering::Acquire), 2);
        cache.invalidate(&key);
        assert_eq!(cell.load(Ordering::Acquire), 3, "same cell, new value");
    }

    #[test]
    fn rejected_match_counts_as_miss_and_rebuilds() {
        let pool = ThreadPool::new(2);
        let cache = ConcurrentPlanCache::new(4, 1);
        let l = scatter_loop(7);
        let key = crate::PatternFingerprint::of(&l);
        cache.insert(build_plan(&pool, &l));
        let (_, _, _, hit) = cache
            .get_or_build(&key, |_| false, || Planner::new().plan(&pool, &l))
            .unwrap();
        assert!(!hit, "pricing-context mismatch must replan");
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.insertions, 2, "replacement insert recorded");
    }

    #[test]
    fn unwatched_generation_cells_are_pruned_on_misses() {
        let pool = ThreadPool::new(2);
        let cache = ConcurrentPlanCache::new(64, 1);
        // Prepare many structures, dropping every cell immediately: the
        // single shard's generation map must not grow with traffic.
        for n in 1..=20 {
            let l = scatter_loop(n);
            let key = crate::PatternFingerprint::of(&l);
            let (_, cell, _, _) = cache
                .get_or_build(&key, |_| true, || Planner::new().plan(&pool, &l))
                .unwrap();
            drop(cell);
        }
        // A watched cell and an invalidated key survive pruning.
        let watched_loop = scatter_loop(30);
        let watched_key = crate::PatternFingerprint::of(&watched_loop);
        let (_, watched_cell, _, _) = cache
            .get_or_build(
                &watched_key,
                |_| true,
                || Planner::new().plan(&pool, &watched_loop),
            )
            .unwrap();
        let invalidated_key = crate::PatternFingerprint::of(&scatter_loop(31));
        cache.invalidate(&invalidated_key);

        // The next miss sweeps: only the watched and invalidated cells
        // (and the key being built) remain.
        let fresh = scatter_loop(32);
        let fresh_key = crate::PatternFingerprint::of(&fresh);
        let (_, _, _, _) = cache
            .get_or_build(&fresh_key, |_| true, || Planner::new().plan(&pool, &fresh))
            .unwrap();
        let retained = cache.shards[0].lock().generations.len();
        assert!(
            retained <= 3,
            "unwatched, never-invalidated cells pruned (kept {retained})"
        );
        assert_eq!(watched_cell.load(Ordering::Acquire), 0);
        assert_eq!(cache.generation_of(&invalidated_key), 1);
    }

    #[test]
    fn fresh_and_warm_started_caches_report_zero_hit_rate() {
        // Regression: the merged multi-shard stats path must inherit the
        // 0/0 → 0.0 guard, with and without warm-started insertions.
        let cache = ConcurrentPlanCache::new(16, 4);
        assert_eq!(cache.stats().hit_rate(), 0.0);
        assert!(!cache.stats().hit_rate().is_nan());

        let pool = ThreadPool::new(2);
        cache.insert(build_plan(&pool, &scatter_loop(5)));
        let warm = ConcurrentPlanCache::new(16, 4);
        assert_eq!(warm.warm_from(&cache.snapshot()), 1);
        assert_eq!(warm.stats().hit_rate(), 0.0, "restores are not traffic");
        assert_eq!(warm.stats().insertions, 1);
    }

    #[test]
    fn snapshot_round_trips_plans_recency_and_generations() {
        let pool = ThreadPool::new(2);
        // One shard so recency is a single total order we can assert on.
        let cache = ConcurrentPlanCache::new(8, 1);
        let loops: Vec<IndirectLoop> = (1..=4).map(scatter_loop).collect();
        let keys: Vec<_> = loops.iter().map(crate::PatternFingerprint::of).collect();
        for l in &loops {
            cache.insert(build_plan(&pool, l));
        }
        // Touch key 0 so recency is [0, 3, 2, 1]; invalidate key 1 (which
        // also drops its plan) and bump a never-cached key's generation.
        assert!(cache.get(&keys[0]).is_some());
        assert!(cache.invalidate(&keys[1]));
        let ghost = crate::PatternFingerprint::of(&scatter_loop(9));
        cache.invalidate(&ghost);

        let store = cache.snapshot();
        assert_eq!(store.len(), 3, "invalidated plan not captured");
        assert_eq!(store.generation_of(&keys[1]), 1);
        assert_eq!(store.generation_of(&ghost), 1);
        assert_eq!(store.generation_of(&keys[0]), 0);

        let restored = ConcurrentPlanCache::new(8, 1);
        assert_eq!(restored.warm_from(&store), 3);
        assert_eq!(
            restored.shards[0].lock().lru.keys_by_recency(),
            cache.shards[0].lock().lru.keys_by_recency(),
            "recency order survives the round trip"
        );
        // Invalidation generations survive too: a handle prepared at
        // generation 0 before the save would still be stale after restore.
        assert_eq!(restored.generation_of(&keys[1]), 1);
        assert_eq!(restored.generation_of(&ghost), 1);
    }

    #[test]
    fn warm_from_drops_plans_invalidated_after_the_snapshot() {
        let pool = ThreadPool::new(2);
        let cache = ConcurrentPlanCache::new(8, 2);
        let keep = scatter_loop(6);
        let retire = scatter_loop(7);
        cache.insert(build_plan(&pool, &keep));
        cache.insert(build_plan(&pool, &retire));
        let store = cache.snapshot();
        assert_eq!(store.len(), 2);

        // Invalidate after the snapshot: restoring the store into the same
        // cache must not resurrect the retired plan.
        let retired_key = crate::PatternFingerprint::of(&retire);
        cache.invalidate(&retired_key);
        assert!(!cache.contains(&retired_key));
        assert_eq!(cache.warm_from(&store), 1, "only the live plan returns");
        assert!(cache.contains(&crate::PatternFingerprint::of(&keep)));
        assert!(
            !cache.contains(&retired_key),
            "pre-snapshot-generation plan dropped on restore"
        );

        // Same rule across processes: a fresh cache that first learns the
        // newer generation table, then sees an older store.
        let newer = cache.snapshot(); // carries generation 1 for retired_key
        let fresh = ConcurrentPlanCache::new(8, 2);
        fresh.warm_from(&newer);
        assert_eq!(
            fresh.warm_from(&store),
            1,
            "stale entry in an older store is dropped"
        );
        assert!(!fresh.contains(&retired_key));
    }

    #[test]
    fn shard_stats_expose_skew() {
        let pool = ThreadPool::new(2);
        let cache = ConcurrentPlanCache::new(16, 4);
        // A skewed-fingerprint workload: whatever shard each structure
        // hashes to, drive ALL the repeat traffic at the single hottest
        // one, so one shard accumulates the hits while the others idle.
        let loops: Vec<IndirectLoop> = (1..=12).map(scatter_loop).collect();
        let keys: Vec<_> = loops.iter().map(crate::PatternFingerprint::of).collect();
        for l in &loops {
            cache.insert(build_plan(&pool, l));
        }
        let mut per_shard_inserts = vec![0usize; cache.shard_count()];
        for key in &keys {
            per_shard_inserts[cache.shard_of(key)] += 1;
        }
        let hot = (0..cache.shard_count())
            .max_by_key(|&s| per_shard_inserts[s])
            .unwrap();
        // Only the most recently inserted `capacity` keys of the hot shard
        // are guaranteed resident (earlier ones may have been evicted).
        let all_hot: Vec<_> = keys.iter().filter(|k| cache.shard_of(k) == hot).collect();
        let hot_keys = &all_hot[all_hot.len().saturating_sub(4)..];
        assert!(!hot_keys.is_empty());
        for _ in 0..5 {
            for key in hot_keys {
                assert!(cache.get(key).is_some());
            }
        }

        let rows = cache.shard_stats();
        assert_eq!(rows.len(), cache.shard_count());
        for (s, row) in rows.iter().enumerate() {
            assert_eq!(row.shard, s);
            assert_eq!(row.capacity, 4, "16 plans over 4 shards");
            assert_eq!(
                row.len,
                per_shard_inserts[s].min(row.capacity),
                "occupancy reflects where the fingerprints actually landed"
            );
            assert!(row.occupancy() <= 1.0);
            let expected_hits = if s == hot {
                5 * hot_keys.len() as u64
            } else {
                0
            };
            assert_eq!(row.stats.hits, expected_hits, "shard {s}");
        }

        // The per-shard rows must reconcile exactly with the merged view.
        let mut merged = CacheStats::default();
        let mut total_len = 0;
        for row in &rows {
            merged.absorb(&row.stats);
            total_len += row.len;
        }
        assert_eq!(merged, cache.stats());
        assert_eq!(total_len, cache.len());
    }

    #[test]
    fn default_shard_count_is_a_clamped_power_of_two() {
        let n = default_shard_count();
        assert!(n.is_power_of_two());
        assert!((1..=DEFAULT_SHARDS_CAP).contains(&n));
        // Deterministic within a process: shard routing built from it is
        // stable for the lifetime of any one cache.
        assert_eq!(n, default_shard_count());
    }

    #[test]
    fn swap_plan_bumps_generation_and_replaces_in_place() {
        let pool = ThreadPool::new(2);
        let cache = ConcurrentPlanCache::new(8, 2);
        let l = scatter_loop(11);
        let key = crate::PatternFingerprint::of(&l);
        let (_, cell, _, _) = cache
            .get_or_build(&key, |_| true, || Planner::new().plan(&pool, &l))
            .unwrap();
        assert_eq!(cell.load(Ordering::Acquire), 0);

        let replacement = build_plan(&pool, &l);
        let generation = cache.swap_plan(Arc::clone(&replacement));
        assert_eq!(generation, 1, "swap advances the key's generation");
        assert_eq!(cell.load(Ordering::Acquire), 1, "watchers see the bump");
        let served = cache.get(&key).expect("plan still cached");
        assert!(
            Arc::ptr_eq(&served, &replacement),
            "the swapped plan is the one served"
        );
        assert_eq!(cache.len(), 1, "replacement, not a second entry");

        // Swapping a never-cached key inserts it and still bumps.
        let fresh = scatter_loop(13);
        let fresh_plan = build_plan(&pool, &fresh);
        let fresh_key = *fresh_plan.fingerprint();
        assert_eq!(cache.swap_plan(fresh_plan), 1);
        assert!(cache.contains(&fresh_key));
    }

    #[test]
    fn per_shard_eviction_respects_total_capacity() {
        let pool = ThreadPool::new(2);
        let cache = ConcurrentPlanCache::new(4, 4);
        for n in 1..=32 {
            cache.insert(build_plan(&pool, &scatter_loop(n)));
        }
        let s = cache.stats();
        assert!(cache.len() <= cache.capacity());
        assert_eq!(s.insertions - s.evictions, cache.len() as u64);
    }
}
