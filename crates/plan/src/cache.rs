//! Fingerprint-keyed LRU cache of execution plans.
//!
//! This is where the amortization the paper argues for in §2.1 becomes a
//! systems feature: a solver iterating on a fixed sparse structure, or a
//! service replaying the same loop shapes for many requests, pays
//! inspection + dependence analysis + ordering once per *structure*
//! instead of once per *run*. The cache is a plain LRU over
//! [`PatternFingerprint`] keys — a doubly-linked recency list threaded
//! through a slab, O(1) hit, insert, and eviction — with hit/miss/eviction
//! counters so the skip is observable from the outside.

use crate::fingerprint::PatternFingerprint;
use crate::persist::PlanStore;
use crate::plan::ExecutionPlan;
use std::collections::HashMap;
use std::sync::Arc;

const NIL: usize = usize::MAX;

/// Cache traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a plan.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Plans evicted to make room.
    pub evictions: u64,
    /// Plans stored, including same-key replacements.
    pub insertions: u64,
}

impl CacheStats {
    /// Adds `other`'s counters into `self` — used to merge per-shard stats
    /// into one cache-wide view.
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.insertions += other.insertions;
    }

    /// `hits / (hits + misses)`, 0 when the cache was never consulted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Entry {
    key: PatternFingerprint,
    /// `None` only while the slot sits on the free list — resident
    /// entries always hold a plan. Clearing on eviction/removal matters:
    /// a parked `Arc` would keep a retired plan's writer map (O(data
    /// space)) alive until the slot is reused.
    plan: Option<Arc<ExecutionPlan>>,
    prev: usize,
    next: usize,
}

/// The plan of an entry that is linked into the recency list.
fn resident(entry: &Entry) -> &Arc<ExecutionPlan> {
    entry.plan.as_ref().expect("resident entry holds a plan")
}

/// LRU cache of [`ExecutionPlan`]s keyed by [`PatternFingerprint`].
///
/// Plans are handed out as [`Arc`]s, so a caller can keep executing a plan
/// that has since been evicted.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    map: HashMap<PatternFingerprint, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    /// Most recently used.
    head: usize,
    /// Least recently used.
    tail: usize,
    stats: CacheStats,
}

impl PlanCache {
    /// Cache holding up to `capacity` plans. A capacity of 0 is legal and
    /// makes every lookup a miss (useful for measuring the uncached
    /// baseline).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
        }
    }

    /// Maximum number of plans held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Plans currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Traffic counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Whether a plan for `key` is cached (does not touch recency or
    /// counters).
    pub fn contains(&self, key: &PatternFingerprint) -> bool {
        self.map.contains_key(key)
    }

    /// The plan stored under `key`, without touching recency or counters —
    /// the read snapshots and diagnostics use. [`PlanCache::get`] is the
    /// traffic path.
    pub fn peek(&self, key: &PatternFingerprint) -> Option<&Arc<ExecutionPlan>> {
        self.map.get(key).map(|&slot| resident(&self.slab[slot]))
    }

    /// Drops every plan (counters survive).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &PatternFingerprint) -> Option<Arc<ExecutionPlan>> {
        self.get_matching(key, |_| true)
    }

    /// Looks up `key`, but counts an entry failing `matches` as a miss —
    /// used to reject plans whose pricing context (e.g. the worker count)
    /// no longer applies. The stale entry stays until a subsequent
    /// [`PlanCache::insert`] for the same key replaces it.
    pub fn get_matching(
        &mut self,
        key: &PatternFingerprint,
        matches: impl FnOnce(&ExecutionPlan) -> bool,
    ) -> Option<Arc<ExecutionPlan>> {
        match self.map.get(key) {
            Some(&slot) if matches(resident(&self.slab[slot])) => {
                self.stats.hits += 1;
                self.unlink(slot);
                self.push_front(slot);
                Some(Arc::clone(resident(&self.slab[slot])))
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores `plan` under its own fingerprint, evicting the least
    /// recently used entry if full. Replaces any existing plan for the
    /// same fingerprint. Returns the evicted plan, if the insert pushed
    /// one out — same-key replacement is not an eviction.
    pub fn insert(&mut self, plan: Arc<ExecutionPlan>) -> Option<Arc<ExecutionPlan>> {
        let key = *plan.fingerprint();
        if let Some(&slot) = self.map.get(&key) {
            self.slab[slot].plan = Some(plan);
            self.unlink(slot);
            self.push_front(slot);
            self.stats.insertions += 1;
            return None;
        }
        if self.capacity == 0 {
            return None;
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            self.map.remove(&self.slab[lru].key);
            evicted = self.slab[lru].plan.take();
            self.free.push(lru);
            self.stats.evictions += 1;
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = Entry {
                    key,
                    plan: Some(plan),
                    prev: NIL,
                    next: NIL,
                };
                slot
            }
            None => {
                self.slab.push(Entry {
                    key,
                    plan: Some(plan),
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.push_front(slot);
        self.stats.insertions += 1;
        evicted
    }

    /// Removes the plan stored under `key`, returning it if present.
    /// Removal is not cache *traffic*: hit/miss counters are untouched and
    /// no eviction is recorded. Used by invalidation.
    pub fn remove(&mut self, key: &PatternFingerprint) -> Option<Arc<ExecutionPlan>> {
        let slot = self.map.remove(key)?;
        self.unlink(slot);
        let plan = self.slab[slot].plan.take();
        self.free.push(slot);
        plan
    }

    /// Looks up `key`; on a miss, builds a plan with `build`, stores it,
    /// and returns it. The boolean is `true` on a hit.
    pub fn get_or_build<E>(
        &mut self,
        key: &PatternFingerprint,
        build: impl FnOnce() -> Result<ExecutionPlan, E>,
    ) -> Result<(Arc<ExecutionPlan>, bool), E> {
        if let Some(plan) = self.get(key) {
            return Ok((plan, true));
        }
        let plan = Arc::new(build()?);
        self.insert(Arc::clone(&plan));
        Ok((plan, false))
    }

    /// Captures every resident plan into a [`PlanStore`], most recently
    /// used first, so a later [`PlanCache::warm_from`] reproduces both the
    /// contents and the eviction order. The single-owner cache has no
    /// invalidation generations; entries snapshot at generation 0.
    pub fn snapshot(&self) -> PlanStore {
        let mut store = PlanStore::new();
        let mut slot = self.head;
        while slot != NIL {
            store.push_entry(0, Arc::clone(resident(&self.slab[slot])));
            slot = self.slab[slot].next;
        }
        store
    }

    /// Restores `store`'s plans, least recently used first, so the store's
    /// recency order becomes this cache's recency order (if the store
    /// outsizes the capacity, the usual LRU eviction keeps the most recent
    /// plans). Restores count as insertions, never as hits or misses — a
    /// warm-started cache still reports a 0.0 hit rate until real traffic
    /// arrives. Returns the number of plans inserted.
    pub fn warm_from(&mut self, store: &PlanStore) -> usize {
        if self.capacity == 0 {
            return 0;
        }
        let mut restored = 0;
        for (_, plan) in store.entries.iter().rev() {
            self.insert(Arc::clone(plan));
            restored += 1;
        }
        restored
    }

    /// Keys from most to least recently used (for tests and diagnostics).
    pub fn keys_by_recency(&self) -> Vec<PatternFingerprint> {
        let mut keys = Vec::with_capacity(self.map.len());
        let mut slot = self.head;
        while slot != NIL {
            keys.push(self.slab[slot].key);
            slot = self.slab[slot].next;
        }
        keys
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slab[slot].prev = NIL;
        self.slab[slot].next = NIL;
    }

    fn push_front(&mut self, slot: usize) {
        self.slab[slot].prev = NIL;
        self.slab[slot].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::Planner;
    use doacross_core::IndirectLoop;
    use doacross_par::ThreadPool;

    fn plan_for(n: usize) -> (PatternFingerprint, Arc<ExecutionPlan>) {
        let a: Vec<usize> = (0..n).collect();
        let l = IndirectLoop::new(n, a, vec![vec![]; n], vec![vec![]; n]).unwrap();
        let pool = ThreadPool::new(2);
        let plan = Planner::new().plan(&pool, &l).unwrap();
        (*plan.fingerprint(), Arc::new(plan))
    }

    #[test]
    fn hit_miss_and_stats() {
        let mut cache = PlanCache::new(4);
        let (key, plan) = plan_for(10);
        assert!(cache.get(&key).is_none());
        cache.insert(plan);
        assert!(cache.get(&key).is_some());
        assert!(cache.contains(&key));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_is_zero_without_traffic_never_nan() {
        // Regression: `hits / (hits + misses)` on a fresh cache is 0/0;
        // the guard must report 0.0, not NaN — including for stats merged
        // from idle shards via `absorb` (the engine's fresh-stats path).
        let fresh = PlanCache::new(4).stats();
        assert_eq!(fresh.hit_rate(), 0.0);
        assert!(!fresh.hit_rate().is_nan());

        let mut merged = CacheStats::default();
        for _ in 0..8 {
            merged.absorb(&CacheStats::default());
        }
        assert_eq!(merged.hit_rate(), 0.0);
        assert!(!merged.hit_rate().is_nan());

        // Insertions alone (a warm-started cache) are still not traffic.
        let mut cache = PlanCache::new(4);
        cache.insert(plan_for(3).1);
        assert_eq!(cache.stats().hit_rate(), 0.0);
    }

    #[test]
    fn get_matching_hits_promote_recency_like_get() {
        // Regression: a hit through the matching path must touch the LRU
        // exactly like `get`, or snapshots serialize a wrong recency order
        // and eviction picks the wrong victim.
        let mut cache = PlanCache::new(3);
        let (k1, p1) = plan_for(1);
        let (k2, p2) = plan_for(2);
        let (k3, p3) = plan_for(3);
        cache.insert(p1);
        cache.insert(p2);
        cache.insert(p3);
        assert_eq!(cache.keys_by_recency(), vec![k3, k2, k1]);

        // Interleave the two hit paths; both must promote.
        assert!(cache.get_matching(&k1, |_| true).is_some());
        assert_eq!(cache.keys_by_recency(), vec![k1, k3, k2]);
        assert!(cache.get(&k2).is_some());
        assert_eq!(cache.keys_by_recency(), vec![k2, k1, k3]);
        assert!(cache.get_matching(&k3, |_| true).is_some());
        assert_eq!(cache.keys_by_recency(), vec![k3, k2, k1]);

        // A rejected match is a miss and must NOT promote.
        assert!(cache.get_matching(&k1, |_| false).is_none());
        assert_eq!(cache.keys_by_recency(), vec![k3, k2, k1]);

        // Eviction respects the interleaved order: k1 is now the LRU.
        let (k4, p4) = plan_for(4);
        cache.insert(p4);
        assert!(!cache.contains(&k1), "LRU after interleaved touches");
        assert!(cache.contains(&k2) && cache.contains(&k3) && cache.contains(&k4));
    }

    #[test]
    fn snapshot_and_warm_from_preserve_recency() {
        let mut cache = PlanCache::new(4);
        let keyed: Vec<_> = (1..=3).map(plan_for).collect();
        for (_, p) in &keyed {
            cache.insert(Arc::clone(p));
        }
        // Touch k1 so recency is [k1, k3, k2].
        assert!(cache.get(&keyed[0].0).is_some());
        let store = cache.snapshot();
        assert_eq!(store.len(), 3);

        let mut fresh = PlanCache::new(4);
        assert_eq!(fresh.warm_from(&store), 3);
        assert_eq!(fresh.keys_by_recency(), cache.keys_by_recency());
        // Restores are insertions, not traffic.
        let s = fresh.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (0, 0, 3));
        assert_eq!(s.hit_rate(), 0.0);
        // The restored plan is the same Arc (no deep copy on warm).
        assert!(Arc::ptr_eq(fresh.peek(&keyed[0].0).unwrap(), &keyed[0].1));

        // A smaller cache keeps the *most recent* plans from the store.
        let mut small = PlanCache::new(2);
        assert_eq!(small.warm_from(&store), 3, "all offered, LRU evicted");
        assert_eq!(
            small.keys_by_recency(),
            cache.keys_by_recency()[..2].to_vec()
        );

        // Capacity 0 restores nothing.
        assert_eq!(PlanCache::new(0).warm_from(&store), 0);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = PlanCache::new(2);
        let (k1, p1) = plan_for(1);
        let (k2, p2) = plan_for(2);
        let (k3, p3) = plan_for(3);
        assert!(cache.insert(p1).is_none());
        assert!(cache.insert(p2).is_none());
        // Touch k1 so k2 becomes the LRU.
        assert!(cache.get(&k1).is_some());
        let evicted = cache.insert(p3).expect("full cache evicts");
        assert_eq!(evicted.fingerprint(), &k2, "the LRU plan is returned");
        assert!(cache.contains(&k1), "recently used survives");
        assert!(!cache.contains(&k2), "LRU evicted");
        assert!(cache.contains(&k3));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.keys_by_recency(), vec![k3, k1]);
    }

    #[test]
    fn eviction_churn_preserves_linkage() {
        let mut cache = PlanCache::new(3);
        let plans: Vec<_> = (1..=10).map(plan_for).collect();
        for (_, p) in &plans {
            cache.insert(Arc::clone(p));
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().evictions, 7);
        // The three most recent survive, in recency order.
        assert_eq!(
            cache.keys_by_recency(),
            vec![plans[9].0, plans[8].0, plans[7].0]
        );
        // Touch the middle one and insert another: oldest goes.
        assert!(cache.get(&plans[8].0).is_some());
        let (_, extra) = plan_for(11);
        cache.insert(extra);
        assert!(!cache.contains(&plans[7].0));
        assert!(cache.contains(&plans[8].0));
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut cache = PlanCache::new(0);
        let (key, plan) = plan_for(5);
        cache.insert(plan);
        assert!(cache.is_empty());
        assert!(cache.get(&key).is_none());
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn reinsert_same_key_replaces_without_eviction() {
        let mut cache = PlanCache::new(2);
        let (key, p1) = plan_for(6);
        let (_, p1b) = plan_for(6);
        cache.insert(p1);
        cache.insert(p1b);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 0);
        assert!(cache.get(&key).is_some());
    }

    #[test]
    fn eviction_and_removal_release_the_plan_arc() {
        let mut cache = PlanCache::new(1);
        let (_, p1) = plan_for(3);
        let (k2, p2) = plan_for(4);
        cache.insert(Arc::clone(&p1));
        assert_eq!(Arc::strong_count(&p1), 2);
        cache.insert(Arc::clone(&p2));
        assert_eq!(Arc::strong_count(&p1), 1, "eviction frees the plan");

        let removed = cache.remove(&k2).expect("resident");
        drop(removed);
        assert_eq!(Arc::strong_count(&p2), 1, "removal frees the plan");
        assert!(cache.is_empty());
        assert!(cache.remove(&k2).is_none(), "second removal is a no-op");

        // A freed slot is reusable.
        cache.insert(Arc::clone(&p2));
        assert!(cache.contains(&k2));
    }

    #[test]
    fn get_or_build_builds_once() {
        let mut cache = PlanCache::new(2);
        let a: Vec<usize> = (0..8).collect();
        let l = IndirectLoop::new(8, a, vec![vec![]; 8], vec![vec![]; 8]).unwrap();
        let pool = ThreadPool::new(2);
        let planner = Planner::new();
        let key = crate::PatternFingerprint::of(&l);
        let mut builds = 0;
        for round in 0..3 {
            let (plan, hit) = cache
                .get_or_build(&key, || {
                    builds += 1;
                    planner.plan(&pool, &l)
                })
                .unwrap();
            assert_eq!(hit, round > 0);
            assert_eq!(plan.fingerprint(), &key);
        }
        assert_eq!(builds, 1);
        // Arc keeps an evicted plan alive.
        let (held, _) = cache
            .get_or_build::<std::convert::Infallible>(&key, || unreachable!())
            .unwrap();
        cache.clear();
        assert_eq!(held.fingerprint(), &key);
    }
}
