//! # doacross-plan — execution plans for preprocessed doacross loops
//!
//! The paper's construct (Saltz & Mirchandaney, *The Preprocessed Doacross
//! Loop*, ICPP 1991) earns its keep through amortization: "the
//! preprocessing phase needs to be performed just once, while the doacross
//! loop may be executed many times" (§2.1). This crate makes that economy
//! a first-class subsystem — preprocessing becomes a reusable, cached,
//! cost-model-selected **artifact** instead of a per-call phase:
//!
//! * [`PatternFingerprint`] — a one-scan 128-bit structural hash (plus
//!   exact shape totals) of an access pattern's index arrays. Two loops
//!   with equal fingerprints share their entire dependence structure, so
//!   they can share a plan; coefficient values are excluded on purpose
//!   (one triangular structure, many right-hand sides → one plan).
//! * [`PlanCensus`] — the classified dependence structure: true/anti/
//!   intra/unwritten reference counts, dependence distances, wavefront
//!   critical path, average parallelism, and (for non-injective patterns)
//!   the minimum duplicate-write gap that bounds a legal block size.
//!   [`PlanCensus::of_with_schedule`] additionally materializes the level
//!   assignment the pass computes anyway into a
//!   [`doacross_core::LevelSchedule`] — the wavefront executor's artifact.
//! * [`Planner`] — prices every legal variant (sequential, inspected flat
//!   doacross, §2.3 linear-subscript, doconsider-reordered, §2.3
//!   strip-mined, level-scheduled wavefront) with the calibrated
//!   [`doacross_sim::CostModel`] and picks the cheapest; see [`planner`]
//!   for the formulas, including the flag-bill vs. `levels × barrier`
//!   crossover that converts a doacross into barrier-separated doalls.
//! * [`ExecutionPlan`] — the captured products the chosen variant needs:
//!   prebuilt inspector writer map, doconsider claim order, detected
//!   linear subscript, block size, wavefront level schedule, plus the
//!   census and candidate prices.
//! * [`PlanCache`] — a single-owner LRU over fingerprints with
//!   hit/miss/eviction stats: repeated structures (solver iterations,
//!   repeated service traffic) skip inspection entirely.
//! * [`ConcurrentPlanCache`] — the same cache sharded over mutex-guarded
//!   [`PlanCache`]s (routed by fingerprint high bits, merged stats,
//!   per-key invalidation generations), servable through `&self` from many
//!   threads — the storage behind `doacross_engine::Engine`.
//! * [`PlanExecutor`] — variant dispatch for prebuilt plans, owning the
//!   per-variant scratch runtimes.
//! * [`persist`] — durable plans: a versioned, checksummed binary codec
//!   for [`ExecutionPlan`] and the [`PlanStore`] snapshot format, so both
//!   caches can [`PlanCache::snapshot`] / [`PlanCache::warm_from`] (and
//!   the concurrent equivalents) across process restarts —
//!   recency-preserving and invalidation-generation-aware. Loads
//!   revalidate every record structurally instead of trusting the bytes.
//! * [`PlannedDoacross`] — the single-owner runtime: fingerprint → cached
//!   plan → variant dispatch, with the skip observable via
//!   [`doacross_core::PlanProvenance`] in the returned stats. Superseded
//!   by `doacross_engine::Engine` for anything shared or concurrent; its
//!   `run` entry point is deprecated.
//!
//! ```
//! use doacross_par::ThreadPool;
//! use doacross_plan::PlannedDoacross;
//! use doacross_core::{PlanProvenance, TestLoop};
//!
//! let pool = ThreadPool::new(2);
//! let loop_ = TestLoop::new(1_000, 1, 8);
//! let mut rt = PlannedDoacross::new(16);
//!
//! let mut y = loop_.initial_y();
//! let first = rt.run(&pool, &loop_, &mut y).unwrap();
//! assert_eq!(first.provenance, PlanProvenance::PlanCold);
//!
//! let second = rt.run(&pool, &loop_, &mut y).unwrap();
//! assert_eq!(second.provenance, PlanProvenance::PlanCached);
//! assert_eq!(rt.cache_stats().hits, 1);
//! ```

// Audit posture: this crate needs no unsafe code; keep it that way.
#![forbid(unsafe_code)]
pub mod cache;
pub mod census;
pub mod concurrent;
pub mod executor_pool;
pub mod fingerprint;
pub mod persist;
pub mod plan;
pub mod planner;
pub mod runtime;

pub use cache::{CacheStats, PlanCache};
pub use census::PlanCensus;
pub use concurrent::{default_shard_count, ConcurrentPlanCache, ShardStats};
pub use executor_pool::ExecutorPool;
pub use fingerprint::PatternFingerprint;
pub use persist::{PersistError, PlanStore, StoredCalibration, StoredTelemetry, FORMAT_VERSION};
pub use plan::{ExecutionPlan, PlanVariant, VariantCosts};
pub use planner::{detect_linear, Planner, BLOCKED_DATA_SPACE_FACTOR};
pub use runtime::{PlanExecutor, PlannedDoacross};
// The verifier's verdict vocabulary, re-exported so plan consumers can
// match on violations without depending on `doacross-verify` directly.
pub use doacross_verify::{
    CensusFacts, DependenceEdge, SoundnessReport, SoundnessViolation, SyncSchedule,
};

/// Shared test fixture: the wavefront-friendly dependence grid. Not
/// API — exposed (hidden) so the workspace's integration and engine
/// tests exercise the same structure the unit tests assert on, instead
/// of drifting copies.
#[doc(hidden)]
pub mod testgrid {
    use doacross_core::IndirectLoop;

    /// A deep dependence grid: `depth` levels of `width` mutually
    /// independent iterations, each (beyond level 0) reading `reads`
    /// elements written one level earlier at `stride`-spaced columns.
    /// Stall-free for every claim order once `width ≥ p`, so the selection
    /// pressure is purely flag traffic vs. barrier bill — with `width ≥
    /// 64` and `reads = 3` the planner picks the wavefront at any `p ≤ 8`
    /// (every test using this asserts that loudly, so cost-model drift
    /// cannot silently stop exercising the wavefront path).
    pub fn deep_grid(width: usize, depth: usize, reads: usize, stride: usize) -> IndirectLoop {
        let n = width * depth;
        let a: Vec<usize> = (0..n).collect();
        let rhs: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                let (l, c) = (i / width, i % width);
                if l == 0 {
                    vec![]
                } else {
                    (0..reads)
                        .map(|r| (l - 1) * width + (c + stride * r) % width)
                        .collect()
                }
            })
            .collect();
        let coeff: Vec<Vec<f64>> = rhs.iter().map(|r| vec![0.25; r.len()]).collect();
        IndirectLoop::new(n, a, rhs, coeff).expect("valid grid")
    }
}
