//! Dependence census: the structural facts variant selection runs on.
//!
//! One preprocessing pass classifies every right-hand-side reference the
//! way the executor's three-way check (Figure 5) would — true dependency /
//! antidependency / intra-iteration / unwritten — and extracts the
//! schedule-relevant aggregates: dependence distances, the wavefront
//! critical path, and average parallelism. For loops whose left-hand side
//! is *not* injective (illegal for the flat construct) it instead measures
//! the minimum gap between writes to the same element, which bounds the
//! legal block size for the §2.3 strip-mined fallback.
//!
//! The same pass can *materialize* what it already computes: the
//! per-iteration level assignment and the per-reference classification
//! become a [`LevelSchedule`] — the artifact the wavefront (level-
//! scheduled) executor consumes. [`PlanCensus::of_with_schedule`] returns
//! both; nothing is recomputed.

use doacross_core::{AccessPattern, LevelSchedule, OperandClass, MAXINT};

/// Everything the planner knows about a pattern's dependence structure.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanCensus {
    /// Outer-loop iterations.
    pub iterations: usize,
    /// Data-space size.
    pub data_len: usize,
    /// Total right-hand-side references.
    pub total_terms: u64,
    /// References to elements written by an earlier iteration.
    pub true_deps: u64,
    /// References to elements written by a later iteration.
    pub anti_deps: u64,
    /// References to the iteration's own output element.
    pub intra: u64,
    /// References to elements no iteration writes.
    pub unwritten: u64,
    /// Smallest true-dependency distance (`i − writer`), if any.
    pub min_true_distance: Option<usize>,
    /// Largest true-dependency distance, if any.
    pub max_true_distance: Option<usize>,
    /// Whether the left-hand-side subscript is injective (the flat
    /// construct's legality requirement).
    pub injective: bool,
    /// For non-injective patterns: the smallest iteration gap between two
    /// writes to the same element. Blocks of at most this many contiguous
    /// iterations are collision-free, making the strip-mined variant legal.
    pub min_duplicate_write_gap: Option<usize>,
    /// Wavefront critical path (0 for an empty loop; only computed for
    /// injective patterns).
    pub critical_path: usize,
    /// `iterations / critical_path` (0 for an empty loop).
    pub average_parallelism: f64,
    /// First `(iteration, element)` reference outside the declared data
    /// space, if any. A pattern with out-of-bounds subscripts cannot be
    /// planned (or legally executed); the planner surfaces this as
    /// [`doacross_core::DoacrossError::SubscriptOutOfBounds`].
    pub first_out_of_bounds: Option<(usize, usize)>,
}

impl PlanCensus {
    /// Builds the census in O(data space + references).
    pub fn of<P: AccessPattern + ?Sized>(pattern: &P) -> Self {
        Self::of_inner(pattern, false).0
    }

    /// Like [`PlanCensus::of`], additionally materializing the
    /// [`LevelSchedule`] the classification pass computes anyway: the
    /// per-iteration wavefront levels (counting-sorted into CSR form) and
    /// the per-reference operand classes. `None` for patterns the
    /// wavefront executor cannot run (non-injective left-hand sides,
    /// out-of-bounds subscripts) — exactly the patterns the flat construct
    /// rejects too.
    pub fn of_with_schedule<P: AccessPattern + ?Sized>(
        pattern: &P,
    ) -> (Self, Option<LevelSchedule>) {
        Self::of_inner(pattern, true)
    }

    fn of_inner<P: AccessPattern + ?Sized>(
        pattern: &P,
        collect: bool,
    ) -> (Self, Option<LevelSchedule>) {
        let n = pattern.iterations();
        let data_len = pattern.data_len();
        let mut census = PlanCensus {
            iterations: n,
            data_len,
            injective: true,
            ..Default::default()
        };

        // Writer map as the inspector would fill it (last writer wins),
        // plus duplicate-write detection for the blocked fallback.
        let mut writer = vec![MAXINT; data_len];
        for i in 0..n {
            let lhs = pattern.lhs(i);
            if lhs >= data_len {
                census.first_out_of_bounds.get_or_insert((i, lhs));
                continue;
            }
            let prev = writer[lhs];
            if prev != MAXINT {
                census.injective = false;
                let gap = i - prev as usize;
                census.min_duplicate_write_gap =
                    Some(census.min_duplicate_write_gap.map_or(gap, |g| g.min(gap)));
            }
            writer[lhs] = i as i64;
        }

        if !census.injective {
            // The flat construct is illegal; reference classification
            // against a collided writer map would be meaningless. Still
            // bounds-check every reference — a plan must never certify an
            // unexecutable pattern — then count the references and stop.
            for i in 0..n {
                for j in 0..pattern.terms(i) {
                    census.total_terms += 1;
                    let e = pattern.term_element(i, j);
                    if e >= data_len {
                        census.first_out_of_bounds.get_or_insert((i, e));
                    }
                }
            }
            return (census, None);
        }

        // Classify every reference and compute wavefront levels in the same
        // pass (a predecessor's level is final before its readers are
        // visited, since true dependencies point backwards). When
        // `collect` is set, the classification and levels are materialized
        // into a LevelSchedule instead of being recomputed later.
        let mut levels = vec![0usize; n];
        let mut critical_path = 0usize;
        let mut term_offsets = Vec::new();
        let mut classes = Vec::new();
        if collect {
            term_offsets.reserve(n + 1);
            term_offsets.push(0usize);
        }
        for i in 0..n {
            let mut level = 1usize;
            for j in 0..pattern.terms(i) {
                census.total_terms += 1;
                let e = pattern.term_element(i, j);
                if e >= data_len {
                    census.first_out_of_bounds.get_or_insert((i, e));
                    if collect {
                        // Keep the class stream aligned; the schedule is
                        // discarded below — out-of-bounds patterns are
                        // never executable.
                        classes.push(OperandClass::OldValue as u8);
                    }
                    continue;
                }
                let w = writer[e];
                let class = if w == MAXINT {
                    census.unwritten += 1;
                    OperandClass::OldValue
                } else {
                    let w = w as usize;
                    match w.cmp(&i) {
                        std::cmp::Ordering::Less => {
                            census.true_deps += 1;
                            let d = i - w;
                            census.min_true_distance =
                                Some(census.min_true_distance.map_or(d, |m| m.min(d)));
                            census.max_true_distance =
                                Some(census.max_true_distance.map_or(d, |m| m.max(d)));
                            level = level.max(levels[w] + 1);
                            OperandClass::NewValue
                        }
                        std::cmp::Ordering::Equal => {
                            census.intra += 1;
                            OperandClass::Accumulator
                        }
                        std::cmp::Ordering::Greater => {
                            census.anti_deps += 1;
                            OperandClass::OldValue
                        }
                    }
                };
                if collect {
                    classes.push(class as u8);
                }
            }
            if collect {
                term_offsets.push(classes.len());
            }
            levels[i] = level;
            critical_path = critical_path.max(level);
        }
        census.critical_path = if n == 0 { 0 } else { critical_path };
        census.average_parallelism = if census.critical_path == 0 {
            0.0
        } else {
            n as f64 / census.critical_path as f64
        };
        let schedule = (collect && census.first_out_of_bounds.is_none()).then(|| {
            LevelSchedule::from_levels(&levels, census.critical_path, term_offsets, classes)
        });
        (census, schedule)
    }

    /// The census facts `doacross-verify`'s artifact-mode checks run on —
    /// the schedule-relevant subset, converted into the verifier's own
    /// (layering-neutral) vocabulary.
    pub fn facts(&self) -> doacross_verify::CensusFacts {
        doacross_verify::CensusFacts {
            iterations: self.iterations,
            data_len: self.data_len,
            total_terms: self.total_terms,
            true_deps: self.true_deps,
            anti_deps: self.anti_deps,
            intra: self.intra,
            unwritten: self.unwritten,
            injective: self.injective,
            min_duplicate_write_gap: self.min_duplicate_write_gap,
        }
    }

    /// Whether the loop is a doall (no cross- or intra-iteration
    /// dependencies at all — the odd-`L` regime of Figure 6).
    pub fn is_doall(&self) -> bool {
        self.injective && self.true_deps == 0 && self.anti_deps == 0 && self.intra == 0
    }

    /// Mean references per iteration (0 for an empty loop).
    pub fn terms_per_iteration(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.total_terms as f64 / self.iterations as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_core::{AccessPattern, IndirectLoop, TestLoop};

    fn chain(n: usize) -> IndirectLoop {
        let a: Vec<usize> = (1..=n).collect();
        let rhs: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        IndirectLoop::new(n + 1, a, rhs, vec![vec![1.0]; n]).unwrap()
    }

    #[test]
    fn chain_census() {
        let c = PlanCensus::of(&chain(10));
        assert!(c.injective);
        assert_eq!(c.true_deps, 9, "iteration 0 reads unwritten element 0");
        assert_eq!(c.unwritten, 1);
        assert_eq!(c.min_true_distance, Some(1));
        assert_eq!(c.max_true_distance, Some(1));
        assert_eq!(c.critical_path, 10);
        assert_eq!(c.average_parallelism, 1.0);
        assert!(!c.is_doall());
    }

    #[test]
    fn census_agrees_with_testloop_ground_truth() {
        for l in 1..=14usize {
            for m in [1usize, 5] {
                let t = TestLoop::new(300, m, l);
                let truth = t.census();
                let c = PlanCensus::of(&t);
                assert_eq!(c.true_deps, truth.true_deps, "L={l} M={m}");
                assert_eq!(c.anti_deps, truth.anti_deps, "L={l} M={m}");
                assert_eq!(c.intra, truth.intra, "L={l} M={m}");
                assert_eq!(c.unwritten, truth.unwritten, "L={l} M={m}");
                assert_eq!(c.min_true_distance, truth.min_true_distance, "L={l} M={m}");
                assert_eq!(c.max_true_distance, truth.max_true_distance, "L={l} M={m}");
                assert_eq!(c.is_doall(), truth.is_doall(), "L={l} M={m}");
            }
        }
    }

    #[test]
    fn doall_census() {
        let n = 20;
        let a: Vec<usize> = (0..n).collect();
        let l = IndirectLoop::new(n, a, vec![vec![]; n], vec![vec![]; n]).unwrap();
        let c = PlanCensus::of(&l);
        assert!(c.is_doall());
        assert_eq!(c.critical_path, 1);
        assert_eq!(c.average_parallelism, n as f64);
    }

    #[test]
    fn non_injective_census_measures_write_gap() {
        // Element 0 written by iterations 0 and 3 → min gap 3.
        let l = IndirectLoop::new(
            4,
            vec![0, 1, 2, 0],
            vec![vec![], vec![], vec![], vec![]],
            vec![vec![], vec![], vec![], vec![]],
        )
        .unwrap();
        let c = PlanCensus::of(&l);
        assert!(!c.injective);
        assert_eq!(c.min_duplicate_write_gap, Some(3));
        assert!(!c.is_doall(), "non-injective is never a doall");

        let tight = IndirectLoop::new(
            3,
            vec![1, 1, 1],
            vec![vec![], vec![], vec![]],
            vec![vec![], vec![], vec![]],
        )
        .unwrap();
        assert_eq!(PlanCensus::of(&tight).min_duplicate_write_gap, Some(1));
    }

    #[test]
    fn wavefront_structure_of_interleaved_chains() {
        // Two distance-2 chains: levels [1,1,2,2], critical path 2.
        let a = vec![4, 5, 6, 7];
        let rhs = vec![vec![], vec![], vec![4], vec![5]];
        let coeff: Vec<Vec<f64>> = rhs.iter().map(|r| vec![1.0; r.len()]).collect();
        let l = IndirectLoop::new(8, a, rhs, coeff).unwrap();
        let c = PlanCensus::of(&l);
        assert_eq!(c.critical_path, 2);
        assert_eq!(c.average_parallelism, 2.0);
    }

    #[test]
    fn schedule_materializes_the_census_levels() {
        // Two distance-2 chains: levels [1,1,2,2] — the schedule must sort
        // iterations by level (stable) and classify every reference.
        let a = vec![4, 5, 6, 7];
        let rhs = vec![vec![0], vec![], vec![4], vec![5]];
        let coeff: Vec<Vec<f64>> = rhs.iter().map(|r| vec![1.0; r.len()]).collect();
        let l = IndirectLoop::new(8, a, rhs, coeff).unwrap();
        let (c, schedule) = PlanCensus::of_with_schedule(&l);
        assert_eq!(c, PlanCensus::of(&l), "collecting never changes the census");
        let s = schedule.expect("injective in-bounds pattern");
        assert_eq!(s.level_count(), c.critical_path);
        assert_eq!(s.iterations(), 4);
        assert_eq!(s.level_iterations(0), &[0, 1]);
        assert_eq!(s.level_iterations(1), &[2, 3]);
        assert_eq!(s.total_terms() as u64, c.total_terms);
        let (new, old, acc) = s.class_counts();
        assert_eq!(new, c.true_deps);
        assert_eq!(old, c.anti_deps + c.unwritten);
        assert_eq!(acc, c.intra);
    }

    #[test]
    fn schedule_absent_for_illegal_patterns() {
        // Non-injective lhs: no schedule.
        let dup = IndirectLoop::new(
            3,
            vec![1, 1, 2],
            vec![vec![], vec![], vec![]],
            vec![vec![], vec![], vec![]],
        )
        .unwrap();
        assert!(PlanCensus::of_with_schedule(&dup).1.is_none());

        // Out-of-bounds right-hand side: no schedule either.
        struct Oob;
        impl AccessPattern for Oob {
            fn iterations(&self) -> usize {
                2
            }
            fn data_len(&self) -> usize {
                2
            }
            fn lhs(&self, i: usize) -> usize {
                i
            }
            fn terms(&self, _: usize) -> usize {
                1
            }
            fn term_element(&self, _: usize, _: usize) -> usize {
                9
            }
        }
        let (c, schedule) = PlanCensus::of_with_schedule(&Oob);
        assert!(c.first_out_of_bounds.is_some());
        assert!(schedule.is_none());
    }

    #[test]
    fn empty_loop_census() {
        let l = IndirectLoop::new(0, vec![], vec![], vec![]).unwrap();
        let c = PlanCensus::of(&l);
        assert_eq!(c.critical_path, 0);
        assert_eq!(c.average_parallelism, 0.0);
        assert!(c.is_doall());
    }
}
