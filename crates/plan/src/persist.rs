//! Durable execution plans: a versioned binary codec and warm-start
//! snapshots.
//!
//! The paper's amortization argument ("the preprocessing phase needs to be
//! performed just once", §2.1) is only as good as the lifetime of the
//! artifact — and until this module, that lifetime ended with the process.
//! A service restart threw away every writer map, claim order, and priced
//! variant selection, and the first request after a deploy paid full
//! preprocessing again. Persistence closes the loop: a [`PlanStore`]
//! captures a cache's resident [`ExecutionPlan`]s (recency-preserving,
//! generation-aware), serializes them with a hand-rolled, self-describing
//! binary codec, and can warm-start a fresh cache so the first solve after
//! a restart is a cache hit.
//!
//! ## Format
//!
//! A store is a single blob:
//!
//! ```text
//! magic "DOAXPLAN" (8 bytes)
//! format version   (u32 LE)                    — see [`FORMAT_VERSION`]
//! generation table (count + fingerprint, gen)  — nonzero generations only
//! plan records     (count + per record: generation, length, plan bytes)
//! calibration      (flag + 12 model f64s + unit_ns) — optional, v3
//! telemetry table  (count + fixed-width records)    — v3
//! checksum         (u64 LE, FNV-1a over everything above)
//! ```
//!
//! All integers are little-endian and fixed-width; plan records are
//! length-prefixed so a reader can skip what it cannot use. Plans are
//! ordered most-recently-used first (per shard, for sharded caches), so a
//! restore can rebuild the LRU recency exactly.
//!
//! ## Trust model
//!
//! A store is *data*, not *truth*. Loading never assumes the bytes are
//! well-formed:
//!
//! 1. magic and version are checked first (typed
//!    [`PersistError::BadMagic`] / [`PersistError::UnsupportedVersion`]);
//! 2. the whole-blob checksum is verified before any record is parsed
//!    ([`PersistError::ChecksumMismatch`] on any bit flip, truncations
//!    surface as [`PersistError::Truncated`]);
//! 3. every decoded plan is structurally revalidated against its own
//!    census and fingerprint — writer maps must be injective and in
//!    range, claim orders must be permutations, variants must carry
//!    exactly the artifacts they execute with
//!    ([`PersistError::Structural`] otherwise).
//!
//! Decoding therefore never panics and never yields a plan the executor
//! could misbehave on; the worst a corrupt store can do is fail with a
//! typed error and leave the cache cold.

use crate::census::PlanCensus;
use crate::fingerprint::PatternFingerprint;
use crate::plan::{ExecutionPlan, PlanVariant, VariantCosts};
use doacross_core::{LevelSchedule, LinearSubscript, PreparedInspection, MAXINT};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// File magic: identifies a blob as a doacross plan store.
pub const MAGIC: [u8; 8] = *b"DOAXPLAN";

/// Current store format version.
///
/// Policy: any change to the byte layout — field order, widths, new
/// variants, new sections — bumps this number. Loaders accept exactly the
/// versions they know how to parse and reject everything else with
/// [`PersistError::UnsupportedVersion`]; there is no in-place migration
/// (a rejected store simply means a cold start, after which a fresh save
/// writes the current version). The fingerprint hash function is part of
/// the implicit format: changing it orphans stored plans (their keys no
/// longer match any live pattern) rather than corrupting them, so it does
/// not require a version bump — but bumping anyway is kinder to disk
/// space.
///
/// History: **v2** added the wavefront variant (a level-schedule section
/// in every record and a wavefront candidate price), changing the record
/// layout. **v3** appended two sections after the plan records — an
/// optional host-calibration block ([`StoredCalibration`]) and a variant-
/// telemetry table ([`StoredTelemetry`]) — so a warm-started engine
/// resumes with its learned cost constants instead of re-measuring and
/// re-observing from scratch; v1 and v2 stores are rejected per the
/// policy above.
pub const FORMAT_VERSION: u32 = 3;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a over a byte slice — the store checksum. Not cryptographic (the
/// threat model is bit rot and truncation, not adversaries), but any
/// single-bit flip provably changes it: each absorption step is injective
/// in the running state.
fn fnv64(bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(FNV_OFFSET, |h, &b| (h ^ b as u64).wrapping_mul(FNV_PRIME))
}

/// Reasons a store cannot be written, read, or trusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The blob ends before a field it promises.
    Truncated {
        /// Bytes the next field needs.
        needed: usize,
        /// Bytes actually remaining.
        available: usize,
    },
    /// The blob does not start with [`MAGIC`] — not a plan store.
    BadMagic,
    /// The store was written by a format this reader does not parse.
    UnsupportedVersion {
        /// Version found in the store.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The blob's bytes do not match its recorded checksum.
    ChecksumMismatch {
        /// Checksum recorded in the store.
        stored: u64,
        /// Checksum of the bytes actually read.
        computed: u64,
    },
    /// A field decoded to a value no encoder produces (bad tag, bad bool,
    /// trailing bytes).
    Malformed(String),
    /// The record decoded, but its contents contradict themselves — a
    /// writer map that is not injective, a claim order that is not a
    /// permutation, a census that disagrees with its fingerprint. The
    /// plan is rejected rather than trusted.
    Structural(String),
    /// The record decoded and is internally coherent, but its
    /// synchronization schedule fails the soundness verifier: the plan
    /// would not cover every dependence its own census implies. Typed
    /// separately from [`PersistError::Structural`] so callers can tell a
    /// corrupted encoding from a schedule that is well-formed yet wrong.
    Unsound(doacross_verify::SoundnessViolation),
    /// No store exists at the given path — distinguished from other IO
    /// failures because a missing store is the normal first-boot state,
    /// which warm-start callers treat as a clean cold start.
    NotFound,
    /// The underlying file operation failed (message of the IO error).
    Io(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Truncated { needed, available } => write!(
                f,
                "plan store truncated: next field needs {needed} bytes, {available} remain"
            ),
            PersistError::BadMagic => write!(f, "not a plan store (bad magic)"),
            PersistError::UnsupportedVersion { found, supported } => write!(
                f,
                "plan store format version {found} is not supported (this build reads {supported})"
            ),
            PersistError::ChecksumMismatch { stored, computed } => write!(
                f,
                "plan store checksum mismatch (stored {stored:016x}, computed {computed:016x})"
            ),
            PersistError::Malformed(what) => write!(f, "malformed plan store: {what}"),
            PersistError::Structural(what) => {
                write!(f, "plan store failed structural revalidation: {what}")
            }
            PersistError::Unsound(violation) => {
                write!(
                    f,
                    "persisted plan failed soundness verification: {violation}"
                )
            }
            PersistError::NotFound => write!(f, "plan store not found"),
            PersistError::Io(what) => write!(f, "plan store io error: {what}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Unsound(violation) => Some(violation),
            _ => None,
        }
    }
}

impl From<doacross_verify::SoundnessViolation> for PersistError {
    fn from(violation: doacross_verify::SoundnessViolation) -> Self {
        PersistError::Unsound(violation)
    }
}

impl From<std::io::Error> for PersistError {
    fn from(err: std::io::Error) -> Self {
        if err.kind() == std::io::ErrorKind::NotFound {
            PersistError::NotFound
        } else {
            PersistError::Io(err.to_string())
        }
    }
}

/// Failpoint site consulted at the top of [`PlanStore::save`]: a
/// `Saturate` action injects a typed [`PersistError::Io`] before any
/// bytes touch the filesystem, a `DelayNs` action stretches the save.
pub const FAILPOINT_SAVE: &str = "plan::persist::save";

/// Failpoint site consulted at the top of [`PlanStore::load`]
/// (same actions as [`FAILPOINT_SAVE`], injected before the read).
pub const FAILPOINT_LOAD: &str = "plan::persist::load";

// ---------------------------------------------------------------------
// Little-endian primitives.

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            put_bool(out, true);
            put_u64(out, v);
        }
        None => put_bool(out, false),
    }
}

fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        Some(v) => {
            put_bool(out, true);
            put_f64(out, v);
        }
        None => put_bool(out, false),
    }
}

/// Bounds-checked cursor over untrusted bytes: every read either yields a
/// value or a typed [`PersistError::Truncated`] — no panics, no silent
/// wraparound.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, PersistError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, PersistError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(PersistError::Malformed(format!(
                "boolean byte {other} (expected 0 or 1)"
            ))),
        }
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, PersistError> {
        Ok(if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        })
    }

    fn opt_f64(&mut self) -> Result<Option<f64>, PersistError> {
        Ok(if self.bool()? {
            Some(self.f64()?)
        } else {
            None
        })
    }

    /// Reads a count and guards the allocation it implies: the remaining
    /// bytes must cover `count · width`, so a corrupt length cannot drive
    /// an out-of-memory allocation before the bounds check would fail.
    fn counted(&mut self, width: usize) -> Result<usize, PersistError> {
        let count = self.u64()?;
        let count = usize::try_from(count)
            .map_err(|_| PersistError::Malformed(format!("count {count} overflows usize")))?;
        let needed = count
            .checked_mul(width)
            .ok_or_else(|| PersistError::Malformed(format!("count {count} overflows usize")))?;
        if self.remaining() < needed {
            return Err(PersistError::Truncated {
                needed,
                available: self.remaining(),
            });
        }
        Ok(count)
    }

    fn usize(&mut self) -> Result<usize, PersistError> {
        let v = self.u64()?;
        usize::try_from(v)
            .map_err(|_| PersistError::Malformed(format!("value {v} overflows usize")))
    }
}

// ---------------------------------------------------------------------
// Plan record codec.

const TAG_SEQUENTIAL: u8 = 0;
const TAG_DOACROSS: u8 = 1;
const TAG_LINEAR: u8 = 2;
const TAG_REORDERED: u8 = 3;
const TAG_BLOCKED: u8 = 4;
const TAG_WAVEFRONT: u8 = 5;

/// Serializes one plan to the record format (no checksum — the enclosing
/// [`PlanStore`] blob carries one for the whole file). The encoding is
/// deterministic: equal plans produce equal bytes, which the round-trip
/// tests exploit.
pub fn encode_plan(plan: &ExecutionPlan) -> Vec<u8> {
    let mut out = Vec::new();
    for word in plan.fingerprint().to_raw() {
        put_u64(&mut out, word);
    }
    put_u64(&mut out, plan.processors() as u64);
    match plan.variant() {
        PlanVariant::Sequential => out.push(TAG_SEQUENTIAL),
        PlanVariant::Doacross => out.push(TAG_DOACROSS),
        PlanVariant::Linear(s) => {
            out.push(TAG_LINEAR);
            put_u64(&mut out, s.c as u64);
            put_u64(&mut out, s.d as u64);
        }
        PlanVariant::Reordered => out.push(TAG_REORDERED),
        PlanVariant::Blocked { block_size } => {
            out.push(TAG_BLOCKED);
            put_u64(&mut out, block_size as u64);
        }
        PlanVariant::Wavefront => out.push(TAG_WAVEFRONT),
    }
    let census = plan.census();
    put_u64(&mut out, census.iterations as u64);
    put_u64(&mut out, census.data_len as u64);
    put_u64(&mut out, census.total_terms);
    put_u64(&mut out, census.true_deps);
    put_u64(&mut out, census.anti_deps);
    put_u64(&mut out, census.intra);
    put_u64(&mut out, census.unwritten);
    put_opt_u64(&mut out, census.min_true_distance.map(|v| v as u64));
    put_opt_u64(&mut out, census.max_true_distance.map(|v| v as u64));
    put_bool(&mut out, census.injective);
    put_opt_u64(&mut out, census.min_duplicate_write_gap.map(|v| v as u64));
    put_u64(&mut out, census.critical_path as u64);
    put_f64(&mut out, census.average_parallelism);
    match census.first_out_of_bounds {
        Some((i, e)) => {
            put_bool(&mut out, true);
            put_u64(&mut out, i as u64);
            put_u64(&mut out, e as u64);
        }
        None => put_bool(&mut out, false),
    }
    match plan.prepared() {
        Some(prepared) => {
            put_bool(&mut out, true);
            put_u64(&mut out, prepared.data_len() as u64);
            for element in 0..prepared.data_len() {
                put_i64(&mut out, prepared.writer(element));
            }
        }
        None => put_bool(&mut out, false),
    }
    match plan.order() {
        Some(order) => {
            put_bool(&mut out, true);
            put_u64(&mut out, order.len() as u64);
            for &i in order {
                put_u64(&mut out, i as u64);
            }
        }
        None => put_bool(&mut out, false),
    }
    match plan.level_schedule() {
        Some(levels) => {
            put_bool(&mut out, true);
            put_u64(&mut out, levels.offsets().len() as u64);
            for &v in levels.offsets() {
                put_u64(&mut out, v as u64);
            }
            put_u64(&mut out, levels.order().len() as u64);
            for &v in levels.order() {
                put_u64(&mut out, v as u64);
            }
            put_u64(&mut out, levels.term_offsets().len() as u64);
            for &v in levels.term_offsets() {
                put_u64(&mut out, v as u64);
            }
            put_u64(&mut out, levels.classes().len() as u64);
            out.extend_from_slice(levels.classes());
        }
        None => put_bool(&mut out, false),
    }
    match plan.linear_subscript() {
        Some(s) => {
            put_bool(&mut out, true);
            put_u64(&mut out, s.c as u64);
            put_u64(&mut out, s.d as u64);
        }
        None => put_bool(&mut out, false),
    }
    let costs = plan.costs();
    put_f64(&mut out, costs.sequential);
    put_opt_f64(&mut out, costs.doacross);
    put_opt_f64(&mut out, costs.linear);
    put_opt_f64(&mut out, costs.reordered);
    put_opt_f64(&mut out, costs.blocked);
    put_opt_f64(&mut out, costs.wavefront);
    put_u64(
        &mut out,
        u64::try_from(plan.build_time().as_nanos()).unwrap_or(u64::MAX),
    );
    out
}

/// Decodes one plan record, revalidating it structurally (see module
/// docs). The record must be exactly consumed — trailing bytes are
/// rejected, so a length-prefix mismatch cannot hide.
pub fn decode_plan(bytes: &[u8]) -> Result<ExecutionPlan, PersistError> {
    let mut r = Reader::new(bytes);
    let plan = decode_plan_fields(&mut r)?;
    if r.remaining() != 0 {
        return Err(PersistError::Malformed(format!(
            "{} trailing bytes after plan record",
            r.remaining()
        )));
    }
    // Structural revalidation above only proves the encoding is coherent;
    // the soundness pass proves the decoded schedule could actually cover
    // the dependences its own census implies. A store that fails here is
    // well-formed but wrong — rejected with a typed violation, never
    // trusted into the cache.
    plan.verify_artifacts()?;
    Ok(plan)
}

fn structural(what: impl Into<String>) -> PersistError {
    PersistError::Structural(what.into())
}

fn decode_plan_fields(r: &mut Reader<'_>) -> Result<ExecutionPlan, PersistError> {
    let mut raw = [0u64; 5];
    for word in raw.iter_mut() {
        *word = r.u64()?;
    }
    let fingerprint = PatternFingerprint::from_raw(raw)
        .ok_or_else(|| structural("fingerprint counts overflow this host's usize"))?;
    let processors = r.usize()?;

    let tag = r.u8()?;
    let variant_payload = match tag {
        TAG_SEQUENTIAL | TAG_DOACROSS | TAG_REORDERED | TAG_WAVEFRONT => (0u64, 0u64),
        TAG_LINEAR => (r.u64()?, r.u64()?),
        TAG_BLOCKED => (r.u64()?, 0),
        other => {
            return Err(PersistError::Malformed(format!(
                "unknown plan variant tag {other}"
            )))
        }
    };

    let census = PlanCensus {
        iterations: r.usize()?,
        data_len: r.usize()?,
        total_terms: r.u64()?,
        true_deps: r.u64()?,
        anti_deps: r.u64()?,
        intra: r.u64()?,
        unwritten: r.u64()?,
        min_true_distance: r.opt_u64()?.map(|v| v as usize),
        max_true_distance: r.opt_u64()?.map(|v| v as usize),
        injective: r.bool()?,
        min_duplicate_write_gap: r.opt_u64()?.map(|v| v as usize),
        critical_path: r.usize()?,
        average_parallelism: r.f64()?,
        first_out_of_bounds: if r.bool()? {
            Some((r.usize()?, r.usize()?))
        } else {
            None
        },
    };

    let writers: Option<Vec<i64>> = if r.bool()? {
        let count = r.counted(8)?;
        let mut w = Vec::with_capacity(count);
        for _ in 0..count {
            w.push(r.i64()?);
        }
        Some(w)
    } else {
        None
    };

    let order: Option<Vec<usize>> = if r.bool()? {
        let count = r.counted(8)?;
        let mut o = Vec::with_capacity(count);
        for _ in 0..count {
            o.push(r.usize()?);
        }
        Some(o)
    } else {
        None
    };

    type LevelParts = (Vec<usize>, Vec<usize>, Vec<usize>, Vec<u8>);
    let level_parts: Option<LevelParts> = if r.bool()? {
        let mut section = || -> Result<Vec<usize>, PersistError> {
            let count = r.counted(8)?;
            let mut v = Vec::with_capacity(count);
            for _ in 0..count {
                v.push(r.usize()?);
            }
            Ok(v)
        };
        let offsets = section()?;
        let order = section()?;
        let term_offsets = section()?;
        let count = r.counted(1)?;
        let classes = r.take(count)?.to_vec();
        Some((offsets, order, term_offsets, classes))
    } else {
        None
    };

    let linear: Option<(u64, u64)> = if r.bool()? {
        Some((r.u64()?, r.u64()?))
    } else {
        None
    };

    let costs = VariantCosts {
        sequential: r.f64()?,
        doacross: r.opt_f64()?,
        linear: r.opt_f64()?,
        reordered: r.opt_f64()?,
        blocked: r.opt_f64()?,
        wavefront: r.opt_f64()?,
    };
    let build_time = Duration::from_nanos(r.u64()?);

    // --- Structural revalidation: the record parsed, now make it *prove*
    // it describes an executable plan before any of it is trusted.
    if processors == 0 {
        return Err(structural("plan priced for zero processors"));
    }
    if census.iterations != fingerprint.iterations()
        || census.data_len != fingerprint.data_len()
        || census.total_terms != fingerprint.total_terms()
    {
        return Err(structural(format!(
            "census shape (n={}, data={}, refs={}) disagrees with fingerprint ({})",
            census.iterations, census.data_len, census.total_terms, fingerprint
        )));
    }
    if census.first_out_of_bounds.is_some() {
        return Err(structural(
            "plan for a pattern with out-of-bounds subscripts (never cacheable)",
        ));
    }
    let classified = census.true_deps + census.anti_deps + census.intra + census.unwritten;
    if classified > census.total_terms {
        return Err(structural(format!(
            "census classifies {classified} references but only {} exist",
            census.total_terms
        )));
    }

    let linear = match linear {
        Some((0, _)) => {
            return Err(structural("linear subscript with stride 0"));
        }
        Some((c, d)) => Some(LinearSubscript::new(c as usize, d as usize)),
        None => None,
    };

    let variant = match tag {
        TAG_SEQUENTIAL => PlanVariant::Sequential,
        TAG_DOACROSS => PlanVariant::Doacross,
        TAG_REORDERED => PlanVariant::Reordered,
        TAG_LINEAR => {
            let (c, d) = variant_payload;
            if c == 0 {
                return Err(structural("linear variant with stride 0"));
            }
            let subscript = LinearSubscript::new(c as usize, d as usize);
            if linear != Some(subscript) {
                return Err(structural(
                    "linear variant disagrees with the detected subscript",
                ));
            }
            PlanVariant::Linear(subscript)
        }
        TAG_BLOCKED => {
            let block_size = usize::try_from(variant_payload.0)
                .map_err(|_| structural("block size overflows usize"))?;
            if block_size == 0 || block_size > census.iterations {
                return Err(structural(format!(
                    "block size {block_size} outside 1..={}",
                    census.iterations
                )));
            }
            PlanVariant::Blocked { block_size }
        }
        TAG_WAVEFRONT => PlanVariant::Wavefront,
        _ => unreachable!("tag validated above"),
    };

    let needs_map = matches!(variant, PlanVariant::Doacross | PlanVariant::Reordered);
    if needs_map && !census.injective {
        return Err(structural(
            "flat doacross plan over a non-injective left-hand side",
        ));
    }
    let prepared = match (needs_map, writers) {
        (true, Some(writers)) => {
            if writers.len() != census.data_len {
                return Err(structural(format!(
                    "writer map covers {} elements, data space is {}",
                    writers.len(),
                    census.data_len
                )));
            }
            let mut writes_seen = vec![false; census.iterations];
            for &w in &writers {
                if w == MAXINT {
                    continue;
                }
                let Ok(i) = usize::try_from(w) else {
                    return Err(structural(format!("negative writer iteration {w}")));
                };
                if i >= census.iterations {
                    return Err(structural(format!(
                        "writer iteration {i} outside 0..{}",
                        census.iterations
                    )));
                }
                if std::mem::replace(&mut writes_seen[i], true) {
                    return Err(structural(format!(
                        "iteration {i} writes two elements (map not injective)"
                    )));
                }
            }
            PreparedInspection::from_writer_map(census.iterations, &writers)
                .ok_or_else(|| structural("writer map rejected by the core reconstruction"))
                .map(Some)?
        }
        (true, None) => {
            return Err(structural(
                "inspected variant without its prebuilt writer map",
            ));
        }
        (false, Some(_)) => {
            return Err(structural(
                "writer map attached to a variant that never consumes one",
            ));
        }
        (false, None) => None,
    };

    let order = match (variant, order) {
        (PlanVariant::Reordered, Some(order)) => {
            if order.len() != census.iterations {
                return Err(structural(format!(
                    "claim order covers {} of {} iterations",
                    order.len(),
                    census.iterations
                )));
            }
            let mut seen = vec![false; census.iterations];
            for &i in &order {
                if i >= census.iterations || std::mem::replace(&mut seen[i], true) {
                    return Err(structural("claim order is not a permutation"));
                }
            }
            Some(order)
        }
        (PlanVariant::Reordered, None) => {
            return Err(structural("reordered variant without its claim order"));
        }
        (_, Some(_)) => {
            return Err(structural(
                "claim order attached to a variant that never consumes one",
            ));
        }
        (_, None) => None,
    };

    let levels = match (variant, level_parts) {
        (PlanVariant::Wavefront, Some((offsets, order, term_offsets, classes))) => {
            if !census.injective {
                return Err(structural(
                    "wavefront plan over a non-injective left-hand side",
                ));
            }
            let schedule = LevelSchedule::from_parts(offsets, order, term_offsets, classes)
                .ok_or_else(|| structural("level schedule rejected by the core reconstruction"))?;
            if schedule.iterations() != census.iterations {
                return Err(structural(format!(
                    "level schedule covers {} of {} iterations",
                    schedule.iterations(),
                    census.iterations
                )));
            }
            if schedule.level_count() != census.critical_path {
                return Err(structural(format!(
                    "{} levels disagree with the census critical path {}",
                    schedule.level_count(),
                    census.critical_path
                )));
            }
            if schedule.total_terms() as u64 != census.total_terms {
                return Err(structural(format!(
                    "level schedule classifies {} of {} references",
                    schedule.total_terms(),
                    census.total_terms
                )));
            }
            let (new, old, acc) = schedule.class_counts();
            if new != census.true_deps
                || acc != census.intra
                || old != census.anti_deps + census.unwritten
            {
                return Err(structural(
                    "operand classes disagree with the census classification",
                ));
            }
            Some(schedule)
        }
        (PlanVariant::Wavefront, None) => {
            return Err(structural("wavefront variant without its level schedule"));
        }
        (_, Some(_)) => {
            return Err(structural(
                "level schedule attached to a variant that never consumes one",
            ));
        }
        (_, None) => None,
    };

    Ok(ExecutionPlan {
        fingerprint,
        processors,
        variant,
        census,
        prepared,
        order,
        levels,
        linear,
        costs,
        build_time,
    })
}

// ---------------------------------------------------------------------
// Adaptive-state sections (v3).

/// A host calibration captured alongside the plans: the cost model the
/// planner priced with plus the physical meaning of its unit. A
/// warm-started `calibrated()` engine whose store carries a **valid**
/// calibration reuses it and skips the build-time measurement pass; the
/// consumer revalidates with [`StoredCalibration::is_valid`] and falls
/// back to re-calibration when the values are unphysical (the codec
/// round-trips the bits either way — validity is the *user's* gate, so a
/// calibration written by a buggy producer degrades to a re-measurement,
/// never to nonsense pricing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoredCalibration {
    /// The calibrated cost model (normalized units, `seq_term == 1`).
    pub model: doacross_sim::CostModel,
    /// Nanoseconds per model unit on the host that measured it.
    pub unit_ns: f64,
}

impl StoredCalibration {
    /// Whether every constant is finite and positive — the revalidation
    /// gate a loader applies before trusting the stored model.
    pub fn is_valid(&self) -> bool {
        let m = &self.model;
        [
            m.schedule_grab,
            m.iteration_setup,
            m.check,
            m.term,
            m.wait_poll,
            m.publish,
            m.inspect_per_iter,
            m.post_per_iter,
            m.region_dispatch,
            m.barrier,
            m.seq_iter,
            m.seq_term,
            self.unit_ns,
        ]
        .iter()
        .all(|v| v.is_finite() && *v > 0.0)
    }

    fn fields(&self) -> [f64; 13] {
        let m = &self.model;
        [
            m.schedule_grab,
            m.iteration_setup,
            m.check,
            m.term,
            m.wait_poll,
            m.publish,
            m.inspect_per_iter,
            m.post_per_iter,
            m.region_dispatch,
            m.barrier,
            m.seq_iter,
            m.seq_term,
            self.unit_ns,
        ]
    }

    fn from_fields(f: [f64; 13]) -> Self {
        Self {
            model: doacross_sim::CostModel {
                schedule_grab: f[0],
                iteration_setup: f[1],
                check: f[2],
                term: f[3],
                wait_poll: f[4],
                publish: f[5],
                inspect_per_iter: f[6],
                post_per_iter: f[7],
                region_dispatch: f[8],
                barrier: f[9],
                seq_iter: f[10],
                seq_term: f[11],
            },
            unit_ns: f[12],
        }
    }
}

/// One `(fingerprint, variant)` telemetry accumulator, as persisted in a
/// v3 store — the raw sums `doacross-adapt`'s recorder maintains, so a
/// restored engine's online refinement resumes mid-confidence instead of
/// starting blind. This crate stores the numbers and checks only what the
/// codec can know (a known variant tag, at least one sample, finite
/// floats); their statistical meaning lives with the recorder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoredTelemetry {
    /// Structure the samples belong to.
    pub fingerprint: PatternFingerprint,
    /// Variant family tag (the plan-record `TAG_*` values, `0..=5`).
    pub variant: u8,
    /// Solves recorded.
    pub samples: u64,
    /// Exponentially-weighted moving average of per-solve wall time (ns).
    pub ewma_ns: f64,
    /// Fastest observed solve (ns).
    pub min_ns: u64,
    /// Most recent solve (ns).
    pub last_ns: u64,
    /// Total failed `ready` polls across all samples.
    pub wait_polls: u64,
    /// Spin-barrier crossings per solve (0 for non-wavefront variants).
    pub barriers: u64,
    /// References per solve (the census total).
    pub terms: u64,
    /// Predicted per-solve cost of the variant, model units.
    pub pred_units: f64,
    /// Synchronization-free part of the prediction, model units.
    pub work_units: f64,
    /// Regression accumulators for the poll-cost slope: Σx, Σx², Σy, Σxy
    /// over (polls, ns) pairs.
    pub sum_polls: f64,
    /// Σx² of the poll-cost regression.
    pub sum_polls_sq: f64,
    /// Σy of the poll-cost regression.
    pub sum_ns: f64,
    /// Σxy of the poll-cost regression.
    pub sum_polls_ns: f64,
}

impl StoredTelemetry {
    fn validate(&self) -> Result<(), PersistError> {
        if self.variant > TAG_WAVEFRONT {
            return Err(structural(format!(
                "telemetry record with unknown variant tag {}",
                self.variant
            )));
        }
        if self.samples == 0 {
            return Err(structural("telemetry record with zero samples"));
        }
        let floats = [
            self.ewma_ns,
            self.pred_units,
            self.work_units,
            self.sum_polls,
            self.sum_polls_sq,
            self.sum_ns,
            self.sum_polls_ns,
        ];
        if floats.iter().any(|v| !v.is_finite()) {
            return Err(structural("telemetry record with non-finite accumulator"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// The store.

/// A snapshot of a plan cache: plans most-recently-used first, each tagged
/// with the generation it was valid under, plus the cache's nonzero
/// invalidation generations — everything needed to restore a cache to an
/// equivalent state (same plans, same recency, same staleness semantics)
/// in another process.
///
/// Produced by `PlanCache::snapshot` / `ConcurrentPlanCache::snapshot`
/// (or assembled by [`PlanStore::from_bytes`]); consumed by the matching
/// `warm_from` methods and [`PlanStore::to_bytes`].
#[derive(Debug, Clone, Default)]
pub struct PlanStore {
    /// Most-recently-used first (per shard for sharded snapshots).
    pub(crate) entries: Vec<(u64, Arc<ExecutionPlan>)>,
    /// Nonzero invalidation generations at snapshot time.
    pub(crate) generations: Vec<(PatternFingerprint, u64)>,
    /// Host calibration captured with the snapshot (v3, optional).
    pub(crate) calibration: Option<StoredCalibration>,
    /// Variant telemetry captured with the snapshot (v3).
    pub(crate) telemetry: Vec<StoredTelemetry>,
}

impl PlanStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of plans held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no plans.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stored plans, most recently used first.
    pub fn plans(&self) -> impl Iterator<Item = &Arc<ExecutionPlan>> {
        self.entries.iter().map(|(_, plan)| plan)
    }

    /// The nonzero invalidation generations captured with the snapshot.
    pub fn generations(&self) -> impl Iterator<Item = (&PatternFingerprint, u64)> {
        self.generations.iter().map(|(fp, gen)| (fp, *gen))
    }

    /// The generation recorded for `key` (0 when absent, matching a
    /// never-invalidated fingerprint).
    pub fn generation_of(&self, key: &PatternFingerprint) -> u64 {
        self.generations
            .iter()
            .find(|(fp, _)| fp == key)
            .map_or(0, |(_, gen)| *gen)
    }

    pub(crate) fn push_entry(&mut self, generation: u64, plan: Arc<ExecutionPlan>) {
        self.entries.push((generation, plan));
    }

    pub(crate) fn push_generation(&mut self, key: PatternFingerprint, generation: u64) {
        self.generations.push((key, generation));
    }

    /// The host calibration captured with this store, if any. Consumers
    /// must gate on [`StoredCalibration::is_valid`] before pricing with it.
    pub fn calibration(&self) -> Option<&StoredCalibration> {
        self.calibration.as_ref()
    }

    /// Attaches (or clears) the host calibration to persist.
    pub fn set_calibration(&mut self, calibration: Option<StoredCalibration>) {
        self.calibration = calibration;
    }

    /// The variant-telemetry records captured with this store.
    pub fn telemetry(&self) -> &[StoredTelemetry] {
        &self.telemetry
    }

    /// Appends one telemetry record to persist.
    pub fn push_telemetry(&mut self, record: StoredTelemetry) {
        self.telemetry.push(record);
    }

    /// Serializes the store (see the module docs for the layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, FORMAT_VERSION);
        put_u64(&mut out, self.generations.len() as u64);
        for (fp, gen) in &self.generations {
            for word in fp.to_raw() {
                put_u64(&mut out, word);
            }
            put_u64(&mut out, *gen);
        }
        put_u64(&mut out, self.entries.len() as u64);
        for (generation, plan) in &self.entries {
            put_u64(&mut out, *generation);
            let record = encode_plan(plan);
            put_u64(&mut out, record.len() as u64);
            out.extend_from_slice(&record);
        }
        match &self.calibration {
            Some(calibration) => {
                put_bool(&mut out, true);
                for field in calibration.fields() {
                    put_f64(&mut out, field);
                }
            }
            None => put_bool(&mut out, false),
        }
        put_u64(&mut out, self.telemetry.len() as u64);
        for t in &self.telemetry {
            for word in t.fingerprint.to_raw() {
                put_u64(&mut out, word);
            }
            out.push(t.variant);
            put_u64(&mut out, t.samples);
            put_f64(&mut out, t.ewma_ns);
            put_u64(&mut out, t.min_ns);
            put_u64(&mut out, t.last_ns);
            put_u64(&mut out, t.wait_polls);
            put_u64(&mut out, t.barriers);
            put_u64(&mut out, t.terms);
            put_f64(&mut out, t.pred_units);
            put_f64(&mut out, t.work_units);
            put_f64(&mut out, t.sum_polls);
            put_f64(&mut out, t.sum_polls_sq);
            put_f64(&mut out, t.sum_ns);
            put_f64(&mut out, t.sum_polls_ns);
        }
        let checksum = fnv64(&out);
        put_u64(&mut out, checksum);
        out
    }

    /// Parses and fully validates a serialized store: magic, version,
    /// checksum, then every plan record (see the module docs' trust
    /// model). Never panics on arbitrary input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        const HEADER: usize = MAGIC.len() + 4;
        if bytes.len() < HEADER + 8 {
            return Err(PersistError::Truncated {
                needed: HEADER + 8,
                available: bytes.len(),
            });
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[MAGIC.len()..HEADER].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let body = &bytes[..bytes.len() - 8];
        let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        let computed = fnv64(body);
        if stored != computed {
            return Err(PersistError::ChecksumMismatch { stored, computed });
        }

        let mut r = Reader::new(&body[HEADER..]);
        let ngens = r.counted(5 * 8 + 8)?;
        let mut generations = Vec::with_capacity(ngens);
        for _ in 0..ngens {
            let mut raw = [0u64; 5];
            for word in raw.iter_mut() {
                *word = r.u64()?;
            }
            let fp = PatternFingerprint::from_raw(raw)
                .ok_or_else(|| structural("generation-table fingerprint overflows usize"))?;
            generations.push((fp, r.u64()?));
        }
        let nplans = r.counted(8 + 8)?;
        let mut entries = Vec::with_capacity(nplans);
        for _ in 0..nplans {
            let generation = r.u64()?;
            let len = r.counted(1)?;
            let record = r.take(len)?;
            entries.push((generation, Arc::new(decode_plan(record)?)));
        }
        let calibration = if r.bool()? {
            let mut fields = [0.0f64; 13];
            for field in fields.iter_mut() {
                *field = r.f64()?;
            }
            Some(StoredCalibration::from_fields(fields))
        } else {
            None
        };
        // Fixed-width telemetry records: fingerprint + tag + 7 u64s/u8 +
        // 7 f64s = 40 + 1 + 48 + 56 bytes.
        let ntelemetry = r.counted(5 * 8 + 1 + 6 * 8 + 7 * 8)?;
        let mut telemetry = Vec::with_capacity(ntelemetry);
        for _ in 0..ntelemetry {
            let mut raw = [0u64; 5];
            for word in raw.iter_mut() {
                *word = r.u64()?;
            }
            let fingerprint = PatternFingerprint::from_raw(raw)
                .ok_or_else(|| structural("telemetry fingerprint overflows usize"))?;
            let record = StoredTelemetry {
                fingerprint,
                variant: r.u8()?,
                samples: r.u64()?,
                ewma_ns: r.f64()?,
                min_ns: r.u64()?,
                last_ns: r.u64()?,
                wait_polls: r.u64()?,
                barriers: r.u64()?,
                terms: r.u64()?,
                pred_units: r.f64()?,
                work_units: r.f64()?,
                sum_polls: r.f64()?,
                sum_polls_sq: r.f64()?,
                sum_ns: r.f64()?,
                sum_polls_ns: r.f64()?,
            };
            record.validate()?;
            telemetry.push(record);
        }
        if r.remaining() != 0 {
            return Err(PersistError::Malformed(format!(
                "{} trailing bytes after last plan record",
                r.remaining()
            )));
        }
        Ok(Self {
            entries,
            generations,
            calibration,
            telemetry,
        })
    }

    /// Writes the serialized store to `path` (atomically via a sibling
    /// temp file + rename, so a crash mid-write never leaves a torn store
    /// where a good one lived). The temp name is unique per process and
    /// call, so concurrent saves — even of different stores in one
    /// directory — never write through each other; last rename wins.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SAVE_SEQ: AtomicU64 = AtomicU64::new(0);
        if failpoint::enabled() {
            failpoint::maybe_delay(FAILPOINT_SAVE);
            if failpoint::fire_saturate(FAILPOINT_SAVE) {
                return Err(PersistError::Io("failpoint: injected save fault".into()));
            }
        }
        let path = path.as_ref();
        let bytes = self.to_bytes();
        let tmp = path.with_extension(format!(
            "tmp-{}-{}",
            std::process::id(),
            SAVE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and validates the store at `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        if failpoint::enabled() {
            failpoint::maybe_delay(FAILPOINT_LOAD);
            if failpoint::fire_saturate(FAILPOINT_LOAD) {
                return Err(PersistError::Io("failpoint: injected load fault".into()));
            }
        }
        let bytes = std::fs::read(path.as_ref())?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::Planner;
    use doacross_core::IndirectLoop;
    use doacross_par::ThreadPool;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    /// One real plan per variant the planner can select (mirrors the
    /// planner's own selection tests).
    fn plans_of_every_variant() -> Vec<ExecutionPlan> {
        let planner = Planner::new();
        let pool = pool();
        let mut out = Vec::new();

        // Sequential: a serial chain.
        let n = 300;
        let a: Vec<usize> = (1..=n).collect();
        let rhs: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        let chain = IndirectLoop::new(n + 1, a, rhs, vec![vec![1.0]; n]).unwrap();
        out.push(planner.plan(&pool, &chain).unwrap());

        // Linear: the dependence-free strided loop.
        let n = 2_000;
        let a: Vec<usize> = (0..n).map(|i| 2 * i + 1).collect();
        let linear = IndirectLoop::new(2 * n + 1, a, vec![vec![]; n], vec![vec![]; n]).unwrap();
        out.push(planner.plan(&pool, &linear).unwrap());

        // Doacross: dependence-free but non-linear (reversed) scatter.
        let n = 4_000;
        let a: Vec<usize> = (0..n).map(|i| n - 1 - i).collect();
        let scatter = IndirectLoop::new(n, a, vec![vec![]; n], vec![vec![]; n]).unwrap();
        out.push(planner.plan(&pool, &scatter).unwrap());

        // Reordered: interleaved distance-1 chains.
        let (chains, len) = (32usize, 16usize);
        let n = chains * len;
        let a: Vec<usize> = (0..n).collect();
        let rhs: Vec<Vec<usize>> = (0..n)
            .map(|i| if i % len == 0 { vec![] } else { vec![i - 1] })
            .collect();
        let coeff: Vec<Vec<f64>> = rhs.iter().map(|r| vec![0.5; r.len()]).collect();
        let interleaved = IndirectLoop::new(n, a, rhs, coeff).unwrap();
        out.push(planner.plan(&pool, &interleaved).unwrap());

        // Blocked: non-injective with wide duplicate-write gaps.
        let (n, period) = (4_096usize, 512usize);
        let a: Vec<usize> = (0..n).map(|i| i % period).collect();
        let rhs: Vec<Vec<usize>> = (0..n).map(|i| vec![(i + 7) % period]).collect();
        let blocked = IndirectLoop::new(period, a, rhs, vec![vec![0.25]; n]).unwrap();
        out.push(planner.plan(&pool, &blocked).unwrap());

        // Wavefront: a deep, wide, stall-free dependence grid — the flag
        // bill dwarfs the barrier bill.
        let grid = crate::testgrid::deep_grid(64, 20, 3, 7);
        out.push(planner.plan(&pool, &grid).unwrap());

        out
    }

    #[test]
    fn every_variant_round_trips_bit_exactly() {
        let plans = plans_of_every_variant();
        let variants: Vec<_> = plans.iter().map(|p| p.variant()).collect();
        assert!(
            matches!(variants[0], PlanVariant::Sequential),
            "{variants:?}"
        );
        assert!(matches!(variants[1], PlanVariant::Linear(_)));
        assert!(matches!(variants[2], PlanVariant::Doacross));
        assert!(matches!(variants[3], PlanVariant::Reordered));
        assert!(matches!(variants[4], PlanVariant::Blocked { .. }));
        assert!(matches!(variants[5], PlanVariant::Wavefront));
        for plan in &plans {
            let bytes = encode_plan(plan);
            let decoded = decode_plan(&bytes).expect("self-encoded plans decode");
            assert_eq!(
                encode_plan(&decoded),
                bytes,
                "re-encoding must be bit-exact ({})",
                plan.variant()
            );
            assert_eq!(decoded.fingerprint(), plan.fingerprint());
            assert_eq!(decoded.variant(), plan.variant());
            assert_eq!(decoded.census(), plan.census());
            assert_eq!(decoded.costs(), plan.costs());
            assert_eq!(decoded.build_time(), plan.build_time());
            assert_eq!(decoded.order(), plan.order());
            assert_eq!(decoded.level_schedule(), plan.level_schedule());
            assert_eq!(decoded.linear_subscript(), plan.linear_subscript());
            match (decoded.prepared(), plan.prepared()) {
                (Some(d), Some(p)) => {
                    assert_eq!(d.iterations(), p.iterations());
                    assert_eq!(d.data_len(), p.data_len());
                    assert!((0..d.data_len()).all(|e| d.writer(e) == p.writer(e)));
                }
                (None, None) => {}
                other => panic!("prepared mismatch: {other:?}"),
            }
        }
    }

    /// A record that decodes and is structurally coherent but whose
    /// schedule is unsound must be rejected with the typed `Unsound`
    /// error: a block size one past the census's duplicate-write gap is a
    /// well-formed encoding of a plan that would corrupt results.
    #[test]
    fn decode_rejects_block_size_exceeding_write_gap() {
        let mut plan = plans_of_every_variant().into_iter().nth(4).unwrap();
        let gap = plan
            .census()
            .min_duplicate_write_gap
            .expect("blocked fixture is non-injective");
        plan.variant = PlanVariant::Blocked {
            block_size: gap + 1,
        };
        let bytes = encode_plan(&plan);
        match decode_plan(&bytes) {
            Err(PersistError::Unsound(
                doacross_verify::SoundnessViolation::BlockExceedsWriteGap {
                    block_size,
                    min_gap,
                },
            )) => {
                assert_eq!(block_size, gap + 1);
                assert_eq!(min_gap, gap);
            }
            other => panic!("expected unsound rejection, got {other:?}"),
        }
    }

    /// A writer map with one entry dropped (the at-rest form of a dropped
    /// ready flag) passes every structural check — no iteration writes
    /// twice — but an injective pattern's map must be a *bijection*:
    /// `iterations` entries exactly. Only the soundness pass catches it.
    #[test]
    fn decode_rejects_writer_map_with_dropped_entry() {
        let mut plan = plans_of_every_variant().into_iter().nth(2).unwrap();
        let prepared = plan.prepared.as_ref().expect("doacross carries a map");
        let mut writers: Vec<i64> = (0..prepared.data_len())
            .map(|e| prepared.writer(e))
            .collect();
        let written = writers
            .iter()
            .position(|&w| w != MAXINT)
            .expect("map has entries");
        writers[written] = MAXINT;
        plan.prepared = Some(
            PreparedInspection::from_writer_map(plan.census().iterations, &writers)
                .expect("still a valid (partial) map"),
        );
        let bytes = encode_plan(&plan);
        match decode_plan(&bytes) {
            Err(PersistError::Unsound(doacross_verify::SoundnessViolation::ArtifactMismatch {
                what,
                expected,
                got,
            })) => {
                assert_eq!(what, "writer map entries");
                assert_eq!(expected, plan.census().iterations as u64);
                assert_eq!(got, expected - 1);
            }
            other => panic!("expected unsound rejection, got {other:?}"),
        }
    }

    #[test]
    fn store_round_trips_entries_and_generations() {
        let plans = plans_of_every_variant();
        let mut store = PlanStore::new();
        for (i, plan) in plans.into_iter().enumerate() {
            store.push_entry(i as u64, Arc::new(plan));
        }
        let ghost_fp = *store.plans().next().unwrap().fingerprint();
        store.push_generation(ghost_fp, 7);

        let bytes = store.to_bytes();
        let back = PlanStore::from_bytes(&bytes).expect("own bytes parse");
        assert_eq!(back.len(), store.len());
        assert_eq!(back.generation_of(&ghost_fp), 7);
        for ((ga, pa), (gb, pb)) in store.entries.iter().zip(back.entries.iter()) {
            assert_eq!(ga, gb);
            assert_eq!(encode_plan(pa), encode_plan(pb));
        }
        assert_eq!(back.to_bytes(), bytes, "store serialization is stable");
    }

    #[test]
    fn bad_magic_version_checksum_and_truncation_are_typed() {
        let mut store = PlanStore::new();
        store.push_entry(0, Arc::new(plans_of_every_variant().remove(2)));
        let bytes = store.to_bytes();

        // Magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            PlanStore::from_bytes(&bad),
            Err(PersistError::BadMagic)
        ));

        // Version (checked before the checksum, so the error is typed).
        let mut bad = bytes.clone();
        bad[8] = 0xEE;
        assert!(matches!(
            PlanStore::from_bytes(&bad),
            Err(PersistError::UnsupportedVersion {
                supported: FORMAT_VERSION,
                ..
            })
        ));

        // Any payload bit flip trips the checksum.
        let mut bad = bytes.clone();
        let mid = bytes.len() / 2;
        bad[mid] ^= 0x10;
        assert!(matches!(
            PlanStore::from_bytes(&bad),
            Err(PersistError::ChecksumMismatch { .. })
        ));

        // Truncations: too short for the header is Truncated; longer
        // prefixes fail the checksum. Either way: typed, no panic.
        for k in 0..bytes.len() {
            let err = PlanStore::from_bytes(&bytes[..k]).unwrap_err();
            assert!(
                matches!(
                    err,
                    PersistError::Truncated { .. } | PersistError::ChecksumMismatch { .. }
                ),
                "prefix {k}: {err:?}"
            );
        }
    }

    fn sample_calibration() -> StoredCalibration {
        StoredCalibration {
            model: doacross_sim::CostModel::multimax(),
            unit_ns: 1.75,
        }
    }

    fn sample_telemetry(fp: PatternFingerprint, variant: u8) -> StoredTelemetry {
        StoredTelemetry {
            fingerprint: fp,
            variant,
            samples: 12,
            ewma_ns: 52_000.0,
            min_ns: 48_000,
            last_ns: 55_000,
            wait_polls: 340,
            barriers: 0,
            terms: 4_000,
            pred_units: 9_800.0,
            work_units: 9_000.0,
            sum_polls: 340.0,
            sum_polls_sq: 11_000.0,
            sum_ns: 624_000.0,
            sum_polls_ns: 17_900_000.0,
        }
    }

    #[test]
    fn calibration_and_telemetry_sections_round_trip() {
        let plan = plans_of_every_variant().remove(2);
        let fp = *plan.fingerprint();
        let mut store = PlanStore::new();
        store.push_entry(0, Arc::new(plan));
        store.set_calibration(Some(sample_calibration()));
        store.push_telemetry(sample_telemetry(fp, TAG_DOACROSS));
        store.push_telemetry(StoredTelemetry {
            barriers: 19,
            ..sample_telemetry(fp, TAG_WAVEFRONT)
        });

        let bytes = store.to_bytes();
        let back = PlanStore::from_bytes(&bytes).expect("own bytes parse");
        assert_eq!(back.calibration(), Some(&sample_calibration()));
        assert!(back.calibration().unwrap().is_valid());
        assert_eq!(back.telemetry().len(), 2);
        assert_eq!(back.telemetry()[0], store.telemetry()[0]);
        assert_eq!(back.telemetry()[1].barriers, 19);
        assert_eq!(back.to_bytes(), bytes, "serialization is stable");

        // Absent sections round-trip as absent.
        let empty = PlanStore::new();
        let back = PlanStore::from_bytes(&empty.to_bytes()).unwrap();
        assert!(back.calibration().is_none());
        assert!(back.telemetry().is_empty());
    }

    #[test]
    fn unphysical_calibration_round_trips_but_fails_validation() {
        // The codec preserves the bits (the checksum proves they were
        // written on purpose); is_valid() is the consumer's gate, so a
        // buggy producer degrades to re-calibration, not a load failure.
        let mut cal = sample_calibration();
        cal.model.barrier = f64::NAN;
        let mut store = PlanStore::new();
        store.set_calibration(Some(cal));
        let back = PlanStore::from_bytes(&store.to_bytes()).unwrap();
        let restored = back.calibration().expect("section survives");
        assert!(restored.unit_ns == 1.75 && restored.model.barrier.is_nan());
        assert!(!restored.is_valid());

        let mut cal = sample_calibration();
        cal.unit_ns = -1.0;
        assert!(!cal.is_valid());
        assert!(sample_calibration().is_valid());
    }

    #[test]
    fn malformed_telemetry_records_are_rejected_typed() {
        let fp = *Arc::new(plans_of_every_variant().remove(1)).fingerprint();
        for (what, record) in [
            (
                "unknown tag",
                StoredTelemetry {
                    variant: 9,
                    ..sample_telemetry(fp, 0)
                },
            ),
            (
                "zero samples",
                StoredTelemetry {
                    samples: 0,
                    ..sample_telemetry(fp, 0)
                },
            ),
            (
                "non-finite accumulator",
                StoredTelemetry {
                    ewma_ns: f64::INFINITY,
                    ..sample_telemetry(fp, 0)
                },
            ),
        ] {
            let mut store = PlanStore::new();
            store.push_telemetry(record);
            let err = PlanStore::from_bytes(&store.to_bytes()).unwrap_err();
            assert!(
                matches!(err, PersistError::Structural(_)),
                "{what}: {err:?}"
            );
        }
    }

    #[test]
    fn v2_stores_are_rejected_with_a_typed_version_error() {
        // Regression for the v2 → v3 format bump (adaptive sections): a
        // v2 relic fails typed on every load path — the version check
        // precedes the checksum, so no patching can smuggle the old
        // layout in — and warm-start boot paths treat the rejection as a
        // cold start per the ROADMAP version policy.
        let mut store = PlanStore::new();
        store.push_entry(0, Arc::new(plans_of_every_variant().remove(5)));
        let mut bytes = store.to_bytes();
        bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&2u32.to_le_bytes());
        assert!(matches!(
            PlanStore::from_bytes(&bytes),
            Err(PersistError::UnsupportedVersion {
                found: 2,
                supported: FORMAT_VERSION,
            })
        ));
    }

    #[test]
    fn v1_stores_are_rejected_with_a_typed_version_error() {
        // Regression for the v1 → v2 format bump: a store whose version
        // field says 1 must fail typed — never parse, never panic — and
        // the version is checked before the checksum, so no checksum
        // patching can smuggle an old layout in.
        let mut store = PlanStore::new();
        store.push_entry(0, Arc::new(plans_of_every_variant().remove(5)));
        let mut bytes = store.to_bytes();
        bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            PlanStore::from_bytes(&bytes),
            Err(PersistError::UnsupportedVersion {
                found: 1,
                supported: FORMAT_VERSION,
            })
        ));
    }

    #[test]
    fn structural_revalidation_rejects_inconsistent_records() {
        let plans = plans_of_every_variant();
        let doacross = &plans[2];
        let reordered = &plans[3];
        let wavefront = &plans[5];
        assert_eq!(wavefront.variant(), PlanVariant::Wavefront);

        let corrupt = |plan: &ExecutionPlan, mutate: &dyn Fn(&mut ExecutionPlan)| {
            let bytes = encode_plan(plan);
            let mut patient = decode_plan(&bytes).unwrap();
            mutate(&mut patient);
            decode_plan(&encode_plan(&patient))
        };
        let assert_structural = |result: Result<ExecutionPlan, PersistError>, what: &str| {
            assert!(
                matches!(result, Err(PersistError::Structural(_))),
                "{what}: {:?}",
                result.map(|p| p.variant())
            );
        };

        assert_structural(corrupt(doacross, &|p| p.processors = 0), "zero processors");
        assert_structural(
            corrupt(doacross, &|p| p.census.total_terms += 1),
            "census disagrees with fingerprint",
        );
        assert_structural(
            corrupt(doacross, &|p| p.prepared = None),
            "inspected variant without its writer map",
        );
        assert_structural(
            corrupt(doacross, &|p| p.order = Some(vec![0])),
            "order attached to a variant that never consumes one",
        );
        assert_structural(
            corrupt(doacross, &|p| p.census.injective = false),
            "flat doacross over a non-injective lhs",
        );
        assert_structural(
            corrupt(reordered, &|p| {
                let order = p.order.as_mut().unwrap();
                order[0] = order[1];
            }),
            "claim order is not a permutation",
        );
        assert_structural(
            corrupt(reordered, &|p| {
                p.order.as_mut().unwrap().pop();
            }),
            "claim order shorter than the iteration space",
        );
        assert_structural(
            corrupt(&plans[4], &|p| {
                p.variant = PlanVariant::Blocked { block_size: 0 };
            }),
            "zero block size",
        );
        assert_structural(
            corrupt(&plans[4], &|p| {
                p.variant = PlanVariant::Blocked {
                    block_size: p.census.iterations + 1,
                };
            }),
            "block size beyond the iteration space",
        );

        // Wavefront-specific inconsistencies.
        let schedule = wavefront.level_schedule().unwrap().clone();
        assert_structural(
            corrupt(wavefront, &|p| p.levels = None),
            "wavefront variant without its level schedule",
        );
        assert_structural(
            corrupt(doacross, &|p| p.levels = Some(schedule.clone())),
            "level schedule attached to a variant that never consumes one",
        );
        assert_structural(
            corrupt(wavefront, &|p| {
                // Merge the first two levels: still a valid CSR structure,
                // but the level count no longer matches the census
                // critical path.
                let mut offsets = schedule.offsets().to_vec();
                offsets.remove(1);
                p.levels = doacross_core::LevelSchedule::from_parts(
                    offsets,
                    schedule.order().to_vec(),
                    schedule.term_offsets().to_vec(),
                    schedule.classes().to_vec(),
                );
                assert!(p.levels.is_some(), "mutation must survive from_parts");
            }),
            "level count disagrees with the census critical path",
        );
        assert_structural(
            corrupt(wavefront, &|p| {
                // Flip one true-dependency class to old-value: the class
                // counts no longer match the census classification.
                let mut classes = schedule.classes().to_vec();
                let flip = classes.iter().position(|&c| c == 0).expect("has true deps");
                classes[flip] = 1;
                p.levels = doacross_core::LevelSchedule::from_parts(
                    schedule.offsets().to_vec(),
                    schedule.order().to_vec(),
                    schedule.term_offsets().to_vec(),
                    classes,
                );
                assert!(p.levels.is_some(), "mutation must survive from_parts");
            }),
            "operand classes disagree with the census",
        );

        // A writer map pointing past the iteration space is rejected at
        // the byte level (decode, not just re-encode of a live plan).
        let mut bytes = encode_plan(doacross);
        // Fingerprint (5) + processors (1) words, 1 tag byte, census up to
        // the writer-map flag — easier to corrupt via decode+mutate of the
        // census iteration count, which the fingerprint check catches
        // first; so instead corrupt a live map through from_writer_map's
        // contract: already covered in core. Here just confirm garbage
        // never panics.
        for i in 0..bytes.len() {
            bytes[i] = bytes[i].wrapping_add(0x5B);
            let _ = decode_plan(&bytes); // must not panic
            bytes[i] = bytes[i].wrapping_sub(0x5B);
        }
    }

    #[test]
    fn empty_store_round_trips() {
        let store = PlanStore::new();
        assert!(store.is_empty());
        let back = PlanStore::from_bytes(&store.to_bytes()).unwrap();
        assert_eq!(back.len(), 0);
        assert_eq!(back.generations().count(), 0);
    }

    #[test]
    fn save_and_load_round_trip_through_a_file() {
        let path = std::env::temp_dir().join(format!(
            "doacross-persist-unit-{}.plans",
            std::process::id()
        ));
        let mut store = PlanStore::new();
        store.push_entry(3, Arc::new(plans_of_every_variant().remove(1)));
        store.save(&path).unwrap();
        let back = PlanStore::load(&path).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.to_bytes(), store.to_bytes());
        std::fs::remove_file(&path).unwrap();

        let missing = std::env::temp_dir().join("doacross-persist-unit-nonexistent.plans");
        assert!(matches!(
            PlanStore::load(&missing),
            Err(PersistError::NotFound)
        ));
    }
}
