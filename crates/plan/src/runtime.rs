//! [`PlanExecutor`] — variant dispatch for prebuilt plans — and
//! [`PlannedDoacross`], the single-owner planned runtime built on it.
//!
//! [`PlanExecutor`] owns the per-variant scratch runtimes (inspected flat,
//! linear, strip-mined) and executes any [`ExecutionPlan`] against a loop:
//! sequential, flat doacross against the plan's prebuilt writer map,
//! linear-subscript, doconsider-reordered, or strip-mined. It is the
//! execution half shared by [`PlannedDoacross`] and the thread-safe
//! `doacross_engine::Engine` (which checks executors out of a pool so
//! concurrent callers each get private scratch). The flat variants report
//! `inspector == 0`; a [`PlanVariant::Blocked`] plan is the one exception
//! — strip-mined execution re-inspects per block by construction (§2.3
//! reuses one windowed scratch allocation across blocks), so a cached
//! blocked plan skips the planning but keeps its per-block inspector time.
//!
//! Plan-driven runs skip per-run validation (the plan already proved the
//! structure in-bounds, injective where required, and its order
//! topological; the fingerprint key guarantees the structure has not
//! changed) — the executor's release-mode bounds asserts remain as the
//! final defense.
//!
//! [`PlannedDoacross`] — fingerprint → LRU-cached plan → dispatch, all
//! behind `&mut self` — predates the engine and is kept as a deprecated
//! shim for callers that own their runtime exclusively. New code should
//! use `doacross_engine::Engine`, which serves the same plans from a
//! sharded concurrent cache through `&self`.

use crate::cache::{CacheStats, PlanCache};
use crate::fingerprint::PatternFingerprint;
use crate::plan::{ExecutionPlan, PlanVariant};
use crate::planner::Planner;
use doacross_core::{
    seq::run_sequential, BlockedDoacross, Doacross, DoacrossConfig, DoacrossError, DoacrossLoop,
    LinearDoacross, PlanProvenance, RunStats, WavefrontDoacross,
};
use doacross_obs::profile::{ProfArena, SpanKind, NO_LEVEL};
use doacross_par::ThreadPool;
use std::time::Instant;

/// Executes prebuilt [`ExecutionPlan`]s, owning the per-variant scratch
/// state (writer-map runtime, linear runtime, blocked runtime) that a plan
/// execution needs (see module docs).
///
/// The configuration's `validate_terms` is forced off (validation happened
/// at plan time) and `copy_back` forced on — results always land in `y`,
/// uniformly across variants (a shadow-array protocol would behave
/// differently depending on which variant the cost model picked, and this
/// executor exposes no shadow accessor).
#[derive(Debug)]
pub struct PlanExecutor {
    config: DoacrossConfig,
    inspected: Doacross,
    linear: LinearDoacross,
    /// Level-scheduled runtime: its shadow array and per-level claim
    /// counters grow to the largest structure seen and are then reused, so
    /// a workload alternating wavefront structures (e.g. an L and a U
    /// factor with different depths) does not churn allocations.
    wavefront: WavefrontDoacross,
    /// One strip-mined runtime per block size seen, so a workload
    /// alternating blocked structures (e.g. L and U factors with
    /// different legal block sizes) reuses each one's windowed scratch
    /// instead of reallocating it every execute. Bounded by the distinct
    /// block sizes this executor encounters.
    blocked: std::collections::HashMap<usize, BlockedDoacross>,
}

impl PlanExecutor {
    /// Executor with the given doacross configuration (`schedule` and
    /// `wait` honored; `validate_terms`/`copy_back` forced, see type docs).
    pub fn new(config: DoacrossConfig) -> Self {
        let config = DoacrossConfig {
            validate_terms: false,
            copy_back: true,
            ..config
        };
        Self {
            config,
            inspected: Doacross::with_config(0, config),
            linear: LinearDoacross::with_config(0, config),
            wavefront: WavefrontDoacross::with_config(0, config),
            blocked: std::collections::HashMap::new(),
        }
    }

    /// The (forced) configuration executions run under.
    pub fn config(&self) -> &DoacrossConfig {
        &self.config
    }

    /// Runs `loop_` under `plan`, dispatching to the plan's variant.
    ///
    /// Results are bit-identical to [`run_sequential`] for every variant a
    /// planner can select. The returned stats report
    /// [`PlanProvenance::PlanCold`]; callers that know the plan came from
    /// a cache overwrite the provenance.
    pub fn execute<L: DoacrossLoop + ?Sized>(
        &mut self,
        pool: &ThreadPool,
        loop_: &L,
        y: &mut [f64],
        plan: &ExecutionPlan,
    ) -> Result<RunStats, DoacrossError> {
        self.execute_profiled(pool, loop_, y, plan, None)
    }

    /// Like [`PlanExecutor::execute`], but deposits per-worker profiling
    /// spans into `prof` when one is supplied (`None` keeps the exact
    /// unprofiled code paths).
    ///
    /// Span fidelity varies by variant. The flat doacross variants
    /// (`Doacross`/`Reordered`) record fine-grained work spans and
    /// per-stall flag waits; `Wavefront` records per-level work and
    /// barrier-wait spans. `Sequential`, `Linear`, and `Blocked` record
    /// one coarse whole-run work span on worker 0 — enough for the
    /// critical-path and wait-fraction accounting to stay total-correct,
    /// without threading timers through their inner loops.
    pub fn execute_profiled<L: DoacrossLoop + ?Sized>(
        &mut self,
        pool: &ThreadPool,
        loop_: &L,
        y: &mut [f64],
        plan: &ExecutionPlan,
        prof: Option<&ProfArena>,
    ) -> Result<RunStats, DoacrossError> {
        let data_len = loop_.data_len();
        if plan.census().iterations != loop_.iterations() || plan.census().data_len != data_len {
            return Err(DoacrossError::PlanMismatch {
                plan_iterations: plan.census().iterations,
                plan_data_len: plan.census().data_len,
                loop_iterations: loop_.iterations(),
                loop_data_len: data_len,
            });
        }
        if y.len() != data_len {
            return Err(DoacrossError::DataLenMismatch {
                got: y.len(),
                expected: data_len,
            });
        }
        match plan.variant() {
            PlanVariant::Sequential => {
                let span_start = prof.map(|arena| arena.now_ns());
                let start = Instant::now();
                run_sequential(loop_, y);
                let stats = RunStats {
                    iterations: loop_.iterations(),
                    workers: 1,
                    blocks: 1,
                    total: start.elapsed(),
                    provenance: PlanProvenance::PlanCold,
                    ..Default::default()
                };
                coarse_work_span(prof, span_start, loop_.iterations());
                Ok(stats)
            }
            PlanVariant::Doacross => {
                let prepared = plan.prepared().expect("doacross plan carries a map");
                self.inspected
                    .run_planned_profiled(pool, loop_, y, prepared, None, prof)
            }
            PlanVariant::Reordered => {
                let prepared = plan.prepared().expect("reordered plan carries a map");
                let order = plan.order().expect("reordered plan carries an order");
                self.inspected
                    .run_planned_profiled(pool, loop_, y, prepared, Some(order), prof)
            }
            PlanVariant::Linear(subscript) => {
                let span_start = prof.map(|arena| arena.now_ns());
                let mut stats = self.linear.run(pool, loop_, subscript, y)?;
                stats.provenance = PlanProvenance::PlanCold;
                coarse_work_span(prof, span_start, loop_.iterations());
                Ok(stats)
            }
            PlanVariant::Blocked { block_size } => {
                let blocked = match self.blocked.entry(block_size) {
                    std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(BlockedDoacross::with_config(block_size, self.config)?)
                    }
                };
                let span_start = prof.map(|arena| arena.now_ns());
                let mut stats = blocked.run(pool, loop_, y)?;
                stats.provenance = PlanProvenance::PlanCold;
                coarse_work_span(prof, span_start, loop_.iterations());
                Ok(stats)
            }
            PlanVariant::Wavefront => {
                let schedule = plan
                    .level_schedule()
                    .expect("wavefront plan carries its level schedule");
                let stats = self
                    .wavefront
                    .run_chunked_profiled(pool, loop_, y, schedule, None, prof)?;
                debug_assert_eq!(stats.wait_polls, 0, "wavefront runs never poll");
                Ok(stats)
            }
        }
    }
}

/// Deposits the single coarse whole-run work span the non-instrumented
/// variants (`Sequential`/`Linear`/`Blocked`) report — attributed to
/// worker 0, `aux` = iterations (see [`PlanExecutor::execute_profiled`]).
#[inline]
fn coarse_work_span(prof: Option<&ProfArena>, span_start: Option<u64>, iterations: usize) {
    if let (Some(arena), Some(started)) = (prof, span_start) {
        let end = arena.now_ns();
        arena.record(
            0,
            SpanKind::Work,
            NO_LEVEL,
            started,
            end.saturating_sub(started),
            iterations as u64,
        );
    }
}

/// Plan-driven doacross runtime with an LRU plan cache (see module docs).
///
/// ```
/// use doacross_par::ThreadPool;
/// use doacross_plan::PlannedDoacross;
/// use doacross_core::{seq::run_sequential, PlanProvenance, TestLoop};
///
/// let pool = ThreadPool::new(2);
/// let loop_ = TestLoop::new(500, 2, 8);
/// let mut rt = PlannedDoacross::new(8);
///
/// let mut y1 = loop_.initial_y();
/// let cold = rt.run(&pool, &loop_, &mut y1).unwrap();
/// assert_eq!(cold.provenance, PlanProvenance::PlanCold);
///
/// let mut y2 = loop_.initial_y();
/// let hot = rt.run(&pool, &loop_, &mut y2).unwrap();
/// assert_eq!(hot.provenance, PlanProvenance::PlanCached);
///
/// let mut oracle = loop_.initial_y();
/// run_sequential(&loop_, &mut oracle);
/// assert_eq!(y1, oracle);
/// assert_eq!(y2, oracle);
/// ```
#[derive(Debug)]
pub struct PlannedDoacross {
    planner: Planner,
    cache: PlanCache,
    executor: PlanExecutor,
}

impl PlannedDoacross {
    /// Runtime with the default (Multimax-calibrated) planner and a plan
    /// cache of `cache_capacity` entries.
    pub fn new(cache_capacity: usize) -> Self {
        Self::with_parts(cache_capacity, Planner::new(), DoacrossConfig::default())
    }

    /// Runtime with an explicit planner and doacross configuration.
    /// `schedule` and `wait` are honored; `validate_terms` is forced off
    /// (validation happened at plan time) and `copy_back` is forced on —
    /// results always land in `y`, uniformly across variants (a
    /// shadow-array protocol would behave differently depending on which
    /// variant the cost model picked, and this runtime exposes no shadow
    /// accessor).
    pub fn with_parts(cache_capacity: usize, planner: Planner, config: DoacrossConfig) -> Self {
        Self {
            planner,
            cache: PlanCache::new(cache_capacity),
            executor: PlanExecutor::new(config),
        }
    }

    /// The planner in use.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// The plan cache.
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Mutable access to the plan cache (e.g. to clear it or pre-warm it).
    pub fn cache_mut(&mut self) -> &mut PlanCache {
        &mut self.cache
    }

    /// Shortcut for the cache's traffic counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Runs `loop_`, planning (and caching the plan) on first sight of its
    /// access pattern and skipping all preprocessing thereafter.
    ///
    /// Results are bit-identical to [`run_sequential`] for every variant
    /// the planner can select. The returned stats carry
    /// [`PlanProvenance::PlanCold`] when the plan was built by this call
    /// and [`PlanProvenance::PlanCached`] when it was served from cache.
    #[deprecated(
        since = "0.1.0",
        note = "use doacross_engine::Engine::{run, prepare}: a thread-safe, \
                Arc-shareable session with a sharded concurrent plan cache"
    )]
    pub fn run<L: DoacrossLoop + ?Sized>(
        &mut self,
        pool: &ThreadPool,
        loop_: &L,
        y: &mut [f64],
    ) -> Result<RunStats, DoacrossError> {
        let fingerprint = PatternFingerprint::of(loop_);
        // A plan priced for a different worker count computes the same
        // results but may pick the wrong variant; treat it as a miss and
        // replan (the insert below replaces the stale entry).
        let processors = pool.threads();
        let cached = self
            .cache
            .get_matching(&fingerprint, |plan| plan.processors() == processors);
        let (plan, hit) = match cached {
            Some(plan) => (plan, true),
            None => {
                let plan = std::sync::Arc::new(self.planner.plan_with_fingerprint(
                    pool,
                    loop_,
                    fingerprint,
                )?);
                self.cache.insert(std::sync::Arc::clone(&plan));
                (plan, false)
            }
        };
        let mut stats = self.executor.execute(pool, loop_, y, &plan)?;
        stats.provenance = if hit {
            PlanProvenance::PlanCached
        } else {
            PlanProvenance::PlanCold
        };
        Ok(stats)
    }

    /// Runs `loop_` under an explicitly supplied plan, bypassing the cache
    /// (stats report [`PlanProvenance::PlanCold`]).
    pub fn run_with_plan<L: DoacrossLoop + ?Sized>(
        &mut self,
        pool: &ThreadPool,
        loop_: &L,
        y: &mut [f64],
        plan: &ExecutionPlan,
    ) -> Result<RunStats, DoacrossError> {
        self.executor.execute(pool, loop_, y, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_core::{IndirectLoop, TestLoop};

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    fn oracle<L: DoacrossLoop + ?Sized>(loop_: &L, y0: &[f64]) -> Vec<f64> {
        let mut y = y0.to_vec();
        run_sequential(loop_, &mut y);
        y
    }

    #[test]
    fn cold_then_cached_runs_match_oracle_bitwise() {
        let p = pool();
        let mut rt = PlannedDoacross::new(4);
        for l in [2usize, 7, 8] {
            let loop_ = TestLoop::new(400, 3, l);
            let y0 = loop_.initial_y();
            let expect = oracle(&loop_, &y0);
            let mut y_cold = y0.clone();
            let cold = rt.run(&p, &loop_, &mut y_cold).unwrap();
            assert_eq!(cold.provenance, PlanProvenance::PlanCold, "L={l}");
            assert_eq!(y_cold, expect, "L={l} cold");
            for round in 0..3 {
                let mut y_hot = y0.clone();
                let hot = rt.run(&p, &loop_, &mut y_hot).unwrap();
                assert_eq!(
                    hot.provenance,
                    PlanProvenance::PlanCached,
                    "L={l} round {round}"
                );
                assert_eq!(
                    hot.inspector,
                    std::time::Duration::ZERO,
                    "cache hits never inspect"
                );
                assert_eq!(y_hot, expect, "L={l} round {round}");
            }
        }
        assert_eq!(rt.cache_stats().misses, 3);
        assert_eq!(rt.cache_stats().hits, 9);
    }

    #[test]
    fn every_variant_matches_the_oracle() {
        let p = pool();
        let mut rt = PlannedDoacross::new(8);

        // Sequential (serial chain).
        let n = 60;
        let a: Vec<usize> = (1..=n).collect();
        let rhs: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        let chain = IndirectLoop::new(n + 1, a, rhs, vec![vec![1.0]; n]).unwrap();
        let y0 = vec![1.0; n + 1];
        let mut y = y0.clone();
        rt.run(&p, &chain, &mut y).unwrap();
        assert_eq!(y, oracle(&chain, &y0));

        // Blocked (non-injective, wide write gap, real work per term).
        let n2 = 2_048usize;
        let period = 256usize;
        let a2: Vec<usize> = (0..n2).map(|i| i % period).collect();
        let rhs2: Vec<Vec<usize>> = (0..n2).map(|i| vec![(i + 3) % period]).collect();
        let dup = IndirectLoop::new(period, a2, rhs2, vec![vec![0.5]; n2]).unwrap();
        let y0 = vec![1.0; period];
        let mut y = y0.clone();
        let stats = rt.run(&p, &dup, &mut y).unwrap();
        assert_eq!(y, oracle(&dup, &y0));
        assert!(stats.blocks >= 2, "blocked plan executes in blocks");

        // Reordered (interleaved tight chains).
        let chains = 16usize;
        let len = 12usize;
        let n3 = chains * len;
        let a3: Vec<usize> = (0..n3).collect();
        let rhs3: Vec<Vec<usize>> = (0..n3)
            .map(|i| if i % len == 0 { vec![] } else { vec![i - 1] })
            .collect();
        let coeff3: Vec<Vec<f64>> = rhs3.iter().map(|r| vec![0.5; r.len()]).collect();
        let braided = IndirectLoop::new(n3, a3, rhs3, coeff3).unwrap();
        let y0 = vec![1.0; n3];
        let mut y = y0.clone();
        rt.run(&p, &braided, &mut y).unwrap();
        assert_eq!(y, oracle(&braided, &y0));
    }

    #[test]
    fn pool_size_change_replans_instead_of_reusing_a_stale_plan() {
        // A wide doall: 1 worker can't beat sequential, 4 workers can —
        // the same fingerprint must not serve both pool sizes.
        let loop_ = TestLoop::new(4_000, 1, 7);
        let mut rt = PlannedDoacross::new(4);
        let one = ThreadPool::new(1);
        let four = ThreadPool::new(4);

        let mut y = loop_.initial_y();
        let first = rt.run(&one, &loop_, &mut y).unwrap();
        assert_eq!(first.provenance, PlanProvenance::PlanCold);

        // Different worker count: the cached plan's pricing is stale, so
        // this must be a fresh (cold) plan, not a cache hit.
        let mut y = loop_.initial_y();
        let repriced = rt.run(&four, &loop_, &mut y).unwrap();
        assert_eq!(repriced.provenance, PlanProvenance::PlanCold);

        // Same worker count again: now it hits.
        let mut y = loop_.initial_y();
        let hot = rt.run(&four, &loop_, &mut y).unwrap();
        assert_eq!(hot.provenance, PlanProvenance::PlanCached);
        assert_eq!(rt.cache_stats().misses, 2);
        assert_eq!(rt.cache_stats().hits, 1);
        assert_eq!(rt.cache().len(), 1, "replacement, not a second entry");
    }

    #[test]
    fn explicit_plan_bypasses_the_cache() {
        let p = pool();
        let loop_ = TestLoop::new(200, 1, 7);
        let plan = Planner::new().plan(&p, &loop_).unwrap();
        let mut rt = PlannedDoacross::new(2);
        let y0 = loop_.initial_y();
        let mut y = y0.clone();
        let stats = rt.run_with_plan(&p, &loop_, &mut y, &plan).unwrap();
        assert_eq!(y, oracle(&loop_, &y0));
        assert_eq!(stats.provenance, PlanProvenance::PlanCold);
        assert!(rt.cache().is_empty());
    }

    #[test]
    fn mismatched_plan_is_rejected() {
        let p = pool();
        let small = TestLoop::new(50, 1, 7);
        let big = TestLoop::new(60, 1, 7);
        let plan = Planner::new().plan(&p, &small).unwrap();
        let mut rt = PlannedDoacross::new(2);
        let mut y = big.initial_y();
        let err = rt.run_with_plan(&p, &big, &mut y, &plan).unwrap_err();
        assert!(matches!(err, DoacrossError::PlanMismatch { .. }));
    }

    #[test]
    fn structure_sharing_across_value_changes() {
        // Same structure, different coefficients: one plan, many runs.
        let p = pool();
        let mut rt = PlannedDoacross::new(2);
        for coeff in [0.25f64, 0.5, 0.75] {
            let n = 300;
            let a: Vec<usize> = (0..n).map(|i| (i + 1) % n).collect();
            let rhs: Vec<Vec<usize>> = (0..n).map(|i| vec![(i + n - 3) % n]).collect();
            let loop_ = IndirectLoop::new(n, a, rhs, vec![vec![coeff]; n]).unwrap();
            let y0: Vec<f64> = (0..n).map(|e| 1.0 + (e % 5) as f64).collect();
            let mut y = y0.clone();
            rt.run(&p, &loop_, &mut y).unwrap();
            assert_eq!(y, oracle(&loop_, &y0), "coeff {coeff}");
        }
        let s = rt.cache_stats();
        assert_eq!(s.misses, 1, "structure planned once");
        assert_eq!(s.hits, 2, "value changes hit the cached plan");
    }
}
