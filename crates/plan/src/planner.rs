//! Cost-model-driven variant selection.
//!
//! The planner turns a [`PlanCensus`] into a [`PlanVariant`] choice by
//! pricing each legal candidate with the calibrated [`CostModel`] from
//! `doacross-sim` (the same constants that reproduce the paper's Figure 6
//! plateaus). All prices are *per planned run* — the inspector does not
//! appear in any parallel candidate's price, because a plan pays it once at
//! build time; that asymmetry is the whole point of the subsystem.
//!
//! ## The model
//!
//! With `p` processors, `n` iterations, `T` references, and per-action
//! costs `c`:
//!
//! * per-iteration executor overhead `e = grab + setup + publish`,
//!   per-reference work `r = term + check`, serial iteration cost
//!   `chain = e + (T/n)·r`;
//! * total executor work `W = n·e + T·r`;
//! * the critical path bounds any schedule: `t ≥ CP · chain`;
//! * a true dependency whose writer is claimed `g` slots earlier stalls its
//!   reader roughly `chain · max(0, p − g)/p` (with one claim per slot,
//!   `p` consecutive slots run concurrently, so a gap below `p` leaves the
//!   writer `(p − g)/p` of an iteration short of finished when the reader
//!   wants its value) — summed over the dependence edges this prices a
//!   claim order, which is what separates the natural from the doconsider
//!   order on Table 1-like structures;
//! * every *flag-based* variant additionally pays one `ready` check per
//!   true dependency (`true_deps · wait_poll` — the successful poll of
//!   Figure 5 S4 that even a non-stalling reader performs);
//! * executor estimate `max((W + flags + stalls)/p, CP · chain)`, plus
//!   postprocessing `n · post/p` and two region dispatches.
//!
//! The **wavefront** candidate replaces the per-element synchronization
//! with per-level barriers: it pays no flag checks and never stalls, but
//! each of its `CP` levels costs `⌈width/p⌉ · chain` (whole claim rounds —
//! a level cannot borrow slack from its neighbors) plus one barrier
//! crossing. The selection rule the two prices encode is exactly the
//! DOACROSS→DOALL conversion trade-off: level scheduling wins when the
//! predicted poll/stall bill exceeds `levels × barrier`.
//!
//! Sequential is priced with the paper's `T_seq` model and wins ties (it
//! uses the fewest resources); the linear variant wins ties against the
//! inspected one (it carries no writer map), and the flag-based variants
//! win ties against the wavefront (its artifact is larger).

use crate::census::PlanCensus;
use crate::fingerprint::PatternFingerprint;
use crate::plan::{ExecutionPlan, PlanVariant, VariantCosts};
use doacross_core::{AccessPattern, DoacrossError, LinearSubscript, PreparedInspection};
use doacross_doconsider::{invert_permutation, DependenceDag};
use doacross_par::{Schedule, ThreadPool};
use doacross_sim::CostModel;
use std::time::Instant;

/// Data-space : iteration-space ratio at which an injective loop is
/// strip-mined for memory (§2.3): when `data_len ≥ factor · iterations`,
/// the flat variants drag `data_len`-sized scratch (`iter`, `ready`,
/// `ynew`) through memory for a loop that writes only a sliver of it,
/// while the blocked variant bounds scratch to each block's element
/// window. Below the ratio the flat variants' single inspector-free
/// region wins; at or above it the planner prices the blocked run and
/// takes it whenever it also beats sequential.
pub const BLOCKED_DATA_SPACE_FACTOR: usize = 8;

/// Builds [`ExecutionPlan`]s for access patterns.
#[derive(Debug, Clone)]
pub struct Planner {
    costs: CostModel,
    schedule: Schedule,
}

impl Default for Planner {
    fn default() -> Self {
        Self::new()
    }
}

impl Planner {
    /// Planner with the Multimax-calibrated cost model.
    pub fn new() -> Self {
        Self::with_costs(CostModel::multimax())
    }

    /// Planner with explicit cost constants (e.g. from
    /// `doacross_sim::calibrate` for host-accurate selection).
    pub fn with_costs(costs: CostModel) -> Self {
        Self {
            costs,
            schedule: Schedule::multimax(),
        }
    }

    /// The cost constants selection runs on.
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// Builds a plan for `pattern`, using `pool` both as the processor
    /// count the cost model prices for and to parallelize the inspection
    /// capture.
    ///
    /// Fails only on genuinely unexecutable patterns (out-of-bounds
    /// subscripts); loops the flat construct rejects (non-injective
    /// left-hand sides) get a legal [`PlanVariant::Blocked`] or
    /// [`PlanVariant::Sequential`] plan instead of an error.
    pub fn plan<P: AccessPattern + ?Sized>(
        &self,
        pool: &ThreadPool,
        pattern: &P,
    ) -> Result<ExecutionPlan, DoacrossError> {
        self.plan_with_fingerprint(pool, pattern, PatternFingerprint::of(pattern))
    }

    /// Like [`Planner::plan`] with an already-computed fingerprint, so
    /// cache-miss paths that fingerprinted the pattern for the lookup do
    /// not scan the index arrays a second time.
    pub fn plan_with_fingerprint<P: AccessPattern + ?Sized>(
        &self,
        pool: &ThreadPool,
        pattern: &P,
        fingerprint: PatternFingerprint,
    ) -> Result<ExecutionPlan, DoacrossError> {
        let start = Instant::now();
        let (census, level_schedule) = PlanCensus::of_with_schedule(pattern);
        if let Some((iteration, element)) = census.first_out_of_bounds {
            return Err(DoacrossError::SubscriptOutOfBounds {
                iteration,
                element,
                data_len: census.data_len,
            });
        }
        let linear = detect_linear(pattern);
        let p = pool.threads();

        if !census.injective {
            let plan = self.plan_non_injective(fingerprint, census, linear, p, start);
            debug_assert!(
                plan.verify_against(pattern).is_ok(),
                "planner built an unsound {} plan: {}",
                plan.variant(),
                plan.verify_against(pattern).unwrap_err(),
            );
            return Ok(plan);
        }

        let n = census.iterations as f64;
        let t_seq = self
            .costs
            .sequential_time(census.iterations, census.total_terms as usize);
        let chain = self.chain_cost(&census);
        let work = n * self.exec_per_iter() + census.total_terms as f64 * self.per_term();
        // The flag-based variants check `ready` once per true dependency
        // even when the writer already finished (Figure 5 S4's successful
        // poll); the wavefront variant has no flags to check.
        let flag_checks = census.true_deps as f64 * self.costs.wait_poll;
        let cp_bound = census.critical_path as f64 * chain;
        let post = n * self.costs.post_per_iter / p as f64;
        let dispatch = 2.0 * self.costs.region_dispatch;

        // Stall pricing needs the dependence edges; skip the DAG entirely
        // for dependence-free loops. The doconsider order is NOT
        // recomputed: the census pass already materialized the stable
        // level-sorted permutation into the level schedule, and the
        // counting sort there is identical to `order_from_levels` over a
        // fresh `LevelAssignment`.
        let (order, stall_natural, stall_reordered) = if census.true_deps == 0 {
            (None, 0.0, 0.0)
        } else {
            let dag = DependenceDag::build(pattern);
            let order = level_schedule
                .as_ref()
                .expect("injective in-bounds patterns carry a level schedule")
                .order()
                .to_vec();
            let pos = invert_permutation(&order);
            let stall_nat = self.stall_sum(&dag, None, p, chain);
            let stall_reo = self.stall_sum(&dag, Some(&pos), p, chain);
            (Some(order), stall_nat, stall_reo)
        };

        let parallel = |stalls: f64| {
            dispatch + ((work + flag_checks + stalls) / p as f64).max(cp_bound) + post
        };
        let t_doacross = parallel(stall_natural);
        let t_reordered = parallel(stall_reordered);

        // Wavefront candidate: each level is a whole claim round —
        // `⌈width/p⌉ · chain` (a level cannot borrow slack from its
        // neighbors) — plus one barrier crossing per level boundary. No
        // flag checks, no stalls, by construction. Only meaningful when
        // there are true dependencies: a doall is one level and the flat
        // variants already never wait on it.
        let t_wavefront = level_schedule
            .as_ref()
            .filter(|_| census.true_deps > 0)
            .map(|schedule| {
                let rounds: usize = schedule
                    .offsets()
                    .windows(2)
                    .map(|w| (w[1] - w[0]).div_ceil(p))
                    .sum();
                let barriers = (schedule.level_count() - 1) as f64 * self.costs.barrier;
                dispatch + rounds as f64 * chain + barriers + post
            });

        let mut costs = VariantCosts {
            sequential: t_seq,
            doacross: Some(t_doacross),
            linear: linear.map(|_| t_doacross),
            reordered: order.as_ref().map(|_| t_reordered),
            blocked: None,
            wavefront: t_wavefront,
        };

        // Selection: cheapest wins; sequential wins ties (fewest
        // resources); among equal parallel candidates, linear beats
        // inspected (no writer map), the natural order beats the
        // reordered one (no order array) unless reordering is a real
        // improvement, and the flag-based variants beat the wavefront (its
        // artifact is larger) unless level scheduling is a real
        // improvement.
        let best_flagged = t_doacross.min(t_reordered);
        let best_parallel = best_flagged.min(t_wavefront.unwrap_or(f64::INFINITY));
        let mut variant = if t_seq <= best_parallel {
            PlanVariant::Sequential
        } else if t_wavefront.is_some_and(|t| t < best_flagged) {
            PlanVariant::Wavefront
        } else if t_reordered < t_doacross {
            PlanVariant::Reordered
        } else if let Some(subscript) = linear {
            PlanVariant::Linear(subscript)
        } else {
            PlanVariant::Doacross
        };

        // §2.3's memory argument as a selection rule: an injective loop
        // whose data space dwarfs its iteration space
        // ([`BLOCKED_DATA_SPACE_FACTOR`]) wastes `data_len`-sized scratch
        // on the flat variants; strip-mining bounds scratch to block
        // windows and is always legal when `a` is injective. Applied only
        // when a parallel variant is otherwise profitable, and only if the
        // priced blocked run still beats sequential — ~16 blocks of at
        // least `4p` iterations keep self-scheduling busy while shrinking
        // the window.
        if variant != PlanVariant::Sequential
            && census.iterations > 0
            && census.data_len >= BLOCKED_DATA_SPACE_FACTOR * census.iterations
        {
            let block_size = census
                .iterations
                .div_ceil(16)
                .max(4 * p)
                .min(census.iterations);
            let nblocks = census.iterations.div_ceil(block_size) as f64;
            let blocked_work = n
                * (self.exec_per_iter() + self.costs.inspect_per_iter + self.costs.post_per_iter)
                + census.total_terms as f64 * self.per_term();
            let t_blocked = nblocks * 3.0 * self.costs.region_dispatch + blocked_work / p as f64;
            costs.blocked = Some(t_blocked);
            if t_blocked < t_seq {
                variant = PlanVariant::Blocked { block_size };
            }
        }

        // Capture only what the chosen variant consumes.
        let prepared =
            match variant {
                PlanVariant::Doacross | PlanVariant::Reordered => Some(
                    PreparedInspection::inspect(pool, self.schedule, pattern, true)?,
                ),
                _ => None,
            };
        let order = match variant {
            PlanVariant::Reordered => order,
            _ => None,
        };
        let levels = match variant {
            PlanVariant::Wavefront => level_schedule,
            _ => None,
        };

        let plan = ExecutionPlan {
            fingerprint,
            processors: p,
            variant,
            census,
            prepared,
            order,
            levels,
            linear,
            costs,
            build_time: start.elapsed(),
        };
        // Translation validation: in debug builds every freshly built plan
        // is proven sound against the very pattern it was built from. The
        // verifier re-derives the dependence structure independently, so a
        // census or schedule-construction bug trips here, at the source.
        debug_assert!(
            plan.verify_against(pattern).is_ok(),
            "planner built an unsound {} plan: {}",
            plan.variant(),
            plan.verify_against(pattern).unwrap_err(),
        );
        Ok(plan)
    }

    /// Plans a loop the flat construct rejects: blocked if duplicate writes
    /// are far enough apart to leave room for parallelism, else sequential.
    fn plan_non_injective(
        &self,
        fingerprint: PatternFingerprint,
        census: PlanCensus,
        linear: Option<LinearSubscript>,
        p: usize,
        start: Instant,
    ) -> ExecutionPlan {
        let n = census.iterations as f64;
        let t_seq = self
            .costs
            .sequential_time(census.iterations, census.total_terms as usize);
        let gap = census.min_duplicate_write_gap.unwrap_or(1);
        // Two writes `d` apart can only collide within one block of size
        // `B > d`, so any `B ≤ gap` is collision-free.
        let block_size = gap.max(1);
        let nblocks = census.iterations.div_ceil(block_size.max(1)).max(1) as f64;
        // Each block pays three parallel regions (inspector, executor,
        // post) and the per-iteration inspector cost stays in the run —
        // blocked runs cannot reuse a prebuilt map across blocks.
        let work = n
            * (self.exec_per_iter() + self.costs.inspect_per_iter + self.costs.post_per_iter)
            + census.total_terms as f64 * self.per_term();
        let t_blocked = nblocks * 3.0 * self.costs.region_dispatch + work / p as f64;
        let costs = VariantCosts {
            sequential: t_seq,
            blocked: (block_size > 1).then_some(t_blocked),
            ..Default::default()
        };
        let variant = if block_size > 1 && t_blocked < t_seq {
            PlanVariant::Blocked { block_size }
        } else {
            PlanVariant::Sequential
        };
        ExecutionPlan {
            fingerprint,
            processors: p,
            variant,
            census,
            prepared: None,
            order: None,
            levels: None,
            linear,
            costs,
            build_time: start.elapsed(),
        }
    }

    /// Per-iteration executor overhead `e`.
    fn exec_per_iter(&self) -> f64 {
        self.costs.schedule_grab + self.costs.iteration_setup + self.costs.publish
    }

    /// Per-reference executor work `r`.
    fn per_term(&self) -> f64 {
        self.costs.term + self.costs.check
    }

    /// Serial cost of one average iteration.
    fn chain_cost(&self, census: &PlanCensus) -> f64 {
        self.exec_per_iter() + census.terms_per_iteration() * self.per_term()
    }

    /// Total predicted stall (processor-cycles) of a claim order: for each
    /// true-dependence edge with claim gap `g`, `chain · max(0, p − g)/p`.
    fn stall_sum(&self, dag: &DependenceDag, pos: Option<&[usize]>, p: usize, chain: f64) -> f64 {
        let mut total = 0.0;
        for i in 0..dag.len() {
            for &w in dag.predecessors(i) {
                let gap = match pos {
                    Some(pos) => pos[i] - pos[w],
                    None => i - w,
                };
                if gap < p {
                    total += chain * (p - gap) as f64 / p as f64;
                }
            }
        }
        total
    }
}

/// Detects a linear left-hand-side subscript `a(i) = c·i + d` with `c ≥ 1`.
///
/// Loops with fewer than two iterations are trivially linear (`c = 1`,
/// `d = lhs(0)`), matching what the §2.3 arithmetic oracle needs.
pub fn detect_linear<P: AccessPattern + ?Sized>(pattern: &P) -> Option<LinearSubscript> {
    let n = pattern.iterations();
    if n == 0 {
        return Some(LinearSubscript::new(1, 0));
    }
    let d = pattern.lhs(0);
    if n == 1 {
        return Some(LinearSubscript::new(1, d));
    }
    let second = pattern.lhs(1);
    if second <= d {
        return None; // stride must be ≥ 1 for injectivity
    }
    let c = second - d;
    for i in 2..n {
        if pattern.lhs(i) != c * i + d {
            return None;
        }
    }
    Some(LinearSubscript::new(c, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_core::{IndirectLoop, TestLoop};

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    fn chain(n: usize) -> IndirectLoop {
        let a: Vec<usize> = (1..=n).collect();
        let rhs: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        IndirectLoop::new(n + 1, a, rhs, vec![vec![1.0]; n]).unwrap()
    }

    #[test]
    fn linear_detection() {
        let t = TestLoop::new(100, 2, 6);
        let sub = detect_linear(&t).expect("a(i) = 2i + PAD + 2");
        assert_eq!(sub, t.linear_subscript());

        let scattered = IndirectLoop::new(
            8,
            vec![3, 1, 6],
            vec![vec![], vec![], vec![]],
            vec![vec![], vec![], vec![]],
        )
        .unwrap();
        assert_eq!(detect_linear(&scattered), None);

        let identity = chain(5); // lhs = i + 1
        assert_eq!(detect_linear(&identity), Some(LinearSubscript::new(1, 1)));
    }

    #[test]
    fn doall_linear_pattern_selects_linear() {
        // Odd L: dependence-free Figure 4 loop with a linear subscript.
        let t = TestLoop::new(2_000, 1, 7);
        let plan = Planner::new().plan(&pool(), &t).unwrap();
        assert!(matches!(plan.variant(), PlanVariant::Linear(_)), "{plan}");
        assert!(plan.prepared().is_none(), "linear variant needs no map");
        assert!(plan.census().is_doall());
    }

    #[test]
    fn serial_chain_selects_sequential() {
        // Critical path == n: no parallelism to buy back the overhead.
        let plan = Planner::new().plan(&pool(), &chain(500)).unwrap();
        assert_eq!(plan.variant(), PlanVariant::Sequential, "{plan}");
        assert!(plan.costs().sequential <= plan.costs().doacross.unwrap());
    }

    #[test]
    fn tight_interleaved_chains_select_reordered() {
        // Many independent distance-1 chains interleaved: natural claim
        // order stalls on every edge, the doconsider order does not.
        let chains = 32usize;
        let len = 16usize;
        let n = chains * len;
        // Iteration k = chain (k % chains), link (k / chains)... use
        // layout: iteration i writes element i; link j of chain c is
        // iteration c*len + j, reading its predecessor (distance 1).
        let a: Vec<usize> = (0..n).collect();
        let rhs: Vec<Vec<usize>> = (0..n)
            .map(|i| if i % len == 0 { vec![] } else { vec![i - 1] })
            .collect();
        let coeff: Vec<Vec<f64>> = rhs.iter().map(|r| vec![0.5; r.len()]).collect();
        let l = IndirectLoop::new(n, a, rhs, coeff).unwrap();
        let plan = Planner::new().plan(&pool(), &l).unwrap();
        assert_eq!(plan.variant(), PlanVariant::Reordered, "{plan}");
        let order = plan.order().expect("reordered plan carries its order");
        assert_eq!(order.len(), n);
        assert!(plan.prepared().is_some());
        assert!(
            plan.costs().reordered.unwrap() < plan.costs().doacross.unwrap(),
            "{:?}",
            plan.costs()
        );
    }

    #[test]
    fn scattered_doall_selects_doacross() {
        // Dependence-free but non-linear lhs: the inspected flat doacross
        // is the only parallel candidate.
        let n = 4_000usize;
        // Injective scatter: reverse order is non-linear (stride would be
        // negative).
        let a: Vec<usize> = (0..n).map(|i| n - 1 - i).collect();
        let l = IndirectLoop::new(n, a, vec![vec![]; n], vec![vec![]; n]).unwrap();
        let plan = Planner::new().plan(&pool(), &l).unwrap();
        assert_eq!(plan.variant(), PlanVariant::Doacross, "{plan}");
        assert!(plan.prepared().is_some());
        assert_eq!(plan.prepared().unwrap().writer(n - 1), 0);
    }

    #[test]
    fn deep_wide_grid_selects_wavefront() {
        // Many true dependencies, zero stalls under any order: the flag
        // bill (true_deps · wait_poll) is what the flat variants pay and
        // the wavefront does not; 19 barriers cost less.
        let l = crate::testgrid::deep_grid(64, 20, 3, 7);
        let plan = Planner::new().plan(&pool(), &l).unwrap();
        assert_eq!(plan.variant(), PlanVariant::Wavefront, "{plan}");
        let schedule = plan.level_schedule().expect("wavefront carries levels");
        assert_eq!(schedule.level_count(), 20);
        assert_eq!(schedule.level_count(), plan.census().critical_path);
        assert_eq!(schedule.max_width(), 64);
        assert!(plan.prepared().is_none(), "no writer map at all");
        assert!(plan.order().is_none());
        let costs = plan.costs();
        assert!(
            costs.wavefront.unwrap() < costs.doacross.unwrap(),
            "{costs:?}"
        );
        assert!(
            costs.wavefront.unwrap() < costs.reordered.unwrap_or(f64::INFINITY),
            "{costs:?}"
        );
    }

    #[test]
    fn wavefront_is_not_priced_for_doalls_or_non_injective_loops() {
        // Doall: one level, nothing ever waits — wavefront is pointless
        // and must not even appear among the candidates.
        let t = TestLoop::new(2_000, 1, 7);
        let plan = Planner::new().plan(&pool(), &t).unwrap();
        assert!(plan.costs().wavefront.is_none(), "{:?}", plan.costs());
        assert!(matches!(plan.variant(), PlanVariant::Linear(_)));

        // Non-injective: no level schedule exists.
        let dup =
            IndirectLoop::new(2, vec![0, 0], vec![vec![], vec![]], vec![vec![], vec![]]).unwrap();
        let plan = Planner::new().plan(&pool(), &dup).unwrap();
        assert!(plan.costs().wavefront.is_none());
    }

    #[test]
    fn serial_chains_price_wavefront_but_keep_sequential() {
        // A chain is all levels: the wavefront candidate exists but every
        // level is one iteration + one barrier — sequential must win.
        let plan = Planner::new().plan(&pool(), &chain(500)).unwrap();
        assert_eq!(plan.variant(), PlanVariant::Sequential, "{plan}");
        let costs = plan.costs();
        assert!(costs.wavefront.is_some());
        assert!(costs.sequential <= costs.wavefront.unwrap(), "{costs:?}");
        assert!(plan.level_schedule().is_none(), "artifact not captured");
    }

    #[test]
    fn non_injective_with_wide_gaps_selects_blocked() {
        // Element reuse at distance 512: blocked with block_size <= 512 is
        // legal, and with real per-reference work the strip-mined run
        // beats the sequential loop.
        let n = 4_096usize;
        let period = 512usize;
        let a: Vec<usize> = (0..n).map(|i| i % period).collect();
        let rhs: Vec<Vec<usize>> = (0..n).map(|i| vec![(i + 7) % period]).collect();
        let l = IndirectLoop::new(period, a, rhs, vec![vec![0.25]; n]).unwrap();
        let plan = Planner::new().plan(&pool(), &l).unwrap();
        assert_eq!(
            plan.variant(),
            PlanVariant::Blocked { block_size: 512 },
            "{plan}"
        );
    }

    #[test]
    fn huge_data_space_selects_blocked_for_injective_loops() {
        // §2.3 memory rule: an injective scatter over a data space 8x the
        // iteration space crosses BLOCKED_DATA_SPACE_FACTOR and is
        // strip-mined; the same structure over a denser data space keeps
        // the flat inspected doacross.
        let build = |spread: usize| {
            let n = 4_096usize;
            let data_len = n * spread;
            // Decreasing strided lhs: injective, non-linear (stride < 0).
            let a: Vec<usize> = (0..n).map(|i| (n - 1 - i) * spread).collect();
            // Reads hit elements no iteration writes (3 mod spread): doall.
            let rhs: Vec<Vec<usize>> = (0..n)
                .map(|i| vec![i * spread + 3, ((i + 9) % n) * spread + 3])
                .collect();
            let coeff = vec![vec![0.5, 0.25]; n];
            IndirectLoop::new(data_len, a, rhs, coeff).unwrap()
        };

        let at_threshold = build(BLOCKED_DATA_SPACE_FACTOR);
        let plan = Planner::new().plan(&pool(), &at_threshold).unwrap();
        assert!(
            matches!(plan.variant(), PlanVariant::Blocked { .. }),
            "{plan}"
        );
        assert!(
            plan.costs().blocked.unwrap() < plan.costs().sequential,
            "{:?}",
            plan.costs()
        );

        let below_threshold = build(BLOCKED_DATA_SPACE_FACTOR / 2);
        let plan = Planner::new().plan(&pool(), &below_threshold).unwrap();
        assert_eq!(plan.variant(), PlanVariant::Doacross, "{plan}");
        assert!(
            plan.costs().blocked.is_none(),
            "rule not engaged below the ratio: {:?}",
            plan.costs()
        );
    }

    #[test]
    fn blocked_rule_never_overrides_sequential() {
        // A serial chain across a huge data space: no parallel variant is
        // profitable, so the memory rule must not strip-mine it.
        let n = 64usize;
        let spread = 16usize;
        let a: Vec<usize> = (0..n).map(|i| i * spread).collect();
        let rhs: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                if i == 0 {
                    vec![]
                } else {
                    vec![(i - 1) * spread]
                }
            })
            .collect();
        let coeff: Vec<Vec<f64>> = rhs.iter().map(|r| vec![1.0; r.len()]).collect();
        let l = IndirectLoop::new(n * spread, a, rhs, coeff).unwrap();
        let plan = Planner::new().plan(&pool(), &l).unwrap();
        assert_eq!(plan.variant(), PlanVariant::Sequential, "{plan}");
    }

    #[test]
    fn non_injective_adjacent_duplicates_select_sequential() {
        let l =
            IndirectLoop::new(2, vec![0, 0], vec![vec![], vec![]], vec![vec![], vec![]]).unwrap();
        let plan = Planner::new().plan(&pool(), &l).unwrap();
        assert_eq!(plan.variant(), PlanVariant::Sequential);
        assert_eq!(plan.census().min_duplicate_write_gap, Some(1));
    }

    #[test]
    fn out_of_bounds_patterns_are_rejected() {
        // `injective: true` → classified path; `false` → duplicate lhs, the
        // non-injective early path. Both must reject out-of-bounds terms.
        struct Lying {
            injective: bool,
        }
        impl AccessPattern for Lying {
            fn iterations(&self) -> usize {
                2
            }
            fn data_len(&self) -> usize {
                2
            }
            fn lhs(&self, i: usize) -> usize {
                if self.injective {
                    i
                } else {
                    0
                }
            }
            fn terms(&self, _: usize) -> usize {
                1
            }
            fn term_element(&self, _: usize, _: usize) -> usize {
                7
            }
        }
        for injective in [true, false] {
            let err = Planner::new()
                .plan(&pool(), &Lying { injective })
                .unwrap_err();
            assert!(
                matches!(err, DoacrossError::SubscriptOutOfBounds { element: 7, .. }),
                "injective={injective}: {err:?}"
            );
        }
    }

    #[test]
    fn empty_loop_plans_sequential() {
        let l = IndirectLoop::new(0, vec![], vec![], vec![]).unwrap();
        let plan = Planner::new().plan(&pool(), &l).unwrap();
        assert_eq!(plan.variant(), PlanVariant::Sequential);
    }
}
