//! [`ExecutorPool`]: checkout pools of [`PlanExecutor`] scratch, keyed by
//! sub-pool index.
//!
//! The engine's multi-pool scheduler routes each solve to one of N worker
//! sub-pools. Scratch executors are per-variant `&mut` state (writer maps,
//! shadow arrays, windowed block scratch) that grows to the largest
//! structure seen — exactly the reuse economics the paper's preprocessing
//! amortization depends on. Keeping one checkout stack *per sub-pool*
//! preserves those economics under multi-tenancy: tenants routed to
//! different sub-pools stop churning each other's scratch, and a tenant
//! that keeps landing on the same sub-pool keeps finding scratch sized for
//! its structures.

use crate::runtime::PlanExecutor;
use doacross_core::DoacrossConfig;
use parking_lot::Mutex;

/// Per-sub-pool stacks of reusable [`PlanExecutor`] scratch.
///
/// `checkout(k)` pops from sub-pool `k`'s stack (building a fresh executor
/// when empty — concurrency on one sub-pool can exceed 1 while a previous
/// checkout is still out); `restore(k, executor)` pushes it back. Each
/// stack grows to the peak concurrency its sub-pool ever saw.
#[derive(Debug)]
pub struct ExecutorPool {
    config: DoacrossConfig,
    stacks: Vec<Mutex<Vec<PlanExecutor>>>,
}

impl ExecutorPool {
    /// One empty checkout stack per sub-pool.
    ///
    /// # Panics
    ///
    /// If `pools` is 0.
    pub fn new(config: DoacrossConfig, pools: usize) -> Self {
        assert!(pools >= 1, "ExecutorPool requires at least one sub-pool");
        Self {
            config,
            stacks: (0..pools).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Number of sub-pool stacks.
    pub fn pools(&self) -> usize {
        self.stacks.len()
    }

    /// Checks an executor out of sub-pool `pool`'s stack, building a fresh
    /// one if the stack is empty.
    pub fn checkout(&self, pool: usize) -> PlanExecutor {
        self.stacks[pool]
            .lock()
            .pop()
            .unwrap_or_else(|| PlanExecutor::new(self.config))
    }

    /// Returns `executor` to sub-pool `pool`'s stack for reuse.
    pub fn restore(&self, pool: usize, executor: PlanExecutor) {
        self.stacks[pool].lock().push(executor);
    }

    /// Executors currently resting in sub-pool `pool`'s stack.
    pub fn idle(&self, pool: usize) -> usize {
        self.stacks[pool].lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_restore_reuses_scratch_per_sub_pool() {
        let pool = ExecutorPool::new(DoacrossConfig::default(), 2);
        assert_eq!(pool.pools(), 2);
        assert_eq!(pool.idle(0), 0);
        let a = pool.checkout(0);
        pool.restore(0, a);
        assert_eq!(pool.idle(0), 1);
        assert_eq!(pool.idle(1), 0, "stacks are keyed by sub-pool");
        let _again = pool.checkout(0);
        assert_eq!(pool.idle(0), 0);
    }

    #[test]
    fn empty_stack_builds_a_fresh_executor() {
        let pool = ExecutorPool::new(DoacrossConfig::default(), 1);
        // Two concurrent checkouts from one sub-pool both succeed.
        let a = pool.checkout(0);
        let b = pool.checkout(0);
        pool.restore(0, a);
        pool.restore(0, b);
        assert_eq!(pool.idle(0), 2);
    }
}
