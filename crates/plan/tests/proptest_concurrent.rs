//! Property tests of the sharded cache: for any access sequence, the
//! sharded [`ConcurrentPlanCache`] and the single-owner [`PlanCache`]
//! agree on plan selection — same variant, same census, same hit/miss
//! outcome per access (given no evictions) — and invalidation generations
//! are monotone per key.

use doacross_core::IndirectLoop;
use doacross_par::ThreadPool;
use doacross_plan::{ConcurrentPlanCache, PatternFingerprint, PlanCache, Planner};
use proptest::prelude::*;

/// Distinct injective structures indexable by a small id. Mixes doall
/// scatters, chains, and mixed-dependence shapes so variant selection is
/// exercised, not just cache plumbing.
fn structure(id: usize) -> IndirectLoop {
    let n = 8 + 4 * id;
    match id % 3 {
        // Reverse scatter, no reads: doall.
        0 => {
            let a: Vec<usize> = (0..n).map(|i| n - 1 - i).collect();
            IndirectLoop::new(n, a, vec![vec![]; n], vec![vec![]; n]).unwrap()
        }
        // Distance-1 chain.
        1 => {
            let a: Vec<usize> = (1..=n).collect();
            let rhs: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
            IndirectLoop::new(n + 1, a, rhs, vec![vec![0.5]; n]).unwrap()
        }
        // Identity writes with mixed-distance reads.
        _ => {
            let a: Vec<usize> = (0..n).collect();
            let rhs: Vec<Vec<usize>> = (0..n)
                .map(|i| if i >= 3 { vec![i - 3] } else { vec![] })
                .collect();
            let coeff: Vec<Vec<f64>> = rhs.iter().map(|r| vec![0.25; r.len()]).collect();
            IndirectLoop::new(n, a, rhs, coeff).unwrap()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Same access sequence, ample capacity: identical per-access
    /// (variant, hit) outcomes and identical merged traffic counters,
    /// regardless of shard count.
    #[test]
    fn sharded_and_unsharded_caches_agree_on_plan_selection(
        shards in 1usize..=8,
        accesses in proptest::collection::vec(0usize..6, 1..40),
    ) {
        let pool = ThreadPool::new(2);
        let planner = Planner::new();
        let distinct = 6usize;
        let mut unsharded = PlanCache::new(distinct);
        // The shard count is rounded up to a power of two, so size against
        // the *rounded* count: every shard then holds ≥ `distinct` plans
        // and the sharded cache never evicts, however the keys distribute.
        let sharded =
            ConcurrentPlanCache::new(distinct * shards.next_power_of_two(), shards);

        for &id in &accesses {
            let l = structure(id);
            let key = PatternFingerprint::of(&l);
            let (plan_u, hit_u) = unsharded
                .get_or_build(&key, || planner.plan(&pool, &l))
                .expect("plannable");
            let (plan_s, _, _, hit_s) = sharded
                .get_or_build(&key, |_| true, || planner.plan(&pool, &l))
                .expect("plannable");
            prop_assert_eq!(hit_u, hit_s, "hit/miss outcome agrees");
            prop_assert_eq!(plan_u.variant(), plan_s.variant(), "same selection");
            prop_assert_eq!(plan_u.census(), plan_s.census(), "same analysis");
            prop_assert_eq!(plan_u.fingerprint(), plan_s.fingerprint());
        }
        prop_assert_eq!(unsharded.stats(), sharded.stats(), "merged ledgers agree");
        prop_assert_eq!(unsharded.len(), sharded.len());
    }

    /// Generations: 0 until first invalidation, +1 per invalidation, and
    /// independent across keys.
    #[test]
    fn invalidation_generations_are_monotone_and_per_key(
        invalidations in proptest::collection::vec(0usize..4, 0..12),
    ) {
        let cache = ConcurrentPlanCache::new(8, 4);
        let keys: Vec<PatternFingerprint> =
            (0..4).map(|id| PatternFingerprint::of(&structure(id))).collect();
        let mut expected = [0u64; 4];
        for &k in &invalidations {
            cache.invalidate(&keys[k]);
            expected[k] += 1;
            for (i, key) in keys.iter().enumerate() {
                prop_assert_eq!(cache.generation_of(key), expected[i], "key {}", i);
            }
        }
    }
}
