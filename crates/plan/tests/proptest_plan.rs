//! Property-based tests of the plan subsystem: for *any* runtime-generated
//! pattern, a planned run — cold or cached — is bit-identical to the
//! sequential oracle, fingerprints are stable and collision-free across
//! generated structures, and the cache actually serves hits.

// The deprecated single-owner entry points stay covered for as long as the
// shims exist.
#![allow(deprecated)]

use doacross_core::{seq::run_sequential, IndirectLoop, PlanProvenance, WavefrontDoacross};
use doacross_par::ThreadPool;
use doacross_plan::{PatternFingerprint, PlanCache, PlanCensus, PlannedDoacross, Planner};
use proptest::prelude::*;
use std::sync::Arc;

/// An arbitrary valid loop: injective lhs (a permutation prefix of the
/// data space), arbitrary rhs references, deterministic coefficients.
fn arb_loop(max_n: usize) -> impl Strategy<Value = (IndirectLoop, Vec<f64>)> {
    (1..=max_n)
        .prop_flat_map(move |n| {
            let data_len = 2 * n + 1;
            let lhs = Just((0..data_len).collect::<Vec<usize>>())
                .prop_shuffle()
                .prop_map(move |perm| perm[..n].to_vec());
            let rhs =
                proptest::collection::vec(proptest::collection::vec(0..data_len, 0..4), n..=n);
            let y0 = proptest::collection::vec(-2.0..2.0f64, data_len..=data_len);
            (lhs, rhs, y0, Just(data_len))
        })
        .prop_map(|(lhs, rhs, y0, data_len)| {
            let coeff: Vec<Vec<f64>> = rhs
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    r.iter()
                        .enumerate()
                        .map(|(j, _)| 0.25 + ((i + j) % 3) as f64 * 0.125)
                        .collect()
                })
                .collect();
            let loop_ = IndirectLoop::new(data_len, lhs, rhs, coeff).expect("valid");
            (loop_, y0)
        })
}

/// Like [`arb_loop`] but with a possibly non-injective lhs, exercising the
/// blocked/sequential fallback paths.
fn arb_any_loop(max_n: usize) -> impl Strategy<Value = (IndirectLoop, Vec<f64>)> {
    (1..=max_n)
        .prop_flat_map(move |n| {
            let data_len = n + 3;
            let lhs = proptest::collection::vec(0..data_len, n..=n);
            let rhs =
                proptest::collection::vec(proptest::collection::vec(0..data_len, 0..3), n..=n);
            let y0 = proptest::collection::vec(-1.0..1.0f64, data_len..=data_len);
            (lhs, rhs, y0, Just(data_len))
        })
        .prop_map(|(lhs, rhs, y0, data_len)| {
            let coeff: Vec<Vec<f64>> = rhs.iter().map(|r| vec![0.375; r.len()]).collect();
            let loop_ = IndirectLoop::new(data_len, lhs, rhs, coeff).expect("valid");
            (loop_, y0)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn planned_runs_cold_and_cached_match_sequential((loop_, y0) in arb_loop(40)) {
        let pool = ThreadPool::new(3);
        let mut expect = y0.clone();
        run_sequential(&loop_, &mut expect);

        let mut rt = PlannedDoacross::new(4);
        let mut y_cold = y0.clone();
        let cold = rt.run(&pool, &loop_, &mut y_cold).expect("injective lhs");
        prop_assert_eq!(cold.provenance, PlanProvenance::PlanCold);
        prop_assert_eq!(&y_cold, &expect);

        let mut y_hot = y0.clone();
        let hot = rt.run(&pool, &loop_, &mut y_hot).expect("cached");
        prop_assert_eq!(hot.provenance, PlanProvenance::PlanCached);
        prop_assert_eq!(hot.inspector, std::time::Duration::ZERO);
        prop_assert_eq!(&y_hot, &expect, "cached run must be bit-identical");
        prop_assert_eq!(&y_hot, &y_cold);
    }

    #[test]
    fn any_pattern_gets_a_correct_plan((loop_, y0) in arb_any_loop(32)) {
        // Non-injective patterns included: the planner must fall back to a
        // legal variant, never error, and stay bit-identical to the oracle.
        let pool = ThreadPool::new(3);
        let mut expect = y0.clone();
        run_sequential(&loop_, &mut expect);
        let mut rt = PlannedDoacross::new(4);
        for _ in 0..2 {
            let mut y = y0.clone();
            rt.run(&pool, &loop_, &mut y).expect("every pattern is plannable");
            prop_assert_eq!(&y, &expect);
        }
    }

    #[test]
    fn wavefront_execution_matches_the_sequential_oracle((loop_, y0) in arb_loop(40)) {
        // The level-scheduled executor is bit-identical to the sequential
        // loop on ANY injective pattern — true deps, antideps, intra
        // references, unwritten reads, any level shape — at any worker
        // count, with zero busy-wait polls by construction.
        let (census, schedule) = PlanCensus::of_with_schedule(&loop_);
        let schedule = schedule.expect("arb_loop lhs is injective and in bounds");
        prop_assert_eq!(schedule.level_count(), census.critical_path);
        prop_assert_eq!(schedule.iterations(), census.iterations);

        let mut expect = y0.clone();
        run_sequential(&loop_, &mut expect);
        for workers in [1usize, 3] {
            use doacross_core::AccessPattern;
            let pool = ThreadPool::new(workers);
            let mut rt = WavefrontDoacross::new(loop_.data_len());
            let mut y = y0.clone();
            let stats = rt.run(&pool, &loop_, &mut y, &schedule).expect("valid");
            prop_assert_eq!(&y, &expect, "workers = {}", workers);
            prop_assert_eq!(stats.wait_polls, 0);
            prop_assert_eq!(stats.stalls, 0);
            prop_assert_eq!(stats.deps.total(), census.total_terms);
        }
    }

    #[test]
    fn fingerprints_are_stable_and_value_blind((loop_, _y0) in arb_loop(32)) {
        let a = PatternFingerprint::of(&loop_);
        let b = PatternFingerprint::of(&loop_);
        prop_assert_eq!(a, b, "same pattern, same fingerprint");
        prop_assert_eq!(a.iterations(), loop_.lhs_array().len());
    }

    #[test]
    fn distinct_structures_get_distinct_fingerprints(
        (loop_a, _) in arb_loop(24),
        (loop_b, _) in arb_loop(24),
    ) {
        use doacross_core::AccessPattern;
        let same_structure = loop_a.iterations() == loop_b.iterations()
            && loop_a.data_len() == loop_b.data_len()
            && (0..loop_a.iterations()).all(|i| {
                loop_a.lhs(i) == loop_b.lhs(i)
                    && loop_a.terms(i) == loop_b.terms(i)
                    && (0..loop_a.terms(i))
                        .all(|j| loop_a.term_element(i, j) == loop_b.term_element(i, j))
            });
        prop_assert_eq!(
            PatternFingerprint::of(&loop_a) == PatternFingerprint::of(&loop_b),
            same_structure
        );
    }

    #[test]
    fn cache_eviction_keeps_lru_invariants(capacity in 1usize..6, touches in 8usize..40) {
        let pool = ThreadPool::new(2);
        let planner = Planner::new();
        let mut cache = PlanCache::new(capacity);
        // A rotating working set twice the capacity: forced evictions.
        let distinct = capacity * 2;
        let loops: Vec<IndirectLoop> = (1..=distinct)
            .map(|n| {
                let a: Vec<usize> = (0..n).collect();
                IndirectLoop::new(n, a, vec![vec![]; n], vec![vec![]; n]).unwrap()
            })
            .collect();
        for t in 0..touches {
            let l = &loops[t % distinct];
            let key = PatternFingerprint::of(l);
            let (plan, _hit) = cache
                .get_or_build(&key, || planner.plan(&pool, l))
                .expect("plannable");
            prop_assert_eq!(plan.fingerprint(), &key);
            prop_assert!(cache.len() <= capacity, "capacity respected");
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, touches as u64);
        prop_assert_eq!(s.insertions, s.misses);
        prop_assert!(s.evictions <= s.insertions);
        // Recency list and map agree.
        prop_assert_eq!(cache.keys_by_recency().len(), cache.len());
    }

    #[test]
    fn plans_are_shareable_snapshots((loop_, y0) in arb_loop(24)) {
        // An Arc'd plan keeps working after the cache dropped it.
        let pool = ThreadPool::new(2);
        let planner = Planner::new();
        let mut cache = PlanCache::new(1);
        let key = PatternFingerprint::of(&loop_);
        let (plan, _) = cache
            .get_or_build(&key, || planner.plan(&pool, &loop_))
            .expect("plannable");
        let held: Arc<_> = Arc::clone(&plan);
        cache.clear();
        let mut rt = PlannedDoacross::new(0);
        let mut y = y0.clone();
        let mut expect = y0;
        run_sequential(&loop_, &mut expect);
        rt.run_with_plan(&pool, &loop_, &mut y, &held).expect("valid plan");
        prop_assert_eq!(&y, &expect);
    }
}
