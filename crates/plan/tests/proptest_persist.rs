//! Property-based tests of plan persistence: for *any* planner-built plan
//! over a runtime-generated pattern, the binary codec round-trips
//! bit-exactly, a decoded plan executes bit-identically to the sequential
//! oracle, cache snapshots survive serialization with their recency order
//! intact, and arbitrarily corrupted stores fail with a typed error — a
//! panic or a silently wrong plan is a test failure.

use doacross_core::{seq::run_sequential, DoacrossConfig, IndirectLoop};
use doacross_par::ThreadPool;
use doacross_plan::persist::{decode_plan, encode_plan};
use doacross_plan::{
    PatternFingerprint, PersistError, PlanCache, PlanExecutor, PlanStore, Planner,
};
use proptest::prelude::*;
use std::sync::Arc;

/// An arbitrary valid loop — injective or not, so every planner fallback
/// (sequential, linear, doacross, reordered, blocked) is reachable.
fn arb_loop(max_n: usize) -> impl Strategy<Value = (IndirectLoop, Vec<f64>)> {
    (1..=max_n)
        .prop_flat_map(move |n| {
            let data_len = n + 4;
            let lhs = proptest::collection::vec(0..data_len, n..=n);
            let rhs =
                proptest::collection::vec(proptest::collection::vec(0..data_len, 0..3), n..=n);
            let y0 = proptest::collection::vec(-1.0..1.0f64, data_len..=data_len);
            (lhs, rhs, y0, Just(data_len))
        })
        .prop_map(|(lhs, rhs, y0, data_len)| {
            let coeff: Vec<Vec<f64>> = rhs
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    r.iter()
                        .enumerate()
                        .map(|(j, _)| 0.25 + ((i + 2 * j) % 4) as f64 * 0.125)
                        .collect()
                })
                .collect();
            let loop_ = IndirectLoop::new(data_len, lhs, rhs, coeff).expect("valid");
            (loop_, y0)
        })
}

/// A randomized deep dependence grid (`doacross_plan::testgrid`'s shared
/// shape): `depth` levels of `width` mutually independent iterations,
/// each reading 3 elements written one level earlier at randomized
/// column offsets — the wavefront-friendly structure, so the planner's
/// own selection produces `Wavefront` records to round-trip (no forcing
/// anywhere). Width is a multiple of the test's 4-worker pool and large
/// enough that the flag bill strictly exceeds the barrier bill for every
/// parameter combination.
fn arb_deep_grid() -> impl Strategy<Value = (IndirectLoop, Vec<f64>)> {
    (6usize..=10, 8usize..=16, 1usize..=13)
        .prop_flat_map(|(quads, depth, stride)| {
            let n = 4 * quads * depth;
            let y0 = proptest::collection::vec(-1.0..1.0f64, n..=n);
            (Just((4 * quads, depth, stride)), y0)
        })
        .prop_map(|((width, depth, stride), y0)| {
            (
                doacross_plan::testgrid::deep_grid(width, depth, 3, stride),
                y0,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn planner_built_plans_round_trip_bit_exactly((loop_, _y0) in arb_loop(40)) {
        let pool = ThreadPool::new(3);
        let plan = Planner::new().plan(&pool, &loop_).expect("in-bounds");
        let bytes = encode_plan(&plan);
        let decoded = decode_plan(&bytes).expect("own encoding decodes");
        prop_assert_eq!(encode_plan(&decoded), bytes, "bit-exact round trip");
        prop_assert_eq!(decoded.variant(), plan.variant());
        prop_assert_eq!(decoded.fingerprint(), plan.fingerprint());
    }

    #[test]
    fn decoded_plans_execute_like_the_original((loop_, y0) in arb_loop(32)) {
        let pool = ThreadPool::new(3);
        let plan = Planner::new().plan(&pool, &loop_).expect("in-bounds");
        let decoded = decode_plan(&encode_plan(&plan)).expect("decodes");

        let mut expect = y0.clone();
        run_sequential(&loop_, &mut expect);
        let mut y = y0.clone();
        PlanExecutor::new(DoacrossConfig::default())
            .execute(&pool, &loop_, &mut y, &decoded)
            .expect("a revalidated plan executes");
        prop_assert_eq!(&y, &expect, "deserialized plan is bit-identical");
    }

    #[test]
    fn wavefront_records_round_trip_and_execute((loop_, y0) in arb_deep_grid()) {
        // Deep grids make the planner select the wavefront on its own; the
        // v2 record (level offsets, order, term offsets, operand classes)
        // must round-trip bit-exactly and the decoded plan must execute
        // bit-identically to the oracle with zero wait polls.
        let pool = ThreadPool::new(4);
        let plan = Planner::new().plan(&pool, &loop_).expect("in-bounds");
        prop_assert_eq!(
            plan.variant(),
            doacross_plan::PlanVariant::Wavefront,
            "{:?}", plan.costs()
        );
        let bytes = encode_plan(&plan);
        let decoded = decode_plan(&bytes).expect("own encoding decodes");
        prop_assert_eq!(encode_plan(&decoded), bytes, "bit-exact round trip");
        prop_assert_eq!(decoded.level_schedule(), plan.level_schedule());

        let mut expect = y0.clone();
        run_sequential(&loop_, &mut expect);
        let mut y = y0.clone();
        let stats = PlanExecutor::new(DoacrossConfig::default())
            .execute(&pool, &loop_, &mut y, &decoded)
            .expect("a revalidated plan executes");
        prop_assert_eq!(&y, &expect, "deserialized wavefront plan is bit-identical");
        prop_assert_eq!(stats.wait_polls, 0, "no busy waiting through the persisted path");
    }

    #[test]
    fn snapshots_survive_serialization_with_recency(
        loops in proptest::collection::vec(arb_loop(24), 1..6),
        touch in 0usize..6,
    ) {
        let pool = ThreadPool::new(2);
        let planner = Planner::new();
        let mut cache = PlanCache::new(8);
        for (l, _) in &loops {
            let key = PatternFingerprint::of(l);
            cache
                .get_or_build(&key, || planner.plan(&pool, l))
                .expect("in-bounds");
        }
        // Touch one structure so the recency order is not just insertion
        // order.
        let (l, _) = &loops[touch % loops.len()];
        cache.get(&PatternFingerprint::of(l));

        let bytes = cache.snapshot().to_bytes();
        let store = PlanStore::from_bytes(&bytes).expect("own bytes parse");
        let mut warmed = PlanCache::new(8);
        warmed.warm_from(&store);
        prop_assert_eq!(warmed.keys_by_recency(), cache.keys_by_recency());
        // Restores are insertions, never traffic: the fresh cache still
        // reports a 0.0 (not NaN) hit rate.
        prop_assert_eq!(warmed.stats().hit_rate(), 0.0);
        prop_assert_eq!(warmed.stats().hits + warmed.stats().misses, 0);
    }

    #[test]
    fn corrupted_stores_fail_typed_never_panic(
        (loop_, _y0) in arb_loop(24),
        flip_bit in 0usize..1_000_000,
        cut in 0usize..1_000_000,
    ) {
        let pool = ThreadPool::new(2);
        let plan = Planner::new().plan(&pool, &loop_).expect("in-bounds");
        let mut cache = PlanCache::new(2);
        cache.insert(Arc::new(plan));
        let bytes = cache.snapshot().to_bytes();

        // Any single-bit flip must surface as a typed error (FNV absorbs
        // every byte injectively, so no flip can slip past the checksum).
        let mut flipped = bytes.clone();
        let bit = flip_bit % (bytes.len() * 8);
        flipped[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(PlanStore::from_bytes(&flipped).is_err());

        // Any truncation must surface as a typed error.
        let cut = cut % bytes.len();
        let err = PlanStore::from_bytes(&bytes[..cut]).unwrap_err();
        prop_assert!(matches!(
            err,
            PersistError::Truncated { .. }
                | PersistError::ChecksumMismatch { .. }
                | PersistError::BadMagic
                | PersistError::UnsupportedVersion { .. }
        ), "{:?}", err);

        // The pristine bytes still parse.
        prop_assert!(PlanStore::from_bytes(&bytes).is_ok());
    }
}
