//! Property tests of the observability layer's concurrency and bounding
//! invariants: counters never lose increments under concurrent emitters,
//! histogram totals reconcile with their counts, and the bounded rings
//! (trace, flight) wrap without tearing records.

use doacross_obs::{
    FpId, Obs, ObsConfig, ObsProvenance, ObsVariant, SolveOutcome, SolveRecord, TraceEvent,
};
use proptest::prelude::*;
use std::sync::Arc;

/// A solve record whose every field is a function of `seed` — any torn or
/// corrupted record in a snapshot breaks at least one of the derivations
/// that [`assert_untorn`] re-checks.
fn seeded_record(seed: u64, variant: ObsVariant) -> SolveRecord {
    SolveRecord {
        fp: FpId(seed, !seed),
        variant,
        provenance: ObsProvenance::PlanCached,
        generation: seed % 5,
        total_ns: seed.wrapping_mul(3).wrapping_add(1),
        inspector_ns: 0,
        executor_ns: seed.wrapping_mul(3),
        post_ns: 1,
        iterations: seed % 100,
        workers: 2,
        stalls: seed % 7,
        wait_polls: seed % 11,
        barrier_crossings: 0,
        pool: 0,
        outcome: SolveOutcome::Ok,
    }
}

fn assert_untorn(r: &SolveRecord) {
    let seed = r.fp.0;
    assert_eq!(r.fp.1, !seed, "fp halves disagree: torn record");
    assert_eq!(r.total_ns, seed.wrapping_mul(3).wrapping_add(1));
    assert_eq!(r.executor_ns, seed.wrapping_mul(3));
    assert_eq!(r.generation, seed % 5);
    assert_eq!(r.stalls, seed % 7);
    assert_eq!(r.wait_polls, seed % 11);
}

/// The single sample value of an unlabeled counter in a Prometheus text
/// document.
fn scrape_counter(text: &str, name: &str) -> u64 {
    let prefix = format!("{name} ");
    text.lines()
        .find(|l| l.starts_with(&prefix))
        .unwrap_or_else(|| panic!("{name} not in scrape"))
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Concurrent emitters never lose a counter increment: after all
    /// threads join, the per-variant histogram counts and the scraped
    /// poll/stall totals equal what was emitted, exactly.
    #[test]
    fn concurrent_recorders_lose_no_increments(
        threads in 2usize..=4,
        per_thread in 1usize..=40,
    ) {
        let obs = Obs::new(ObsConfig::default());
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let obs = obs.clone();
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let seed = (t * per_thread + i) as u64;
                        let variant = ObsVariant::ALL[t % ObsVariant::ALL.len()];
                        obs.emit(TraceEvent::SolveFinished {
                            record: seeded_record(seed, variant),
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = obs
            .solve_latency()
            .iter()
            .map(|l| l.histogram.count)
            .sum();
        prop_assert_eq!(total, (threads * per_thread) as u64);
        let expected_polls: u64 = (0..(threads * per_thread) as u64).map(|s| s % 11).sum();
        let expected_stalls: u64 = (0..(threads * per_thread) as u64).map(|s| s % 7).sum();
        let mut text = String::new();
        obs.render_prometheus(&mut text);
        prop_assert_eq!(scrape_counter(&text, "doacross_wait_polls_total"), expected_polls);
        prop_assert_eq!(scrape_counter(&text, "doacross_stalls_total"), expected_stalls);
        prop_assert_eq!(
            scrape_counter(&text, "doacross_trace_events_total"),
            (threads * per_thread) as u64
        );
    }

    /// For any latency sequence, every variant histogram reconciles:
    /// bucket counts sum to `count`, `sum_ns` is the exact (wrapping)
    /// total, and the rendered `+Inf` cumulative bucket equals `_count`.
    #[test]
    fn histogram_totals_reconcile_with_counts(
        latencies in proptest::collection::vec(0u64..1_000_000_000, 1..120),
    ) {
        let obs = Obs::new(ObsConfig::default());
        for (i, &ns) in latencies.iter().enumerate() {
            let mut record = seeded_record(i as u64, ObsVariant::Doacross);
            record.total_ns = ns;
            obs.emit(TraceEvent::SolveFinished { record });
        }
        let lat = obs.solve_latency();
        prop_assert_eq!(lat.len(), 1);
        let h = &lat[0].histogram;
        prop_assert_eq!(h.count, latencies.len() as u64);
        prop_assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
        let expected_sum = latencies
            .iter()
            .fold(0u64, |acc, &ns| acc.wrapping_add(ns));
        prop_assert_eq!(h.sum_ns, expected_sum);
        let mut text = String::new();
        obs.render_prometheus(&mut text);
        let inf_line = format!(
            "doacross_solve_ns_bucket{{variant=\"doacross\",le=\"+Inf\"}} {}",
            h.count
        );
        prop_assert!(text.contains(&inf_line), "cumulative +Inf != count");
    }

    /// The flight recorder keeps exactly the newest `capacity` records in
    /// order, each internally consistent (untorn), for any push count.
    #[test]
    fn flight_ring_wraps_without_tearing(
        capacity in 1usize..=32,
        pushes in 0usize..=100,
    ) {
        let obs = Obs::new(ObsConfig {
            flight_capacity: capacity,
            ..ObsConfig::default()
        });
        for seed in 0..pushes as u64 {
            obs.emit(TraceEvent::SolveFinished {
                record: seeded_record(seed, ObsVariant::Linear),
            });
        }
        let solves = obs.recent_solves();
        prop_assert_eq!(solves.len(), pushes.min(capacity));
        let first = pushes.saturating_sub(capacity) as u64;
        for (i, r) in solves.iter().enumerate() {
            assert_untorn(r);
            prop_assert_eq!(r.fp.0, first + i as u64, "not the newest records in order");
        }
    }

    /// Concurrent producers into a small sharded trace ring: the snapshot
    /// is seq-ordered with no duplicates, every retained record is untorn,
    /// and pushed − dropped = retained, exactly.
    #[test]
    fn trace_ring_wraps_without_tearing_under_concurrency(
        trace_capacity in 4usize..=64,
        threads in 2usize..=4,
        per_thread in 1usize..=50,
    ) {
        let obs = Obs::new(ObsConfig {
            trace_capacity,
            trace_shards: 4,
            ..ObsConfig::default()
        });
        let obs = Arc::new(obs);
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let obs = Arc::clone(&obs);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let seed = (t * per_thread + i) as u64;
                        obs.emit(TraceEvent::SolveFinished {
                            record: seeded_record(seed, ObsVariant::Wavefront),
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let events = obs.trace_events();
        let emitted = (threads * per_thread) as u64;
        let mut text = String::new();
        obs.render_prometheus(&mut text);
        let pushed = scrape_counter(&text, "doacross_trace_events_total");
        let dropped = scrape_counter(&text, "doacross_trace_dropped_total");
        prop_assert_eq!(pushed, emitted);
        prop_assert_eq!(events.len() as u64, pushed - dropped);
        let mut last_seq = None;
        for e in &events {
            if let Some(prev) = last_seq {
                prop_assert!(e.seq > prev, "snapshot not strictly seq-ordered");
            }
            last_seq = Some(e.seq);
            match &e.event {
                TraceEvent::SolveFinished { record } => assert_untorn(record),
                other => prop_assert!(false, "unexpected event {:?}", other),
            }
        }
    }
}
