//! Deep per-solve profiling: per-worker span arenas, wait attribution,
//! realized-critical-path reconstruction, and exportable traces.
//!
//! The paper's argument is a price comparison — preprocessed
//! synchronization overhead versus sequential execution — and the rest of
//! the observability layer reports that price only in aggregate
//! (`RunStats` totals, solve-latency histograms). This module answers
//! *where inside a solve* the time went: which worker stalled on which
//! ready flag, which wavefront level ate the barrier wait, and what the
//! realized critical path was, so the measured schedule can be compared
//! against the plan's priced cost variant by variant.
//!
//! The discipline matches the rest of the crate:
//!
//! - **Off by default, one branch when off.** Execution layers thread an
//!   `Option<&ProfArena>`; `None` costs one predicted-not-taken branch per
//!   would-be span. No clock is read, nothing is allocated.
//! - **Bounded everywhere.** Arenas drop oldest spans past a per-worker
//!   cap (counting drops), the profile ring keeps the last N solves, and
//!   per-level histogram labels are capped with an `"other"` overflow
//!   bucket, exactly like the pool/fingerprint series.
//! - **Workers touch only their own cache-padded cell.** A span deposit is
//!   an uncontended mutex on a line no other worker writes.
//!
//! Exporters: [`Profiler::chrome_trace`] renders retained profiles as
//! Chrome trace-event JSON (loads in Perfetto / `about://tracing`; one
//! track per worker), validated by [`validate_chrome_trace`]; and
//! [`StreamingSink`] fans every [`TraceEvent`] — profile summaries
//! included — to any `io::Write` as NDJSON.

use crate::metrics::{Histogram, LATENCY_BUCKET_BOUNDS_NS};
use crate::{render, FpId, HistogramSnapshot, ObsSink, ObsVariant, TraceEvent};
use std::collections::{BTreeMap, VecDeque};
use std::io::Write as IoWrite;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// What a [`ProfSpan`] measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Executing claimed iterations (flag waits nest inside on the
    /// flag-based variants; wavefront work spans exclude barrier time).
    Work,
    /// Busy-waiting on a ready flag for a true dependency (one span per
    /// stall event; `aux` carries the poll count).
    FlagWait,
    /// Waiting at a wavefront level barrier (one span per crossing, the
    /// leader's near-zero arrival included).
    BarrierWait,
    /// Waiting for a free scheduler sub-pool before the solve ran
    /// (recorded on the dispatcher track, not a worker's).
    DispatchWait,
}

impl SpanKind {
    /// All kinds, in [`SpanKind::index`] order.
    pub const ALL: [SpanKind; 4] = [
        SpanKind::Work,
        SpanKind::FlagWait,
        SpanKind::BarrierWait,
        SpanKind::DispatchWait,
    ];

    /// Dense index (0..4) for per-kind accounting arrays.
    pub fn index(self) -> usize {
        match self {
            SpanKind::Work => 0,
            SpanKind::FlagWait => 1,
            SpanKind::BarrierWait => 2,
            SpanKind::DispatchWait => 3,
        }
    }

    /// The `kind` label / Chrome-trace event name.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Work => "work",
            SpanKind::FlagWait => "flag_wait",
            SpanKind::BarrierWait => "barrier_wait",
            SpanKind::DispatchWait => "dispatch_wait",
        }
    }
}

/// `level` value for spans outside any wavefront level.
pub const NO_LEVEL: u32 = u32::MAX;

/// One timed interval on one worker's timeline. Timestamps are
/// nanoseconds since the owning arena's epoch (the engine build), so
/// every span in a process shares one clock base.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfSpan {
    /// Worker track the span belongs to (the dispatcher track is one past
    /// the last worker).
    pub worker: u32,
    /// What the interval measures.
    pub kind: SpanKind,
    /// Wavefront level, or [`NO_LEVEL`].
    pub level: u32,
    /// Start offset, nanoseconds since the arena epoch (re-based so the
    /// solve's earliest span starts at 0 once harvested).
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Kind-specific payload: iterations executed for [`SpanKind::Work`],
    /// flag polls for [`SpanKind::FlagWait`], 0 otherwise.
    pub aux: u64,
}

/// Capacity knobs for the profiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfConfig {
    /// Profiles retained in the ring (drop-oldest).
    pub ring: usize,
    /// Span cap per worker per solve; past it the oldest spans of that
    /// worker are dropped (and counted).
    pub per_worker_spans: usize,
    /// Wavefront levels with their own `level` label in the barrier-wait
    /// histograms; deeper levels aggregate under `level="other"`. Capped
    /// at [`MAX_LEVEL_SERIES`].
    pub max_levels: usize,
}

impl Default for ProfConfig {
    fn default() -> Self {
        Self {
            ring: 32,
            per_worker_spans: 4096,
            max_levels: MAX_LEVEL_SERIES,
        }
    }
}

/// Hard bound on per-level histogram series (and the static label table).
pub const MAX_LEVEL_SERIES: usize = 16;

/// Static `level` label values (indices at or past the configured
/// `max_levels` render as `other`).
const LEVEL_LABELS: [&str; MAX_LEVEL_SERIES] = [
    "0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15",
];

/// A worker's span store: padded so neighbouring workers never share a
/// cache line, locked so the dispatcher can harvest after the pool joins.
/// Workers lock only their own cell, so deposits are uncontended.
#[repr(align(128))]
struct ArenaCell {
    spans: Mutex<VecDeque<ProfSpan>>,
}

/// A per-solve span arena: one cell per pool worker plus a dispatcher
/// cell. The engine resets it before a profiled solve, the execution
/// layers deposit into it, and the profiler harvests it afterwards.
pub struct ProfArena {
    epoch: Instant,
    /// Worker cells `0..workers`, then one dispatcher cell.
    cells: Vec<ArenaCell>,
    cap_per_worker: usize,
    dropped: AtomicU64,
}

impl ProfArena {
    /// An arena for `workers` pool workers (plus the dispatcher track),
    /// each bounded to `cap_per_worker` spans.
    pub fn new(workers: usize, cap_per_worker: usize) -> Self {
        let cap = cap_per_worker.max(1);
        let cells = (0..workers.max(1) + 1)
            .map(|_| ArenaCell {
                spans: Mutex::new(VecDeque::with_capacity(cap.min(1024))),
            })
            .collect();
        Self {
            epoch: Instant::now(),
            cells,
            cap_per_worker: cap,
            dropped: AtomicU64::new(0),
        }
    }

    /// Worker tracks (excluding the dispatcher cell).
    pub fn workers(&self) -> usize {
        self.cells.len() - 1
    }

    /// Nanoseconds since the arena epoch — the clock base every span's
    /// `start_ns` is expressed in.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Deposits a span on `worker`'s track. Out-of-range workers (a pool
    /// grown past the arena) are counted as drops rather than recorded.
    pub fn record(
        &self,
        worker: usize,
        kind: SpanKind,
        level: u32,
        start_ns: u64,
        dur_ns: u64,
        aux: u64,
    ) {
        if worker >= self.workers() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.push(worker, kind, level, start_ns, dur_ns, aux);
    }

    /// Deposits a [`SpanKind::DispatchWait`] span on the dispatcher track.
    pub fn record_dispatch(&self, start_ns: u64, dur_ns: u64) {
        let track = self.workers();
        self.push(track, SpanKind::DispatchWait, NO_LEVEL, start_ns, dur_ns, 0);
    }

    fn push(&self, cell: usize, kind: SpanKind, level: u32, start_ns: u64, dur_ns: u64, aux: u64) {
        let mut spans = match self.cells[cell].spans.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if spans.len() >= self.cap_per_worker {
            spans.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        spans.push_back(ProfSpan {
            worker: cell as u32,
            kind,
            level,
            start_ns,
            dur_ns,
            aux,
        });
    }

    /// Clears every cell (retaining capacity) and the drop counter — the
    /// engine calls this right before a profiled solve starts.
    pub fn reset(&self) {
        for cell in &self.cells {
            let mut spans = match cell.spans.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            spans.clear();
        }
        self.dropped.store(0, Ordering::Relaxed);
    }

    /// Drains every cell into one vector (sorted by worker then start
    /// time) and takes the drop count. Called after the pool has joined,
    /// so no worker is still depositing.
    pub fn take(&self) -> (Vec<ProfSpan>, u64) {
        let mut all = Vec::new();
        for cell in &self.cells {
            let mut spans = match cell.spans.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            all.extend(spans.drain(..));
        }
        all.sort_by_key(|s| (s.worker, s.start_ns));
        (all, self.dropped.swap(0, Ordering::Relaxed))
    }

    /// Spans dropped (bounding) since the last [`ProfArena::take`]/reset.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// A harvested solve: the full span timeline plus the attribution the
/// profiler derived from it.
#[derive(Debug, Clone)]
pub struct SolveProfile {
    /// Profile sequence number (monotone per profiler).
    pub seq: u64,
    /// Fingerprint of the solved structure.
    pub fp: FpId,
    /// Variant that executed.
    pub variant: ObsVariant,
    /// Scheduler sub-pool the solve ran on.
    pub pool: u64,
    /// Worker tracks in the arena the spans came from.
    pub workers: u64,
    /// Wall time of the whole solve (engine-measured).
    pub total_ns: u64,
    /// The plan's priced (predicted) cost for the executed variant, when
    /// the planner priced it.
    pub priced_ns: Option<f64>,
    /// Longest realized per-worker chain of work + barrier waits, plus
    /// the dispatch wait — the measured counterpart of the plan's priced
    /// critical path. (Flag waits nest inside work spans and so are
    /// already inside the chain.)
    pub realized_critical_ns: u64,
    /// Total nanoseconds across workers, by [`SpanKind::index`].
    pub kind_ns: [u64; 4],
    /// Span counts by [`SpanKind::index`].
    pub kind_spans: [u64; 4],
    /// Spans dropped by arena bounding during this solve.
    pub dropped: u64,
    /// Every retained span, re-based so the earliest starts at 0, sorted
    /// by worker then start time.
    pub spans: Vec<ProfSpan>,
}

impl SolveProfile {
    /// Total work time across workers.
    pub fn work_ns(&self) -> u64 {
        self.kind_ns[SpanKind::Work.index()]
    }
    /// Total ready-flag stall time across workers.
    pub fn flag_wait_ns(&self) -> u64 {
        self.kind_ns[SpanKind::FlagWait.index()]
    }
    /// Total barrier wait time across workers.
    pub fn barrier_wait_ns(&self) -> u64 {
        self.kind_ns[SpanKind::BarrierWait.index()]
    }
    /// Time spent waiting for a sub-pool before the solve ran.
    pub fn dispatch_wait_ns(&self) -> u64 {
        self.kind_ns[SpanKind::DispatchWait.index()]
    }
}

/// The attribution summary [`Profiler::harvest`] hands back to the
/// engine — what it forwards to the trace stream and the adaptive layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfileSummary {
    /// See [`SolveProfile::realized_critical_ns`].
    pub realized_critical_ns: u64,
    /// Total work time across workers.
    pub work_ns: u64,
    /// Total ready-flag stall time across workers.
    pub flag_wait_ns: u64,
    /// Total barrier wait time across workers.
    pub barrier_wait_ns: u64,
    /// Dispatch (pool-acquire) wait time.
    pub dispatch_wait_ns: u64,
    /// Spans retained in the profile.
    pub spans: u64,
    /// Spans dropped by arena bounding.
    pub dropped: u64,
}

impl ProfileSummary {
    /// Fraction of measured time (work + waits) that was synchronization
    /// wait — the evidence stream the adaptive layer consumes.
    pub fn wait_fraction(&self) -> f64 {
        let wait = self.flag_wait_ns + self.barrier_wait_ns;
        let total = self.work_ns + wait;
        if total == 0 {
            0.0
        } else {
            wait as f64 / total as f64
        }
    }
}

/// The engine's profiling state: per-pool span arenas, the profile ring,
/// per-level barrier-wait histograms, and the `doacross_profile_*`
/// counters. Built once by `EngineBuilder::profiling(..)`; absent on an
/// unprofiled engine, which therefore pays nothing at all.
pub struct Profiler {
    config: ProfConfig,
    arenas: Vec<ProfArena>,
    seq: AtomicU64,
    ring: Mutex<VecDeque<SolveProfile>>,
    /// `max_levels` labelled histograms plus the `"other"` overflow.
    level_wait: Vec<Histogram>,
    solves: AtomicU64,
    spans_by_kind: [AtomicU64; 4],
    dropped_total: AtomicU64,
    /// Latest realized critical path per variant (valid when the
    /// matching `variant_profiled` count is non-zero).
    realized_ns: [AtomicU64; 6],
    /// Latest priced cost per variant, rounded to integer nanoseconds
    /// (`u64::MAX` = the planner never priced the executed variant).
    priced_ns: [AtomicU64; 6],
    variant_profiled: [AtomicU64; 6],
}

impl Profiler {
    /// A profiler for an engine with `pools` sub-pools of `workers`
    /// workers each.
    pub fn new(pools: usize, workers: usize, config: ProfConfig) -> Self {
        let config = ProfConfig {
            ring: config.ring.max(1),
            per_worker_spans: config.per_worker_spans.max(1),
            max_levels: config.max_levels.clamp(1, MAX_LEVEL_SERIES),
        };
        let arenas = (0..pools.max(1))
            .map(|_| ProfArena::new(workers, config.per_worker_spans))
            .collect();
        let level_wait = (0..config.max_levels + 1)
            .map(|_| Histogram::default())
            .collect();
        Self {
            config,
            arenas,
            seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
            level_wait,
            solves: AtomicU64::new(0),
            spans_by_kind: Default::default(),
            dropped_total: AtomicU64::new(0),
            realized_ns: Default::default(),
            priced_ns: Default::default(),
            variant_profiled: Default::default(),
        }
    }

    /// The configuration this profiler was built with (after clamping).
    pub fn config(&self) -> ProfConfig {
        self.config
    }

    /// The span arena for sub-pool `pool` (clamped to the last arena, so
    /// a stale index degrades rather than panics).
    pub fn arena(&self, pool: usize) -> &ProfArena {
        &self.arenas[pool.min(self.arenas.len() - 1)]
    }

    /// Harvests `pool`'s arena into a [`SolveProfile`]: re-bases span
    /// timestamps, derives the per-kind attribution and realized critical
    /// path, feeds the per-level barrier-wait histograms, pushes the ring
    /// (drop-oldest), and returns the summary for the trace stream and
    /// the adaptive layer.
    pub fn harvest(
        &self,
        pool: usize,
        fp: FpId,
        variant: ObsVariant,
        total_ns: u64,
        priced_ns: Option<f64>,
    ) -> ProfileSummary {
        let arena = self.arena(pool);
        let workers = arena.workers();
        let (mut spans, dropped) = arena.take();

        let base = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
        let mut kind_ns = [0u64; 4];
        let mut kind_spans = [0u64; 4];
        let mut chain = vec![0u64; workers];
        for span in &mut spans {
            span.start_ns -= base;
            let k = span.kind.index();
            kind_ns[k] += span.dur_ns;
            kind_spans[k] += 1;
            match span.kind {
                // Flag waits nest inside work spans; dispatch waits live
                // on the dispatcher track — neither extends a worker's
                // realized chain on its own.
                SpanKind::Work | SpanKind::BarrierWait => {
                    if let Some(c) = chain.get_mut(span.worker as usize) {
                        *c += span.dur_ns;
                    }
                }
                SpanKind::FlagWait | SpanKind::DispatchWait => {}
            }
            if span.kind == SpanKind::BarrierWait {
                let idx = (span.level as usize).min(self.config.max_levels);
                self.level_wait[idx].record(span.dur_ns);
            }
        }
        let dispatch_ns = kind_ns[SpanKind::DispatchWait.index()];
        let realized_critical_ns = chain.iter().copied().max().unwrap_or(0) + dispatch_ns;

        let summary = ProfileSummary {
            realized_critical_ns,
            work_ns: kind_ns[SpanKind::Work.index()],
            flag_wait_ns: kind_ns[SpanKind::FlagWait.index()],
            barrier_wait_ns: kind_ns[SpanKind::BarrierWait.index()],
            dispatch_wait_ns: dispatch_ns,
            spans: spans.len() as u64,
            dropped,
        };

        self.solves.fetch_add(1, Ordering::Relaxed);
        for (counter, &n) in self.spans_by_kind.iter().zip(kind_spans.iter()) {
            counter.fetch_add(n, Ordering::Relaxed);
        }
        self.dropped_total.fetch_add(dropped, Ordering::Relaxed);
        let v = variant.index();
        self.realized_ns[v].store(realized_critical_ns, Ordering::Relaxed);
        self.priced_ns[v].store(
            priced_ns.map_or(u64::MAX, |p| p.max(0.0).round() as u64),
            Ordering::Relaxed,
        );
        self.variant_profiled[v].fetch_add(1, Ordering::Relaxed);

        let profile = SolveProfile {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            fp,
            variant,
            pool: pool as u64,
            workers: workers as u64,
            total_ns,
            priced_ns,
            realized_critical_ns,
            kind_ns,
            kind_spans,
            dropped,
            spans,
        };
        let mut ring = match self.ring.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if ring.len() >= self.config.ring {
            ring.pop_front();
        }
        ring.push_back(profile);
        summary
    }

    /// Retained profiles, oldest first.
    pub fn recent(&self) -> Vec<SolveProfile> {
        let ring = match self.ring.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        ring.iter().cloned().collect()
    }

    /// Solves profiled so far.
    pub fn solves(&self) -> u64 {
        self.solves.load(Ordering::Relaxed)
    }

    /// Per-level barrier-wait snapshots: `(label, snapshot)` for every
    /// level with at least one recording, deepest-capped under `"other"`.
    pub fn level_histograms(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        self.level_wait
            .iter()
            .enumerate()
            .filter_map(|(i, h)| {
                let (buckets, sum_ns, count) = h.snapshot();
                (count > 0).then_some((
                    if i < self.config.max_levels {
                        LEVEL_LABELS[i]
                    } else {
                        "other"
                    },
                    HistogramSnapshot {
                        buckets,
                        sum_ns,
                        count,
                    },
                ))
            })
            .collect()
    }

    /// Renders the `doacross_profile_*` families. Nothing is rendered
    /// until at least one solve has been profiled, so an armed-but-idle
    /// engine's scrape is byte-identical to an unprofiled one.
    pub fn render_prometheus(&self, buf: &mut String) {
        if self.solves() == 0 {
            return;
        }
        render::counter(
            buf,
            "doacross_profile_solves_total",
            "Solves whose span arenas were harvested into profiles.",
            self.solves(),
        );
        let kind_samples: Vec<([(&str, &str); 1], u64)> = SpanKind::ALL
            .iter()
            .filter_map(|&k| {
                let n = self.spans_by_kind[k.index()].load(Ordering::Relaxed);
                (n > 0).then_some(([("kind", k.as_str())], n))
            })
            .collect();
        let kind_refs: Vec<(&[(&str, &str)], u64)> =
            kind_samples.iter().map(|(l, n)| (&l[..], *n)).collect();
        render::counter_family(
            buf,
            "doacross_profile_spans_total",
            "Profiled spans harvested, by span kind.",
            &kind_refs,
        );
        render::counter(
            buf,
            "doacross_profile_dropped_spans_total",
            "Spans dropped by per-worker arena bounding.",
            self.dropped_total.load(Ordering::Relaxed),
        );
        let realized: Vec<([(&str, &str); 1], u64)> = ObsVariant::ALL
            .iter()
            .filter_map(|&v| {
                (self.variant_profiled[v.index()].load(Ordering::Relaxed) > 0).then_some((
                    [("variant", v.as_str())],
                    self.realized_ns[v.index()].load(Ordering::Relaxed),
                ))
            })
            .collect();
        let realized_refs: Vec<(&[(&str, &str)], u64)> =
            realized.iter().map(|(l, n)| (&l[..], *n)).collect();
        render::gauge_family(
            buf,
            "doacross_profile_realized_critical_ns",
            "Realized critical path (work + waits) of the latest profiled solve, by variant.",
            &realized_refs,
        );
        let priced: Vec<([(&str, &str); 1], u64)> = ObsVariant::ALL
            .iter()
            .filter_map(|&v| {
                let n = self.priced_ns[v.index()].load(Ordering::Relaxed);
                (self.variant_profiled[v.index()].load(Ordering::Relaxed) > 0 && n != u64::MAX)
                    .then_some(([("variant", v.as_str())], n))
            })
            .collect();
        // An uncalibrated engine has no honest unit to price in: the
        // family is omitted entirely rather than scraped empty.
        if !priced.is_empty() {
            let priced_refs: Vec<(&[(&str, &str)], u64)> =
                priced.iter().map(|(l, n)| (&l[..], *n)).collect();
            render::gauge_family(
                buf,
                "doacross_profile_priced_ns",
                "The plan's priced cost for the latest profiled solve, by variant.",
                &priced_refs,
            );
        }
        let levels = self.level_histograms();
        let level_labels: Vec<[(&str, &str); 1]> = levels
            .iter()
            .map(|(label, _)| [("level", *label)])
            .collect();
        let level_refs: Vec<(&[(&str, &str)], &HistogramSnapshot)> = levels
            .iter()
            .zip(level_labels.iter())
            .map(|((_, h), labels)| (&labels[..], h))
            .collect();
        render::histogram_family(
            buf,
            "doacross_profile_barrier_wait_ns",
            "Per-worker barrier wait per wavefront level in nanoseconds (deep levels under level=\"other\").",
            &level_refs,
        );
    }

    /// Appends the profiler's JSON fragment (an object) to `buf`.
    pub fn render_json(&self, buf: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            buf,
            "{{\"solves\":{},\"dropped_spans\":{}",
            self.solves(),
            self.dropped_total.load(Ordering::Relaxed)
        );
        buf.push_str(",\"spans\":{");
        for (i, k) in SpanKind::ALL.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            let _ = write!(
                buf,
                "\"{}\":{}",
                k.as_str(),
                self.spans_by_kind[k.index()].load(Ordering::Relaxed)
            );
        }
        buf.push_str("},\"recent\":[");
        for (i, p) in self.recent().iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            let _ = write!(
                buf,
                "{{\"seq\":{},\"fingerprint\":\"{}\",\"variant\":\"{}\",\"workers\":{},\"total_ns\":{},\"realized_critical_ns\":{},\"work_ns\":{},\"flag_wait_ns\":{},\"barrier_wait_ns\":{},\"dispatch_wait_ns\":{},\"spans\":{}}}",
                p.seq,
                p.fp,
                p.variant,
                p.workers,
                p.total_ns,
                p.realized_critical_ns,
                p.work_ns(),
                p.flag_wait_ns(),
                p.barrier_wait_ns(),
                p.dispatch_wait_ns(),
                p.spans.len()
            );
        }
        buf.push_str("]}");
    }

    /// Renders the retained profiles as Chrome trace-event JSON — loads
    /// directly in Perfetto or `about://tracing`. One process per
    /// profiled solve (named after its sequence number and variant), one
    /// track per worker plus the dispatcher, complete (`"X"`) events with
    /// microsecond timestamps.
    pub fn chrome_trace(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for profile in self.recent() {
            if !first {
                out.push(',');
            }
            first = false;
            let pid = profile.seq;
            let _ = write!(
                out,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"solve {} ({})\"}}}}",
                pid,
                profile.seq,
                profile.variant
            );
            // Spans are already sorted by (worker, start), so timestamps
            // are monotone per track.
            for span in &profile.spans {
                let _ = write!(
                    out,
                    ",{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{}.{:03},\"dur\":{}.{:03},\"args\":{{",
                    span.kind.as_str(),
                    pid,
                    span.worker,
                    span.start_ns / 1_000,
                    span.start_ns % 1_000,
                    span.dur_ns / 1_000,
                    span.dur_ns % 1_000,
                );
                if span.level != NO_LEVEL {
                    let _ = write!(out, "\"level\":{},", span.level);
                }
                let _ = write!(out, "\"aux\":{}}}}}", span.aux);
            }
        }
        out.push_str("],\"displayTimeUnit\":\"ns\"}");
        out
    }
}

/// Structural facts [`validate_chrome_trace`] extracted from a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChromeTraceStats {
    /// Complete (`"X"`) events in the trace.
    pub events: usize,
    /// Span count per `(pid, tid)` track.
    pub tracks: BTreeMap<(u64, u64), usize>,
}

/// Structurally validates a Chrome trace produced by
/// [`Profiler::chrome_trace`]: well-formed `traceEvents` array, every
/// event either metadata (`"M"`, named) or complete (`"X"` with `pid`,
/// `tid`, `ts`, `dur` — self-paired, so no begin/end imbalance is
/// possible), and timestamps monotone non-decreasing per track. Returns
/// per-track span counts on success.
pub fn validate_chrome_trace(trace: &str) -> Result<ChromeTraceStats, String> {
    let body = trace
        .strip_prefix("{\"traceEvents\":[")
        .ok_or_else(|| "missing traceEvents header".to_string())?;
    let end = body
        .rfind(']')
        .ok_or_else(|| "missing traceEvents terminator".to_string())?;
    let events_src = &body[..end];

    let mut stats = ChromeTraceStats::default();
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    let mut rest = events_src;
    let mut index = 0usize;
    while let Some(open) = rest.find('{') {
        // Balance braces; our renderer never puts braces inside strings.
        let mut depth = 0usize;
        let mut close = None;
        for (i, c) in rest[open..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(open + i);
                        break;
                    }
                }
                _ => {}
            }
        }
        let close = close.ok_or_else(|| format!("event {index}: unbalanced braces"))?;
        let obj = &rest[open..=close];
        rest = &rest[close + 1..];

        let ph = field_str(obj, "ph").ok_or_else(|| format!("event {index}: missing ph"))?;
        match ph {
            "M" => {
                field_str(obj, "name")
                    .filter(|n| !n.is_empty())
                    .ok_or_else(|| format!("event {index}: unnamed metadata event"))?;
            }
            "X" => {
                let name = field_str(obj, "name")
                    .filter(|n| !n.is_empty())
                    .ok_or_else(|| format!("event {index}: unnamed span"))?;
                if !SpanKind::ALL.iter().any(|k| k.as_str() == name) {
                    return Err(format!("event {index}: unknown span kind {name:?}"));
                }
                let pid =
                    field_u64(obj, "pid").ok_or_else(|| format!("event {index}: missing pid"))?;
                let tid =
                    field_u64(obj, "tid").ok_or_else(|| format!("event {index}: missing tid"))?;
                let ts =
                    field_f64(obj, "ts").ok_or_else(|| format!("event {index}: missing ts"))?;
                let dur =
                    field_f64(obj, "dur").ok_or_else(|| format!("event {index}: missing dur"))?;
                if dur < 0.0 {
                    return Err(format!("event {index}: negative dur"));
                }
                let track = (pid, tid);
                if let Some(&prev) = last_ts.get(&track) {
                    if ts < prev {
                        return Err(format!(
                            "event {index}: ts {ts} regresses below {prev} on track {track:?}"
                        ));
                    }
                }
                last_ts.insert(track, ts);
                *stats.tracks.entry(track).or_insert(0) += 1;
                stats.events += 1;
            }
            other => return Err(format!("event {index}: unexpected ph {other:?}")),
        }
        index += 1;
    }
    Ok(stats)
}

fn field_str<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = obj.find(&pat)? + pat.len();
    let end = obj[start..].find('"')?;
    Some(&obj[start..start + end])
}

fn field_raw<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = obj.find(&pat)? + pat.len();
    let rest = &obj[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn field_u64(obj: &str, key: &str) -> Option<u64> {
    field_raw(obj, key)?.parse().ok()
}

fn field_f64(obj: &str, key: &str) -> Option<f64> {
    field_raw(obj, key)?.parse().ok()
}

/// An [`ObsSink`] that streams every [`TraceEvent`] — profile summaries
/// included, on engines that profile — to a writer as NDJSON: one
/// `{"kind":...}` object per line. Events arrive on the emitting thread
/// *after* the registry and rings have absorbed them and outside any
/// engine lock; the sink serializes writers behind its own mutex. Write
/// errors are swallowed (observability must never fail a solve).
pub struct StreamingSink<W: IoWrite + Send> {
    out: Mutex<W>,
}

impl<W: IoWrite + Send> StreamingSink<W> {
    /// Wraps `out` as an NDJSON event stream.
    pub fn new(out: W) -> Self {
        Self {
            out: Mutex::new(out),
        }
    }

    /// Runs `f` with exclusive access to the writer (flushing, testing).
    pub fn with_writer<R>(&self, f: impl FnOnce(&mut W) -> R) -> R {
        let mut guard: MutexGuard<'_, W> = match self.out.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut guard)
    }
}

impl<W: IoWrite + Send> ObsSink for StreamingSink<W> {
    fn on_event(&self, event: &TraceEvent) {
        let mut line = String::with_capacity(128);
        event.to_json(&mut line);
        line.push('\n');
        self.with_writer(|w| {
            let _ = w.write_all(line.as_bytes());
        });
    }
}

/// Re-exported so profile consumers can interpret histogram snapshots
/// without importing the metrics module.
pub const BARRIER_WAIT_BUCKET_BOUNDS_NS: [u64; 11] = LATENCY_BUCKET_BOUNDS_NS;

#[cfg(test)]
mod tests {
    use super::*;

    fn fp() -> FpId {
        FpId(0xfeed, 0xbeef)
    }

    #[test]
    fn arena_bounds_each_worker_and_counts_drops() {
        let arena = ProfArena::new(2, 4);
        for i in 0..10 {
            arena.record(0, SpanKind::Work, NO_LEVEL, i, 1, 0);
        }
        arena.record(1, SpanKind::FlagWait, NO_LEVEL, 0, 5, 3);
        assert_eq!(arena.dropped(), 6);
        let (spans, dropped) = arena.take();
        assert_eq!(dropped, 6);
        assert_eq!(spans.len(), 5);
        // Drop-oldest: worker 0 keeps its newest 4 spans.
        let w0: Vec<u64> = spans
            .iter()
            .filter(|s| s.worker == 0)
            .map(|s| s.start_ns)
            .collect();
        assert_eq!(w0, vec![6, 7, 8, 9]);
        assert_eq!(arena.dropped(), 0, "take() resets the drop counter");
    }

    #[test]
    fn arena_rejects_out_of_range_workers() {
        let arena = ProfArena::new(2, 8);
        arena.record(7, SpanKind::Work, NO_LEVEL, 0, 1, 0);
        assert_eq!(arena.dropped(), 1);
        assert_eq!(arena.take().0.len(), 0);
    }

    #[test]
    fn harvest_attributes_kinds_and_reconstructs_the_critical_path() {
        let prof = Profiler::new(1, 2, ProfConfig::default());
        let arena = prof.arena(0);
        // Worker 0: 100ns work (with a nested 30ns flag wait), then 20ns
        // at the barrier. Worker 1: 50ns work, 70ns barrier. Dispatcher
        // waited 10ns.
        arena.record(0, SpanKind::Work, 0, 1000, 100, 8);
        arena.record(0, SpanKind::FlagWait, 0, 1040, 30, 12);
        arena.record(0, SpanKind::BarrierWait, 0, 1100, 20, 0);
        arena.record(1, SpanKind::Work, 0, 1000, 50, 4);
        arena.record(1, SpanKind::BarrierWait, 0, 1050, 70, 0);
        arena.record_dispatch(990, 10);
        let summary = prof.harvest(0, fp(), ObsVariant::Wavefront, 130, Some(125.0));
        assert_eq!(summary.work_ns, 150);
        assert_eq!(summary.flag_wait_ns, 30);
        assert_eq!(summary.barrier_wait_ns, 90);
        assert_eq!(summary.dispatch_wait_ns, 10);
        assert_eq!(summary.spans, 6);
        assert_eq!(summary.dropped, 0);
        // Chains: w0 = 100 + 20 = 120, w1 = 50 + 70 = 120; + dispatch 10.
        assert_eq!(summary.realized_critical_ns, 130);
        assert!((summary.wait_fraction() - 120.0 / 270.0).abs() < 1e-9);

        let profiles = prof.recent();
        assert_eq!(profiles.len(), 1);
        let p = &profiles[0];
        assert_eq!(p.variant, ObsVariant::Wavefront);
        assert_eq!(p.priced_ns, Some(125.0));
        // Re-based: earliest span (dispatch at 990) starts at 0.
        assert_eq!(p.spans.iter().map(|s| s.start_ns).min(), Some(0));
        assert_eq!(p.realized_critical_ns, 130);
    }

    #[test]
    fn ring_is_bounded_drop_oldest() {
        let prof = Profiler::new(
            1,
            1,
            ProfConfig {
                ring: 2,
                ..ProfConfig::default()
            },
        );
        for i in 0..5u64 {
            prof.arena(0).record(0, SpanKind::Work, NO_LEVEL, i, 1, 1);
            prof.harvest(0, fp(), ObsVariant::Doacross, 1, None);
        }
        let recent = prof.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].seq, 3);
        assert_eq!(recent[1].seq, 4);
        assert_eq!(prof.solves(), 5);
    }

    #[test]
    fn deep_levels_collapse_under_other() {
        let prof = Profiler::new(
            1,
            1,
            ProfConfig {
                max_levels: 2,
                ..ProfConfig::default()
            },
        );
        let arena = prof.arena(0);
        arena.record(0, SpanKind::BarrierWait, 0, 0, 10, 0);
        arena.record(0, SpanKind::BarrierWait, 1, 10, 10, 0);
        arena.record(0, SpanKind::BarrierWait, 2, 20, 10, 0);
        arena.record(0, SpanKind::BarrierWait, 9, 30, 10, 0);
        prof.harvest(0, fp(), ObsVariant::Wavefront, 40, None);
        let levels = prof.level_histograms();
        let labels: Vec<&str> = levels.iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, vec!["0", "1", "other"]);
        assert_eq!(levels[2].1.count, 2, "levels 2 and 9 both collapse");

        let mut buf = String::new();
        prof.render_prometheus(&mut buf);
        assert!(buf.contains("doacross_profile_barrier_wait_ns_count{level=\"other\"} 2"));
    }

    #[test]
    fn prometheus_families_render_only_after_a_profile() {
        let prof = Profiler::new(1, 1, ProfConfig::default());
        let mut quiet = String::new();
        prof.render_prometheus(&mut quiet);
        assert!(quiet.is_empty(), "armed-but-idle renders nothing");

        prof.arena(0).record(0, SpanKind::Work, NO_LEVEL, 0, 42, 7);
        prof.harvest(0, fp(), ObsVariant::Doacross, 42, Some(40.0));
        let mut buf = String::new();
        prof.render_prometheus(&mut buf);
        assert!(buf.contains("doacross_profile_solves_total 1"));
        assert!(buf.contains("doacross_profile_spans_total{kind=\"work\"} 1"));
        assert!(buf.contains("doacross_profile_realized_critical_ns{variant=\"doacross\"} 42"));
        assert!(buf.contains("doacross_profile_priced_ns{variant=\"doacross\"} 40"));
    }

    #[test]
    fn chrome_trace_is_structurally_valid_with_one_track_per_worker() {
        let prof = Profiler::new(1, 2, ProfConfig::default());
        let arena = prof.arena(0);
        arena.record(0, SpanKind::Work, 0, 100, 50, 3);
        arena.record(0, SpanKind::BarrierWait, 0, 150, 5, 0);
        arena.record(1, SpanKind::Work, 0, 100, 40, 2);
        arena.record(1, SpanKind::BarrierWait, 0, 140, 15, 0);
        prof.harvest(0, fp(), ObsVariant::Wavefront, 60, None);
        let trace = prof.chrome_trace();
        let stats = validate_chrome_trace(&trace).expect("trace must validate");
        assert_eq!(stats.events, 4);
        assert_eq!(stats.tracks.len(), 2, "one track per worker");
        assert!(stats.tracks.values().all(|&n| n == 2));
    }

    #[test]
    fn chrome_trace_validator_rejects_regressions() {
        assert!(validate_chrome_trace("not a trace").is_err());
        let bad_ts = "{\"traceEvents\":[\
            {\"name\":\"work\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":5.000,\"dur\":1.000,\"args\":{\"aux\":0}},\
            {\"name\":\"work\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":2.000,\"dur\":1.000,\"args\":{\"aux\":0}}\
            ],\"displayTimeUnit\":\"ns\"}";
        let err = validate_chrome_trace(bad_ts).expect_err("regressing ts must fail");
        assert!(err.contains("regresses"), "{err}");
        let bad_kind = "{\"traceEvents\":[\
            {\"name\":\"mystery\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":1.000,\"dur\":1.000,\"args\":{\"aux\":0}}\
            ],\"displayTimeUnit\":\"ns\"}";
        assert!(validate_chrome_trace(bad_kind).is_err());
    }

    #[test]
    fn streaming_sink_writes_one_json_line_per_event() {
        let sink = StreamingSink::new(Vec::<u8>::new());
        sink.on_event(&TraceEvent::CacheMiss { fp: fp() });
        sink.on_event(&TraceEvent::SolveProfiled {
            fp: fp(),
            variant: ObsVariant::Wavefront,
            realized_critical_ns: 130,
            work_ns: 150,
            flag_wait_ns: 30,
            barrier_wait_ns: 90,
            dispatch_wait_ns: 10,
            spans: 6,
        });
        let written = sink.with_writer(|w| String::from_utf8(w.clone()).unwrap());
        let lines: Vec<&str> = written.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"kind\":\"cache_miss\""));
        assert!(lines[1].starts_with("{\"kind\":\"solve_profiled\""));
        assert!(lines[1].contains("\"realized_critical_ns\":130"));
        assert!(lines[1].contains("\"barrier_wait_ns\":90"));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }
}
