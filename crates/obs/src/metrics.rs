//! The metrics registry: lock-free counters and log-scaled latency
//! histograms, engine-wide and per-fingerprint.
//!
//! All hot-path updates are single `Relaxed` atomic RMWs; the only lock is
//! the per-fingerprint map's, taken once per *solve* (not per iteration)
//! and bounded by [`crate::ObsConfig::max_fingerprints`] — structures past
//! the bound aggregate into an `other` bucket rather than growing the map.

use crate::event::{FpId, ObsVariant};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Upper bounds (ns) of the latency histogram buckets: factor-4 steps from
/// 256 ns to ~268 ms, followed by an implicit `+Inf`. Eleven finite
/// buckets cover sub-microsecond linear solves up through multi-hundred-ms
/// plan builds with ≤ 4× resolution everywhere.
pub const LATENCY_BUCKET_BOUNDS_NS: [u64; 11] = [
    256,
    1_024,
    4_096,
    16_384,
    65_536,
    262_144,
    1_048_576,
    4_194_304,
    16_777_216,
    67_108_864,
    268_435_456,
];

const NBUCKETS: usize = LATENCY_BUCKET_BOUNDS_NS.len() + 1; // + the +Inf bucket

/// A log-scaled latency histogram with an exact sum and count.
#[derive(Default)]
pub(crate) struct Histogram {
    buckets: [AtomicU64; NBUCKETS],
    sum_ns: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    pub(crate) fn record(&self, ns: u64) {
        let idx = LATENCY_BUCKET_BOUNDS_NS
            .iter()
            .position(|&b| ns <= b)
            .unwrap_or(NBUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// (per-bucket counts, sum_ns, count) snapshot. Buckets are *not*
    /// cumulative here; the renderer accumulates for Prometheus `le`
    /// semantics.
    pub(crate) fn snapshot(&self) -> ([u64; NBUCKETS], u64, u64) {
        let mut b = [0u64; NBUCKETS];
        for (dst, src) in b.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        (
            b,
            self.sum_ns.load(Ordering::Relaxed),
            self.count.load(Ordering::Relaxed),
        )
    }
}

/// A histogram snapshot ready for rendering.
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) counts; the last entry is the `+Inf`
    /// bucket.
    pub buckets: [u64; NBUCKETS],
    /// Sum of recorded values (ns).
    pub sum_ns: u64,
    /// Total recorded values.
    pub count: u64,
}

#[derive(Default)]
pub(crate) struct FpMetrics {
    /// Solves per variant, indexed by [`ObsVariant::index`].
    pub(crate) solves: [AtomicU64; 6],
    /// Total solve ns per variant.
    pub(crate) solve_ns_total: [AtomicU64; 6],
}

/// The registry. One per `Obs` handle; all fields are updated from
/// [`crate::Obs::emit`] and read by the renderers.
#[derive(Default)]
pub(crate) struct Registry {
    /// Solves by (variant, provenance).
    pub(crate) solves: [[AtomicU64; 3]; 6],
    /// Solve latency by variant.
    pub(crate) solve_ns: [Histogram; 6],
    pub(crate) wait_polls_total: AtomicU64,
    pub(crate) stalls_total: AtomicU64,
    pub(crate) barrier_crossings_total: AtomicU64,
    /// Plan builds by variant.
    pub(crate) plan_builds: [AtomicU64; 6],
    pub(crate) plan_build_ns: Histogram,
    pub(crate) cache_invalidations_total: AtomicU64,
    pub(crate) plan_swaps_total: AtomicU64,
    pub(crate) store_saves_total: AtomicU64,
    pub(crate) store_loads_total: AtomicU64,
    pub(crate) store_plans_saved_total: AtomicU64,
    pub(crate) store_plans_restored_total: AtomicU64,
    pub(crate) cold_starts_total: AtomicU64,
    pub(crate) divergences_total: AtomicU64,
    pub(crate) trials_started_total: AtomicU64,
    pub(crate) trials_committed_total: AtomicU64,
    pub(crate) trials_demoted_total: AtomicU64,
    pub(crate) baseline_probes_total: AtomicU64,
    /// Per-structure breakdown, bounded; overflow aggregates under
    /// [`Registry::overflow`].
    pub(crate) per_fp: Mutex<HashMap<FpId, FpMetrics>>,
    /// Aggregate bucket for structures beyond `max_fingerprints`.
    pub(crate) overflow: FpMetrics,
}

impl Registry {
    pub(crate) fn record_solve(&self, record: &crate::SolveRecord, max_fingerprints: usize) {
        let v = record.variant.index();
        self.solves[v][record.provenance.index()].fetch_add(1, Ordering::Relaxed);
        self.solve_ns[v].record(record.total_ns);
        self.wait_polls_total
            .fetch_add(record.wait_polls, Ordering::Relaxed);
        self.stalls_total
            .fetch_add(record.stalls, Ordering::Relaxed);
        self.barrier_crossings_total
            .fetch_add(record.barrier_crossings, Ordering::Relaxed);
        let mut map = match self.per_fp.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let slot = if map.contains_key(&record.fp) || map.len() < max_fingerprints {
            map.entry(record.fp).or_default()
        } else {
            drop(map);
            self.overflow.solves[v].fetch_add(1, Ordering::Relaxed);
            self.overflow.solve_ns_total[v].fetch_add(record.total_ns, Ordering::Relaxed);
            return;
        };
        slot.solves[v].fetch_add(1, Ordering::Relaxed);
        slot.solve_ns_total[v].fetch_add(record.total_ns, Ordering::Relaxed);
    }

    pub(crate) fn record_plan_built(&self, variant: ObsVariant, build_ns: u64) {
        self.plan_builds[variant.index()].fetch_add(1, Ordering::Relaxed);
        self.plan_build_ns.record(build_ns);
    }
}

/// Public snapshot of one variant's solve-latency histogram, paired with
/// its variant label — what `metrics_json` exposes.
pub struct VariantLatency {
    pub variant: ObsVariant,
    pub histogram: HistogramSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ObsProvenance;

    #[test]
    fn bucket_bounds_are_strictly_increasing_factor_4() {
        for w in LATENCY_BUCKET_BOUNDS_NS.windows(2) {
            assert_eq!(w[1], w[0] * 4);
        }
    }

    #[test]
    fn histogram_places_values_in_the_right_bucket() {
        let h = Histogram::default();
        h.record(0); // ≤ 256 → bucket 0
        h.record(256); // boundary is inclusive (le semantics)
        h.record(257); // → bucket 1
        h.record(u64::MAX); // → +Inf
        let (b, sum, count) = h.snapshot();
        assert_eq!(b[0], 2);
        assert_eq!(b[1], 1);
        assert_eq!(b[NBUCKETS - 1], 1);
        assert_eq!(count, 4);
        // 0 + 256 + 257, then the u64::MAX record wraps the sum down by 1.
        assert_eq!(sum, 512);
    }

    #[test]
    fn per_fp_map_is_bounded_with_overflow_bucket() {
        let r = Registry::default();
        for i in 0..10u64 {
            let record = crate::SolveRecord {
                fp: FpId(i, 0),
                variant: ObsVariant::Doacross,
                provenance: ObsProvenance::PlanCached,
                generation: 0,
                total_ns: 100,
                inspector_ns: 0,
                executor_ns: 100,
                post_ns: 0,
                iterations: 1,
                workers: 1,
                stalls: 0,
                wait_polls: 0,
                barrier_crossings: 0,
            };
            r.record_solve(&record, 4);
        }
        let map = r.per_fp.lock().unwrap();
        assert_eq!(map.len(), 4);
        assert_eq!(
            r.overflow.solves[ObsVariant::Doacross.index()].load(Ordering::Relaxed),
            6
        );
    }
}
