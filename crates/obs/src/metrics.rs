//! The metrics registry: lock-free counters and log-scaled latency
//! histograms, engine-wide and per-fingerprint.
//!
//! All hot-path updates are single `Relaxed` atomic RMWs; the only lock is
//! the per-fingerprint map's, taken once per *solve* (not per iteration)
//! and bounded by [`crate::ObsConfig::max_fingerprints`] — structures past
//! the bound aggregate into an `other` bucket rather than growing the map.

use crate::event::{FpId, ObsVariant};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Upper bounds (ns) of the latency histogram buckets: factor-4 steps from
/// 256 ns to ~268 ms, followed by an implicit `+Inf`. Eleven finite
/// buckets cover sub-microsecond linear solves up through multi-hundred-ms
/// plan builds with ≤ 4× resolution everywhere.
pub const LATENCY_BUCKET_BOUNDS_NS: [u64; 11] = [
    256,
    1_024,
    4_096,
    16_384,
    65_536,
    262_144,
    1_048_576,
    4_194_304,
    16_777_216,
    67_108_864,
    268_435_456,
];

const NBUCKETS: usize = LATENCY_BUCKET_BOUNDS_NS.len() + 1; // + the +Inf bucket

/// Distinct sub-pool metric series kept per registry. Dispatches to pools
/// at or beyond this index aggregate under the `other` label — the same
/// bounded-cardinality discipline as the per-fingerprint map. Sixteen
/// covers every realistic partitioning of one engine's workers.
pub const MAX_POOL_SERIES: usize = 16;

/// A log-scaled latency histogram with an exact sum and count.
#[derive(Default)]
pub(crate) struct Histogram {
    buckets: [AtomicU64; NBUCKETS],
    sum_ns: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    pub(crate) fn record(&self, ns: u64) {
        let idx = LATENCY_BUCKET_BOUNDS_NS
            .iter()
            .position(|&b| ns <= b)
            .unwrap_or(NBUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// (per-bucket counts, sum_ns, count) snapshot. Buckets are *not*
    /// cumulative here; the renderer accumulates for Prometheus `le`
    /// semantics.
    pub(crate) fn snapshot(&self) -> ([u64; NBUCKETS], u64, u64) {
        let mut b = [0u64; NBUCKETS];
        for (dst, src) in b.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        (
            b,
            self.sum_ns.load(Ordering::Relaxed),
            self.count.load(Ordering::Relaxed),
        )
    }
}

/// A histogram snapshot ready for rendering.
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) counts; the last entry is the `+Inf`
    /// bucket.
    pub buckets: [u64; NBUCKETS],
    /// Sum of recorded values (ns).
    pub sum_ns: u64,
    /// Total recorded values.
    pub count: u64,
}

#[derive(Default)]
pub(crate) struct FpMetrics {
    /// Solves per variant, indexed by [`ObsVariant::index`].
    pub(crate) solves: [AtomicU64; 6],
    /// Total solve ns per variant.
    pub(crate) solve_ns_total: [AtomicU64; 6],
}

/// The registry. One per `Obs` handle; all fields are updated from
/// [`crate::Obs::emit`] and read by the renderers.
#[derive(Default)]
pub(crate) struct Registry {
    /// Solves by (variant, provenance).
    pub(crate) solves: [[AtomicU64; 3]; 6],
    /// Solve latency by variant.
    pub(crate) solve_ns: [Histogram; 6],
    pub(crate) wait_polls_total: AtomicU64,
    pub(crate) stalls_total: AtomicU64,
    pub(crate) barrier_crossings_total: AtomicU64,
    /// Plan builds by variant.
    pub(crate) plan_builds: [AtomicU64; 6],
    pub(crate) plan_build_ns: Histogram,
    pub(crate) cache_invalidations_total: AtomicU64,
    pub(crate) plan_swaps_total: AtomicU64,
    pub(crate) store_saves_total: AtomicU64,
    pub(crate) store_loads_total: AtomicU64,
    pub(crate) store_plans_saved_total: AtomicU64,
    pub(crate) store_plans_restored_total: AtomicU64,
    pub(crate) cold_starts_total: AtomicU64,
    /// Soundness-verifier outcomes (build gate, store load, engine
    /// surface, adaptive promotion).
    pub(crate) verify_passes_total: AtomicU64,
    pub(crate) verify_failures_total: AtomicU64,
    pub(crate) divergences_total: AtomicU64,
    pub(crate) trials_started_total: AtomicU64,
    pub(crate) trials_committed_total: AtomicU64,
    pub(crate) trials_demoted_total: AtomicU64,
    pub(crate) baseline_probes_total: AtomicU64,
    /// Dispatches per scheduler sub-pool; index [`MAX_POOL_SERIES`] and
    /// beyond aggregate into [`Registry::pool_overflow_dispatches`].
    pub(crate) pool_dispatches: [AtomicU64; MAX_POOL_SERIES],
    pub(crate) pool_overflow_dispatches: AtomicU64,
    /// Dispatches that the work-stealing fallback redirected.
    pub(crate) pool_steals_total: AtomicU64,
    /// Time spent waiting for a free sub-pool (0 on the fast path).
    pub(crate) pool_wait_ns: Histogram,
    /// Solve latency per sub-pool (from `SolveFinished`, bounded like
    /// `pool_dispatches`).
    pub(crate) pool_solve_ns: [Histogram; MAX_POOL_SERIES],
    pub(crate) batch_submissions_total: AtomicU64,
    pub(crate) batch_jobs_total: AtomicU64,
    pub(crate) batch_coalesced_total: AtomicU64,
    /// Parallel attempts abandoned because a worker panicked.
    pub(crate) fault_panics_total: AtomicU64,
    /// Parallel attempts abandoned because the solve deadline expired.
    pub(crate) fault_timeouts_total: AtomicU64,
    /// Faulted attempts re-run (successfully) on the sequential variant.
    pub(crate) fault_fallbacks_total: AtomicU64,
    /// Saturated solves re-submitted by `execute_with_retry` backoff.
    pub(crate) retry_total: AtomicU64,
    /// Corrupt warm-start stores renamed aside.
    pub(crate) store_quarantines_total: AtomicU64,
    /// Per-structure breakdown, bounded; overflow aggregates under
    /// [`Registry::overflow`].
    pub(crate) per_fp: Mutex<HashMap<FpId, FpMetrics>>,
    /// Aggregate bucket for structures beyond `max_fingerprints`.
    pub(crate) overflow: FpMetrics,
}

impl Registry {
    pub(crate) fn record_solve(&self, record: &crate::SolveRecord, max_fingerprints: usize) {
        let v = record.variant.index();
        if !record.outcome.delivered() {
            // Failed attempts reach the flight recorder (the caller pushes
            // every record there) but must not pollute the throughput
            // counters or latency histograms with partial numbers.
            return;
        }
        self.solves[v][record.provenance.index()].fetch_add(1, Ordering::Relaxed);
        self.solve_ns[v].record(record.total_ns);
        self.wait_polls_total
            .fetch_add(record.wait_polls, Ordering::Relaxed);
        self.stalls_total
            .fetch_add(record.stalls, Ordering::Relaxed);
        self.barrier_crossings_total
            .fetch_add(record.barrier_crossings, Ordering::Relaxed);
        if let Some(h) = self.pool_solve_ns.get(record.pool as usize) {
            h.record(record.total_ns);
        }
        let mut map = match self.per_fp.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let slot = if map.contains_key(&record.fp) || map.len() < max_fingerprints {
            map.entry(record.fp).or_default()
        } else {
            drop(map);
            self.overflow.solves[v].fetch_add(1, Ordering::Relaxed);
            self.overflow.solve_ns_total[v].fetch_add(record.total_ns, Ordering::Relaxed);
            return;
        };
        slot.solves[v].fetch_add(1, Ordering::Relaxed);
        slot.solve_ns_total[v].fetch_add(record.total_ns, Ordering::Relaxed);
    }

    pub(crate) fn record_plan_built(&self, variant: ObsVariant, build_ns: u64) {
        self.plan_builds[variant.index()].fetch_add(1, Ordering::Relaxed);
        self.plan_build_ns.record(build_ns);
    }

    pub(crate) fn record_pool_dispatch(&self, pool: u64, stolen: bool, wait_ns: u64) {
        match self.pool_dispatches.get(pool as usize) {
            Some(c) => c.fetch_add(1, Ordering::Relaxed),
            None => self
                .pool_overflow_dispatches
                .fetch_add(1, Ordering::Relaxed),
        };
        if stolen {
            self.pool_steals_total.fetch_add(1, Ordering::Relaxed);
        }
        self.pool_wait_ns.record(wait_ns);
    }

    pub(crate) fn record_batch(&self, jobs: u64, coalesced: u64) {
        self.batch_submissions_total.fetch_add(1, Ordering::Relaxed);
        self.batch_jobs_total.fetch_add(jobs, Ordering::Relaxed);
        self.batch_coalesced_total
            .fetch_add(coalesced, Ordering::Relaxed);
    }
}

/// Public snapshot of one variant's solve-latency histogram, paired with
/// its variant label — what `metrics_json` exposes.
pub struct VariantLatency {
    pub variant: ObsVariant,
    pub histogram: HistogramSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ObsProvenance;

    #[test]
    fn bucket_bounds_are_strictly_increasing_factor_4() {
        for w in LATENCY_BUCKET_BOUNDS_NS.windows(2) {
            assert_eq!(w[1], w[0] * 4);
        }
    }

    #[test]
    fn histogram_places_values_in_the_right_bucket() {
        let h = Histogram::default();
        h.record(0); // ≤ 256 → bucket 0
        h.record(256); // boundary is inclusive (le semantics)
        h.record(257); // → bucket 1
        h.record(u64::MAX); // → +Inf
        let (b, sum, count) = h.snapshot();
        assert_eq!(b[0], 2);
        assert_eq!(b[1], 1);
        assert_eq!(b[NBUCKETS - 1], 1);
        assert_eq!(count, 4);
        // 0 + 256 + 257, then the u64::MAX record wraps the sum down by 1.
        assert_eq!(sum, 512);
    }

    #[test]
    fn per_fp_map_is_bounded_with_overflow_bucket() {
        let r = Registry::default();
        for i in 0..10u64 {
            let record = crate::SolveRecord {
                fp: FpId(i, 0),
                variant: ObsVariant::Doacross,
                provenance: ObsProvenance::PlanCached,
                generation: 0,
                total_ns: 100,
                inspector_ns: 0,
                executor_ns: 100,
                post_ns: 0,
                iterations: 1,
                workers: 1,
                stalls: 0,
                wait_polls: 0,
                barrier_crossings: 0,
                pool: 0,
                outcome: crate::SolveOutcome::Ok,
            };
            r.record_solve(&record, 4);
        }
        let map = r.per_fp.lock().unwrap();
        assert_eq!(map.len(), 4);
        assert_eq!(
            r.overflow.solves[ObsVariant::Doacross.index()].load(Ordering::Relaxed),
            6
        );
    }

    #[test]
    fn pool_series_are_bounded_with_overflow() {
        let r = Registry::default();
        r.record_pool_dispatch(0, false, 10);
        r.record_pool_dispatch(0, true, 10);
        r.record_pool_dispatch(MAX_POOL_SERIES as u64, false, 10);
        assert_eq!(r.pool_dispatches[0].load(Ordering::Relaxed), 2);
        assert_eq!(r.pool_overflow_dispatches.load(Ordering::Relaxed), 1);
        assert_eq!(r.pool_steals_total.load(Ordering::Relaxed), 1);
        let (_, _, count) = r.pool_wait_ns.snapshot();
        assert_eq!(count, 3);
    }

    #[test]
    fn batch_counters_accumulate() {
        let r = Registry::default();
        r.record_batch(8, 5);
        r.record_batch(2, 0);
        assert_eq!(r.batch_submissions_total.load(Ordering::Relaxed), 2);
        assert_eq!(r.batch_jobs_total.load(Ordering::Relaxed), 10);
        assert_eq!(r.batch_coalesced_total.load(Ordering::Relaxed), 5);
    }
}
