//! Observability layer for the preprocessed-doacross engine: structured
//! tracing, a metrics registry with Prometheus/JSON export, and a solve
//! flight recorder.
//!
//! This crate has **zero dependencies** (std only) and sits below every
//! other crate in the workspace so plan, cache, persistence, adaptive, and
//! execute layers can all emit into one [`Obs`] handle. The handle is an
//! `Option<Arc<_>>` internally: a disabled handle is a single branch on
//! the hot path — no event is constructed, no lock touched, no time read.
//!
//! # Exported metrics
//!
//! Everything below is emitted by [`Obs::render_prometheus`] (and hence by
//! the engine's `metrics_text()`). Durations are nanoseconds; histograms
//! use the factor-4 bucket bounds in
//! [`metrics::LATENCY_BUCKET_BOUNDS_NS`] plus `+Inf`.
//!
//! | Metric | Type | Labels | Meaning |
//! |---|---|---|---|
//! | `doacross_solves_total` | counter | `variant`, `provenance` | Completed solves by executor variant and plan provenance (`inline` / `plan_cold` / `plan_cached`). |
//! | `doacross_solve_ns` | histogram | `variant` | End-to-end solve latency per variant. |
//! | `doacross_wait_polls_total` | counter | — | Busy-wait poll loops across all solves (flag-based variants). |
//! | `doacross_stalls_total` | counter | — | Busy-wait stall events across all solves. |
//! | `doacross_barrier_crossings_total` | counter | — | Wavefront barrier crossings across all solves. |
//! | `doacross_plan_builds_total` | counter | `variant` | Plans built, by chosen variant. |
//! | `doacross_plan_build_ns` | histogram | — | Plan build (preprocessing) latency. |
//! | `doacross_cache_invalidations_total` | counter | — | Explicit plan invalidations. |
//! | `doacross_plan_swaps_total` | counter | — | Adaptive in-place plan replacements. |
//! | `doacross_store_saves_total` | counter | — | Plan-store save operations. |
//! | `doacross_store_loads_total` | counter | — | Plan-store load operations. |
//! | `doacross_store_plans_saved_total` | counter | — | Plans written across all saves. |
//! | `doacross_store_plans_restored_total` | counter | — | Plans admitted to the cache across all loads. |
//! | `doacross_cold_starts_total` | counter | — | Warm starts that fell back to empty (missing or version-mismatched store). |
//! | `doacross_verify_passes_total` | counter | — | Plan schedules the soundness verifier proved sound. |
//! | `doacross_verify_failures_total` | counter | — | Plan schedules the soundness verifier rejected. |
//! | `doacross_divergences_total` | counter | — | Adaptive divergence detections (measured cost vs static prediction). |
//! | `doacross_trials_started_total` | counter | — | Adaptive challenger trials started. |
//! | `doacross_trials_committed_total` | counter | — | Trials that won and were committed. |
//! | `doacross_trials_demoted_total` | counter | — | Trials that lost and were rolled back. |
//! | `doacross_baseline_probes_total` | counter | — | Deliberate baseline re-measurements. |
//! | `doacross_fault_panics_total` | counter | — | Parallel attempts abandoned because a worker panicked (poison protocol). |
//! | `doacross_fault_timeouts_total` | counter | — | Parallel attempts abandoned because the solve deadline expired. |
//! | `doacross_fault_fallbacks_total` | counter | — | Faulted attempts re-run successfully on the sequential variant. |
//! | `doacross_retry_total` | counter | — | Saturated solves re-submitted after bounded backoff (`execute_with_retry`). |
//! | `doacross_store_quarantines_total` | counter | — | Corrupt warm-start stores renamed aside (`.corrupt-<n>`). |
//! | `doacross_pool_dispatches_total` | counter | `pool` | Solves routed per scheduler sub-pool (bounded; overflow aggregates under `pool="other"`). |
//! | `doacross_pool_steals_total` | counter | — | Dispatches redirected by the work-stealing fallback (preferred sub-pool busy). |
//! | `doacross_pool_wait_ns` | histogram | — | Time spent waiting for a free sub-pool (0 on the lock-free fast path). |
//! | `doacross_pool_solve_ns` | histogram | `pool` | End-to-end solve latency per sub-pool (emitted once any multi-pool dispatch has been traced). |
//! | `doacross_batch_submissions_total` | counter | — | `execute_all` batches accepted. |
//! | `doacross_batch_jobs_total` | counter | — | Solve jobs submitted across all batches. |
//! | `doacross_batch_coalesced_total` | counter | — | Small (sequential-variant) jobs merged into coalesced pool regions. |
//! | `doacross_trace_events_total` | counter | — | Trace events ever emitted. |
//! | `doacross_trace_dropped_total` | counter | — | Trace events dropped to bound the ring. |
//! | `doacross_structure_solves_total` | counter | `fingerprint`, `variant` | Per-structure solve counts (bounded; overflow aggregates under `fingerprint="other"`). |
//! | `doacross_structure_solve_ns_total` | counter | `fingerprint`, `variant` | Per-structure total solve time. |
//!
//! Engines built with `EngineBuilder::profiling(..)` additionally render
//! the [`profile`] module's families (only once at least one solve has
//! been profiled, so unprofiled scrapes are byte-identical):
//! `doacross_profile_solves_total`, `doacross_profile_spans_total{kind}`,
//! `doacross_profile_dropped_spans_total`,
//! `doacross_profile_realized_critical_ns{variant}`,
//! `doacross_profile_priced_ns{variant}`, and the per-level
//! `doacross_profile_barrier_wait_ns{level}` histograms (levels past the
//! configured bound collapse under `level="other"`).
//!
//! The engine's `metrics_text()` prepends engine-sampled values that live
//! outside this registry (documented on the engine): `doacross_workers`,
//! `doacross_cache_plans`, `doacross_cache_capacity`,
//! `doacross_cache_shards`, `doacross_cache_hits_total`,
//! `doacross_cache_misses_total`, `doacross_cache_evictions_total`,
//! `doacross_cache_insertions_total`, and the adaptive decision gauges
//! sampled from `AdaptiveStats`.

// Audit posture: this crate needs no unsafe code; keep it that way.
#![forbid(unsafe_code)]
mod event;
mod flight;
pub mod metrics;
pub mod profile;
pub mod render;
mod trace;

pub use event::{
    CandidatePrices, ColdStartReason, FpId, ObsFault, ObsProvenance, ObsVariant, SolveOutcome,
    SolveRecord, TraceEvent, TracedEvent, VerifyRecord,
};
pub use metrics::{HistogramSnapshot, VariantLatency};

use flight::{FlightRecorder, VerifyRing};
use metrics::Registry;

/// Static `pool` label values for the bounded per-sub-pool series
/// (indices at or past [`metrics::MAX_POOL_SERIES`] render as `other`).
const POOL_LABELS: [&str; metrics::MAX_POOL_SERIES] = [
    "0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15",
];
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// A subscriber notified synchronously of every emitted [`TraceEvent`]
/// (after the registry and rings have absorbed it). Keep `on_event` cheap:
/// it runs on the emitting thread.
pub trait ObsSink: Send + Sync {
    fn on_event(&self, event: &TraceEvent);
}

/// Capacity knobs for the observability layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Total trace-ring capacity (events retained across all shards).
    pub trace_capacity: usize,
    /// Trace-ring shard count (rounded up to a power of two). More shards
    /// mean less producer contention; threads are assigned round-robin.
    pub trace_shards: usize,
    /// Flight-recorder capacity (recent solves retained).
    pub flight_capacity: usize,
    /// Per-fingerprint metric series bound; structures past it aggregate
    /// under the `fingerprint="other"` label.
    pub max_fingerprints: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            trace_capacity: 4096,
            trace_shards: 8,
            flight_capacity: 128,
            max_fingerprints: 64,
        }
    }
}

struct ObsInner {
    start: Instant,
    config: ObsConfig,
    trace: trace::TraceRing,
    registry: Registry,
    flight: FlightRecorder,
    verify: VerifyRing,
    sinks: RwLock<Vec<Arc<dyn ObsSink>>>,
    has_sinks: AtomicBool,
}

/// The observability handle. Cheap to clone (an `Option<Arc<_>>`); a
/// [`Obs::disabled`] handle makes every emit a single branch.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// A no-op handle: every emit is one branch, nothing is allocated.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled handle with the given capacities.
    pub fn new(config: ObsConfig) -> Self {
        Self {
            inner: Some(Arc::new(ObsInner {
                start: Instant::now(),
                config,
                trace: trace::TraceRing::new(config.trace_capacity, config.trace_shards),
                registry: Registry::default(),
                flight: FlightRecorder::new(config.flight_capacity),
                verify: VerifyRing::new(config.flight_capacity),
                sinks: RwLock::new(Vec::new()),
                has_sinks: AtomicBool::new(false),
            })),
        }
    }

    /// Whether events are being recorded. Call sites use this to skip
    /// event *construction* (reading clocks, cloning fingerprints) when
    /// observability is off.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The configuration this handle was built with (`None` if disabled).
    pub fn config(&self) -> Option<ObsConfig> {
        self.inner.as_ref().map(|i| i.config)
    }

    /// Registers a subscriber for all future events.
    pub fn add_sink(&self, sink: Arc<dyn ObsSink>) {
        if let Some(inner) = &self.inner {
            let mut sinks = match inner.sinks.write() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            sinks.push(sink);
            inner.has_sinks.store(true, Ordering::Release);
        }
    }

    /// Records `event`: updates the metrics registry, appends to the
    /// trace ring, feeds the flight recorder (for
    /// [`TraceEvent::SolveFinished`]), and notifies sinks. A no-op on a
    /// disabled handle.
    pub fn emit(&self, event: TraceEvent) {
        let Some(inner) = &self.inner else { return };
        let at_ns = inner.start.elapsed().as_nanos() as u64;
        match &event {
            TraceEvent::SolveFinished { record } => {
                inner
                    .registry
                    .record_solve(record, inner.config.max_fingerprints);
                inner.flight.push(*record);
            }
            TraceEvent::PlanBuilt {
                variant, build_ns, ..
            } => inner.registry.record_plan_built(*variant, *build_ns),
            TraceEvent::CacheInvalidated { .. } => {
                inner
                    .registry
                    .cache_invalidations_total
                    .fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::PlanSwapped { .. } => {
                inner
                    .registry
                    .plan_swaps_total
                    .fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::StoreSaved { plans } => {
                inner
                    .registry
                    .store_saves_total
                    .fetch_add(1, Ordering::Relaxed);
                inner
                    .registry
                    .store_plans_saved_total
                    .fetch_add(*plans, Ordering::Relaxed);
            }
            TraceEvent::StoreLoaded { restored, .. } => {
                inner
                    .registry
                    .store_loads_total
                    .fetch_add(1, Ordering::Relaxed);
                inner
                    .registry
                    .store_plans_restored_total
                    .fetch_add(*restored, Ordering::Relaxed);
            }
            TraceEvent::ColdStart { .. } => {
                inner
                    .registry
                    .cold_starts_total
                    .fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::PlanVerified { sound, .. } => {
                let counter = if *sound {
                    &inner.registry.verify_passes_total
                } else {
                    &inner.registry.verify_failures_total
                };
                counter.fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::Divergence { .. } => {
                inner
                    .registry
                    .divergences_total
                    .fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::TrialStarted { .. } => {
                inner
                    .registry
                    .trials_started_total
                    .fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::TrialCommitted { .. } => {
                inner
                    .registry
                    .trials_committed_total
                    .fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::TrialDemoted { .. } => {
                inner
                    .registry
                    .trials_demoted_total
                    .fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::BaselineProbed { .. } => {
                inner
                    .registry
                    .baseline_probes_total
                    .fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::PoolDispatched {
                pool,
                stolen,
                wait_ns,
            } => {
                inner
                    .registry
                    .record_pool_dispatch(*pool, *stolen, *wait_ns);
            }
            TraceEvent::BatchSubmitted { jobs, coalesced } => {
                inner.registry.record_batch(*jobs, *coalesced);
            }
            TraceEvent::SolvePoisoned { fault, .. } => {
                let counter = match fault {
                    ObsFault::WorkerPanic { .. } => &inner.registry.fault_panics_total,
                    ObsFault::DeadlineExpired => &inner.registry.fault_timeouts_total,
                };
                counter.fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::SolveFellBack { .. } => {
                inner
                    .registry
                    .fault_fallbacks_total
                    .fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::SolveRetried { .. } => {
                inner.registry.retry_total.fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::StoreQuarantined { .. } => {
                inner
                    .registry
                    .store_quarantines_total
                    .fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::CacheHit { .. }
            | TraceEvent::CacheMiss { .. }
            | TraceEvent::CacheEvicted { .. } => {
                // Counted by the cache's own exact CacheStats, which the
                // engine samples at scrape time; the registry does not
                // duplicate them. The trace ring still records each one.
            }
            TraceEvent::SolveProfiled { .. } => {
                // Counted by the engine's Profiler, which renders its own
                // doacross_profile_* families; the registry does not
                // duplicate them. The ring and sinks still see the event.
            }
        }
        inner.trace.push(at_ns, event);
        if inner.has_sinks.load(Ordering::Acquire) {
            let sinks = match inner.sinks.read() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            for sink in sinks.iter() {
                sink.on_event(&event);
            }
        }
    }

    /// Snapshot of the retained trace events, oldest first.
    pub fn trace_events(&self) -> Vec<TracedEvent> {
        self.inner
            .as_ref()
            .map(|i| i.trace.snapshot())
            .unwrap_or_default()
    }

    /// Retained flight-recorder solves, oldest first.
    pub fn recent_solves(&self) -> Vec<SolveRecord> {
        self.inner
            .as_ref()
            .map(|i| i.flight.snapshot())
            .unwrap_or_default()
    }

    /// Deposits a plan-soundness verdict into the verify ring (the
    /// flight recorder's parallel ring — latest verdict per
    /// fingerprint). A no-op on a disabled handle; the caller emits the
    /// matching [`TraceEvent::PlanVerified`] separately.
    pub fn record_verification(&self, record: VerifyRecord) {
        if let Some(inner) = &self.inner {
            inner.verify.push(record);
        }
    }

    /// Retained verification verdicts, oldest first — at most one (the
    /// latest) per fingerprint. Empty when observability is disabled.
    pub fn recent_verifications(&self) -> Vec<VerifyRecord> {
        self.inner
            .as_ref()
            .map(|i| i.verify.snapshot())
            .unwrap_or_default()
    }

    /// Per-variant solve-latency histograms (only variants with at least
    /// one recorded solve).
    pub fn solve_latency(&self) -> Vec<VariantLatency> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        ObsVariant::ALL
            .iter()
            .filter_map(|&v| {
                let (buckets, sum_ns, count) = inner.registry.solve_ns[v.index()].snapshot();
                (count > 0).then_some(VariantLatency {
                    variant: v,
                    histogram: HistogramSnapshot {
                        buckets,
                        sum_ns,
                        count,
                    },
                })
            })
            .collect()
    }

    /// Renders the registry in Prometheus text-exposition format into
    /// `buf`. The metric names are documented at the crate root. A no-op
    /// on a disabled handle.
    pub fn render_prometheus(&self, buf: &mut String) {
        let Some(inner) = &self.inner else { return };
        let r = &inner.registry;
        let load = |a: &std::sync::atomic::AtomicU64| a.load(Ordering::Relaxed);

        let mut solve_samples: Vec<([(&str, &str); 2], u64)> = Vec::new();
        for v in ObsVariant::ALL {
            for p in ObsProvenance::ALL {
                let n = load(&r.solves[v.index()][p.index()]);
                if n > 0 {
                    solve_samples.push(([("variant", v.as_str()), ("provenance", p.as_str())], n));
                }
            }
        }
        let solve_refs: Vec<(&[(&str, &str)], u64)> =
            solve_samples.iter().map(|(l, n)| (&l[..], *n)).collect();
        render::counter_family(
            buf,
            "doacross_solves_total",
            "Completed solves by executor variant and plan provenance.",
            &solve_refs,
        );

        let latencies = self.solve_latency();
        let latency_labels: Vec<[(&str, &str); 1]> = latencies
            .iter()
            .map(|l| [("variant", l.variant.as_str())])
            .collect();
        let latency_refs: Vec<(&[(&str, &str)], &HistogramSnapshot)> = latencies
            .iter()
            .zip(latency_labels.iter())
            .map(|(l, labels)| (&labels[..], &l.histogram))
            .collect();
        render::histogram_family(
            buf,
            "doacross_solve_ns",
            "End-to-end solve latency in nanoseconds, by executor variant.",
            &latency_refs,
        );

        render::counter(
            buf,
            "doacross_wait_polls_total",
            "Busy-wait poll loops across all solves (flag-based variants).",
            load(&r.wait_polls_total),
        );
        render::counter(
            buf,
            "doacross_stalls_total",
            "Busy-wait stall events across all solves.",
            load(&r.stalls_total),
        );
        render::counter(
            buf,
            "doacross_barrier_crossings_total",
            "Wavefront barrier crossings across all solves.",
            load(&r.barrier_crossings_total),
        );

        let build_samples: Vec<([(&str, &str); 1], u64)> = ObsVariant::ALL
            .iter()
            .filter_map(|&v| {
                let n = load(&r.plan_builds[v.index()]);
                (n > 0).then_some(([("variant", v.as_str())], n))
            })
            .collect();
        let build_refs: Vec<(&[(&str, &str)], u64)> =
            build_samples.iter().map(|(l, n)| (&l[..], *n)).collect();
        render::counter_family(
            buf,
            "doacross_plan_builds_total",
            "Execution plans built, by chosen variant.",
            &build_refs,
        );
        let (buckets, sum_ns, count) = r.plan_build_ns.snapshot();
        let build_hist = HistogramSnapshot {
            buckets,
            sum_ns,
            count,
        };
        render::histogram_family(
            buf,
            "doacross_plan_build_ns",
            "Plan build (preprocessing) latency in nanoseconds.",
            &[(&[], &build_hist)],
        );

        render::counter(
            buf,
            "doacross_cache_invalidations_total",
            "Explicit plan invalidations.",
            load(&r.cache_invalidations_total),
        );
        render::counter(
            buf,
            "doacross_plan_swaps_total",
            "Adaptive in-place plan replacements.",
            load(&r.plan_swaps_total),
        );
        render::counter(
            buf,
            "doacross_store_saves_total",
            "Plan-store save operations.",
            load(&r.store_saves_total),
        );
        render::counter(
            buf,
            "doacross_store_loads_total",
            "Plan-store load operations.",
            load(&r.store_loads_total),
        );
        render::counter(
            buf,
            "doacross_store_plans_saved_total",
            "Plans written across all saves.",
            load(&r.store_plans_saved_total),
        );
        render::counter(
            buf,
            "doacross_store_plans_restored_total",
            "Plans admitted to the cache across all loads.",
            load(&r.store_plans_restored_total),
        );
        render::counter(
            buf,
            "doacross_cold_starts_total",
            "Warm starts that fell back to an empty cache.",
            load(&r.cold_starts_total),
        );
        render::counter(
            buf,
            "doacross_verify_passes_total",
            "Plan schedules the soundness verifier proved sound.",
            load(&r.verify_passes_total),
        );
        render::counter(
            buf,
            "doacross_verify_failures_total",
            "Plan schedules the soundness verifier rejected.",
            load(&r.verify_failures_total),
        );
        render::counter(
            buf,
            "doacross_divergences_total",
            "Adaptive divergence detections.",
            load(&r.divergences_total),
        );
        render::counter(
            buf,
            "doacross_trials_started_total",
            "Adaptive challenger trials started.",
            load(&r.trials_started_total),
        );
        render::counter(
            buf,
            "doacross_trials_committed_total",
            "Adaptive trials committed.",
            load(&r.trials_committed_total),
        );
        render::counter(
            buf,
            "doacross_trials_demoted_total",
            "Adaptive trials rolled back.",
            load(&r.trials_demoted_total),
        );
        render::counter(
            buf,
            "doacross_baseline_probes_total",
            "Deliberate adaptive baseline re-measurements.",
            load(&r.baseline_probes_total),
        );
        render::counter(
            buf,
            "doacross_fault_panics_total",
            "Parallel attempts abandoned because a worker panicked.",
            load(&r.fault_panics_total),
        );
        render::counter(
            buf,
            "doacross_fault_timeouts_total",
            "Parallel attempts abandoned because the solve deadline expired.",
            load(&r.fault_timeouts_total),
        );
        render::counter(
            buf,
            "doacross_fault_fallbacks_total",
            "Faulted attempts re-run successfully on the sequential variant.",
            load(&r.fault_fallbacks_total),
        );
        render::counter(
            buf,
            "doacross_retry_total",
            "Saturated solves re-submitted after bounded backoff.",
            load(&r.retry_total),
        );
        render::counter(
            buf,
            "doacross_store_quarantines_total",
            "Corrupt warm-start stores renamed aside.",
            load(&r.store_quarantines_total),
        );

        // Scheduler sub-pool and batch-submission series. The per-pool
        // families only appear once a dispatch has been traced, so a
        // single-pool engine's scrape is byte-for-byte what it was before
        // the scheduler existed.
        let mut pool_samples: Vec<([(&str, &str); 1], u64)> = Vec::new();
        for (i, c) in r.pool_dispatches.iter().enumerate() {
            let n = load(c);
            if n > 0 {
                pool_samples.push(([("pool", POOL_LABELS[i])], n));
            }
        }
        let overflow_dispatches = load(&r.pool_overflow_dispatches);
        if overflow_dispatches > 0 {
            pool_samples.push(([("pool", "other")], overflow_dispatches));
        }
        if !pool_samples.is_empty() {
            let pool_refs: Vec<(&[(&str, &str)], u64)> =
                pool_samples.iter().map(|(l, n)| (&l[..], *n)).collect();
            render::counter_family(
                buf,
                "doacross_pool_dispatches_total",
                "Solves routed per scheduler sub-pool (overflow under pool=\"other\").",
                &pool_refs,
            );
            render::counter(
                buf,
                "doacross_pool_steals_total",
                "Dispatches redirected by the work-stealing fallback.",
                load(&r.pool_steals_total),
            );
            let (buckets, sum_ns, count) = r.pool_wait_ns.snapshot();
            let wait_hist = HistogramSnapshot {
                buckets,
                sum_ns,
                count,
            };
            render::histogram_family(
                buf,
                "doacross_pool_wait_ns",
                "Time spent waiting for a free scheduler sub-pool in nanoseconds.",
                &[(&[], &wait_hist)],
            );
            let pool_latencies: Vec<([(&str, &str); 1], HistogramSnapshot)> = r
                .pool_solve_ns
                .iter()
                .enumerate()
                .filter_map(|(i, h)| {
                    let (buckets, sum_ns, count) = h.snapshot();
                    (count > 0).then_some((
                        [("pool", POOL_LABELS[i])],
                        HistogramSnapshot {
                            buckets,
                            sum_ns,
                            count,
                        },
                    ))
                })
                .collect();
            let pool_latency_refs: Vec<(&[(&str, &str)], &HistogramSnapshot)> = pool_latencies
                .iter()
                .map(|(labels, h)| (&labels[..], h))
                .collect();
            render::histogram_family(
                buf,
                "doacross_pool_solve_ns",
                "End-to-end solve latency in nanoseconds, by scheduler sub-pool.",
                &pool_latency_refs,
            );
        }
        let batch_submissions = load(&r.batch_submissions_total);
        if batch_submissions > 0 {
            render::counter(
                buf,
                "doacross_batch_submissions_total",
                "execute_all batches accepted.",
                batch_submissions,
            );
            render::counter(
                buf,
                "doacross_batch_jobs_total",
                "Solve jobs submitted across all batches.",
                load(&r.batch_jobs_total),
            );
            render::counter(
                buf,
                "doacross_batch_coalesced_total",
                "Small jobs merged into coalesced pool regions.",
                load(&r.batch_coalesced_total),
            );
        }

        render::counter(
            buf,
            "doacross_trace_events_total",
            "Trace events ever emitted.",
            inner.trace.pushed(),
        );
        render::counter(
            buf,
            "doacross_trace_dropped_total",
            "Trace events dropped to bound the ring.",
            inner.trace.dropped(),
        );

        // Per-structure series, fingerprint-sorted for a stable scrape.
        let map = match r.per_fp.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let mut rows: Vec<(String, [u64; 6], [u64; 6])> = map
            .iter()
            .map(|(fp, m)| {
                let solves = std::array::from_fn(|i| load(&m.solves[i]));
                let ns = std::array::from_fn(|i| load(&m.solve_ns_total[i]));
                (fp.to_string(), solves, ns)
            })
            .collect();
        drop(map);
        rows.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let overflow_solves: [u64; 6] = std::array::from_fn(|i| load(&r.overflow.solves[i]));
        let overflow_ns: [u64; 6] = std::array::from_fn(|i| load(&r.overflow.solve_ns_total[i]));
        if overflow_solves.iter().any(|&n| n > 0) {
            rows.push(("other".to_string(), overflow_solves, overflow_ns));
        }
        let mut solve_rows: Vec<([(&str, &str); 2], u64)> = Vec::new();
        let mut ns_rows: Vec<([(&str, &str); 2], u64)> = Vec::new();
        for (fp, solves, ns) in &rows {
            for v in ObsVariant::ALL {
                let n = solves[v.index()];
                if n > 0 {
                    solve_rows.push(([("fingerprint", fp), ("variant", v.as_str())], n));
                    ns_rows.push((
                        [("fingerprint", fp), ("variant", v.as_str())],
                        ns[v.index()],
                    ));
                }
            }
        }
        let solve_row_refs: Vec<(&[(&str, &str)], u64)> =
            solve_rows.iter().map(|(l, n)| (&l[..], *n)).collect();
        render::counter_family(
            buf,
            "doacross_structure_solves_total",
            "Per-structure solve counts (bounded; overflow under fingerprint=\"other\").",
            &solve_row_refs,
        );
        let ns_row_refs: Vec<(&[(&str, &str)], u64)> =
            ns_rows.iter().map(|(l, n)| (&l[..], *n)).collect();
        render::counter_family(
            buf,
            "doacross_structure_solve_ns_total",
            "Per-structure total solve time in nanoseconds.",
            &ns_row_refs,
        );
    }

    /// Renders the registry as a JSON object into `buf` (the engine wraps
    /// it with its sampled values). A no-op on a disabled handle appends
    /// `{}`.
    pub fn render_json(&self, buf: &mut String) {
        use std::fmt::Write as _;
        let Some(inner) = &self.inner else {
            buf.push_str("{}");
            return;
        };
        let r = &inner.registry;
        let load = |a: &std::sync::atomic::AtomicU64| a.load(Ordering::Relaxed);
        buf.push('{');
        buf.push_str("\"solves\":{");
        let mut first = true;
        for v in ObsVariant::ALL {
            for p in ObsProvenance::ALL {
                let n = load(&r.solves[v.index()][p.index()]);
                if n > 0 {
                    if !first {
                        buf.push(',');
                    }
                    first = false;
                    let _ = write!(buf, "\"{}/{}\":{}", v.as_str(), p.as_str(), n);
                }
            }
        }
        buf.push_str("},\"solve_ns\":{");
        let latencies = self.solve_latency();
        for (i, l) in latencies.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            let _ = write!(
                buf,
                "\"{}\":{{\"count\":{},\"sum_ns\":{},\"buckets\":[",
                l.variant.as_str(),
                l.histogram.count,
                l.histogram.sum_ns
            );
            for (j, b) in l.histogram.buckets.iter().enumerate() {
                if j > 0 {
                    buf.push(',');
                }
                let _ = write!(buf, "{b}");
            }
            buf.push_str("]}");
        }
        buf.push_str("},\"counters\":{");
        let pool_dispatches_total =
            r.pool_dispatches.iter().map(load).sum::<u64>() + load(&r.pool_overflow_dispatches);
        let counters: [(&str, u64); 28] = [
            ("wait_polls", load(&r.wait_polls_total)),
            ("stalls", load(&r.stalls_total)),
            ("barrier_crossings", load(&r.barrier_crossings_total)),
            ("cache_invalidations", load(&r.cache_invalidations_total)),
            ("plan_swaps", load(&r.plan_swaps_total)),
            ("store_saves", load(&r.store_saves_total)),
            ("store_loads", load(&r.store_loads_total)),
            ("store_plans_saved", load(&r.store_plans_saved_total)),
            ("store_plans_restored", load(&r.store_plans_restored_total)),
            ("cold_starts", load(&r.cold_starts_total)),
            ("verify_passes", load(&r.verify_passes_total)),
            ("verify_failures", load(&r.verify_failures_total)),
            ("divergences", load(&r.divergences_total)),
            ("trials_started", load(&r.trials_started_total)),
            ("trials_committed", load(&r.trials_committed_total)),
            ("trials_demoted", load(&r.trials_demoted_total)),
            ("baseline_probes", load(&r.baseline_probes_total)),
            ("pool_dispatches", pool_dispatches_total),
            ("pool_steals", load(&r.pool_steals_total)),
            ("batch_submissions", load(&r.batch_submissions_total)),
            ("batch_jobs", load(&r.batch_jobs_total)),
            ("batch_coalesced", load(&r.batch_coalesced_total)),
            ("fault_panics", load(&r.fault_panics_total)),
            ("fault_timeouts", load(&r.fault_timeouts_total)),
            ("fault_fallbacks", load(&r.fault_fallbacks_total)),
            ("retries", load(&r.retry_total)),
            ("store_quarantines", load(&r.store_quarantines_total)),
            ("trace_dropped", inner.trace.dropped()),
        ];
        for (i, (name, value)) in counters.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            let _ = write!(buf, "\"{name}\":{value}");
        }
        buf.push_str("},\"recent_solves\":[");
        for (i, s) in self.recent_solves().iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            let _ = write!(
                buf,
                "{{\"fingerprint\":\"{}\",\"variant\":\"{}\",\"provenance\":\"{}\",\"generation\":{},\"total_ns\":{},\"stalls\":{},\"wait_polls\":{},\"barrier_crossings\":{},\"pool\":{},\"outcome\":\"{}\"}}",
                s.fp,
                s.variant.as_str(),
                s.provenance.as_str(),
                s.generation,
                s.total_ns,
                s.stalls,
                s.wait_polls,
                s.barrier_crossings,
                s.pool,
                s.outcome.as_str()
            );
        }
        buf.push_str("]}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn solve_event(fp: FpId, variant: ObsVariant, ns: u64) -> TraceEvent {
        TraceEvent::SolveFinished {
            record: SolveRecord {
                fp,
                variant,
                provenance: ObsProvenance::PlanCached,
                generation: 1,
                total_ns: ns,
                inspector_ns: 0,
                executor_ns: ns,
                post_ns: 0,
                iterations: 10,
                workers: 2,
                stalls: 1,
                wait_polls: 3,
                barrier_crossings: 0,
                pool: 0,
                outcome: SolveOutcome::Ok,
            },
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        obs.emit(solve_event(FpId(1, 2), ObsVariant::Doacross, 100));
        assert!(obs.trace_events().is_empty());
        assert!(obs.recent_solves().is_empty());
        let mut buf = String::new();
        obs.render_prometheus(&mut buf);
        assert!(buf.is_empty());
        obs.render_json(&mut buf);
        assert_eq!(buf, "{}");
    }

    #[test]
    fn emit_feeds_registry_ring_and_flight() {
        let obs = Obs::new(ObsConfig::default());
        obs.emit(solve_event(
            FpId(0xabc, 0xdef),
            ObsVariant::Wavefront,
            5_000,
        ));
        obs.emit(TraceEvent::CacheHit {
            fp: FpId(0xabc, 0xdef),
        });
        assert_eq!(obs.trace_events().len(), 2);
        let solves = obs.recent_solves();
        assert_eq!(solves.len(), 1);
        assert_eq!(solves[0].variant, ObsVariant::Wavefront);
        let mut buf = String::new();
        obs.render_prometheus(&mut buf);
        assert!(buf
            .contains("doacross_solves_total{variant=\"wavefront\",provenance=\"plan_cached\"} 1"));
        assert!(buf.contains("doacross_solve_ns_bucket{variant=\"wavefront\",le=\"+Inf\"} 1"));
        assert!(buf.contains("doacross_wait_polls_total 3"));
        assert!(buf.contains("doacross_trace_events_total 2"));
        assert!(buf.contains("doacross_structure_solves_total{fingerprint=\"0000000000000abc0000000000000def\",variant=\"wavefront\"} 1"));
    }

    #[test]
    fn sinks_see_every_event() {
        struct Counting(AtomicUsize);
        impl ObsSink for Counting {
            fn on_event(&self, _event: &TraceEvent) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let obs = Obs::new(ObsConfig::default());
        let sink = Arc::new(Counting(AtomicUsize::new(0)));
        obs.add_sink(sink.clone());
        obs.emit(TraceEvent::CacheMiss { fp: FpId(1, 1) });
        obs.emit(solve_event(FpId(1, 1), ObsVariant::Sequential, 10));
        assert_eq!(sink.0.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn pool_and_batch_series_render_once_dispatched() {
        let obs = Obs::new(ObsConfig::default());
        // Before any dispatch, no pool/batch families at all — a
        // single-pool engine's scrape is unchanged.
        let mut quiet = String::new();
        obs.render_prometheus(&mut quiet);
        assert!(!quiet.contains("doacross_pool_"));
        assert!(!quiet.contains("doacross_batch_"));

        obs.emit(TraceEvent::PoolDispatched {
            pool: 1,
            stolen: true,
            wait_ns: 500,
        });
        obs.emit(TraceEvent::BatchSubmitted {
            jobs: 4,
            coalesced: 3,
        });
        obs.emit(solve_event(FpId(1, 1), ObsVariant::Sequential, 10));
        let mut buf = String::new();
        obs.render_prometheus(&mut buf);
        assert!(buf.contains("doacross_pool_dispatches_total{pool=\"1\"} 1"));
        assert!(buf.contains("doacross_pool_steals_total 1"));
        assert!(buf.contains("doacross_pool_wait_ns_count 1"));
        assert!(buf.contains("doacross_pool_solve_ns_bucket{pool=\"0\",le=\"+Inf\"} 1"));
        assert!(buf.contains("doacross_batch_submissions_total 1"));
        assert!(buf.contains("doacross_batch_jobs_total 4"));
        assert!(buf.contains("doacross_batch_coalesced_total 3"));

        let mut json = String::new();
        obs.render_json(&mut json);
        assert!(json.contains("\"pool_dispatches\":1"));
        assert!(json.contains("\"pool_steals\":1"));
        assert!(json.contains("\"batch_jobs\":4"));
    }

    #[test]
    fn json_is_parseable_shape() {
        let obs = Obs::new(ObsConfig::default());
        obs.emit(solve_event(FpId(7, 7), ObsVariant::Linear, 42));
        let mut buf = String::new();
        obs.render_json(&mut buf);
        assert!(buf.starts_with('{') && buf.ends_with('}'));
        assert!(buf.contains("\"solves\":{\"linear/plan_cached\":1}"));
        assert!(buf
            .contains("\"recent_solves\":[{\"fingerprint\":\"00000000000000070000000000000007\""));
    }
}
