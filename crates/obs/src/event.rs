//! The trace vocabulary: every structured event the engine can emit.
//!
//! This crate deliberately owns its own copies of the engine's small
//! enums ([`ObsVariant`], [`ObsProvenance`]) instead of depending on
//! `doacross-plan` / `doacross-core` — the observability layer sits *below*
//! every other crate in the dependency graph so all of them can emit into
//! it. The producing crates provide `From` conversions on their side.

/// A pattern fingerprint reduced to its two independent 64-bit hash
/// streams — enough to identify a structure in traces and metric labels
/// without depending on the planner's full fingerprint type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FpId(pub u64, pub u64);

impl std::fmt::Display for FpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.0, self.1)
    }
}

/// Executor variant families, mirroring the planner's `PlanVariant` (and
/// the adaptive layer's `VariantKind`) without their payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObsVariant {
    Sequential,
    Doacross,
    Linear,
    Reordered,
    Blocked,
    Wavefront,
}

impl ObsVariant {
    /// All variants, in [`ObsVariant::index`] order.
    pub const ALL: [ObsVariant; 6] = [
        ObsVariant::Sequential,
        ObsVariant::Doacross,
        ObsVariant::Linear,
        ObsVariant::Reordered,
        ObsVariant::Blocked,
        ObsVariant::Wavefront,
    ];

    /// Dense index (0..6) for per-variant metric arrays.
    pub fn index(self) -> usize {
        match self {
            ObsVariant::Sequential => 0,
            ObsVariant::Doacross => 1,
            ObsVariant::Linear => 2,
            ObsVariant::Reordered => 3,
            ObsVariant::Blocked => 4,
            ObsVariant::Wavefront => 5,
        }
    }

    /// The `variant` metric-label value.
    pub fn as_str(self) -> &'static str {
        match self {
            ObsVariant::Sequential => "sequential",
            ObsVariant::Doacross => "doacross",
            ObsVariant::Linear => "linear",
            ObsVariant::Reordered => "reordered",
            ObsVariant::Blocked => "blocked",
            ObsVariant::Wavefront => "wavefront",
        }
    }
}

impl std::fmt::Display for ObsVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a solve's plan came from, mirroring `RunStats`' `PlanProvenance`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObsProvenance {
    /// No plan involved: inspector ran inline with the executor.
    Inline,
    /// A plan was built for this solve (cache miss).
    PlanCold,
    /// A previously built plan was reused (cache hit).
    PlanCached,
}

impl ObsProvenance {
    /// All provenances, in [`ObsProvenance::index`] order.
    pub const ALL: [ObsProvenance; 3] = [
        ObsProvenance::Inline,
        ObsProvenance::PlanCold,
        ObsProvenance::PlanCached,
    ];

    /// Dense index (0..3) for per-provenance metric arrays.
    pub fn index(self) -> usize {
        match self {
            ObsProvenance::Inline => 0,
            ObsProvenance::PlanCold => 1,
            ObsProvenance::PlanCached => 2,
        }
    }

    /// The `provenance` metric-label value.
    pub fn as_str(self) -> &'static str {
        match self {
            ObsProvenance::Inline => "inline",
            ObsProvenance::PlanCold => "plan_cold",
            ObsProvenance::PlanCached => "plan_cached",
        }
    }
}

impl std::fmt::Display for ObsProvenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why the engine started with an empty cache despite a configured
/// warm-start store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColdStartReason {
    /// The store file did not exist yet (first run).
    NotFound,
    /// The store file was written by an incompatible format version.
    VersionMismatch,
    /// The store file failed to parse (truncated or corrupted); it was
    /// quarantined (renamed aside) so the next boot does not retry it.
    Corrupt,
}

impl ColdStartReason {
    pub fn as_str(self) -> &'static str {
        match self {
            ColdStartReason::NotFound => "not_found",
            ColdStartReason::VersionMismatch => "version_mismatch",
            ColdStartReason::Corrupt => "corrupt",
        }
    }
}

/// Why a parallel solve attempt was abandoned mid-region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsFault {
    /// A pool worker panicked; siblings drained via the poison protocol.
    WorkerPanic {
        /// Worker index within the sub-pool (first cause wins).
        worker: u64,
    },
    /// The solve deadline expired before the region completed.
    DeadlineExpired,
}

/// How a solve attempt ended, as kept by the flight recorder.
///
/// `Ok` and `FellBack` delivered a correct answer (the latter on the
/// sequential retry after a contained fault); the others are failures
/// whose records carry partial stats for the attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolveOutcome {
    /// The solve completed normally.
    #[default]
    Ok,
    /// A worker panicked mid-region; the attempt was abandoned.
    Panicked,
    /// The solve deadline expired; the attempt was abandoned.
    TimedOut,
    /// A faulted parallel attempt was retried sequentially and succeeded.
    FellBack,
    /// Admission control rejected the solve (every sub-pool busy).
    Saturated,
}

impl SolveOutcome {
    /// The `outcome` label / JSON value.
    pub fn as_str(self) -> &'static str {
        match self {
            SolveOutcome::Ok => "ok",
            SolveOutcome::Panicked => "panicked",
            SolveOutcome::TimedOut => "timed_out",
            SolveOutcome::FellBack => "fell_back",
            SolveOutcome::Saturated => "saturated",
        }
    }

    /// Whether the record carries a correct completed solve (its stats
    /// belong in the latency histograms and throughput counters).
    pub fn delivered(self) -> bool {
        matches!(self, SolveOutcome::Ok | SolveOutcome::FellBack)
    }
}

/// One completed solve, as kept by the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveRecord {
    /// Fingerprint of the solved structure.
    pub fp: FpId,
    /// Variant that executed.
    pub variant: ObsVariant,
    /// Where the plan came from.
    pub provenance: ObsProvenance,
    /// Cache generation of the plan at execute time.
    pub generation: u64,
    /// Wall time of the whole solve.
    pub total_ns: u64,
    /// Inspector (preprocessing) share.
    pub inspector_ns: u64,
    /// Executor share.
    pub executor_ns: u64,
    /// Post-processing (gather/reduce) share.
    pub post_ns: u64,
    /// Iterations executed.
    pub iterations: u64,
    /// Workers the solve ran on.
    pub workers: u64,
    /// Busy-wait stall events (flag-based variants).
    pub stalls: u64,
    /// Busy-wait poll loops (flag-based variants).
    pub wait_polls: u64,
    /// Barrier crossings (wavefront variant; 0 elsewhere).
    pub barrier_crossings: u64,
    /// Scheduler sub-pool the solve was dispatched to (0 on a
    /// single-pool engine).
    pub pool: u64,
    /// How the attempt ended. Non-[`SolveOutcome::Ok`] records carry
    /// partial stats (`total_ns` of the failed attempt; zeros elsewhere).
    pub outcome: SolveOutcome,
}

/// One plan-soundness verification, as kept by the verify ring (the
/// flight recorder's parallel ring — latest verdict per fingerprint).
/// Sound records carry the verified dependence census; unsound records
/// carry zeros (the verifier stops at the first uncovered edge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyRecord {
    /// Fingerprint of the verified structure.
    pub fp: FpId,
    /// Variant of the verified plan.
    pub variant: ObsVariant,
    /// Whether the plan's synchronization schedule covered every
    /// dependence its index arrays imply.
    pub sound: bool,
    /// Right-hand-side references checked.
    pub references: u64,
    /// Flow (true) dependence edges covered.
    pub flow_edges: u64,
    /// Antidependence edges covered.
    pub anti_edges: u64,
    /// Intra-iteration references routed to the accumulator.
    pub intra_refs: u64,
    /// References to elements no iteration writes.
    pub unwritten_refs: u64,
    /// Output-dependence pairs covered (blocked variant only).
    pub output_pairs: u64,
}

/// Per-candidate predicted prices recorded with a plan build, indexed by
/// [`ObsVariant::index`]; `None` = the planner never priced that family.
pub type CandidatePrices = [Option<f64>; 6];

/// A structured event. Everything the engine does that changes plan or
/// policy state emits exactly one of these.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// The planner built a plan: the full decision record, including the
    /// losing candidates' prices.
    PlanBuilt {
        fp: FpId,
        variant: ObsVariant,
        build_ns: u64,
        iterations: u64,
        true_deps: u64,
        critical_path: u64,
        chosen_price: f64,
        candidate_prices: CandidatePrices,
    },
    /// A plan's synchronization schedule was run through the soundness
    /// verifier (`doacross-verify`): at build, at persisted-store load, on
    /// `Engine::verify_plan`, or gating an adaptive promotion.
    PlanVerified {
        fp: FpId,
        variant: ObsVariant,
        /// Whether the schedule proved sound; an unsound verdict carries
        /// the structured violation on the erroring path, not here.
        sound: bool,
    },
    /// Plan cache served an existing plan.
    CacheHit { fp: FpId },
    /// Plan cache had no usable plan; a build followed.
    CacheMiss { fp: FpId },
    /// LRU capacity pushed a plan out.
    CacheEvicted { fp: FpId },
    /// A plan was explicitly invalidated; `dropped` is false when the
    /// fingerprint was not resident (generation still advances).
    CacheInvalidated {
        fp: FpId,
        generation: u64,
        dropped: bool,
    },
    /// The adaptive layer atomically replaced a plan (same fingerprint,
    /// new variant, bumped generation).
    PlanSwapped {
        fp: FpId,
        variant: ObsVariant,
        generation: u64,
    },
    /// Cache contents persisted to a store.
    StoreSaved { plans: u64 },
    /// A store was read and its plans offered to the cache; `restored`
    /// counts those actually admitted.
    StoreLoaded { plans: u64, restored: u64 },
    /// A warm-start store was configured but unusable; the engine started
    /// cold.
    ColdStart { reason: ColdStartReason },
    /// Adaptive: measured cost diverged from the static model's
    /// prediction for the committed variant.
    Divergence {
        fp: FpId,
        variant: ObsVariant,
        static_price: f64,
        refined_price: f64,
    },
    /// Adaptive: a challenger variant entered trial.
    TrialStarted {
        fp: FpId,
        challenger: ObsVariant,
        incumbent: ObsVariant,
    },
    /// Adaptive: the trial variant won and was committed.
    TrialCommitted { fp: FpId, variant: ObsVariant },
    /// Adaptive: the trial variant lost and the incumbent was restored.
    TrialDemoted { fp: FpId, variant: ObsVariant },
    /// Adaptive: a deliberate baseline re-measurement ran.
    BaselineProbed { fp: FpId, ns: u64 },
    /// A solve finished; also feeds the flight recorder and the
    /// latency/counter metrics.
    SolveFinished { record: SolveRecord },
    /// The multi-pool scheduler routed a solve (or a coalesced batch
    /// region) to a sub-pool. Emitted by multi-pool engines and the
    /// batched-submission path; single-pool direct executes stay silent
    /// so their trace reads exactly as before.
    PoolDispatched {
        /// Sub-pool index the work landed on.
        pool: u64,
        /// Whether the work-stealing fallback redirected it there (the
        /// preferred sub-pool was busy).
        stolen: bool,
        /// Nanoseconds spent waiting for a free sub-pool (0 on the
        /// lock-free fast path).
        wait_ns: u64,
    },
    /// `Engine::execute_all` accepted a batch: `jobs` solve jobs total,
    /// of which `coalesced` were small (sequential-variant) doalls merged
    /// into one pool region.
    BatchSubmitted { jobs: u64, coalesced: u64 },
    /// A parallel solve attempt was abandoned: a worker panicked or the
    /// solve deadline expired, and the poison protocol drained the region
    /// into a typed error.
    SolvePoisoned {
        fp: FpId,
        variant: ObsVariant,
        /// Sub-pool the faulted attempt ran on.
        pool: u64,
        fault: ObsFault,
    },
    /// A faulted parallel attempt was re-run on the sequential variant
    /// against a fresh output buffer (graceful degradation).
    SolveFellBack {
        fp: FpId,
        /// The parallel variant that faulted.
        from: ObsVariant,
    },
    /// `execute_with_retry` re-submitted a saturated solve after backoff.
    SolveRetried {
        fp: FpId,
        /// 1-based retry number (the first retry is 1).
        attempt: u64,
    },
    /// A warm-start store failed to parse and was renamed aside
    /// (`<path>.corrupt-<index>`) so the next boot starts clean; a
    /// [`TraceEvent::ColdStart`] with [`ColdStartReason::Corrupt`]
    /// accompanies it.
    StoreQuarantined {
        /// Suffix index of the quarantine file.
        index: u64,
    },
    /// The profiler harvested a solve's span arena: the per-kind time
    /// attribution and realized critical path, as a summary event so
    /// streaming sinks see profiles without holding the full span vector.
    /// Only emitted by engines built with `profiling(..)`, so traces from
    /// unprofiled engines read exactly as before.
    SolveProfiled {
        fp: FpId,
        variant: ObsVariant,
        /// Longest realized per-worker chain of work + barrier waits,
        /// plus the dispatch wait.
        realized_critical_ns: u64,
        /// Total time across workers attributed to executing iterations.
        work_ns: u64,
        /// Total time across workers stalled on ready flags.
        flag_wait_ns: u64,
        /// Total time across workers stalled at wavefront barriers.
        barrier_wait_ns: u64,
        /// Time the solve waited for a free sub-pool before running.
        dispatch_wait_ns: u64,
        /// Spans harvested into the profile (after drop-oldest bounding).
        spans: u64,
    },
}

/// A trace-ring entry: the event plus its global sequence number and
/// time offset (nanoseconds since the `Obs` handle was created).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracedEvent {
    /// Global, strictly increasing sequence number (gaps mean drops).
    pub seq: u64,
    /// Nanoseconds since observability started.
    pub at_ns: u64,
    /// The event payload.
    pub event: TraceEvent,
}

impl TraceEvent {
    /// Short lowercase tag naming the event kind (for sinks and logs).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::PlanBuilt { .. } => "plan_built",
            TraceEvent::PlanVerified { .. } => "plan_verified",
            TraceEvent::CacheHit { .. } => "cache_hit",
            TraceEvent::CacheMiss { .. } => "cache_miss",
            TraceEvent::CacheEvicted { .. } => "cache_evicted",
            TraceEvent::CacheInvalidated { .. } => "cache_invalidated",
            TraceEvent::PlanSwapped { .. } => "plan_swapped",
            TraceEvent::StoreSaved { .. } => "store_saved",
            TraceEvent::StoreLoaded { .. } => "store_loaded",
            TraceEvent::ColdStart { .. } => "cold_start",
            TraceEvent::Divergence { .. } => "divergence",
            TraceEvent::TrialStarted { .. } => "trial_started",
            TraceEvent::TrialCommitted { .. } => "trial_committed",
            TraceEvent::TrialDemoted { .. } => "trial_demoted",
            TraceEvent::BaselineProbed { .. } => "baseline_probed",
            TraceEvent::SolveFinished { .. } => "solve_finished",
            TraceEvent::PoolDispatched { .. } => "pool_dispatched",
            TraceEvent::BatchSubmitted { .. } => "batch_submitted",
            TraceEvent::SolvePoisoned { .. } => "solve_poisoned",
            TraceEvent::SolveFellBack { .. } => "solve_fell_back",
            TraceEvent::SolveRetried { .. } => "solve_retried",
            TraceEvent::StoreQuarantined { .. } => "store_quarantined",
            TraceEvent::SolveProfiled { .. } => "solve_profiled",
        }
    }

    /// Appends the event as a single-line JSON object (`{"kind":...}`) —
    /// the NDJSON record format used by
    /// [`profile::StreamingSink`](crate::profile::StreamingSink). Every
    /// field of every variant is carried; fingerprints render as the same
    /// 32-hex-digit string used in metric labels.
    pub fn to_json(&self, buf: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(buf, "{{\"kind\":\"{}\"", self.kind());
        match self {
            TraceEvent::PlanBuilt {
                fp,
                variant,
                build_ns,
                iterations,
                true_deps,
                critical_path,
                chosen_price,
                candidate_prices,
            } => {
                let _ = write!(
                    buf,
                    ",\"fp\":\"{fp}\",\"variant\":\"{variant}\",\"build_ns\":{build_ns},\"iterations\":{iterations},\"true_deps\":{true_deps},\"critical_path\":{critical_path},\"chosen_price\":{chosen_price},\"candidate_prices\":{{"
                );
                let mut first = true;
                for v in ObsVariant::ALL {
                    if let Some(price) = candidate_prices[v.index()] {
                        if !first {
                            buf.push(',');
                        }
                        first = false;
                        let _ = write!(buf, "\"{v}\":{price}");
                    }
                }
                buf.push('}');
            }
            TraceEvent::PlanVerified { fp, variant, sound } => {
                let _ = write!(
                    buf,
                    ",\"fp\":\"{fp}\",\"variant\":\"{variant}\",\"sound\":{sound}"
                );
            }
            TraceEvent::CacheHit { fp }
            | TraceEvent::CacheMiss { fp }
            | TraceEvent::CacheEvicted { fp } => {
                let _ = write!(buf, ",\"fp\":\"{fp}\"");
            }
            TraceEvent::CacheInvalidated {
                fp,
                generation,
                dropped,
            } => {
                let _ = write!(
                    buf,
                    ",\"fp\":\"{fp}\",\"generation\":{generation},\"dropped\":{dropped}"
                );
            }
            TraceEvent::PlanSwapped {
                fp,
                variant,
                generation,
            } => {
                let _ = write!(
                    buf,
                    ",\"fp\":\"{fp}\",\"variant\":\"{variant}\",\"generation\":{generation}"
                );
            }
            TraceEvent::StoreSaved { plans } => {
                let _ = write!(buf, ",\"plans\":{plans}");
            }
            TraceEvent::StoreLoaded { plans, restored } => {
                let _ = write!(buf, ",\"plans\":{plans},\"restored\":{restored}");
            }
            TraceEvent::ColdStart { reason } => {
                let _ = write!(buf, ",\"reason\":\"{}\"", reason.as_str());
            }
            TraceEvent::Divergence {
                fp,
                variant,
                static_price,
                refined_price,
            } => {
                let _ = write!(
                    buf,
                    ",\"fp\":\"{fp}\",\"variant\":\"{variant}\",\"static_price\":{static_price},\"refined_price\":{refined_price}"
                );
            }
            TraceEvent::TrialStarted {
                fp,
                challenger,
                incumbent,
            } => {
                let _ = write!(
                    buf,
                    ",\"fp\":\"{fp}\",\"challenger\":\"{challenger}\",\"incumbent\":\"{incumbent}\""
                );
            }
            TraceEvent::TrialCommitted { fp, variant }
            | TraceEvent::TrialDemoted { fp, variant } => {
                let _ = write!(buf, ",\"fp\":\"{fp}\",\"variant\":\"{variant}\"");
            }
            TraceEvent::BaselineProbed { fp, ns } => {
                let _ = write!(buf, ",\"fp\":\"{fp}\",\"ns\":{ns}");
            }
            TraceEvent::SolveFinished { record } => {
                let _ = write!(
                    buf,
                    ",\"fp\":\"{}\",\"variant\":\"{}\",\"provenance\":\"{}\",\"generation\":{},\"total_ns\":{},\"inspector_ns\":{},\"executor_ns\":{},\"post_ns\":{},\"iterations\":{},\"workers\":{},\"stalls\":{},\"wait_polls\":{},\"barrier_crossings\":{},\"pool\":{},\"outcome\":\"{}\"",
                    record.fp,
                    record.variant,
                    record.provenance,
                    record.generation,
                    record.total_ns,
                    record.inspector_ns,
                    record.executor_ns,
                    record.post_ns,
                    record.iterations,
                    record.workers,
                    record.stalls,
                    record.wait_polls,
                    record.barrier_crossings,
                    record.pool,
                    record.outcome.as_str()
                );
            }
            TraceEvent::PoolDispatched {
                pool,
                stolen,
                wait_ns,
            } => {
                let _ = write!(
                    buf,
                    ",\"pool\":{pool},\"stolen\":{stolen},\"wait_ns\":{wait_ns}"
                );
            }
            TraceEvent::BatchSubmitted { jobs, coalesced } => {
                let _ = write!(buf, ",\"jobs\":{jobs},\"coalesced\":{coalesced}");
            }
            TraceEvent::SolvePoisoned {
                fp,
                variant,
                pool,
                fault,
            } => {
                let _ = write!(
                    buf,
                    ",\"fp\":\"{fp}\",\"variant\":\"{variant}\",\"pool\":{pool}"
                );
                match fault {
                    ObsFault::WorkerPanic { worker } => {
                        let _ = write!(buf, ",\"fault\":\"worker_panic\",\"worker\":{worker}");
                    }
                    ObsFault::DeadlineExpired => {
                        buf.push_str(",\"fault\":\"deadline_expired\"");
                    }
                }
            }
            TraceEvent::SolveFellBack { fp, from } => {
                let _ = write!(buf, ",\"fp\":\"{fp}\",\"from\":\"{from}\"");
            }
            TraceEvent::SolveRetried { fp, attempt } => {
                let _ = write!(buf, ",\"fp\":\"{fp}\",\"attempt\":{attempt}");
            }
            TraceEvent::StoreQuarantined { index } => {
                let _ = write!(buf, ",\"index\":{index}");
            }
            TraceEvent::SolveProfiled {
                fp,
                variant,
                realized_critical_ns,
                work_ns,
                flag_wait_ns,
                barrier_wait_ns,
                dispatch_wait_ns,
                spans,
            } => {
                let _ = write!(
                    buf,
                    ",\"fp\":\"{fp}\",\"variant\":\"{variant}\",\"realized_critical_ns\":{realized_critical_ns},\"work_ns\":{work_ns},\"flag_wait_ns\":{flag_wait_ns},\"barrier_wait_ns\":{barrier_wait_ns},\"dispatch_wait_ns\":{dispatch_wait_ns},\"spans\":{spans}"
                );
            }
        }
        buf.push('}');
    }
}
