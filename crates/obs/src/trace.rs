//! The bounded, sharded trace ring.
//!
//! Producers append whole [`TracedEvent`] records under a per-shard lock;
//! shards are assigned per thread (round-robin at first touch), so under
//! the engine's worker threads each shard is effectively single-writer
//! and the lock is uncontended. Each shard is a fixed-capacity ring that
//! drops its oldest record when full; drops are counted, never silent.
//! Snapshots lock shards one at a time and merge by sequence number, so a
//! reader never blocks more than one producer at once.

use crate::event::{TraceEvent, TracedEvent};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Round-robin thread → shard assignment, stable for a thread's lifetime.
static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
}

pub(crate) struct TraceRing {
    shards: Box<[Mutex<VecDeque<TracedEvent>>]>,
    /// Capacity per shard; total capacity is `shards.len() * per_shard`.
    per_shard: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
}

impl TraceRing {
    /// `capacity` is the total ring capacity; it is split evenly across
    /// `shards` (rounded up, minimum 1 per shard).
    pub(crate) fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let per_shard = capacity.div_ceil(shards).max(1);
        let shards = (0..shards)
            .map(|_| Mutex::new(VecDeque::with_capacity(per_shard)))
            .collect();
        Self {
            shards,
            per_shard,
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends `event`, assigning it the next global sequence number.
    /// Returns the assigned sequence number.
    pub(crate) fn push(&self, at_ns: u64, event: TraceEvent) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let shard = THREAD_SLOT.with(|s| *s) & (self.shards.len() - 1);
        let mut ring = match self.shards[shard].lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if ring.len() == self.per_shard {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(TracedEvent { seq, at_ns, event });
        seq
    }

    /// Total events ever pushed.
    pub(crate) fn pushed(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Events dropped to bound the ring.
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Snapshot of the retained events, oldest first (by sequence number).
    pub(crate) fn snapshot(&self) -> Vec<TracedEvent> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let ring = match shard.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            out.extend(ring.iter().copied());
        }
        out.sort_unstable_by_key(|e| e.seq);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FpId;

    #[test]
    fn drops_oldest_when_full() {
        let ring = TraceRing::new(4, 1);
        for i in 0..10 {
            ring.push(i, TraceEvent::CacheHit { fp: FpId(i, 0) });
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(snap[0].seq, 6);
        assert_eq!(snap[3].seq, 9);
        assert_eq!(ring.dropped(), 6);
        assert_eq!(ring.pushed(), 10);
    }

    #[test]
    fn snapshot_is_seq_ordered_across_threads() {
        // Capacity generous enough that no shard drops even if every
        // thread lands on the same shard (32 events < 32 per-shard cap).
        let ring = std::sync::Arc::new(TraceRing::new(128, 4));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for i in 0..8 {
                        ring.push(i, TraceEvent::CacheMiss { fp: FpId(t, i) });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 32);
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
    }
}
