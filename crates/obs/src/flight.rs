//! The solve flight recorder: a bounded ring of recent [`SolveRecord`]s
//! for post-hoc debugging (which structure, which variant, which plan
//! generation, and where the nanoseconds went — without re-running the
//! workload), plus the parallel [`VerifyRing`] holding the latest
//! plan-soundness verdict per fingerprint.

use crate::event::{SolveRecord, VerifyRecord};
use std::collections::VecDeque;
use std::sync::Mutex;

pub(crate) struct FlightRecorder {
    ring: Mutex<VecDeque<SolveRecord>>,
    capacity: usize,
}

impl FlightRecorder {
    pub(crate) fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
        }
    }

    pub(crate) fn push(&self, record: SolveRecord) {
        let mut ring = match self.ring.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// Retained records, oldest first.
    pub(crate) fn snapshot(&self) -> Vec<SolveRecord> {
        match self.ring.lock() {
            Ok(g) => g.iter().copied().collect(),
            Err(poisoned) => poisoned.into_inner().iter().copied().collect(),
        }
    }
}

/// The flight recorder's parallel verification ring: bounded, and keyed
/// by fingerprint — re-verifying a structure replaces its previous
/// verdict instead of duplicating it, so the ring reads as "the latest
/// soundness verdict for each recently verified structure".
pub(crate) struct VerifyRing {
    ring: Mutex<VecDeque<VerifyRecord>>,
    capacity: usize,
}

impl VerifyRing {
    pub(crate) fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
        }
    }

    pub(crate) fn push(&self, record: VerifyRecord) {
        let mut ring = match self.ring.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(pos) = ring.iter().position(|r| r.fp == record.fp) {
            ring.remove(pos);
        } else if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// Retained records, oldest verdict first.
    pub(crate) fn snapshot(&self) -> Vec<VerifyRecord> {
        match self.ring.lock() {
            Ok(g) => g.iter().copied().collect(),
            Err(poisoned) => poisoned.into_inner().iter().copied().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FpId, ObsProvenance, ObsVariant, SolveOutcome};

    fn record(i: u64) -> SolveRecord {
        SolveRecord {
            fp: FpId(i, i),
            variant: ObsVariant::Doacross,
            provenance: ObsProvenance::PlanCached,
            generation: i,
            total_ns: i * 10,
            inspector_ns: 0,
            executor_ns: i * 10,
            post_ns: 0,
            iterations: 100,
            workers: 4,
            stalls: 0,
            wait_polls: i,
            barrier_crossings: 0,
            pool: 0,
            outcome: SolveOutcome::Ok,
        }
    }

    #[test]
    fn keeps_the_most_recent_capacity_records() {
        let fr = FlightRecorder::new(3);
        for i in 0..8 {
            fr.push(record(i));
        }
        let snap = fr.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].generation, 5);
        assert_eq!(snap[2].generation, 7);
    }

    fn verify(fp: u64, sound: bool, flow: u64) -> VerifyRecord {
        VerifyRecord {
            fp: FpId(fp, fp),
            variant: ObsVariant::Doacross,
            sound,
            references: flow,
            flow_edges: flow,
            anti_edges: 0,
            intra_refs: 0,
            unwritten_refs: 0,
            output_pairs: 0,
        }
    }

    #[test]
    fn verify_ring_keeps_the_latest_verdict_per_fingerprint() {
        let ring = VerifyRing::new(3);
        ring.push(verify(1, true, 10));
        ring.push(verify(2, true, 20));
        ring.push(verify(1, false, 0)); // re-verdict replaces, not duplicates
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].fp, FpId(2, 2));
        assert_eq!(snap[1].fp, FpId(1, 1));
        assert!(!snap[1].sound);

        ring.push(verify(3, true, 30));
        ring.push(verify(4, true, 40)); // capacity 3: oldest (fp 2) drops
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 3);
        assert!(snap.iter().all(|r| r.fp != FpId(2, 2)));
    }
}
