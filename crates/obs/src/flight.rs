//! The solve flight recorder: a bounded ring of recent [`SolveRecord`]s
//! for post-hoc debugging (which structure, which variant, which plan
//! generation, and where the nanoseconds went — without re-running the
//! workload).

use crate::event::SolveRecord;
use std::collections::VecDeque;
use std::sync::Mutex;

pub(crate) struct FlightRecorder {
    ring: Mutex<VecDeque<SolveRecord>>,
    capacity: usize,
}

impl FlightRecorder {
    pub(crate) fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
        }
    }

    pub(crate) fn push(&self, record: SolveRecord) {
        let mut ring = match self.ring.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// Retained records, oldest first.
    pub(crate) fn snapshot(&self) -> Vec<SolveRecord> {
        match self.ring.lock() {
            Ok(g) => g.iter().copied().collect(),
            Err(poisoned) => poisoned.into_inner().iter().copied().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FpId, ObsProvenance, ObsVariant, SolveOutcome};

    fn record(i: u64) -> SolveRecord {
        SolveRecord {
            fp: FpId(i, i),
            variant: ObsVariant::Doacross,
            provenance: ObsProvenance::PlanCached,
            generation: i,
            total_ns: i * 10,
            inspector_ns: 0,
            executor_ns: i * 10,
            post_ns: 0,
            iterations: 100,
            workers: 4,
            stalls: 0,
            wait_polls: i,
            barrier_crossings: 0,
            pool: 0,
            outcome: SolveOutcome::Ok,
        }
    }

    #[test]
    fn keeps_the_most_recent_capacity_records() {
        let fr = FlightRecorder::new(3);
        for i in 0..8 {
            fr.push(record(i));
        }
        let snap = fr.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].generation, 5);
        assert_eq!(snap[2].generation, 7);
    }
}
