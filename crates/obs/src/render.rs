//! Prometheus text-exposition and JSON rendering helpers.
//!
//! The helpers are public so the engine can compose its own sampled
//! values (cache occupancy, adaptive decision counters, pool gauges) into
//! the same scrape document the registry renders into — one consistent
//! format, one escaping implementation.

use crate::metrics::{HistogramSnapshot, LATENCY_BUCKET_BOUNDS_NS};
use std::fmt::Write as _;

/// Escapes a label value per the Prometheus text format (backslash,
/// double-quote, newline).
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn write_header(buf: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(buf, "# HELP {name} {help}");
    let _ = writeln!(buf, "# TYPE {name} {kind}");
}

fn write_labels(buf: &mut String, labels: &[(&str, &str)]) {
    if labels.is_empty() {
        return;
    }
    buf.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        let _ = write!(buf, "{k}=\"{}\"", escape_label(v));
    }
    buf.push('}');
}

/// Renders one unlabeled counter sample with its HELP/TYPE header.
pub fn counter(buf: &mut String, name: &str, help: &str, value: u64) {
    write_header(buf, name, help, "counter");
    let _ = writeln!(buf, "{name} {value}");
}

/// Renders a counter family: one HELP/TYPE header, one sample per
/// `(labels, value)` entry. Entries with `value == 0` are still emitted —
/// a scraper distinguishing "never happened" from "not exported" needs
/// the zero.
pub fn counter_family(
    buf: &mut String,
    name: &str,
    help: &str,
    samples: &[(&[(&str, &str)], u64)],
) {
    write_header(buf, name, help, "counter");
    for (labels, value) in samples {
        buf.push_str(name);
        write_labels(buf, labels);
        let _ = writeln!(buf, " {value}");
    }
}

/// Renders one unlabeled gauge sample with its HELP/TYPE header.
pub fn gauge(buf: &mut String, name: &str, help: &str, value: u64) {
    write_header(buf, name, help, "gauge");
    let _ = writeln!(buf, "{name} {value}");
}

/// Renders a gauge family: one HELP/TYPE header, one sample per entry.
pub fn gauge_family(buf: &mut String, name: &str, help: &str, samples: &[(&[(&str, &str)], u64)]) {
    write_header(buf, name, help, "gauge");
    for (labels, value) in samples {
        buf.push_str(name);
        write_labels(buf, labels);
        let _ = writeln!(buf, " {value}");
    }
}

/// Renders a histogram family (one HELP/TYPE header, then per snapshot a
/// full cumulative `_bucket`/`_sum`/`_count` series under `labels`).
/// Bucket bounds are [`LATENCY_BUCKET_BOUNDS_NS`] plus `+Inf`.
pub fn histogram_family(
    buf: &mut String,
    name: &str,
    help: &str,
    series: &[(&[(&str, &str)], &HistogramSnapshot)],
) {
    write_header(buf, name, help, "histogram");
    for (labels, snap) in series {
        let mut cumulative = 0u64;
        for (i, &count) in snap.buckets.iter().enumerate() {
            cumulative += count;
            let le;
            let bound: &str = if i < LATENCY_BUCKET_BOUNDS_NS.len() {
                le = LATENCY_BUCKET_BOUNDS_NS[i].to_string();
                &le
            } else {
                "+Inf"
            };
            buf.push_str(name);
            buf.push_str("_bucket");
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            with_le.push(("le", bound));
            write_labels(buf, &with_le);
            let _ = writeln!(buf, " {cumulative}");
        }
        buf.push_str(name);
        buf.push_str("_sum");
        write_labels(buf, labels);
        let _ = writeln!(buf, " {}", snap.sum_ns);
        buf.push_str(name);
        buf.push_str("_count");
        write_labels(buf, labels);
        let _ = writeln!(buf, " {}", snap.count);
    }
}

/// Appends a JSON string literal (quoted, escaped) to `buf`.
pub fn json_string(buf: &mut String, value: &str) {
    buf.push('"');
    for c in value.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            _ => buf.push(c),
        }
    }
    buf.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_the_three_specials() {
        assert_eq!(escape_label("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }

    #[test]
    fn counter_family_emits_header_once_and_all_samples() {
        let mut buf = String::new();
        counter_family(
            &mut buf,
            "x_total",
            "Test.",
            &[(&[("k", "a")], 1), (&[("k", "b")], 0)],
        );
        assert_eq!(buf.matches("# TYPE x_total counter").count(), 1);
        assert!(buf.contains("x_total{k=\"a\"} 1\n"));
        assert!(buf.contains("x_total{k=\"b\"} 0\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let mut snap = HistogramSnapshot {
            buckets: [0; LATENCY_BUCKET_BOUNDS_NS.len() + 1],
            sum_ns: 300,
            count: 3,
        };
        snap.buckets[0] = 2;
        snap.buckets[3] = 1;
        let mut buf = String::new();
        histogram_family(&mut buf, "h_ns", "Test.", &[(&[("v", "x")], &snap)]);
        assert!(buf.contains("h_ns_bucket{v=\"x\",le=\"256\"} 2\n"));
        assert!(buf.contains("h_ns_bucket{v=\"x\",le=\"16384\"} 3\n"));
        assert!(buf.contains("h_ns_bucket{v=\"x\",le=\"+Inf\"} 3\n"));
        assert!(buf.contains("h_ns_sum{v=\"x\"} 300\n"));
        assert!(buf.contains("h_ns_count{v=\"x\"} 3\n"));
    }
}
