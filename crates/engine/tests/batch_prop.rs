//! Property test: batched submission is observationally equivalent to
//! serial submission.
//!
//! For arbitrary mixes of Figure 4 shapes — sizes straddling the
//! sequential/parallel pricing boundary so batches contain both coalesced
//! and direct jobs — [`doacross_engine::SolveBatch::execute_all`] must
//! produce exactly the outputs and per-job iteration counts of N
//! separate [`doacross_engine::PreparedLoop::execute`] calls.

use doacross_core::{AccessPattern, TestLoop};
use doacross_engine::Engine;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn execute_all_matches_n_serial_executes(
        shapes in proptest::collection::vec((20usize..900, 1usize..4, 2usize..10), 1..10)
    ) {
        let engine = Engine::builder().workers(2).cache_capacity(32).build();
        let loops: Vec<TestLoop> = shapes
            .iter()
            .map(|&(n, m, l)| TestLoop::new(n, m, l))
            .collect();
        let prepared: Vec<_> = loops
            .iter()
            .map(|l| engine.prepare(l).expect("plannable"))
            .collect();

        // Serial oracle: one execute per job, in submission order.
        let mut serial: Vec<Vec<f64>> = loops.iter().map(|l| l.initial_y()).collect();
        let mut serial_stats = Vec::new();
        for ((p, l), y) in prepared.iter().zip(&loops).zip(&mut serial) {
            serial_stats.push(p.execute(l, y).expect("valid"));
        }

        // Batched: same handles, same inputs, one execute_all.
        let mut batched: Vec<Vec<f64>> = loops.iter().map(|l| l.initial_y()).collect();
        let mut batch = engine.batch();
        for ((p, l), y) in prepared.iter().zip(&loops).zip(&mut batched) {
            batch.submit(p, l, y);
        }
        let results = engine.execute_all(batch);

        prop_assert_eq!(results.len(), loops.len());
        for (i, result) in results.iter().enumerate() {
            let stats = result.as_ref().expect("every job valid");
            prop_assert_eq!(stats.iterations, loops[i].iterations());
            prop_assert_eq!(stats.iterations, serial_stats[i].iterations);
            prop_assert!(stats.workers >= 1);
        }
        prop_assert_eq!(batched, serial);
    }
}
