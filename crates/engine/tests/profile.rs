//! End-to-end tests of the solve profiler: per-worker span timelines
//! harvested from real solves must reconcile *exactly* with the
//! executor's own [`RunStats`] accounting (stalls, wait polls, barrier
//! crossings, iterations), the exported Chrome trace must validate
//! structurally with one track per worker, and the span arenas must be
//! lossless under concurrent deposits (property-tested).

use doacross_core::{seq::run_sequential, AccessPattern, IndirectLoop};
use doacross_engine::{validate_chrome_trace, Engine, ProfConfig, SolveProfile, SpanKind};
use doacross_obs::profile::ProfArena;
use proptest::prelude::*;

fn profiled_engine(workers: usize) -> Engine {
    Engine::builder()
        .workers(workers)
        .pools(1)
        .profiling(ProfConfig::default())
        .build()
}

fn fresh_y(len: usize) -> Vec<f64> {
    (0..len).map(|e| 1.0 + (e % 10) as f64 / 10.0).collect()
}

/// Dependence-free, non-linear (reversed) subscript: the flat inspected
/// doacross.
fn flat_victim() -> IndirectLoop {
    let n = 4_000;
    let a: Vec<usize> = (0..n).map(|i| n - 1 - i).collect();
    IndirectLoop::new(n, a, vec![vec![]; n], vec![vec![]; n]).unwrap()
}

/// Interleaved distance-1 chains: flat executor with real cross-worker
/// flag waits (claim-ordered).
fn chained_victim() -> IndirectLoop {
    let (chains, len) = (32, 16);
    let n = chains * len;
    let a: Vec<usize> = (0..n).collect();
    let rhs: Vec<Vec<usize>> = (0..n)
        .map(|i| if i % len == 0 { vec![] } else { vec![i - 1] })
        .collect();
    let coeff: Vec<Vec<f64>> = rhs.iter().map(|r| vec![0.5; r.len()]).collect();
    IndirectLoop::new(n, a, rhs, coeff).unwrap()
}

/// Wide dependence grid: level-scheduled wavefront, one barrier per level.
fn wavefront_victim() -> IndirectLoop {
    doacross_plan::testgrid::deep_grid(64, 20, 3, 7)
}

fn solve_profiled(
    engine: &Engine,
    loop_: &IndirectLoop,
) -> (doacross_core::RunStats, SolveProfile) {
    let prepared = engine.prepare(loop_).unwrap();
    let y0 = fresh_y(loop_.data_len());
    let mut oracle = y0.clone();
    run_sequential(loop_, &mut oracle);
    let mut y = y0;
    let stats = prepared.execute(loop_, &mut y).unwrap();
    assert_eq!(y, oracle, "profiling never changes the answer");
    let profile = engine
        .recent_profiles()
        .pop()
        .expect("profiled solve landed in the ring");
    (stats, profile)
}

#[test]
fn flat_executor_spans_reconcile_with_run_stats() {
    for loop_ in [flat_victim(), chained_victim()] {
        let engine = profiled_engine(4);
        let (stats, profile) = solve_profiled(&engine, &loop_);
        assert!(
            matches!(profile.variant.as_str(), "doacross" | "reordered"),
            "{:?}",
            profile.variant
        );
        assert_eq!(profile.dropped, 0);

        // One Work span per worker per region; their payloads sum to the
        // iterations actually executed.
        let work: Vec<_> = profile
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Work)
            .collect();
        assert_eq!(work.len(), stats.workers);
        assert_eq!(
            work.iter().map(|s| s.aux).sum::<u64>(),
            stats.iterations as u64
        );

        // One FlagWait span per counted stall, and the poll payloads sum
        // to the executor's own wait-poll counter — wait attribution is
        // the same bookkeeping the stats already kept, with timestamps.
        let waits: Vec<_> = profile
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::FlagWait)
            .collect();
        assert_eq!(waits.len() as u64, stats.stalls);
        assert_eq!(waits.iter().map(|s| s.aux).sum::<u64>(), stats.wait_polls);

        // No barriers in the flat executor; the dispatcher track carries
        // the admission wait.
        assert_eq!(profile.kind_spans[SpanKind::BarrierWait.index()], 0);
        assert_eq!(profile.kind_spans[SpanKind::DispatchWait.index()], 1);
    }
}

#[test]
fn wavefront_spans_reconcile_with_barrier_crossings() {
    let engine = profiled_engine(4);
    let loop_ = wavefront_victim();
    let (stats, profile) = solve_profiled(&engine, &loop_);
    assert_eq!(profile.variant.as_str(), "wavefront");
    assert_eq!(profile.dropped, 0);
    assert!(stats.barrier_crossings > 0);

    // Every worker records one BarrierWait per crossing — the per-worker
    // count *is* the stats counter, and the level stamps cover exactly
    // the levels before each barrier.
    for worker in 0..stats.workers as u32 {
        let crossings = profile
            .spans
            .iter()
            .filter(|s| s.worker == worker && s.kind == SpanKind::BarrierWait)
            .count() as u64;
        assert_eq!(crossings, stats.barrier_crossings, "worker {worker}");
    }
    assert_eq!(
        profile.kind_spans[SpanKind::BarrierWait.index()],
        stats.workers as u64 * stats.barrier_crossings
    );

    // Per worker per level at most one Work span; the payloads sum to
    // the full iteration space.
    let nlevels = stats.barrier_crossings + 1;
    for worker in 0..stats.workers as u32 {
        let per_level = profile
            .spans
            .iter()
            .filter(|s| s.worker == worker && s.kind == SpanKind::Work)
            .count() as u64;
        assert!(per_level <= nlevels, "worker {worker}: {per_level} levels");
    }
    assert_eq!(
        profile
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Work)
            .map(|s| s.aux)
            .sum::<u64>(),
        stats.iterations as u64
    );

    // The realized critical path is at least the longest single span and
    // at most the whole solve's span budget.
    let kind_total: u64 = profile.kind_ns.iter().sum();
    assert!(profile.realized_critical_ns <= kind_total);
    assert!(profile.realized_critical_ns >= profile.spans.iter().map(|s| s.dur_ns).max().unwrap());
}

#[test]
fn chrome_trace_exports_one_track_per_worker() {
    let engine = profiled_engine(4);
    let loop_ = wavefront_victim();
    let (stats, profile) = solve_profiled(&engine, &loop_);

    let trace = engine.profile_chrome_trace();
    let summary = validate_chrome_trace(&trace).expect("structurally valid trace");
    assert_eq!(summary.events as u64, profile.spans.len() as u64);

    // One track per worker (plus the dispatcher track), all under the
    // solve's pid, and each track carries exactly that worker's spans.
    let pid = profile.seq;
    let tids: Vec<u64> = summary
        .tracks
        .keys()
        .filter(|(p, _)| *p == pid)
        .map(|(_, t)| *t)
        .collect();
    assert_eq!(
        tids,
        (0..=stats.workers as u64).collect::<Vec<_>>(),
        "worker tracks 0..workers plus dispatcher"
    );
    for ((_, tid), count) in summary.tracks.iter().filter(|((p, _), _)| *p == pid) {
        let expect = profile
            .spans
            .iter()
            .filter(|s| u64::from(s.worker) == *tid)
            .count();
        assert_eq!(*count, expect, "track {tid}");
    }

    // A disarmed engine exports the empty document, not an error.
    let off = Engine::builder().workers(2).build();
    assert!(!off.profiling_enabled());
    let empty = validate_chrome_trace(&off.profile_chrome_trace()).unwrap();
    assert_eq!(empty.events, 0);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Concurrent deposits are lossless: for arbitrary per-worker span
    /// loads under the arena cap, every span deposited from its worker's
    /// own thread is harvested — none lost, none duplicated, per-kind
    /// payload totals intact, and the harvest sorted by (worker, start).
    #[test]
    fn concurrent_arena_deposits_lose_no_spans(
        loads in proptest::collection::vec(1usize..120, 1..6),
        cap_slack in 0usize..64,
    ) {
        let workers = loads.len();
        let cap = loads.iter().copied().max().unwrap() + cap_slack;
        let arena = ProfArena::new(workers, cap);
        std::thread::scope(|scope| {
            for (worker, &n) in loads.iter().enumerate() {
                let arena = &arena;
                scope.spawn(move || {
                    for i in 0..n {
                        let kind = SpanKind::ALL[i % SpanKind::ALL.len()];
                        arena.record(worker, kind, i as u32, i as u64 * 10, 5, i as u64);
                    }
                });
            }
        });
        let (spans, dropped) = arena.take();
        prop_assert_eq!(dropped, 0);
        prop_assert_eq!(spans.len(), loads.iter().sum::<usize>());
        for (worker, &n) in loads.iter().enumerate() {
            let mine: Vec<_> = spans.iter().filter(|s| s.worker == worker as u32).collect();
            prop_assert_eq!(mine.len(), n, "worker {}", worker);
            // Payloads survive verbatim: aux was the deposit index.
            let aux_sum: u64 = mine.iter().map(|s| s.aux).sum();
            prop_assert_eq!(aux_sum, (n as u64 * (n as u64 - 1)) / 2);
        }
        prop_assert!(spans.windows(2).all(|w| (w[0].worker, w[0].start_ns) <= (w[1].worker, w[1].start_ns)));
    }

    /// Over-cap deposits drop oldest-first and are *counted*: the arena
    /// never lies about truncation.
    #[test]
    fn overfull_arena_counts_every_dropped_span(extra in 1usize..40) {
        let cap = 8usize;
        let arena = ProfArena::new(1, cap);
        let total = cap + extra;
        for i in 0..total {
            arena.record(0, SpanKind::Work, 0, i as u64, 1, i as u64);
        }
        let (spans, dropped) = arena.take();
        prop_assert_eq!(spans.len(), cap);
        prop_assert_eq!(dropped, extra as u64);
        // Drop-oldest: the retained spans are the newest `cap` deposits.
        prop_assert!(spans.iter().all(|s| s.aux >= extra as u64));
    }
}
