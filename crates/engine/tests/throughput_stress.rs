//! Multi-pool scheduler stress tests: many tenants, one shared engine.
//!
//! The concurrent-tenant acceptance suite for the `crates/sched`
//! subsystem. Sixteen tenant threads hammer a shared multi-pool engine
//! with a mix of the paper's structures — Figure 4 parameterized loops
//! and forward-substitution loops over the Table 1 stencil families
//! (5-PT, 7-PT, 9-PT ILU(0) factors) — and every result must stay
//! bit-identical to the sequential oracle while the scheduler's own
//! ledgers (per-pool dispatches, cache shard traffic) reconcile exactly.
//! Saturation is pinned deterministically with a gated loop that holds a
//! sub-pool open on purpose.

use doacross_core::{seq::run_sequential, AccessPattern, DoacrossLoop, IndirectLoop, TestLoop};
use doacross_engine::{Engine, EngineError};
use doacross_sparse::{ilu0, stencil, TriangularMatrix};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Forward-substitution-shaped indirect loop over a strict-lower factor:
/// `y[i] += Σ_j (−L_ij)·y[col_j]`, row by row — the §3.2 workload.
fn forward_sub(l: &TriangularMatrix) -> IndirectLoop {
    let n = l.n();
    let a: Vec<usize> = (0..n).collect();
    let rhs: Vec<Vec<usize>> = (0..n).map(|i| l.row_cols(i).to_vec()).collect();
    let coeff: Vec<Vec<f64>> = (0..n)
        .map(|i| l.row_values(i).iter().map(|v| -v).collect())
        .collect();
    IndirectLoop::new(n, a, rhs, coeff).expect("valid structure")
}

/// Sixteen tenant structures cycling the Table 1 stencil kinds (at sizes
/// bounded for test time) and Figure 4 shapes, all with distinct
/// fingerprints.
fn tenant_loops() -> Vec<IndirectLoop> {
    (0..16usize)
        .map(|t| {
            let seed = 100 + t as u64;
            match t % 4 {
                0 => forward_sub(&TriangularMatrix::from_strict_lower(
                    &ilu0(&stencil::five_point(6 + t / 4, 7, seed)).l,
                )),
                1 => forward_sub(&TriangularMatrix::from_strict_lower(
                    &ilu0(&stencil::seven_point(4, 4, 3 + t / 4, seed)).l,
                )),
                2 => forward_sub(&TriangularMatrix::from_strict_lower(
                    &ilu0(&stencil::nine_point(5 + t / 4, 6, seed)).l,
                )),
                // Figure 4 shapes: vary N, M, L for doall / short- /
                // long-dependence structures.
                _ => {
                    let figure4 = TestLoop::new(150 + 40 * t, 1 + t % 3, 4 + t % 7);
                    IndirectLoop::new(
                        figure4.data_len(),
                        (0..figure4.iterations()).map(|i| figure4.lhs(i)).collect(),
                        (0..figure4.iterations())
                            .map(|i| {
                                (0..figure4.terms(i))
                                    .map(|j| figure4.term_element(i, j))
                                    .collect()
                            })
                            .collect(),
                        (0..figure4.iterations())
                            .map(|i| vec![0.25; figure4.terms(i)])
                            .collect(),
                    )
                    .expect("valid structure")
                }
            }
        })
        .collect()
}

/// 16 tenants × several rounds on one shared 2-pool engine: bit-identical
/// results throughout, no deadlock across sub-pools, and afterwards the
/// scheduler's per-pool dispatch ledger and the cache's per-shard ledger
/// both reconcile exactly with the work submitted.
#[test]
fn sixteen_tenants_on_a_shared_multi_pool_engine_stay_bit_identical() {
    const ROUNDS: usize = 3;
    let engine = Arc::new(
        Engine::builder()
            .workers(1)
            .pools(2)
            .cache_capacity(32)
            .shards(4)
            .build(),
    );
    assert_eq!(engine.pools(), 2);
    assert_eq!(engine.threads(), 1, "workers are per sub-pool");
    assert_eq!(engine.total_workers(), 2);

    let loops = tenant_loops();
    let oracles: Vec<Vec<f64>> = loops
        .iter()
        .map(|l| {
            let mut y = vec![1.0; l.data_len()];
            run_sequential(l, &mut y);
            y
        })
        .collect();

    std::thread::scope(|scope| {
        for (t, (l, oracle)) in loops.iter().zip(&oracles).enumerate() {
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    let mut y = vec![1.0; l.data_len()];
                    engine.run(l, &mut y).expect("valid loop");
                    assert_eq!(&y, oracle, "tenant {t} round {round} diverged");
                }
            });
        }
    });

    // Scheduler ledger: every solve acquired exactly one sub-pool; the
    // per-pool dispatch counts sum to the solves submitted, and each
    // sub-pool reports its configured worker count.
    let total_solves = (loops.len() * ROUNDS) as u64;
    let pool_stats = engine.pool_stats();
    assert_eq!(pool_stats.len(), 2);
    assert_eq!(
        pool_stats.iter().map(|p| p.dispatches).sum::<u64>(),
        total_solves,
        "per-pool dispatches reconcile with solves"
    );
    for p in &pool_stats {
        assert_eq!(p.workers, 1);
        assert!(p.steals <= p.dispatches);
    }
    assert_eq!(
        engine.saturations(),
        0,
        "default admission bound never trips"
    );

    // Cache ledger: one miss per tenant structure, every other lookup a
    // hit, and the per-shard counters sum to the engine totals.
    let cache = engine.cache_stats();
    assert_eq!(cache.misses, loops.len() as u64);
    assert_eq!(cache.hits + cache.misses, total_solves);
    let shards = engine.shard_stats();
    assert_eq!(
        shards.iter().map(|s| s.stats.hits).sum::<u64>(),
        cache.hits,
        "shard hit ledgers reconcile"
    );
    assert_eq!(
        shards.iter().map(|s| s.stats.misses).sum::<u64>(),
        cache.misses,
        "shard miss ledgers reconcile"
    );
    assert_eq!(
        shards.iter().map(|s| s.len).sum::<usize>(),
        engine.cache_len()
    );
}

/// A loop whose first iteration parks until released — holds its engine
/// sub-pool open so admission behavior can be pinned deterministically.
struct GateLoop {
    n: usize,
    entered: AtomicBool,
    release: AtomicBool,
}

impl GateLoop {
    fn new(n: usize) -> Self {
        Self {
            n,
            entered: AtomicBool::new(false),
            release: AtomicBool::new(false),
        }
    }
}

impl AccessPattern for GateLoop {
    fn iterations(&self) -> usize {
        self.n
    }
    fn data_len(&self) -> usize {
        self.n
    }
    fn lhs(&self, i: usize) -> usize {
        i
    }
    fn terms(&self, _i: usize) -> usize {
        0
    }
    fn term_element(&self, _i: usize, _j: usize) -> usize {
        unreachable!("no rhs terms")
    }
}

impl DoacrossLoop for GateLoop {
    fn init(&self, i: usize, old_lhs: f64) -> f64 {
        if i == 0 {
            self.entered.store(true, Ordering::Release);
            while !self.release.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        }
        old_lhs + 1.0
    }
    fn combine(&self, _i: usize, _j: usize, acc: f64, _operand: f64) -> f64 {
        acc
    }
}

/// With one sub-pool and a zero-waiter admission bound, a second solve
/// arriving while the pool is held fails fast with the typed
/// [`EngineError::Saturated`] — and the engine serves normally again once
/// the pool frees up.
#[test]
fn saturated_admission_fails_typed_and_recovers() {
    let engine = Engine::builder().workers(1).pools(1).max_pending(0).build();
    assert_eq!(engine.max_pending(), 0);
    let gate = GateLoop::new(4);
    let small = TestLoop::new(40, 1, 7);

    std::thread::scope(|scope| {
        let (engine_ref, gate_ref) = (&engine, &gate);
        let holder = scope.spawn(move || {
            let mut y = vec![0.0; 4];
            let stats = engine_ref
                .run(gate_ref, &mut y)
                .expect("gated loop is valid");
            (y, stats)
        });
        // Wait until the gated solve provably occupies the only sub-pool.
        while !gate.entered.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        let mut y = small.initial_y();
        let err = engine.run(&small, &mut y).expect_err("pool is held");
        assert!(
            matches!(
                err,
                EngineError::Saturated {
                    pools: 1,
                    max_pending: 0
                }
            ),
            "unexpected error: {err}"
        );
        assert!(engine.saturations() >= 1);

        gate.release.store(true, Ordering::Release);
        let (y, _stats) = holder.join().expect("holder thread");
        assert_eq!(
            y,
            vec![1.0; 4],
            "the gated solve itself completed correctly"
        );
    });

    // The rejection was admission-only: nothing is poisoned.
    let mut y = small.initial_y();
    let mut oracle = small.initial_y();
    run_sequential(&small, &mut oracle);
    engine.run(&small, &mut y).expect("engine recovered");
    assert_eq!(y, oracle);
}
