//! End-to-end observability tests: a mixed workload on an instrumented
//! engine, with the Prometheus scrape actually parsed — format validity
//! (TYPE before samples, cumulative buckets, `+Inf` = `_count`), coverage
//! of the required metric families, and reconciliation of the scraped
//! numbers against the engine's own counters.

use doacross_core::{AccessPattern, TestLoop};
use doacross_engine::{Engine, ObsConfig, ObsProvenance, SolveOutcome, TraceEvent};
use std::collections::BTreeMap;

/// One parsed sample: label set (sorted) and value.
type Sample = (BTreeMap<String, String>, f64);

/// A parsed metric family.
struct Family {
    kind: String,
    samples: Vec<Sample>,
}

/// A deliberately strict parser for the Prometheus text exposition
/// format, as far as this workspace emits it. Panics — with the offending
/// line — on anything malformed: a sample before its `# TYPE`, an unknown
/// suffix, bad label syntax.
fn parse_prometheus(text: &str) -> BTreeMap<String, Family> {
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let name = it.next().unwrap().to_string();
            let kind = it.next().expect("TYPE line missing kind").to_string();
            assert!(
                matches!(kind.as_str(), "counter" | "gauge" | "histogram"),
                "unknown TYPE {kind} in: {line}"
            );
            let prev = families.insert(
                name.clone(),
                Family {
                    kind,
                    samples: Vec::new(),
                },
            );
            assert!(prev.is_none(), "duplicate TYPE for {name}");
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP
        }
        let (name_and_labels, value) = line.rsplit_once(' ').expect("sample missing value");
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("bad value: {line}"));
        let (name, labels) = match name_and_labels.split_once('{') {
            None => (name_and_labels.to_string(), BTreeMap::new()),
            Some((name, rest)) => {
                let body = rest.strip_suffix('}').expect("unterminated label set");
                let mut labels = BTreeMap::new();
                for pair in body.split(',') {
                    let (k, v) = pair.split_once('=').expect("label missing =");
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .unwrap_or_else(|| panic!("unquoted label value: {line}"));
                    labels.insert(k.to_string(), v.to_string());
                }
                (name.to_string(), labels)
            }
        };
        // Resolve the family: exact name, or a histogram suffix.
        let family_name = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                name.strip_suffix(suffix)
                    .filter(|base| families.get(*base).is_some_and(|f| f.kind == "histogram"))
            })
            .unwrap_or(&name)
            .to_string();
        let family = families
            .get_mut(&family_name)
            .unwrap_or_else(|| panic!("sample before TYPE: {line}"));
        if family.kind == "histogram" {
            // Re-attach the suffix so reconciliation below can tell the
            // series apart.
            let mut labels = labels;
            labels.insert("__series".into(), name.clone());
            family.samples.push((labels, value));
        } else {
            family.samples.push((labels, value));
        }
    }
    // Histogram integrity: per label set, buckets cumulative
    // non-decreasing in order of appearance, ending at +Inf == _count.
    for (name, family) in &families {
        if family.kind != "histogram" {
            continue;
        }
        // Per label set: the (le, value) buckets in order plus the _count.
        type HistogramSeries = (Vec<(String, f64)>, Option<f64>);
        let mut by_series: BTreeMap<BTreeMap<String, String>, HistogramSeries> = BTreeMap::new();
        for (labels, value) in &family.samples {
            let series = labels.get("__series").unwrap().clone();
            let mut key = labels.clone();
            key.remove("__series");
            let le = key.remove("le");
            let entry = by_series.entry(key).or_default();
            if series == format!("{name}_bucket") {
                entry.0.push((le.expect("bucket without le"), *value));
            } else if series == format!("{name}_count") {
                entry.1 = Some(*value);
            }
        }
        for (labels, (buckets, count)) in by_series {
            assert!(!buckets.is_empty(), "{name}{labels:?}: no buckets");
            let mut prev = 0.0;
            for (le, v) in &buckets {
                assert!(*v >= prev, "{name}: bucket le={le} decreased");
                prev = *v;
            }
            let (last_le, last_v) = buckets.last().unwrap();
            assert_eq!(last_le, "+Inf", "{name}: final bucket not +Inf");
            assert_eq!(Some(*last_v), count, "{name}: +Inf != _count");
        }
    }
    families
}

fn counter_value(families: &BTreeMap<String, Family>, name: &str) -> f64 {
    let family = families
        .get(name)
        .unwrap_or_else(|| panic!("{name} missing from scrape"));
    family.samples.iter().map(|(_, v)| v).sum()
}

#[test]
fn scrape_parses_and_covers_the_required_metrics() {
    let engine = Engine::builder()
        .workers(2)
        .adaptive()
        .observability_default()
        .build();
    // Mixed workload: three structures (different sizes/dependence
    // shapes), repeated solves, one invalidation, one save/load cycle.
    let loops: Vec<TestLoop> = [(400usize, 8usize), (300, 7), (500, 9)]
        .iter()
        .map(|&(n, l)| TestLoop::new(n, 1, l))
        .collect();
    let mut solves = 0u64;
    for round in 0..3 {
        for l in &loops {
            let mut y = l.initial_y();
            engine.run(l, &mut y).unwrap();
            solves += 1;
        }
        if round == 1 {
            let fp = doacross_plan::PatternFingerprint::of(&loops[0]);
            assert!(engine.invalidate(&fp));
        }
    }
    let store =
        std::env::temp_dir().join(format!("doacross-obs-test-{}.plans", std::process::id()));
    let _ = std::fs::remove_file(&store);
    let saved = engine.save_plans(&store).unwrap();
    let restored = engine.load_plans(&store).unwrap();
    let _ = std::fs::remove_file(&store);

    let text = engine.metrics_text();
    let families = parse_prometheus(&text);

    // Cache traffic reconciles exactly with the engine's own counters.
    let stats = engine.cache_stats();
    assert_eq!(
        counter_value(&families, "doacross_cache_hits_total") as u64,
        stats.hits
    );
    assert_eq!(
        counter_value(&families, "doacross_cache_misses_total") as u64,
        stats.misses
    );
    assert_eq!(
        counter_value(&families, "doacross_cache_insertions_total") as u64,
        stats.insertions
    );

    // Every completed solve is counted, by (variant, provenance).
    assert_eq!(
        counter_value(&families, "doacross_solves_total") as u64,
        solves
    );
    for (labels, _) in &families["doacross_solves_total"].samples {
        assert!(labels.contains_key("variant") && labels.contains_key("provenance"));
    }

    // Per-variant latency histograms: present, and their counts cover
    // the solves.
    let hist = &families["doacross_solve_ns"];
    assert_eq!(hist.kind, "histogram");
    let hist_count: f64 = hist
        .samples
        .iter()
        .filter(|(l, _)| {
            l.get("__series")
                .is_some_and(|s| s == "doacross_solve_ns_count")
        })
        .map(|(_, v)| v)
        .sum();
    assert_eq!(hist_count as u64, solves);

    // Adaptive decision counters render for an adaptive engine.
    for name in [
        "doacross_adaptive_repricings_total",
        "doacross_adaptive_trials_total",
        "doacross_adaptive_promotions_total",
        "doacross_adaptive_demotions_total",
        "doacross_adaptive_baseline_probes_total",
    ] {
        assert!(families.contains_key(name), "{name} missing");
    }
    // ... and the registry's own policy counters exist (values depend on
    // what the host measured; presence and parseability are the contract).
    for name in [
        "doacross_divergences_total",
        "doacross_trials_started_total",
        "doacross_trials_committed_total",
        "doacross_trials_demoted_total",
    ] {
        assert!(families.contains_key(name), "{name} missing");
    }

    // Plan builds, invalidation, persistence.
    assert!(counter_value(&families, "doacross_plan_builds_total") >= 3.0);
    assert_eq!(
        counter_value(&families, "doacross_cache_invalidations_total"),
        1.0
    );
    assert_eq!(counter_value(&families, "doacross_store_saves_total"), 1.0);
    assert_eq!(
        counter_value(&families, "doacross_store_plans_saved_total") as usize,
        saved
    );
    assert_eq!(counter_value(&families, "doacross_store_loads_total"), 1.0);
    assert_eq!(
        counter_value(&families, "doacross_store_plans_restored_total") as usize,
        restored
    );

    // Fault-containment counters render unconditionally — a fault-free
    // workload scrapes them all at zero, so dashboards can alert on any
    // increase without waiting for a first fault. (The chaos suite covers
    // the nonzero side.)
    for name in [
        "doacross_fault_panics_total",
        "doacross_fault_timeouts_total",
        "doacross_fault_fallbacks_total",
        "doacross_retry_total",
        "doacross_store_quarantines_total",
        "doacross_adaptive_fallbacks_total",
    ] {
        assert_eq!(
            counter_value(&families, name),
            0.0,
            "{name} nonzero on a clean workload"
        );
    }

    // Per-structure series carry the 32-hex-char fingerprint label.
    let structure = &families["doacross_structure_solves_total"];
    assert!(!structure.samples.is_empty());
    for (labels, _) in &structure.samples {
        let fp = &labels["fingerprint"];
        assert!(fp == "other" || (fp.len() == 32 && fp.chars().all(|c| c.is_ascii_hexdigit())));
    }

    // JSON view is emitted and carries the same cache traffic.
    let json = engine.metrics_json();
    assert!(json.contains(&format!("\"hits\":{}", stats.hits)));
    assert!(json.contains("\"obs\":{"));
}

#[test]
fn recent_solves_returns_the_last_n_with_variant_and_provenance() {
    let engine = Engine::builder()
        .workers(2)
        .observability(ObsConfig {
            flight_capacity: 4,
            ..ObsConfig::default()
        })
        .build();
    let loop_ = TestLoop::new(300, 1, 8);
    for _ in 0..7 {
        let mut y = loop_.initial_y();
        engine.run(&loop_, &mut y).unwrap();
    }
    let solves = engine.recent_solves();
    assert_eq!(solves.len(), 4, "bounded to flight capacity");
    // All seven solves were of the same structure; all retained ones are
    // cache-served (the cold first solve aged out of the ring).
    let expected_fp = doacross_obs::FpId::from(&doacross_plan::PatternFingerprint::of(&loop_));
    for s in &solves {
        assert_eq!(s.fp, expected_fp);
        assert_eq!(s.provenance, ObsProvenance::PlanCached);
        assert!(s.total_ns > 0);
        assert!(s.workers >= 1, "a solve always reports its worker count");
        assert_eq!(s.outcome, SolveOutcome::Ok, "clean solves record Ok");
        assert!(s.outcome.delivered());
    }
    // A fresh structure's solve lands at the tail with cold provenance.
    let other = TestLoop::new(200, 1, 7);
    let mut y = other.initial_y();
    engine.run(&other, &mut y).unwrap();
    let solves = engine.recent_solves();
    let last = solves.last().unwrap();
    assert_eq!(
        last.fp,
        doacross_obs::FpId::from(&doacross_plan::PatternFingerprint::of(&other))
    );
    assert_eq!(last.provenance, ObsProvenance::PlanCold);
}

#[test]
fn trace_records_the_plan_lifecycle_in_order() {
    // One sub-pool pinned: multi-pool engines interleave
    // `pool_dispatched` events into the trace, and this test asserts the
    // exact single-pool lifecycle on any host.
    let engine = Engine::builder()
        .workers(2)
        .pools(1)
        .observability_default()
        .build();
    let loop_ = TestLoop::new(250, 1, 8);
    let mut y = loop_.initial_y();
    engine.run(&loop_, &mut y).unwrap();
    let mut y = loop_.initial_y();
    engine.run(&loop_, &mut y).unwrap();
    let fp = doacross_plan::PatternFingerprint::of(&loop_);
    engine.invalidate(&fp);

    let kinds: Vec<&'static str> = engine
        .trace_events()
        .iter()
        .map(|e| e.event.kind())
        .collect();
    assert_eq!(
        kinds,
        [
            "cache_miss",
            "plan_built",
            "solve_finished",
            "cache_hit",
            "solve_finished",
            "cache_invalidated",
        ]
    );
    // The build event carries the decision record: a chosen price and at
    // least the sequential candidate priced.
    let events = engine.trace_events();
    let built = events
        .iter()
        .find_map(|e| match &e.event {
            TraceEvent::PlanBuilt {
                chosen_price,
                candidate_prices,
                ..
            } => Some((*chosen_price, *candidate_prices)),
            _ => None,
        })
        .unwrap();
    assert!(built.0.is_finite());
    assert!(built.1[0].is_some(), "sequential is always priced");
    // Sequence numbers are strictly increasing.
    for w in events.windows(2) {
        assert!(w[0].seq < w[1].seq);
    }
}

#[test]
fn verify_plan_traces_its_verdict() {
    let engine = Engine::builder()
        .workers(2)
        .pools(1)
        .observability_default()
        .build();
    let loop_ = TestLoop::new(200, 1, 8);
    let report = engine.verify_plan(&loop_).expect("test loop plan is sound");
    assert!(report.references > 0);
    let fp = doacross_obs::FpId::from(&doacross_plan::PatternFingerprint::of(&loop_));
    assert!(
        engine.trace_events().iter().any(|e| matches!(
            e.event,
            TraceEvent::PlanVerified {
                fp: got,
                sound: true,
                ..
            } if got == fp
        )),
        "verify_plan must leave a plan_verified trace event"
    );
    let text = engine.metrics_text();
    let families = parse_prometheus(&text);
    assert_eq!(
        counter_value(&families, "doacross_verify_passes_total"),
        1.0
    );
    assert_eq!(
        counter_value(&families, "doacross_verify_failures_total"),
        0.0
    );
}

#[test]
fn disabled_observability_is_inert_but_sampled_metrics_remain() {
    let engine = Engine::builder().workers(2).build();
    assert!(!engine.observability_enabled());
    let loop_ = TestLoop::new(300, 1, 8);
    for _ in 0..3 {
        let mut y = loop_.initial_y();
        engine.run(&loop_, &mut y).unwrap();
    }
    assert!(engine.recent_solves().is_empty());
    assert!(engine.trace_events().is_empty());
    let text = engine.metrics_text();
    let families = parse_prometheus(&text);
    // The engine-sampled section still scrapes...
    assert_eq!(counter_value(&families, "doacross_cache_misses_total"), 1.0);
    assert_eq!(counter_value(&families, "doacross_cache_hits_total"), 2.0);
    assert!(families.contains_key("doacross_workers"));
    // ...but the registry section is absent.
    assert!(!families.contains_key("doacross_solves_total"));
    assert!(engine.metrics_json().contains("\"obs\":{}"));
}

/// Scheduler and batch observability: on a multi-pool engine the
/// `doacross_pool_*` / `doacross_batch_*` families (documented at
/// [`doacross_obs`]'s crate root) render, parse strictly, and reconcile
/// exactly — per pool — with the scheduler's own dispatch ledger and the
/// batch the test submitted.
#[test]
fn pool_and_batch_metrics_reconcile_with_the_scheduler() {
    let engine = Engine::builder()
        .workers(1)
        .pools(2)
        .observability_default()
        .build();
    let loops: Vec<TestLoop> = [(300usize, 8usize), (400, 7)]
        .iter()
        .map(|&(n, l)| TestLoop::new(n, 1, l))
        .collect();

    // Direct solves: each traces its sub-pool dispatch (pools > 1).
    let mut direct = 0u64;
    for _ in 0..2 {
        for l in &loops {
            let mut y = l.initial_y();
            engine.run(l, &mut y).unwrap();
            direct += 1;
        }
    }

    // One batch over prepared handles: jobs demultiplex into one
    // coalesced region (sequential-variant jobs) plus direct fallbacks.
    let prepared: Vec<_> = loops.iter().map(|l| engine.prepare(l).unwrap()).collect();
    let coalesced = prepared
        .iter()
        .filter(|p| matches!(p.variant(), doacross_plan::PlanVariant::Sequential))
        .count() as u64;
    let mut ys: Vec<Vec<f64>> = loops.iter().map(|l| l.initial_y()).collect();
    let mut batch = engine.batch();
    for ((p, l), y) in prepared.iter().zip(&loops).zip(&mut ys) {
        batch.submit(p, l, y);
    }
    let njobs = batch.len() as u64;
    for result in engine.execute_all(batch) {
        result.unwrap();
    }

    let text = engine.metrics_text();
    let families = parse_prometheus(&text);

    // The scraped dispatch counter reconciles with the scheduler's own
    // ledger — in total and per pool.
    let pool_stats = engine.pool_stats();
    let ledger: u64 = pool_stats.iter().map(|p| p.dispatches).sum();
    assert_eq!(
        counter_value(&families, "doacross_pool_dispatches_total") as u64,
        ledger
    );
    for p in &pool_stats {
        let scraped: f64 = families["doacross_pool_dispatches_total"]
            .samples
            .iter()
            .filter(|(labels, _)| labels.get("pool").is_some_and(|v| *v == p.pool.to_string()))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(scraped as u64, p.dispatches, "pool {} series", p.pool);
    }
    assert_eq!(
        counter_value(&families, "doacross_pool_steals_total") as u64,
        pool_stats.iter().map(|p| p.steals).sum::<u64>()
    );
    assert!(families.contains_key("doacross_pool_wait_ns"));
    assert!(families.contains_key("doacross_pool_solve_ns"));

    // Batch accounting matches what was submitted.
    assert_eq!(
        counter_value(&families, "doacross_batch_submissions_total"),
        1.0
    );
    assert_eq!(
        counter_value(&families, "doacross_batch_jobs_total") as u64,
        njobs
    );
    assert_eq!(
        counter_value(&families, "doacross_batch_coalesced_total") as u64,
        coalesced
    );

    // Every solve — direct and batched — is counted once, and the
    // engine-sampled scheduler gauges scrape.
    assert_eq!(
        counter_value(&families, "doacross_solves_total") as u64,
        direct + njobs
    );
    assert_eq!(counter_value(&families, "doacross_pools"), 2.0);
    assert_eq!(counter_value(&families, "doacross_saturations_total"), 0.0);

    // Flight-recorded solves carry an in-range pool stamp, and the JSON
    // view exports the new counter families.
    for s in engine.recent_solves() {
        assert!((s.pool as usize) < engine.pools());
    }
    let json = engine.metrics_json();
    assert!(json.contains("\"pool_dispatches\":"));
    assert!(json.contains("\"batch_jobs\":"));
}

#[test]
fn cold_start_reasons_are_traced() {
    let missing =
        std::env::temp_dir().join(format!("doacross-obs-missing-{}.plans", std::process::id()));
    let _ = std::fs::remove_file(&missing);
    let engine = Engine::builder()
        .workers(2)
        .observability_default()
        .warm_start(&missing)
        .build();
    let kinds: Vec<&'static str> = engine
        .trace_events()
        .iter()
        .map(|e| e.event.kind())
        .collect();
    assert_eq!(kinds, ["cold_start"]);
    let text = engine.metrics_text();
    let families = parse_prometheus(&text);
    assert_eq!(counter_value(&families, "doacross_cold_starts_total"), 1.0);
}

/// The `doacross_profile_*` families (documented at [`doacross_obs`]'s
/// crate root) pass the same strict parse as everything else and
/// reconcile exactly with the profiler's own solve ring — including the
/// per-level barrier-wait histogram and its cardinality cap: with
/// `max_levels = 2`, a 20-level wavefront must scrape as exactly the
/// series `level="0"`, `level="1"`, and the `level="other"` overflow.
#[test]
fn profile_metrics_scrape_strictly_and_reconcile_with_the_profiler() {
    use doacross_engine::{ProfConfig, SpanKind};
    let engine = Engine::builder()
        .workers(4)
        .pools(1)
        .observability_default()
        .profiling(ProfConfig {
            max_levels: 2,
            ..ProfConfig::default()
        })
        .build();
    assert!(engine.profiling_enabled());

    // An armed-but-idle profiler renders nothing: the scrape is
    // byte-identical to an unprofiled engine's until a solve lands.
    let idle = engine.metrics_text();
    assert!(!idle.contains("doacross_profile_"), "{idle}");

    // A 20-level dependence grid plans as the wavefront; three warmed
    // solves fill the profile ring.
    let loop_ = doacross_plan::testgrid::deep_grid(64, 20, 3, 7);
    let prepared = engine.prepare(&loop_).unwrap();
    assert_eq!(prepared.variant(), doacross_plan::PlanVariant::Wavefront);
    let y0: Vec<f64> = (0..loop_.data_len())
        .map(|e| 1.0 + (e % 10) as f64)
        .collect();
    let mut stats = None;
    for _ in 0..3 {
        let mut y = y0.clone();
        stats = Some(prepared.execute(&loop_, &mut y).unwrap());
    }
    let stats = stats.unwrap();
    let profiles = engine.recent_profiles();
    assert_eq!(profiles.len(), 3);

    let text = engine.metrics_text();
    let families = parse_prometheus(&text);

    // Scalar counters reconcile with the ring.
    assert_eq!(
        counter_value(&families, "doacross_profile_solves_total"),
        3.0
    );
    assert_eq!(
        counter_value(&families, "doacross_profile_dropped_spans_total") as u64,
        profiles.iter().map(|p| p.dropped).sum::<u64>()
    );

    // Per-kind span counters reconcile, series by series.
    let span_family = &families["doacross_profile_spans_total"];
    assert_eq!(span_family.kind, "counter");
    for kind in SpanKind::ALL {
        let expect: u64 = profiles.iter().map(|p| p.kind_spans[kind.index()]).sum();
        let scraped: f64 = span_family
            .samples
            .iter()
            .filter(|(labels, _)| labels.get("kind").is_some_and(|v| v == kind.as_str()))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(scraped as u64, expect, "kind {:?}", kind);
    }

    // The realized-critical-path gauge carries the latest wavefront
    // profile; the priced gauge is absent (this engine never calibrated,
    // so there is no honest unit to price in).
    let last = profiles.last().unwrap();
    let realized: f64 = families["doacross_profile_realized_critical_ns"]
        .samples
        .iter()
        .filter(|(labels, _)| labels.get("variant").is_some_and(|v| v == "wavefront"))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(realized as u64, last.realized_critical_ns);
    assert!(
        !families.contains_key("doacross_profile_priced_ns"),
        "uncalibrated engine must not price"
    );

    // The barrier-wait histogram collapses levels 2..19 under "other"
    // and its total count is exactly the barrier-wait spans harvested:
    // one per worker per crossing.
    let hist = &families["doacross_profile_barrier_wait_ns"];
    assert_eq!(hist.kind, "histogram");
    let mut levels: Vec<String> = hist
        .samples
        .iter()
        .filter_map(|(labels, _)| labels.get("level").cloned())
        .collect();
    levels.sort();
    levels.dedup();
    assert_eq!(
        levels,
        ["0", "1", "other"],
        "cardinality cap at max_levels=2"
    );
    let count_total: f64 = hist
        .samples
        .iter()
        .filter(|(labels, _)| {
            labels
                .get("__series")
                .is_some_and(|s| s == "doacross_profile_barrier_wait_ns_count")
        })
        .map(|(_, v)| v)
        .sum();
    let barrier_spans: u64 = profiles
        .iter()
        .map(|p| p.kind_spans[SpanKind::BarrierWait.index()])
        .sum();
    assert_eq!(count_total as u64, barrier_spans);
    assert_eq!(
        barrier_spans,
        3 * stats.workers as u64 * stats.barrier_crossings,
        "one barrier-wait span per worker per crossing, every solve"
    );

    // The JSON view exports the same profiler state.
    let json = engine.metrics_json();
    assert!(json.contains("\"profile\":{\"solves\":3"), "{json}");
}
