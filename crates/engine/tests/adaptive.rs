//! Integration tests of the adaptive feedback loop: telemetry growth,
//! divergence-triggered promotion to the measured-cheaper variant,
//! generation-bump staleness, learned-state persistence (v3), and the
//! v2 → v3 store-version regression.

use doacross_core::{seq::run_sequential, AccessPattern, IndirectLoop, TestLoop};
use doacross_engine::{AdaptiveConfig, Engine, EngineError, PersistError, VariantKind};
use doacross_plan::{PlanVariant, Planner};
use doacross_sim::CostModel;

/// A deliberately mispriced cost model: busy-wait polls priced absurdly
/// expensive (so every flag-based variant is off the table) and barriers
/// plus pre/post overheads priced nearly free (so the wavefront looks
/// unbeatable). On the narrow-deep structure below, the *measured* truth
/// is the opposite: hundreds of barrier crossings per solve dwarf the
/// tiny sequential loop.
fn mispriced() -> CostModel {
    CostModel {
        wait_poll: 500.0,
        barrier: 0.001,
        post_per_iter: 0.01,
        region_dispatch: 1.0,
        ..CostModel::multimax()
    }
}

/// Narrow-and-deep dependence grid: 2 columns, 300 wavefront levels. A
/// barrier-per-level executor pays 299 real crossings per solve for 600
/// tiny iterations — measurably catastrophic next to the sequential loop
/// on any host, which is exactly what the mispriced model denies.
fn narrow_deep() -> IndirectLoop {
    doacross_plan::testgrid::deep_grid(2, 300, 1, 1)
}

fn fast_adaptive() -> AdaptiveConfig {
    AdaptiveConfig {
        min_samples: 4,
        eval_interval: 5,
        divergence: 1.3,
        hysteresis: 1.05,
        max_trials: 3,
        confidence: 4,
    }
}

#[test]
fn mispriced_model_promotes_to_the_measured_cheaper_variant() {
    let loop_ = narrow_deep();
    let engine = Engine::builder()
        .workers(2)
        .planner(Planner::with_costs(mispriced()))
        .adaptive_config(fast_adaptive())
        .build();
    assert!(engine.is_adaptive());

    // The mispriced model statically selects the wavefront.
    let first = engine.prepare(&loop_).expect("plannable");
    assert_eq!(
        first.variant(),
        PlanVariant::Wavefront,
        "seeded mispricing must pick the wavefront: {:?}",
        first.plan().costs()
    );
    let generation_at_start = first.generation();

    let y0 = vec![1.0; loop_.data_len()];
    let mut expect = y0.clone();
    run_sequential(&loop_, &mut expect);

    // Solve repeatedly; every result must stay bit-identical to the
    // oracle regardless of what adaptation does underneath.
    for round in 0..40 {
        let mut y = y0.clone();
        engine.run(&loop_, &mut y).expect("solvable");
        assert_eq!(y, expect, "round {round} diverged from the oracle");
    }

    // Telemetry grew: one entry per executed variant, >= 40 solves plus
    // the sequential baseline probe.
    let totals = engine.telemetry_totals().expect("adaptive engine");
    assert!(totals.samples >= 41, "{totals:?}");
    assert!(totals.entries >= 2, "{totals:?}");

    // The engine noticed the divergence, trialed the measured-cheaper
    // variant, and committed the promotion.
    let stats = engine.adaptive_stats().expect("adaptive engine");
    assert!(stats.repricings >= 1, "{stats:?}");
    assert!(stats.baseline_probes >= 1, "{stats:?}");
    assert!(stats.trials >= 1, "{stats:?}");
    assert!(stats.promotions >= 1, "promotion must commit: {stats:?}");
    assert_eq!(stats.demotions, 0, "{stats:?}");

    // The cached plan is now the sequential variant — the one the
    // measurements, not the model, say is cheaper here.
    let promoted = engine.prepare(&loop_).expect("plannable");
    assert_eq!(promoted.variant(), PlanVariant::Sequential, "{stats:?}");
    assert!(promoted.generation() > generation_at_start, "bumped");

    // The measured comparison that justified the commit is visible in
    // telemetry: sequential's observed floor beats the wavefront's.
    let fp = *promoted.fingerprint();
    let seq = engine
        .telemetry_of(&fp, VariantKind::Sequential)
        .expect("sequential was measured");
    let wave = engine
        .telemetry_of(&fp, VariantKind::Wavefront)
        .expect("wavefront was measured");
    assert!(
        (seq.min_ns as f64) * 1.05 <= wave.min_ns as f64,
        "promotion implies a measured win: seq {} vs wave {}",
        seq.min_ns,
        wave.min_ns
    );

    // Handles prepared before the promotion observed the generation bump
    // and fail typed; nothing ever silently executes the superseded plan.
    assert!(first.is_stale());
    let mut y = y0.clone();
    let err = first.execute(&loop_, &mut y).unwrap_err();
    assert!(
        matches!(err, EngineError::StalePlan { .. }),
        "stale handles fail typed, got {err:?}"
    );

    // The promoted plan still computes the oracle, through a fresh handle.
    let mut y = y0;
    promoted
        .execute(&loop_, &mut y)
        .expect("promoted plan runs");
    assert_eq!(y, expect);
}

#[test]
fn adaptation_is_off_the_result_path_for_static_engines() {
    let engine = Engine::builder().workers(2).build();
    let loop_ = TestLoop::new(400, 1, 8);
    let mut y = loop_.initial_y();
    engine.run(&loop_, &mut y).unwrap();
    assert!(!engine.is_adaptive());
    assert_eq!(engine.adaptive_stats(), None);
    assert_eq!(engine.telemetry_totals(), None);
    assert!(engine.telemetry_entries().is_empty());
}

#[test]
fn zero_capacity_cache_disables_adaptation() {
    // Nothing to swap a promoted plan into: the builder drops the
    // adaptive request instead of building a loop that can never act.
    let engine = Engine::builder()
        .workers(2)
        .cache_capacity(0)
        .adaptive()
        .build();
    assert!(!engine.is_adaptive());
}

#[test]
fn invalidation_resets_the_structure_s_learned_state() {
    let loop_ = narrow_deep();
    let engine = Engine::builder()
        .workers(2)
        .planner(Planner::with_costs(mispriced()))
        .adaptive_config(fast_adaptive())
        .build();
    let y0 = vec![1.0; loop_.data_len()];
    for _ in 0..3 {
        let mut y = y0.clone();
        engine.run(&loop_, &mut y).unwrap();
    }
    let fp = doacross_plan::PatternFingerprint::of(&loop_);
    assert!(engine.telemetry_of(&fp, VariantKind::Wavefront).is_some());
    engine.invalidate(&fp);
    assert_eq!(
        engine.telemetry_of(&fp, VariantKind::Wavefront),
        None,
        "observations of the retired structure are dropped"
    );
    // And the structure keeps solving correctly afterwards.
    let mut y = y0.clone();
    let mut expect = y0;
    run_sequential(&loop_, &mut expect);
    engine.run(&loop_, &mut y).unwrap();
    assert_eq!(y, expect);
}

#[test]
fn learned_state_persists_across_a_restart() {
    let path = std::env::temp_dir().join(format!(
        "doacross-adaptive-persist-{}.plans",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    let loop_ = narrow_deep();
    let y0 = vec![1.0; loop_.data_len()];
    let fp = doacross_plan::PatternFingerprint::of(&loop_);
    let (first_entries, saved) = {
        let engine = Engine::builder()
            .workers(2)
            .adaptive_config(fast_adaptive())
            .build();
        for _ in 0..5 {
            let mut y = y0.clone();
            engine.run(&loop_, &mut y).unwrap();
        }
        let entries = engine.telemetry_entries();
        assert!(!entries.is_empty());
        let saved = engine.save_plans(&path).unwrap();
        (entries, saved)
    };
    assert!(saved >= 1);

    // Restart: plans AND telemetry come back; refinement resumes
    // mid-confidence instead of observing from scratch.
    let engine = Engine::builder()
        .workers(2)
        .adaptive_config(fast_adaptive())
        .warm_start(&path)
        .try_build()
        .expect("store is healthy");
    assert!(engine.cache_len() >= 1);
    let restored = engine.telemetry_entries();
    assert_eq!(restored, first_entries, "telemetry survives the restart");
    let kind = restored
        .iter()
        .find(|(f, _, _)| f == &fp)
        .map(|(_, k, _)| *k)
        .expect("the structure's entry survived");
    assert!(engine.telemetry_of(&fp, kind).is_some());

    // A static engine ignores the telemetry section without error.
    let plain = Engine::builder()
        .workers(2)
        .warm_start(&path)
        .try_build()
        .expect("same store");
    assert!(plain.telemetry_entries().is_empty());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn calibration_persists_and_a_warm_calibrated_engine_skips_measurement() {
    let path = std::env::temp_dir().join(format!(
        "doacross-adaptive-calib-{}.plans",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    let loop_ = TestLoop::new(300, 1, 8);
    let stored = {
        let engine = Engine::builder().workers(2).calibrated().build();
        let mut y = loop_.initial_y();
        engine.run(&loop_, &mut y).unwrap();
        let calibration = *engine.calibration().expect("calibrated engines carry one");
        assert!(calibration.is_valid());
        engine.save_plans(&path).unwrap();
        calibration
    };

    // The warm-started calibrated engine reuses the persisted constants
    // bit-for-bit — equality a fresh measurement could never reproduce,
    // which is the proof the re-measurement was skipped.
    let engine = Engine::builder()
        .workers(2)
        .calibrated()
        .warm_start(&path)
        .try_build()
        .expect("store is healthy");
    assert_eq!(engine.calibration(), Some(&stored));
    assert_eq!(engine.planner().costs(), &stored.model);

    // An invalid persisted calibration is revalidated away: the build
    // falls back to measuring instead of pricing with nonsense.
    let mut store = doacross_plan::PlanStore::load(&path).unwrap();
    let mut poisoned = stored;
    poisoned.unit_ns = f64::NAN;
    store.set_calibration(Some(poisoned));
    store.save(&path).unwrap();
    let engine = Engine::builder()
        .workers(2)
        .calibrated()
        .warm_start(&path)
        .try_build()
        .expect("invalid calibration falls back, never fails the boot");
    let fresh = engine.calibration().expect("re-measured");
    assert!(fresh.is_valid());
    assert!(fresh.unit_ns.is_finite());

    // A non-calibrated engine never persists or consumes calibration.
    let plain = Engine::builder()
        .workers(2)
        .warm_start(&path)
        .try_build()
        .unwrap();
    assert_eq!(plain.calibration(), None);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn v2_stores_fail_typed_and_the_boot_path_cold_starts() {
    let path = std::env::temp_dir().join(format!(
        "doacross-adaptive-v2-relic-{}.plans",
        std::process::id()
    ));
    // Fabricate a v2 relic: a current-format store with its version field
    // rewritten to 2 (the version check precedes the checksum, exactly as
    // a real v2 file would fail).
    {
        let engine = Engine::builder().workers(2).build();
        let loop_ = TestLoop::new(200, 1, 8);
        let mut y = loop_.initial_y();
        engine.run(&loop_, &mut y).unwrap();
        engine.save_plans(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
    }

    // Explicit load: strict, typed.
    let engine = Engine::builder().workers(2).build();
    let err = engine.load_plans(&path).unwrap_err();
    assert_eq!(
        err,
        EngineError::Persist(PersistError::UnsupportedVersion {
            found: 2,
            supported: doacross_plan::FORMAT_VERSION,
        })
    );
    assert_eq!(engine.cache_len(), 0, "cache untouched");

    // Boot path: version succession is a cold start, not a crash loop —
    // for plain, calibrated, and adaptive engines alike.
    for builder in [
        Engine::builder().workers(2),
        Engine::builder().workers(2).adaptive(),
    ] {
        let engine = builder
            .warm_start(&path)
            .try_build()
            .expect("version policy: a rejected store is just a cold start");
        assert_eq!(engine.cache_len(), 0);
    }
    std::fs::remove_file(&path).unwrap();
}
