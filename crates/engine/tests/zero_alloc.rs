//! Allocation audit: warm solves on the flat preprocessed-doacross path
//! must not touch the heap.
//!
//! The paper's amortization argument assumes the executor's marginal cost
//! is arithmetic plus synchronization — preprocessing products (writer
//! map, scratch arrays) are built once and reused. A per-solve heap
//! allocation anywhere on the dispatch path would silently tax every
//! solve of a many-solve workload. This binary installs
//! [`doacross_core::alloc::CountingAllocator`] as the global allocator
//! and pins the bill: after the cold solve grows the scratch, a warm
//! flat-doacross solve reports **zero** allocations on the dispatching
//! thread ([`RunStats::allocations`]).

use doacross_core::alloc::CountingAllocator;
use doacross_core::{seq::run_sequential, IndirectLoop, RunStats};
use doacross_engine::Engine;
use doacross_plan::PlanVariant;

#[global_allocator]
static AUDIT: CountingAllocator = CountingAllocator;

/// Dependence-free but non-linear left-hand side: the inspected flat
/// doacross is the only parallel candidate, so the planner picks
/// [`PlanVariant::Doacross`] (same shape the planner's own unit tests
/// pin).
fn scattered_doall(n: usize) -> IndirectLoop {
    let a: Vec<usize> = (0..n).map(|i| n - 1 - i).collect();
    IndirectLoop::new(n, a, vec![vec![]; n], vec![vec![]; n]).expect("valid structure")
}

#[test]
fn warm_flat_doacross_solves_allocate_nothing() {
    // 4 workers: enough parallel payoff that the static model prices the
    // scattered doall to the flat doacross rather than sequential.
    let engine = Engine::builder().workers(4).pools(1).build();
    let loop_ = scattered_doall(4_000);
    let prepared = engine.prepare(&loop_).expect("plannable");
    assert_eq!(
        prepared.variant(),
        PlanVariant::Doacross,
        "audit must exercise the flat doacross path"
    );

    let mut oracle = vec![1.0; 4_000];
    run_sequential(&loop_, &mut oracle);

    // Cold solve: checking out a fresh executor and growing its
    // per-variant scratch is allowed to allocate.
    let mut y = vec![1.0; 4_000];
    let cold: RunStats = prepared.execute(&loop_, &mut y).expect("valid");
    assert_eq!(y, oracle);

    // Warm solves: scratch, writer map, and the stats sink are all
    // reused — the dispatching thread's heap bill is exactly zero.
    for round in 0..3 {
        let mut y = vec![1.0; 4_000];
        let stats = prepared.execute(&loop_, &mut y).expect("valid");
        assert_eq!(y, oracle);
        assert_eq!(
            stats.allocations, 0,
            "warm solve {round} allocated (cold solve billed {} for scratch growth)",
            cold.allocations
        );
    }
}

/// The profiler's off-path discipline, audited: an engine built
/// *without* profiling pays one branch per site and no heap — the warm
/// flat-doacross solve stays at exactly zero allocations with the
/// profiling code compiled in. (The armed path deposits spans into
/// pre-grown arenas, but harvesting copies them out per solve, so only
/// the disarmed path is part of the zero-alloc contract.)
#[test]
fn disabled_profiling_keeps_warm_solves_allocation_free() {
    let engine = Engine::builder().workers(4).pools(1).build();
    assert!(!engine.profiling_enabled());
    let loop_ = scattered_doall(4_000);
    let prepared = engine.prepare(&loop_).expect("plannable");
    assert_eq!(prepared.variant(), PlanVariant::Doacross);

    let mut y = vec![1.0; 4_000];
    prepared.execute(&loop_, &mut y).expect("cold solve");
    for round in 0..3 {
        let mut y = vec![1.0; 4_000];
        let stats = prepared.execute(&loop_, &mut y).expect("valid");
        assert_eq!(
            stats.allocations, 0,
            "disarmed profiling leaked a warm-path allocation (round {round})"
        );
    }
    assert!(engine.recent_profiles().is_empty(), "nothing harvested");

    // Cross-check: the *armed* engine actually profiles the same shape —
    // the zero above is the off-switch working, not the feature missing.
    let armed = Engine::builder()
        .workers(4)
        .pools(1)
        .profiling_default()
        .build();
    let prepared = armed.prepare(&loop_).expect("plannable");
    let mut y = vec![1.0; 4_000];
    prepared.execute(&loop_, &mut y).expect("valid");
    assert_eq!(armed.recent_profiles().len(), 1);
}

#[test]
fn the_audit_allocator_actually_counts() {
    // Self-check that the harness is live: an explicit heap allocation on
    // this thread must show up in the counter — otherwise the zero
    // assertion above would pass vacuously.
    let before = doacross_core::alloc::thread_allocations();
    let v: Vec<u8> = Vec::with_capacity(1024);
    let after = doacross_core::alloc::thread_allocations();
    drop(v);
    assert!(after > before, "global audit allocator not installed");
}
