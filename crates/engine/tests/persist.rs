//! Engine-level persistence: warm starts across "process" boundaries
//! (simulated by independent engines sharing only a store file), typed
//! failures for untrustworthy stores, and generation-aware restores.

use doacross_core::{seq::run_sequential, PlanProvenance, TestLoop};
use doacross_engine::{Engine, EngineError, PersistError, PlanStore};

/// A unique temp path per test (tests run concurrently in one process).
fn store_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "doacross-engine-persist-{tag}-{}.plans",
        std::process::id()
    ))
}

fn engine(workers: usize) -> Engine {
    Engine::builder().workers(workers).cache_capacity(8).build()
}

#[test]
fn warm_start_serves_the_first_solve_from_the_store() {
    let path = store_path("happy");
    let _ = std::fs::remove_file(&path);
    let loops = [TestLoop::new(600, 2, 8), TestLoop::new(400, 1, 7)];

    // First "process": cold solves, then checkpoint.
    let first = engine(2);
    for loop_ in &loops {
        let mut y = loop_.initial_y();
        let stats = first.run(loop_, &mut y).unwrap();
        assert_eq!(stats.provenance, PlanProvenance::PlanCold);
    }
    assert_eq!(first.save_plans(&path).unwrap(), 2);
    drop(first);

    // Second "process": warm start; every first solve is a cache hit and
    // bit-identical to the sequential oracle.
    let second = Engine::builder()
        .workers(2)
        .cache_capacity(8)
        .warm_start(&path)
        .try_build()
        .unwrap();
    assert_eq!(second.cache_len(), 2);
    for loop_ in &loops {
        let prepared = second.prepare(loop_).unwrap();
        assert!(prepared.from_cache(), "restored plan served the prepare");
        let mut y = loop_.initial_y();
        let stats = prepared.execute(loop_, &mut y).unwrap();
        assert_eq!(stats.provenance, PlanProvenance::PlanCached);
        assert_eq!(stats.inspector, std::time::Duration::ZERO);
        let mut oracle = loop_.initial_y();
        run_sequential(loop_, &mut oracle);
        assert_eq!(y, oracle);
    }
    let s = second.cache_stats();
    assert_eq!((s.hits, s.misses), (2, 0), "no replanning after restore");

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn corrupt_stores_fail_with_typed_persist_errors() {
    let path = store_path("corrupt");
    let source = engine(2);
    let loop_ = TestLoop::new(500, 1, 8);
    let mut y = loop_.initial_y();
    source.run(&loop_, &mut y).unwrap();
    source.save_plans(&path).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    // Bit flip in the middle → checksum mismatch, via both entry points.
    let mut bytes = pristine.clone();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    let err = Engine::builder()
        .workers(2)
        .warm_start(&path)
        .try_build()
        .unwrap_err();
    assert!(
        matches!(
            err,
            EngineError::Persist(PersistError::ChecksumMismatch { .. })
        ),
        "{err:?}"
    );
    let fresh = engine(2);
    assert!(matches!(
        fresh.load_plans(&path),
        Err(EngineError::Persist(_))
    ));
    assert_eq!(fresh.cache_len(), 0, "failed load leaves the cache cold");

    // Truncation → typed error, never a panic or a partial restore.
    std::fs::write(&path, &pristine[..pristine.len() / 3]).unwrap();
    assert!(matches!(
        fresh.load_plans(&path),
        Err(EngineError::Persist(_))
    ));

    // Version from the future → typed version mismatch.
    let mut bytes = pristine.clone();
    bytes[8] = 0x7F;
    std::fs::write(&path, &bytes).unwrap();
    let err = fresh.load_plans(&path).unwrap_err();
    assert!(
        matches!(
            err,
            EngineError::Persist(PersistError::UnsupportedVersion { found: 0x7F, .. })
        ),
        "{err:?}"
    );

    // Not a store at all.
    std::fs::write(&path, b"definitely not a plan store").unwrap();
    assert!(matches!(
        fresh.load_plans(&path),
        Err(EngineError::Persist(PersistError::BadMagic))
    ));

    assert_eq!(fresh.cache_len(), 0);
    std::fs::remove_file(&path).unwrap();

    // Explicit loads report a missing store as typed NotFound; the
    // warm-start entry point treats exactly that case as first boot.
    assert!(matches!(
        fresh.load_plans(&path),
        Err(EngineError::Persist(PersistError::NotFound))
    ));
    assert_eq!(fresh.warm_start_plans(&path).unwrap(), 0);
}

#[test]
fn restores_drop_plans_invalidated_after_the_snapshot() {
    let path = store_path("generations");
    let source = engine(2);
    let loop_ = TestLoop::new(300, 1, 8);
    let prepared = source.prepare(&loop_).unwrap();
    source.save_plans(&path).unwrap();

    // Invalidate after the save: reloading the older store must not
    // resurrect the retired plan in this engine...
    source.invalidate(prepared.fingerprint());
    assert_eq!(source.load_plans(&path).unwrap(), 0);
    assert!(!source.contains(prepared.fingerprint()));
    assert!(prepared.is_stale());

    // ...and a *new* engine that loads the post-invalidation checkpoint
    // inherits the generation, so the old store stays rejected there too.
    let newer = store_path("generations-newer");
    source.save_plans(&newer).unwrap();
    let restarted = engine(2);
    assert_eq!(restarted.load_plans(&newer).unwrap(), 0);
    assert_eq!(
        restarted.load_plans(&path).unwrap(),
        0,
        "old store is stale"
    );
    assert!(!restarted.contains(prepared.fingerprint()));

    std::fs::remove_file(&path).unwrap();
    std::fs::remove_file(&newer).unwrap();
}

#[test]
fn worker_count_mismatch_restores_but_replans() {
    // A store priced for a different pool size restores (the plan is
    // valid), but prepare treats it as a pricing-context miss and replans
    // — correctness never depends on the stored worker count.
    let path = store_path("workers");
    let source = engine(2);
    let loop_ = TestLoop::new(600, 2, 8);
    let mut y = loop_.initial_y();
    source.run(&loop_, &mut y).unwrap();
    source.save_plans(&path).unwrap();

    let wider = Engine::builder()
        .workers(3)
        .cache_capacity(8)
        .warm_start(&path)
        .try_build()
        .unwrap();
    assert_eq!(wider.cache_len(), 1, "plan restored");
    let mut y = loop_.initial_y();
    let stats = wider.run(&loop_, &mut y).unwrap();
    assert_eq!(
        stats.provenance,
        PlanProvenance::PlanCold,
        "repriced for the new pool size"
    );
    let mut oracle = loop_.initial_y();
    run_sequential(&loop_, &mut oracle);
    assert_eq!(y, oracle);

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn snapshots_flow_between_engines_in_memory() {
    // The byte round trip is not required: snapshot → warm_from hands a
    // live engine's plans to another engine in-process (e.g. blue/green
    // session rotation), and PlanStore::to_bytes/from_bytes is the same
    // artifact on the wire.
    let a = engine(2);
    let loop_ = TestLoop::new(500, 2, 8);
    let mut y = loop_.initial_y();
    a.run(&loop_, &mut y).unwrap();

    let store = a.snapshot();
    let b = engine(2);
    assert_eq!(b.warm_from(&store), 1);
    let mut y = loop_.initial_y();
    let stats = b.run(&loop_, &mut y).unwrap();
    assert_eq!(stats.provenance, PlanProvenance::PlanCached);

    let wired = PlanStore::from_bytes(&store.to_bytes()).unwrap();
    let c = engine(2);
    assert_eq!(c.warm_from(&wired), 1);
    assert_eq!(c.cache_len(), 1);
}
