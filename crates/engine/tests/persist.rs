//! Engine-level persistence: warm starts across "process" boundaries
//! (simulated by independent engines sharing only a store file), typed
//! failures for untrustworthy stores, and generation-aware restores.

use doacross_core::{seq::run_sequential, PlanProvenance, TestLoop};
use doacross_engine::{Engine, EngineError, PersistError, PlanStore};

/// A unique temp path per test (tests run concurrently in one process).
fn store_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "doacross-engine-persist-{tag}-{}.plans",
        std::process::id()
    ))
}

fn engine(workers: usize) -> Engine {
    Engine::builder().workers(workers).cache_capacity(8).build()
}

#[test]
fn warm_start_serves_the_first_solve_from_the_store() {
    let path = store_path("happy");
    let _ = std::fs::remove_file(&path);
    let loops = [TestLoop::new(600, 2, 8), TestLoop::new(400, 1, 7)];

    // First "process": cold solves, then checkpoint.
    let first = engine(2);
    for loop_ in &loops {
        let mut y = loop_.initial_y();
        let stats = first.run(loop_, &mut y).unwrap();
        assert_eq!(stats.provenance, PlanProvenance::PlanCold);
    }
    assert_eq!(first.save_plans(&path).unwrap(), 2);
    drop(first);

    // Second "process": warm start; every first solve is a cache hit and
    // bit-identical to the sequential oracle.
    let second = Engine::builder()
        .workers(2)
        .cache_capacity(8)
        .warm_start(&path)
        .try_build()
        .unwrap();
    assert_eq!(second.cache_len(), 2);
    for loop_ in &loops {
        let prepared = second.prepare(loop_).unwrap();
        assert!(prepared.from_cache(), "restored plan served the prepare");
        let mut y = loop_.initial_y();
        let stats = prepared.execute(loop_, &mut y).unwrap();
        assert_eq!(stats.provenance, PlanProvenance::PlanCached);
        assert_eq!(stats.inspector, std::time::Duration::ZERO);
        let mut oracle = loop_.initial_y();
        run_sequential(loop_, &mut oracle);
        assert_eq!(y, oracle);
    }
    let s = second.cache_stats();
    assert_eq!((s.hits, s.misses), (2, 0), "no replanning after restore");

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn wavefront_plans_warm_start_across_processes() {
    // The level-scheduled artifact (offsets, order, term offsets, operand
    // classes) survives the full engine persistence path: plan → save →
    // fresh engine → warm start → cached wavefront execution with zero
    // wait polls and a bit-identical result.
    let path = store_path("wavefront");
    let _ = std::fs::remove_file(&path);

    // A deep, wide, stall-free grid (the workspace's shared wavefront
    // fixture): the planner picks Wavefront at 4 workers on its own.
    let loop_ = doacross_plan::testgrid::deep_grid(64, 20, 3, 7);
    let n = 64 * 20;
    let y0: Vec<f64> = (0..n).map(|e| 1.0 + (e % 7) as f64 * 0.125).collect();
    let mut oracle = y0.clone();
    run_sequential(&loop_, &mut oracle);

    let first = engine(4);
    let prepared = first.prepare(&loop_).unwrap();
    assert_eq!(
        prepared.variant(),
        doacross_plan::PlanVariant::Wavefront,
        "{:?}",
        prepared.plan().costs()
    );
    let mut y = y0.clone();
    let stats = prepared.execute(&loop_, &mut y).unwrap();
    assert_eq!(y, oracle);
    assert_eq!(stats.wait_polls, 0);
    assert_eq!(first.save_plans(&path).unwrap(), 1);
    drop(first);

    let second = Engine::builder()
        .workers(4)
        .cache_capacity(8)
        .warm_start(&path)
        .try_build()
        .unwrap();
    let restored = second.prepare(&loop_).unwrap();
    assert!(restored.from_cache(), "restored wavefront plan hits");
    assert_eq!(restored.variant(), doacross_plan::PlanVariant::Wavefront);
    let mut y = y0;
    let stats = restored.execute(&loop_, &mut y).unwrap();
    assert_eq!(stats.provenance, PlanProvenance::PlanCached);
    assert_eq!(stats.wait_polls, 0, "no flags through the persisted path");
    assert_eq!(stats.inspector, std::time::Duration::ZERO);
    assert_eq!(y, oracle, "bit-identical after the restart");

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn corrupt_stores_fail_with_typed_persist_errors() {
    let path = store_path("corrupt");
    let source = engine(2);
    let loop_ = TestLoop::new(500, 1, 8);
    let mut y = loop_.initial_y();
    source.run(&loop_, &mut y).unwrap();
    source.save_plans(&path).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    // Bit flip in the middle → checksum mismatch, via both entry points.
    let mut bytes = pristine.clone();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    let fresh = engine(2);
    let err = fresh.load_plans(&path).unwrap_err();
    assert!(
        matches!(
            err,
            EngineError::Persist(PersistError::ChecksumMismatch { .. })
        ),
        "{err:?}"
    );
    assert_eq!(fresh.cache_len(), 0, "failed load leaves the cache cold");

    // Truncation → typed error, never a panic or a partial restore.
    std::fs::write(&path, &pristine[..pristine.len() / 3]).unwrap();
    assert!(matches!(
        fresh.load_plans(&path),
        Err(EngineError::Persist(_))
    ));

    // Version from the future → typed version mismatch.
    let mut bytes = pristine.clone();
    bytes[8] = 0x7F;
    std::fs::write(&path, &bytes).unwrap();
    let err = fresh.load_plans(&path).unwrap_err();
    assert!(
        matches!(
            err,
            EngineError::Persist(PersistError::UnsupportedVersion { found: 0x7F, .. })
        ),
        "{err:?}"
    );

    // Not a store at all.
    std::fs::write(&path, b"definitely not a plan store").unwrap();
    assert!(matches!(
        fresh.load_plans(&path),
        Err(EngineError::Persist(PersistError::BadMagic))
    ));

    assert_eq!(fresh.cache_len(), 0);
    std::fs::remove_file(&path).unwrap();

    // Explicit loads report a missing store as typed NotFound; the
    // warm-start entry point treats exactly that case as first boot.
    assert!(matches!(
        fresh.load_plans(&path),
        Err(EngineError::Persist(PersistError::NotFound))
    ));
    assert_eq!(fresh.warm_start_plans(&path).unwrap(), 0);
}

#[test]
fn damaged_boot_store_quarantines_and_the_boot_loop_recovers() {
    let path = store_path("quarantine-loop");
    let _ = std::fs::remove_file(&path);
    let source = engine(2);
    let loop_ = TestLoop::new(500, 1, 8);
    let mut y = loop_.initial_y();
    source.run(&loop_, &mut y).unwrap();

    let corrupt_checkpoint = |path: &std::path::Path| {
        source.save_plans(path).unwrap();
        let mut bytes = std::fs::read(path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(path, &bytes).unwrap();
    };

    // A crash-looping service keeps re-writing and re-corrupting its
    // checkpoint. Every boot must come up cold and serving — quarantine
    // exists precisely so a damaged checkpoint cannot wedge the restart
    // loop — while the corpse is preserved aside for post-mortem.
    for round in 0..3u64 {
        corrupt_checkpoint(&path);
        let booted = Engine::builder()
            .workers(2)
            .cache_capacity(8)
            .warm_start(&path)
            .try_build()
            .expect("a corrupt checkpoint must not prevent boot");
        assert_eq!(booted.cache_len(), 0, "round {round}: booted cold");
        assert!(!path.exists(), "round {round}: corpse moved aside");
        let mut y = loop_.initial_y();
        booted.run(&loop_, &mut y).unwrap();
        let mut oracle = loop_.initial_y();
        run_sequential(&loop_, &mut oracle);
        assert_eq!(y, oracle, "round {round}: cold boot still solves");
    }

    // The rotation is bounded: only the two newest corpses survive.
    let dir = path.parent().unwrap().to_path_buf();
    let prefix = format!("{}.corrupt-", path.file_name().unwrap().to_str().unwrap());
    let corpses: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|f| f.starts_with(&prefix))
        .collect();
    assert_eq!(corpses.len(), 2, "{corpses:?}");

    // The runtime boot path (warm_start_plans) applies the same rule.
    corrupt_checkpoint(&path);
    let fresh = engine(2);
    assert_eq!(fresh.warm_start_plans(&path).unwrap(), 0);
    assert!(!path.exists(), "runtime boot path quarantines too");

    for entry in std::fs::read_dir(&dir).unwrap().flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with(&prefix) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

#[test]
fn old_format_stores_cold_start_the_boot_path_but_fail_explicit_loads() {
    // The version-succession rule: a store whose format version differs
    // (here a crafted "v1" relic from before the wavefront bump) is a
    // clean cold start through the warm-start boot path — a
    // format-bumping deploy must not crash-loop on its own previous
    // checkpoint — while the explicit load stays strict and typed.
    let path = store_path("old-format");
    let source = engine(2);
    let loop_ = TestLoop::new(400, 1, 8);
    let mut y = loop_.initial_y();
    source.run(&loop_, &mut y).unwrap();
    source.save_plans(&path).unwrap();

    // Rewrite the version field to 1 (the magic is 8 bytes, the version
    // the next 4). The checksum is irrelevant: the version is checked
    // before it.
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();

    let fresh = Engine::builder()
        .workers(2)
        .cache_capacity(8)
        .warm_start(&path)
        .try_build()
        .expect("old format is succession, not damage");
    assert_eq!(fresh.cache_len(), 0, "cold start, nothing restored");
    assert_eq!(fresh.warm_start_plans(&path).unwrap(), 0);
    let err = fresh.load_plans(&path).unwrap_err();
    assert!(
        matches!(
            err,
            EngineError::Persist(PersistError::UnsupportedVersion { found: 1, .. })
        ),
        "{err:?}"
    );

    // The next save rewrites the current format and warm starts again.
    let mut y = loop_.initial_y();
    fresh.run(&loop_, &mut y).unwrap();
    assert_eq!(fresh.save_plans(&path).unwrap(), 1);
    let healed = Engine::builder()
        .workers(2)
        .cache_capacity(8)
        .warm_start(&path)
        .try_build()
        .unwrap();
    assert_eq!(healed.cache_len(), 1);

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn restores_drop_plans_invalidated_after_the_snapshot() {
    let path = store_path("generations");
    let source = engine(2);
    let loop_ = TestLoop::new(300, 1, 8);
    let prepared = source.prepare(&loop_).unwrap();
    source.save_plans(&path).unwrap();

    // Invalidate after the save: reloading the older store must not
    // resurrect the retired plan in this engine...
    source.invalidate(prepared.fingerprint());
    assert_eq!(source.load_plans(&path).unwrap(), 0);
    assert!(!source.contains(prepared.fingerprint()));
    assert!(prepared.is_stale());

    // ...and a *new* engine that loads the post-invalidation checkpoint
    // inherits the generation, so the old store stays rejected there too.
    let newer = store_path("generations-newer");
    source.save_plans(&newer).unwrap();
    let restarted = engine(2);
    assert_eq!(restarted.load_plans(&newer).unwrap(), 0);
    assert_eq!(
        restarted.load_plans(&path).unwrap(),
        0,
        "old store is stale"
    );
    assert!(!restarted.contains(prepared.fingerprint()));

    std::fs::remove_file(&path).unwrap();
    std::fs::remove_file(&newer).unwrap();
}

#[test]
fn worker_count_mismatch_restores_but_replans() {
    // A store priced for a different pool size restores (the plan is
    // valid), but prepare treats it as a pricing-context miss and replans
    // — correctness never depends on the stored worker count.
    let path = store_path("workers");
    let source = engine(2);
    let loop_ = TestLoop::new(600, 2, 8);
    let mut y = loop_.initial_y();
    source.run(&loop_, &mut y).unwrap();
    source.save_plans(&path).unwrap();

    let wider = Engine::builder()
        .workers(3)
        .cache_capacity(8)
        .warm_start(&path)
        .try_build()
        .unwrap();
    assert_eq!(wider.cache_len(), 1, "plan restored");
    let mut y = loop_.initial_y();
    let stats = wider.run(&loop_, &mut y).unwrap();
    assert_eq!(
        stats.provenance,
        PlanProvenance::PlanCold,
        "repriced for the new pool size"
    );
    let mut oracle = loop_.initial_y();
    run_sequential(&loop_, &mut oracle);
    assert_eq!(y, oracle);

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn snapshots_flow_between_engines_in_memory() {
    // The byte round trip is not required: snapshot → warm_from hands a
    // live engine's plans to another engine in-process (e.g. blue/green
    // session rotation), and PlanStore::to_bytes/from_bytes is the same
    // artifact on the wire.
    let a = engine(2);
    let loop_ = TestLoop::new(500, 2, 8);
    let mut y = loop_.initial_y();
    a.run(&loop_, &mut y).unwrap();

    let store = a.snapshot();
    let b = engine(2);
    assert_eq!(b.warm_from(&store), 1);
    let mut y = loop_.initial_y();
    let stats = b.run(&loop_, &mut y).unwrap();
    assert_eq!(stats.provenance, PlanProvenance::PlanCached);

    let wired = PlanStore::from_bytes(&store.to_bytes()).unwrap();
    let c = engine(2);
    assert_eq!(c.warm_from(&wired), 1);
    assert_eq!(c.cache_len(), 1);
}
