//! Chaos suite: deterministic fault injection against a live engine.
//!
//! Every test arms a `failpoint` site (a worker panic at a chosen
//! iteration, a per-iteration delay that trips the solve deadline, or
//! synthetic admission saturation), drives a solve through the full
//! engine path, and proves the failure mode resolves **typed and
//! recoverable**: a specific `EngineError` within a hard watchdog bound
//! (never a hang), the sub-pool reusable immediately afterwards, other
//! tenants bit-identical to the sequential oracle throughout, and — when
//! the fallback policy is on — the answer still delivered.
//!
//! The failpoint registry is process-global, so every test serializes on
//! [`chaos_lock`] and disarms on the way out.

use doacross_core::{seq::run_sequential, AccessPattern, DoacrossLoop, IndirectLoop, TestLoop};
use doacross_engine::{
    AdaptiveConfig, Engine, EngineError, FallbackPolicy, ObsConfig, PersistError, RetryPolicy,
    SolveOutcome, TraceEvent,
};
use doacross_plan::{PlanVariant, Planner, BLOCKED_DATA_SPACE_FACTOR};
use doacross_sim::CostModel;
use failpoint::FailAction;
use std::sync::{mpsc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Serializes chaos tests (the failpoint registry is process-global). A
/// test that panicked while holding the lock poisons it; the next test
/// still runs (and re-disarms).
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    failpoint::disarm_all();
    guard
}

/// The no-hang proof: runs `solve` on a helper thread and panics if it
/// has not produced a result within `bound` — a wedged region fails the
/// test instead of wedging the suite.
fn within<T: Send + 'static>(bound: Duration, solve: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let watchdog = std::thread::spawn(move || {
        let _ = tx.send(solve());
    });
    let result = rx
        .recv_timeout(bound)
        .expect("watchdog: solve did not resolve within the hang bound");
    watchdog.join().expect("solver thread exited cleanly");
    result
}

const HANG_BOUND: Duration = Duration::from_secs(30);

fn oracle_of<L: DoacrossLoop + ?Sized>(loop_: &L, y0: &[f64]) -> Vec<f64> {
    let mut oracle = y0.to_vec();
    run_sequential(loop_, &mut oracle);
    oracle
}

fn fresh_y(len: usize) -> Vec<f64> {
    (0..len).map(|e| 1.0 + (e % 10) as f64 / 10.0).collect()
}

/// Dependence-free, non-linear (reversed) subscript: plans as the flat
/// inspected doacross.
fn doacross_victim() -> IndirectLoop {
    let n = 4_000;
    let a: Vec<usize> = (0..n).map(|i| n - 1 - i).collect();
    IndirectLoop::new(n, a, vec![vec![]; n], vec![vec![]; n]).unwrap()
}

/// Interleaved distance-1 chains: the doconsider claim order wins.
fn reordered_victim() -> IndirectLoop {
    let (chains, len) = (32, 16);
    let n = chains * len;
    let a: Vec<usize> = (0..n).collect();
    let rhs: Vec<Vec<usize>> = (0..n)
        .map(|i| if i % len == 0 { vec![] } else { vec![i - 1] })
        .collect();
    let coeff: Vec<Vec<f64>> = rhs.iter().map(|r| vec![0.5; r.len()]).collect();
    IndirectLoop::new(n, a, rhs, coeff).unwrap()
}

/// Sparse doall over a data space `BLOCKED_DATA_SPACE_FACTOR` times the
/// iteration count: strip-mined into cache-sized blocks.
fn blocked_victim() -> IndirectLoop {
    let n = 4_096;
    let spread = BLOCKED_DATA_SPACE_FACTOR;
    let a: Vec<usize> = (0..n).map(|i| (n - 1 - i) * spread).collect();
    let rhs: Vec<Vec<usize>> = (0..n)
        .map(|i| vec![i * spread + 3, ((i + 9) % n) * spread + 3])
        .collect();
    let coeff = vec![vec![0.5, 0.25]; n];
    IndirectLoop::new(n * spread, a, rhs, coeff).unwrap()
}

/// Wide dependence grid: level-scheduled wavefront with one barrier per
/// level.
fn wavefront_victim() -> IndirectLoop {
    doacross_plan::testgrid::deep_grid(64, 20, 3, 7)
}

const EXECUTOR_ITER: &str = "core::executor::iter";
const WAVEFRONT_ITER: &str = "core::wavefront::iter";
const SCHED_ACQUIRE: &str = "sched::acquire";

/// One injected-panic round trip: arm the site, prove the typed error
/// arrives under the watchdog, disarm, prove the *same* handle and
/// sub-pool immediately solve to the oracle.
fn assert_panic_contained<L>(
    engine: &Engine,
    loop_: L,
    wants: fn(PlanVariant) -> bool,
    site: &'static str,
    iteration: u64,
) where
    L: DoacrossLoop + Clone + Send + 'static,
{
    let prepared = engine.prepare(&loop_).unwrap();
    assert!(
        wants(prepared.variant()),
        "loop shape picked {:?}",
        prepared.variant()
    );
    let y0 = fresh_y(loop_.data_len());
    let oracle = oracle_of(&loop_, &y0);

    failpoint::arm(site, FailAction::PanicAt { iteration });
    let err = {
        let (prepared, loop_, mut y) = (prepared.clone(), loop_.clone(), y0.clone());
        within(HANG_BOUND, move || {
            prepared.execute(&loop_, &mut y).unwrap_err()
        })
    };
    assert!(
        matches!(err, EngineError::SolvePanicked { .. }),
        "{:?}: {err:?}",
        prepared.variant()
    );
    failpoint::disarm(site);

    // The sub-pool is immediately reusable and the same prepared handle
    // now solves correctly — containment, not contamination.
    let mut y = y0;
    let stats = prepared.execute(&loop_, &mut y).unwrap();
    assert_eq!(y, oracle, "{:?}: recovered solve", prepared.variant());
    assert_eq!(stats.attempts, 1);
}

#[test]
fn injected_worker_panic_fails_typed_across_every_parallel_variant() {
    let _serial = chaos_lock();
    let engine = Engine::builder()
        .workers(4)
        .pools(1)
        .fallback(FallbackPolicy::Disabled)
        .observability(ObsConfig::default())
        .build();

    assert_panic_contained(
        &engine,
        TestLoop::new(2_000, 1, 7),
        |v| matches!(v, PlanVariant::Linear(_)),
        EXECUTOR_ITER,
        1_900,
    );
    assert_panic_contained(
        &engine,
        doacross_victim(),
        |v| v == PlanVariant::Doacross,
        EXECUTOR_ITER,
        3_900,
    );
    assert_panic_contained(
        &engine,
        reordered_victim(),
        |v| v == PlanVariant::Reordered,
        EXECUTOR_ITER,
        500,
    );
    assert_panic_contained(
        &engine,
        wavefront_victim(),
        |v| v == PlanVariant::Wavefront,
        WAVEFRONT_ITER,
        1_200,
    );
    // The blocked variant dispatches several regions per solve (one per
    // strip-mined block); a panic in a late block must contain
    // identically. The executor's failpoint sees the *global* iteration
    // index, so 4 000 lands in a late block.
    assert_panic_contained(
        &engine,
        blocked_victim(),
        |v| matches!(v, PlanVariant::Blocked { .. }),
        EXECUTOR_ITER,
        4_000,
    );

    // Every injected fault left a Panicked record in the flight recorder.
    let panicked = engine
        .recent_solves()
        .iter()
        .filter(|r| r.outcome == SolveOutcome::Panicked)
        .count();
    assert_eq!(panicked, 5, "one failed-attempt record per variant");
    failpoint::disarm_all();
}

#[test]
fn fallback_delivers_the_oracle_answer_after_a_panic() {
    let _serial = chaos_lock();
    let engine = Engine::builder()
        .workers(4)
        .pools(1)
        .adaptive()
        .observability(ObsConfig::default())
        .build();
    assert_eq!(engine.fallback_policy(), FallbackPolicy::SequentialRetry);
    let loop_ = doacross_victim();
    let prepared = engine.prepare(&loop_).unwrap();
    assert_eq!(prepared.variant(), PlanVariant::Doacross);
    let y0 = fresh_y(loop_.data_len());
    let oracle = oracle_of(&loop_, &y0);

    failpoint::arm(EXECUTOR_ITER, FailAction::PanicAt { iteration: 3_900 });
    let (stats, y) = {
        let (prepared, loop_, mut y) = (prepared.clone(), loop_.clone(), y0.clone());
        within(HANG_BOUND, move || {
            let stats = prepared.execute(&loop_, &mut y).unwrap();
            (stats, y)
        })
    };
    failpoint::disarm(EXECUTOR_ITER);

    assert_eq!(y, oracle, "fallback replays against the pristine input");
    assert_eq!(stats.attempts, 2, "one parallel fault, one replay");
    assert_eq!(stats.workers, 1, "the replay is sequential");

    // The demotion is visible everywhere it should be: the trace, the
    // flight recorder (failed attempt AND delivering replay), adaptive
    // telemetry, and the scrape.
    let events = engine.trace_events();
    assert!(events
        .iter()
        .any(|e| matches!(e.event, TraceEvent::SolvePoisoned { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e.event, TraceEvent::SolveFellBack { .. })));
    let outcomes: Vec<SolveOutcome> = engine.recent_solves().iter().map(|r| r.outcome).collect();
    assert!(outcomes.contains(&SolveOutcome::Panicked), "{outcomes:?}");
    assert!(outcomes.contains(&SolveOutcome::FellBack), "{outcomes:?}");
    assert_eq!(engine.adaptive_stats().unwrap().fallbacks, 1);
    let text = engine.metrics_text();
    assert!(text.contains("doacross_fault_panics_total 1"), "{text}");
    assert!(text.contains("doacross_fault_fallbacks_total 1"), "{text}");
    assert!(text.contains("doacross_adaptive_fallbacks_total 1"));
    failpoint::disarm_all();
}

#[test]
fn solve_deadline_resolves_a_wedged_solve_typed() {
    let _serial = chaos_lock();
    let deadline = Duration::from_millis(40);
    let engine = Engine::builder()
        .workers(4)
        .pools(1)
        .solve_deadline(deadline)
        .fallback(FallbackPolicy::Disabled)
        .observability(ObsConfig::default())
        .build();
    assert_eq!(engine.solve_deadline(), Some(deadline));
    let loop_ = doacross_victim();
    let prepared = engine.prepare(&loop_).unwrap();
    assert_eq!(prepared.variant(), PlanVariant::Doacross);
    let y0 = fresh_y(loop_.data_len());
    let oracle = oracle_of(&loop_, &y0);

    // ~200µs of injected drag per iteration wedges the region far past
    // the 40ms budget; the iteration-body deadline poll drains it.
    failpoint::arm(EXECUTOR_ITER, FailAction::DelayNs { ns: 200_000 });
    let err = {
        let (prepared, loop_, mut y) = (prepared.clone(), loop_.clone(), y0.clone());
        within(HANG_BOUND, move || {
            prepared.execute(&loop_, &mut y).unwrap_err()
        })
    };
    assert_eq!(
        err,
        EngineError::SolveTimeout { pool: 0, deadline },
        "typed timeout"
    );
    failpoint::disarm(EXECUTOR_ITER);

    // The aborted attempt left a TimedOut record with partial stats.
    let record = engine
        .recent_solves()
        .into_iter()
        .find(|r| r.outcome == SolveOutcome::TimedOut)
        .expect("flight recorder kept the aborted attempt");
    assert!(
        record.total_ns >= deadline.as_nanos() as u64,
        "attempt ran at least the budget: {record:?}"
    );
    assert!(engine
        .metrics_text()
        .contains("doacross_fault_timeouts_total 1"));

    // Un-wedged, the same handle beats the deadline and solves.
    let mut y = y0;
    prepared.execute(&loop_, &mut y).unwrap();
    assert_eq!(y, oracle);
}

#[test]
fn solve_deadline_with_fallback_still_delivers() {
    let _serial = chaos_lock();
    let engine = Engine::builder()
        .workers(4)
        .pools(1)
        .solve_deadline(Duration::from_millis(40))
        .build();
    let loop_ = doacross_victim();
    let prepared = engine.prepare(&loop_).unwrap();
    let y0 = fresh_y(loop_.data_len());
    let oracle = oracle_of(&loop_, &y0);

    // The failpoint sites live in the parallel executors only — the
    // sequential replay is immune to the very drag that wedged the
    // parallel attempt.
    failpoint::arm(EXECUTOR_ITER, FailAction::DelayNs { ns: 200_000 });
    let (stats, y) = {
        let (prepared, loop_, mut y) = (prepared.clone(), loop_.clone(), y0.clone());
        within(HANG_BOUND, move || {
            let stats = prepared.execute(&loop_, &mut y).unwrap();
            (stats, y)
        })
    };
    failpoint::disarm(EXECUTOR_ITER);
    assert_eq!(y, oracle);
    assert_eq!(stats.attempts, 2);
}

#[test]
fn injected_saturation_is_retried_with_bounded_backoff() {
    let _serial = chaos_lock();
    let engine = Engine::builder()
        .workers(2)
        .pools(1)
        .observability(ObsConfig::default())
        .build();
    let loop_ = TestLoop::new(600, 1, 7);
    let prepared = engine.prepare(&loop_).unwrap();
    let y0 = fresh_y(loop_.data_len());
    let oracle = oracle_of(&loop_, &y0);

    // Two synthetic refusals, then the gate opens: the retry loop spends
    // two backoffs and delivers.
    failpoint::arm(SCHED_ACQUIRE, FailAction::Saturate { times: 2 });
    let policy = RetryPolicy {
        max_retries: 3,
        base_delay: Duration::from_micros(200),
        max_delay: Duration::from_millis(2),
        seed: 42,
    };
    let mut y = y0.clone();
    let stats = engine
        .execute_with_retry(&prepared, &loop_, &mut y, policy)
        .expect("retries outlast the injected saturation");
    assert_eq!(y, oracle);
    assert_eq!(stats.attempts, 3, "1 delivery + 2 saturated retries");
    assert!(engine.metrics_text().contains("doacross_retry_total 2"));

    // A refusal budget larger than the retry budget surfaces typed.
    failpoint::arm(SCHED_ACQUIRE, FailAction::Saturate { times: 100 });
    let mut y = y0.clone();
    let err = engine
        .execute_with_retry(&prepared, &loop_, &mut y, policy)
        .unwrap_err();
    assert!(matches!(err, EngineError::Saturated { .. }), "{err:?}");
    failpoint::disarm(SCHED_ACQUIRE);

    // And with the gate open again, the plain path works.
    let mut y = y0;
    prepared.execute(&loop_, &mut y).unwrap();
    assert_eq!(y, oracle);
    failpoint::disarm_all();
}

#[test]
fn faults_leave_concurrent_tenants_bit_identical() {
    let _serial = chaos_lock();
    let engine = Engine::builder()
        .workers(4)
        .pools(2)
        .fallback(FallbackPolicy::Disabled)
        .build();
    let victim_loop = doacross_victim();
    let victim = engine.prepare(&victim_loop).unwrap();
    assert_eq!(victim.variant(), PlanVariant::Doacross);

    // Tenant loops are far smaller than the armed iteration (3 900), so
    // the global failpoint site never fires for them.
    let tenants: Vec<TestLoop> = vec![TestLoop::new(300, 1, 7), TestLoop::new(280, 2, 8)];
    for t in &tenants {
        let mut y = t.initial_y();
        engine.run(t, &mut y).unwrap();
    }

    failpoint::arm(EXECUTOR_ITER, FailAction::PanicAt { iteration: 3_900 });
    let (typed_faults, tenant_rounds) = within(HANG_BOUND, {
        let engine = engine.clone();
        let victim = victim.clone();
        let victim_loop = victim_loop.clone();
        let tenants = tenants.clone();
        move || {
            std::thread::scope(|scope| {
                let victim_thread = scope.spawn(|| {
                    let mut typed = 0;
                    for _ in 0..4 {
                        let mut y = fresh_y(victim_loop.data_len());
                        match victim.execute(&victim_loop, &mut y) {
                            Err(EngineError::SolvePanicked { .. }) => typed += 1,
                            other => panic!("victim expected typed panic, got {other:?}"),
                        }
                    }
                    typed
                });
                let mut rounds = 0;
                for _ in 0..20 {
                    for t in &tenants {
                        let mut y = t.initial_y();
                        engine.run(t, &mut y).expect("tenant solves never fault");
                        let mut oracle = t.initial_y();
                        run_sequential(t, &mut oracle);
                        assert_eq!(y, oracle, "tenant output is bit-identical");
                        rounds += 1;
                    }
                }
                (victim_thread.join().expect("victim thread"), rounds)
            })
        }
    });
    failpoint::disarm(EXECUTOR_ITER);
    assert_eq!(typed_faults, 4, "every victim attempt failed typed");
    assert_eq!(tenant_rounds, 40, "tenants ran to completion throughout");

    // After the storm, the victim's own structure solves clean.
    let mut y = fresh_y(victim_loop.data_len());
    let y0 = y.clone();
    victim.execute(&victim_loop, &mut y).unwrap();
    assert_eq!(y, oracle_of(&victim_loop, &y0));
}

#[test]
fn batched_submission_contains_a_faulted_parallel_job() {
    let _serial = chaos_lock();
    let engine = Engine::builder()
        .workers(4)
        .pools(1)
        .fallback(FallbackPolicy::Disabled)
        .build();
    let victim_loop = doacross_victim();
    let victim = engine.prepare(&victim_loop).unwrap();
    assert_eq!(victim.variant(), PlanVariant::Doacross);
    let small: Vec<TestLoop> = (0..3).map(|k| TestLoop::new(120 + k, 1, 7)).collect();
    let small_prepared: Vec<_> = small.iter().map(|t| engine.prepare(t).unwrap()).collect();

    failpoint::arm(EXECUTOR_ITER, FailAction::PanicAt { iteration: 3_900 });
    let (statuses, ys) = within(HANG_BOUND, {
        let engine = engine.clone();
        let victim = victim.clone();
        let victim_loop = victim_loop.clone();
        let small = small.clone();
        let small_prepared = small_prepared.clone();
        move || {
            let mut victim_y = fresh_y(victim_loop.data_len());
            let mut ys: Vec<Vec<f64>> = small.iter().map(|t| t.initial_y()).collect();
            let statuses: Vec<Result<(), EngineError>> = {
                let mut batch = engine.batch::<dyn DoacrossLoop>();
                batch.submit(&victim, &victim_loop, &mut victim_y);
                for (prepared, (t, y)) in small_prepared.iter().zip(small.iter().zip(&mut ys)) {
                    batch.submit(prepared, t, y);
                }
                batch
                    .execute_all()
                    .into_iter()
                    .map(|r| r.map(|_| ()))
                    .collect()
            };
            (statuses, ys)
        }
    });
    failpoint::disarm(EXECUTOR_ITER);

    assert!(
        matches!(statuses[0], Err(EngineError::SolvePanicked { .. })),
        "victim job fails typed inside the batch: {statuses:?}"
    );
    for (k, (t, y)) in small.iter().zip(&ys).enumerate() {
        assert!(statuses[k + 1].is_ok(), "co-batched job {k} unharmed");
        let mut oracle = t.initial_y();
        run_sequential(t, &mut oracle);
        assert_eq!(y, &oracle, "co-batched job {k} is bit-identical");
    }

    // The engine survives the batch fault: the same victim handle solves.
    let mut y = fresh_y(victim_loop.data_len());
    let y0 = y.clone();
    victim.execute(&victim_loop, &mut y).unwrap();
    assert_eq!(y, oracle_of(&victim_loop, &y0));
}

const PERSIST_SAVE: &str = "plan::persist::save";
const PERSIST_LOAD: &str = "plan::persist::load";
const ADAPTIVE_TRIAL: &str = "engine::adaptive::trial";

#[test]
fn injected_persist_faults_fail_typed_and_clear_on_disarm() {
    let _serial = chaos_lock();
    let path = std::env::temp_dir().join(format!(
        "doacross-chaos-persist-{}.plans",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let engine = Engine::builder().workers(2).pools(1).build();
    let loop_ = doacross_victim();
    let prepared = engine.prepare(&loop_).unwrap();
    let mut y = fresh_y(loop_.data_len());
    prepared.execute(&loop_, &mut y).unwrap();

    // An injected save fault surfaces as the typed persist error before
    // any bytes touch the filesystem — no store, no torn temp file.
    failpoint::arm(PERSIST_SAVE, FailAction::Saturate { times: 1 });
    let err = within(HANG_BOUND, {
        let engine = engine.clone();
        let path = path.clone();
        move || engine.save_plans(&path).unwrap_err()
    });
    assert!(
        matches!(err, EngineError::Persist(PersistError::Io(ref msg)) if msg.contains("failpoint")),
        "{err:?}"
    );
    assert!(!path.exists(), "a failed save leaves nothing behind");

    // The countdown is spent: the very next save succeeds.
    let saved = engine.save_plans(&path).expect("disarmed save");
    assert_eq!(saved, 1);

    // Same containment for load: injected fault first, honest load after.
    failpoint::arm(PERSIST_LOAD, FailAction::Saturate { times: 1 });
    let err = within(HANG_BOUND, {
        let engine = engine.clone();
        let path = path.clone();
        move || engine.load_plans(&path).unwrap_err()
    });
    assert!(
        matches!(err, EngineError::Persist(PersistError::Io(ref msg)) if msg.contains("failpoint")),
        "{err:?}"
    );
    let restored = engine.load_plans(&path).expect("disarmed load");
    assert_eq!(restored, 1, "the store on disk was never corrupted");

    let _ = std::fs::remove_file(&path);
    failpoint::disarm_all();
}

#[test]
fn injected_trial_fault_keeps_the_incumbent_plan_running() {
    let _serial = chaos_lock();
    // The adaptive suite's mispriced setup: busy-wait polls priced
    // absurdly high and barriers nearly free, so the narrow-deep grid
    // statically plans as a wavefront that measurement would normally
    // demote via a trial. With the trial failpoint saturated, every
    // proposal is absorbed as a failed challenger build.
    let mispriced = CostModel {
        wait_poll: 500.0,
        barrier: 0.001,
        post_per_iter: 0.01,
        region_dispatch: 1.0,
        ..CostModel::multimax()
    };
    let engine = Engine::builder()
        .workers(2)
        .pools(1)
        .planner(Planner::with_costs(mispriced))
        .adaptive_config(AdaptiveConfig {
            min_samples: 4,
            eval_interval: 5,
            divergence: 1.3,
            hysteresis: 1.05,
            max_trials: 3,
            confidence: 4,
        })
        .build();
    let loop_ = doacross_plan::testgrid::deep_grid(2, 300, 1, 1);
    let prepared = engine.prepare(&loop_).unwrap();
    assert_eq!(prepared.variant(), PlanVariant::Wavefront);
    let y0 = fresh_y(loop_.data_len());
    let oracle = oracle_of(&loop_, &y0);

    failpoint::arm(ADAPTIVE_TRIAL, FailAction::Saturate { times: u64::MAX });
    within(HANG_BOUND, {
        let (engine, loop_, y0, oracle) = (engine.clone(), loop_.clone(), y0.clone(), oracle);
        move || {
            for round in 0..40 {
                let mut y = y0.clone();
                engine.run(&loop_, &mut y).expect("solvable");
                assert_eq!(y, oracle, "round {round} diverged under trial faults");
            }
        }
    });
    failpoint::disarm(ADAPTIVE_TRIAL);

    // Evaluation kept running (repricing happened), but no trial ever
    // started and the statically selected plan is still the one cached —
    // an injected trial fault degrades to "no adaptation", never to a
    // broken or swapped plan.
    let stats = engine.adaptive_stats().expect("adaptive engine");
    assert!(stats.repricings >= 1, "{stats:?}");
    assert_eq!(stats.trials, 0, "saturated trials never start: {stats:?}");
    assert_eq!(stats.promotions, 0, "{stats:?}");
    let still = engine.prepare(&loop_).unwrap();
    assert_eq!(
        still.variant(),
        PlanVariant::Wavefront,
        "incumbent retained"
    );
    failpoint::disarm_all();
}

#[test]
fn consecutive_panics_do_not_wedge_the_pool() {
    let _serial = chaos_lock();
    let engine = Engine::builder()
        .workers(4)
        .pools(1)
        .fallback(FallbackPolicy::Disabled)
        .build();
    let loop_ = doacross_victim();
    let prepared = engine.prepare(&loop_).unwrap();
    let y0 = fresh_y(loop_.data_len());
    let oracle = oracle_of(&loop_, &y0);

    failpoint::arm(EXECUTOR_ITER, FailAction::PanicAt { iteration: 3_900 });
    for round in 0..3 {
        let err = {
            let (prepared, loop_, mut y) = (prepared.clone(), loop_.clone(), y0.clone());
            within(HANG_BOUND, move || {
                prepared.execute(&loop_, &mut y).unwrap_err()
            })
        };
        assert!(
            matches!(err, EngineError::SolvePanicked { .. }),
            "round {round}: {err:?}"
        );
    }
    failpoint::disarm(EXECUTOR_ITER);

    let mut y = y0;
    let stats = prepared.execute(&loop_, &mut y).unwrap();
    assert_eq!(y, oracle, "pool recovered after repeated poisonings");
    assert_eq!(stats.workers, 4, "still running the full parallel width");
}
