//! Concurrency tests: one shared [`Engine`] serving many threads.
//!
//! These are the acceptance tests for the session redesign — prepared
//! loops as first-class values executed from many threads, cache traffic
//! that reconciles exactly across shards, and invalidation that retires
//! in-flight handles without tearing down the engine.

use doacross_core::{seq::run_sequential, AccessPattern, PlanProvenance, TestLoop};
use doacross_engine::{Engine, EngineError, PreparedLoop};
use doacross_sparse::{ilu0, stencil::five_point, TriangularMatrix};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Distinct Figure 4 structures: (iterations, M, L) triples with distinct
/// fingerprints and a mix of doall / dependence-carrying shapes.
fn patterns() -> Vec<TestLoop> {
    vec![
        TestLoop::new(400, 1, 7),
        TestLoop::new(400, 1, 8),
        TestLoop::new(300, 2, 4),
        TestLoop::new(500, 3, 9),
    ]
}

/// ≥2 threads execute through one shared `Engine`, every result matches
/// the sequential oracle, and the shared cache serves a nonzero hit rate
/// with each structure planned exactly once.
#[test]
fn shared_engine_serves_concurrent_threads_with_cache_hits() {
    let engine = Engine::builder().workers(2).cache_capacity(16).build();
    let loops = patterns();
    let oracles: Vec<Vec<f64>> = loops
        .iter()
        .map(|l| {
            let mut y = l.initial_y();
            run_sequential(l, &mut y);
            y
        })
        .collect();

    const THREADS: usize = 4;
    const ROUNDS: usize = 5;
    let hits_seen = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let engine = engine.clone();
            let (loops, oracles, hits_seen) = (&loops, &oracles, &hits_seen);
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    // Stagger the pattern order per thread so threads race
                    // on *different* structures most of the time.
                    for k in 0..loops.len() {
                        let i = (k + t + round) % loops.len();
                        let mut y = loops[i].initial_y();
                        let stats = engine.run(&loops[i], &mut y).expect("valid loop");
                        assert_eq!(y, oracles[i], "thread {t} round {round} pattern {i}");
                        if stats.provenance == PlanProvenance::PlanCached {
                            hits_seen.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    let total = (THREADS * ROUNDS * loops.len()) as u64;
    let stats = engine.cache_stats();
    assert_eq!(stats.hits + stats.misses, total, "every lookup accounted");
    assert_eq!(
        stats.misses,
        loops.len() as u64,
        "build-under-shard-lock plans each structure exactly once"
    );
    assert!(stats.hits > 0, "nonzero hit rate across threads");
    assert_eq!(stats.hits, hits_seen.load(Ordering::Relaxed));
    assert_eq!(engine.cache_len(), loops.len());
}

/// Prepared handles are first-class values: cloned across threads, all
/// executing one plan concurrently, bit-identical results everywhere.
#[test]
fn cloned_prepared_handles_execute_from_many_threads() {
    let engine = Engine::builder().workers(2).build();
    let loop_ = TestLoop::new(800, 2, 8);
    let mut oracle = loop_.initial_y();
    run_sequential(&loop_, &mut oracle);

    let prepared: PreparedLoop = engine.prepare(&loop_).expect("plannable");
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let handle = prepared.clone();
            let (loop_, oracle) = (&loop_, &oracle);
            scope.spawn(move || {
                for _ in 0..3 {
                    let mut y = loop_.initial_y();
                    handle.execute(loop_, &mut y).expect("valid");
                    assert_eq!(&y, oracle);
                }
            });
        }
    });
    // The handle bypasses lookup entirely: no cache traffic beyond the
    // single prepare.
    let stats = engine.cache_stats();
    assert_eq!((stats.hits, stats.misses), (0, 1));
}

/// N threads × M patterns with a cache too small for the working set:
/// hits + misses == lookups, insertions == misses, and the net of
/// insertions − evictions equals the plans still resident — reconciled
/// across all shards.
#[test]
fn stress_traffic_reconciles_across_shards() {
    let engine = Engine::builder()
        .workers(2)
        .cache_capacity(4)
        .shards(4)
        .build();
    // 12 distinct structures over a 4-plan cache: constant eviction churn.
    let loops: Vec<TestLoop> = (0..12)
        .map(|k| TestLoop::new(200 + 10 * k, 1 + k % 3, 4 + k % 7))
        .collect();

    const THREADS: usize = 4;
    const ROUNDS: usize = 6;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let engine = engine.clone();
            let loops = &loops;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    for k in 0..loops.len() {
                        let i = (k * (t + 1) + round) % loops.len();
                        let mut y = loops[i].initial_y();
                        engine.run(&loops[i], &mut y).expect("valid");
                    }
                }
            });
        }
    });

    let stats = engine.cache_stats();
    let lookups = (THREADS * ROUNDS * loops.len()) as u64;
    assert_eq!(stats.hits + stats.misses, lookups);
    assert_eq!(
        stats.insertions, stats.misses,
        "every miss builds and inserts exactly once; no duplicate builds"
    );
    assert!(stats.evictions > 0, "working set exceeds capacity");
    assert_eq!(
        stats.insertions - stats.evictions,
        engine.cache_len() as u64,
        "shard ledgers reconcile with resident plans"
    );
    assert!(engine.cache_len() <= 4);
}

/// Invalidation during concurrent execution: stale handles fail with the
/// typed error, the engine replans, and fresh handles keep working.
#[test]
fn concurrent_invalidation_fails_stale_handles_fast() {
    let engine = Engine::builder().workers(2).build();
    let loop_ = TestLoop::new(600, 1, 8);
    let mut oracle = loop_.initial_y();
    run_sequential(&loop_, &mut oracle);

    let prepared = engine.prepare(&loop_).expect("plannable");
    let fingerprint = *prepared.fingerprint();

    let stale_errors = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let handle = prepared.clone();
            let (loop_, oracle, stale_errors) = (&loop_, &oracle, &stale_errors);
            scope.spawn(move || {
                // Execute until the invalidation (guaranteed below) is
                // observed: successful runs stay correct right up to it.
                loop {
                    let mut y = loop_.initial_y();
                    match handle.execute(loop_, &mut y) {
                        Ok(_) => assert_eq!(&y, oracle),
                        Err(EngineError::StalePlan {
                            prepared_generation,
                            current_generation,
                            ..
                        }) => {
                            assert_eq!(prepared_generation, 0);
                            assert_eq!(current_generation, 1);
                            stale_errors.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                        Err(other) => panic!("unexpected error: {other}"),
                    }
                }
            });
        }
        // Let the executors get going, then pull the plan out from under
        // them mid-stream.
        std::thread::sleep(std::time::Duration::from_millis(2));
        engine.invalidate(&fingerprint);
    });

    assert_eq!(
        stale_errors.load(Ordering::Relaxed),
        3,
        "every thread eventually observes the invalidation"
    );
    // The engine itself is unharmed: re-prepare and run.
    let fresh = engine.prepare(&loop_).expect("replannable");
    assert_eq!(fresh.generation(), 1);
    let mut y = loop_.initial_y();
    fresh.execute(&loop_, &mut y).expect("fresh handle works");
    assert_eq!(y, oracle);
}

/// The multi-tenant shape the redesign is for: several threads, several
/// *sparse-factor* structures (the paper's §3.2 workload, expressed as
/// indirect loops over real ILU(0) sparsity), one engine behind an `Arc`.
#[test]
fn multi_tenant_sparse_structures_share_one_engine() {
    use doacross_core::IndirectLoop;

    // Forward-substitution-shaped loops over three distinct ILU(0)
    // factors: y[i] += Σ_j (−L_ij)·y[col_j], row by row.
    let loops: Vec<IndirectLoop> = [(9usize, 7usize, 1u64), (8, 8, 2), (6, 11, 3)]
        .iter()
        .map(|&(nx, ny, seed)| {
            let l = TriangularMatrix::from_strict_lower(&ilu0(&five_point(nx, ny, seed)).l);
            let n = l.n();
            let a: Vec<usize> = (0..n).collect();
            let rhs: Vec<Vec<usize>> = (0..n).map(|i| l.row_cols(i).to_vec()).collect();
            let coeff: Vec<Vec<f64>> = (0..n)
                .map(|i| l.row_values(i).iter().map(|v| -v).collect())
                .collect();
            IndirectLoop::new(n, a, rhs, coeff).expect("valid structure")
        })
        .collect();
    let oracles: Vec<Vec<f64>> = loops
        .iter()
        .map(|l| {
            let mut y = vec![1.0; l.data_len()];
            run_sequential(l, &mut y);
            y
        })
        .collect();

    let engine = Arc::new(Engine::builder().workers(2).cache_capacity(8).build());
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let engine = Arc::clone(&engine);
            let (loops, oracles) = (&loops, &oracles);
            scope.spawn(move || {
                for _ in 0..4 {
                    for (l, oracle) in loops.iter().zip(oracles) {
                        let mut y = vec![1.0; l.data_len()];
                        engine.run(l, &mut y).expect("valid");
                        assert_eq!(&y, oracle);
                    }
                }
            });
        }
    });

    let stats = engine.cache_stats();
    assert_eq!(stats.misses, 3, "one plan per tenant structure");
    assert_eq!(stats.hits, (3 * 4 * 3 - 3) as u64);
}
