//! [`SolveBatch`]: batched submission — many prepared solves, one call.
//!
//! Concurrent tenants often carry *small* structures: loops the planner
//! prices straight to the sequential variant because a parallel region
//! costs more than the loop body. Submitted one by one, each such solve
//! still pays the engine's per-solve overhead (admission, checkout,
//! bookkeeping) for microseconds of work. A batch amortizes it: callers
//! queue `(prepared, loop, y)` jobs and [`SolveBatch::execute_all`] runs
//! them all —
//!
//! * **sequential-variant jobs coalesce under one sub-pool lease**: the
//!   pool's workers claim whole jobs off a shared counter and run each
//!   start-to-finish with [`doacross_core::seq::run_sequential`] — so
//!   results stay bit-identical to N separate executes while N admission
//!   dispatches collapse into one (and on a single-worker sub-pool the
//!   region degenerates to inline execution under the same lease, paying
//!   no cross-thread handoff at all);
//! * every other job routes through the exact same execute path as
//!   [`crate::PreparedLoop::execute`] — same admission, same scratch
//!   checkout, same observability;
//! * per-job results and [`RunStats`] come back demultiplexed in
//!   submission order.
//!
//! Staleness is re-checked **per job at execute time**: a handle
//! invalidated (or adaptively swapped) while the batch was queued fails
//! typed with [`EngineError::StalePlan`] and never executes — queueing a
//! batch cannot resurrect a retired plan.

use crate::engine::obs_provenance;
use crate::error::EngineError;
use crate::prepared::PreparedLoop;
use crate::Engine;
use doacross_core::seq::run_sequential;
use doacross_core::{DoacrossError, DoacrossLoop, PlanProvenance, RunStats};
use doacross_obs::{SolveRecord, TraceEvent};
use doacross_plan::PlanVariant;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// One queued solve job.
struct BatchJob<'a, L: ?Sized> {
    prepared: PreparedLoop,
    loop_: &'a L,
    y: &'a mut [f64],
}

/// A queue of solve jobs executed together by
/// [`SolveBatch::execute_all`]. Built by [`Engine::batch`]; jobs borrow
/// their loop and output buffer for the batch's lifetime.
///
/// ```
/// use doacross_core::{seq::run_sequential, TestLoop};
/// use doacross_engine::Engine;
///
/// let engine = Engine::builder().workers(2).build();
/// let loops: Vec<TestLoop> = (0..4).map(|k| TestLoop::new(60 + 10 * k, 1, 7)).collect();
/// let prepared: Vec<_> = loops.iter().map(|l| engine.prepare(l).unwrap()).collect();
///
/// let mut ys: Vec<Vec<f64>> = loops.iter().map(|l| l.initial_y()).collect();
/// let mut batch = engine.batch();
/// for ((p, l), y) in prepared.iter().zip(&loops).zip(&mut ys) {
///     batch.submit(p, l, y);
/// }
/// for (result, (l, y)) in engine.execute_all(batch).into_iter().zip(loops.iter().zip(&ys)) {
///     result.unwrap();
///     let mut oracle = l.initial_y();
///     run_sequential(l, &mut oracle);
///     assert_eq!(y, &oracle);
/// }
/// ```
/// The loop type `L` is a generic parameter (defaulting to
/// `dyn DoacrossLoop` for heterogeneous batches) so that homogeneous
/// batches — the common case — monomorphize the coalesced executor
/// exactly like the serial path does, instead of paying a virtual call
/// per term.
pub struct SolveBatch<'a, L: DoacrossLoop + ?Sized = dyn DoacrossLoop> {
    engine: Engine,
    jobs: Vec<BatchJob<'a, L>>,
}

/// A coalesced-region slot: one sequential-variant job plus the stats
/// slot its claiming worker fills.
struct SeqSlot<'a, L: ?Sized> {
    result_index: usize,
    prepared: PreparedLoop,
    loop_: &'a L,
    y: &'a mut [f64],
    stats: Option<RunStats>,
}

/// Shares the coalesced slots with the pool's workers. Soundness: a slot
/// is only touched by the worker that claimed its index off the shared
/// counter, and `fetch_add` hands each index out exactly once.
struct SeqSlots<'a, 'b, L: ?Sized>(&'b [UnsafeCell<SeqSlot<'a, L>>]);

// SAFETY: see the struct docs — `AccessPattern: Sync` bounds the loop
// references, and slot interiors are claimed exclusively.
unsafe impl<L: Sync + ?Sized> Sync for SeqSlots<'_, '_, L> {}

impl<'a, L: ?Sized> SeqSlots<'a, '_, L> {
    /// # Safety
    /// The caller must hold exclusive claim to index `k` (here: `k` came
    /// off the region's shared `fetch_add` counter exactly once), which
    /// is what makes the `&self -> &mut` aliasing sound.
    #[allow(clippy::mut_from_ref)]
    unsafe fn claim(&self, k: usize) -> &mut SeqSlot<'a, L> {
        // SAFETY: exclusivity of `k` is the caller's contract (doc above);
        // the `UnsafeCell` projection itself is always in bounds.
        unsafe { &mut *self.0[k].get() }
    }
}

impl<'a, L: DoacrossLoop + ?Sized> SolveBatch<'a, L> {
    pub(crate) fn new(engine: Engine) -> Self {
        Self {
            engine,
            jobs: Vec::new(),
        }
    }

    /// Queues one solve: execute `prepared` against `loop_`, updating `y`
    /// in place exactly as the sequential source loop would. Nothing runs
    /// until [`SolveBatch::execute_all`].
    ///
    /// Same contract as [`PreparedLoop::execute`]: `loop_` must share the
    /// structure the handle was prepared for; `y` and the coefficient
    /// values are free to differ per call.
    pub fn submit(&mut self, prepared: &PreparedLoop, loop_: &'a L, y: &'a mut [f64]) {
        self.jobs.push(BatchJob {
            prepared: prepared.clone(),
            loop_,
            y,
        });
    }

    /// Jobs queued so far.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Runs every queued job and returns per-job results in submission
    /// order. Results are bit-identical to calling
    /// [`PreparedLoop::execute`] once per job in submission order; only
    /// the scheduling differs (see module docs). Each job fails or
    /// succeeds independently — one stale handle or shape mismatch never
    /// poisons its neighbors.
    pub fn execute_all(self) -> Vec<Result<RunStats, EngineError>> {
        let inner = &self.engine.inner;
        let njobs = self.jobs.len();
        let mut results: Vec<Option<Result<RunStats, EngineError>>> =
            (0..njobs).map(|_| None).collect();

        // Triage at execute time: stale handles fail typed here and never
        // run (the flush guarantee for plans invalidated or swapped while
        // the batch was queued); sequential-variant jobs coalesce; the
        // rest take the ordinary execute path below.
        let mut seq_slots: Vec<UnsafeCell<SeqSlot<'a, L>>> = Vec::new();
        let mut direct: Vec<(usize, BatchJob<'a, L>)> = Vec::new();
        for (i, job) in self.jobs.into_iter().enumerate() {
            if let Err(err) = job.prepared.check_stale() {
                results[i] = Some(Err(err));
                continue;
            }
            if !matches!(job.prepared.variant(), PlanVariant::Sequential) {
                direct.push((i, job));
                continue;
            }
            // Mirror PlanExecutor::execute's shape validation — the
            // coalesced region bypasses it.
            let census = job.prepared.plan_arc().census();
            if census.iterations != job.loop_.iterations()
                || census.data_len != job.loop_.data_len()
            {
                results[i] = Some(Err(EngineError::Doacross(DoacrossError::PlanMismatch {
                    plan_iterations: census.iterations,
                    plan_data_len: census.data_len,
                    loop_iterations: job.loop_.iterations(),
                    loop_data_len: job.loop_.data_len(),
                })));
                continue;
            }
            if job.y.len() != job.loop_.data_len() {
                results[i] = Some(Err(EngineError::Doacross(DoacrossError::DataLenMismatch {
                    got: job.y.len(),
                    expected: job.loop_.data_len(),
                })));
                continue;
            }
            seq_slots.push(UnsafeCell::new(SeqSlot {
                result_index: i,
                prepared: job.prepared,
                loop_: job.loop_,
                y: job.y,
                stats: None,
            }));
        }

        if inner.obs.enabled() {
            inner.obs.emit(TraceEvent::BatchSubmitted {
                jobs: njobs as u64,
                coalesced: seq_slots.len() as u64,
            });
        }

        // One sub-pool lease, one region, all coalesced jobs: workers
        // claim whole jobs off the counter and run each start-to-finish
        // sequentially — bit-identical to N separate executes.
        if !seq_slots.is_empty() {
            match inner.pools.acquire() {
                Err(err) => {
                    for slot in &seq_slots {
                        // SAFETY: the region never ran; this thread owns
                        // every slot exclusively.
                        let slot = unsafe { &mut *slot.get() };
                        results[slot.result_index] = Some(Err(err.clone().into()));
                    }
                }
                Ok(guard) => {
                    let pool_index = guard.index();
                    if inner.obs.enabled() {
                        inner.obs.emit(TraceEvent::PoolDispatched {
                            pool: pool_index as u64,
                            stolen: guard.stolen(),
                            wait_ns: 0,
                        });
                    }
                    // The same stats shape PlanExecutor::execute
                    // produces for the sequential variant.
                    let run_slot = |slot: &mut SeqSlot<'_, L>| {
                        let start = Instant::now();
                        run_sequential(slot.loop_, slot.y);
                        slot.stats = Some(RunStats {
                            iterations: slot.loop_.iterations(),
                            workers: 1,
                            blocks: 1,
                            total: start.elapsed(),
                            attempts: 1,
                            ..Default::default()
                        });
                    };
                    if guard.pool().threads() <= 1 {
                        // One worker means zero job-level parallelism: a
                        // region would only add a cross-thread handoff.
                        // Run the jobs inline under the same admission
                        // guard — identical semantics, no dispatch tax.
                        for slot in &seq_slots {
                            // SAFETY: no region ran; this thread owns
                            // every slot exclusively.
                            run_slot(unsafe { &mut *slot.get() });
                        }
                    } else {
                        let shared = SeqSlots(&seq_slots);
                        let next = AtomicUsize::new(0);
                        let nslots = seq_slots.len();
                        guard.pool().run(|_worker| loop {
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            if k >= nslots {
                                break;
                            }
                            // SAFETY: index `k` was handed to this worker
                            // alone (fetch_add), so the slot access is
                            // exclusive for the region's duration.
                            run_slot(unsafe { shared.claim(k) });
                        });
                    }
                    drop(guard);
                    for slot in seq_slots {
                        let slot = slot.into_inner();
                        let mut stats = slot.stats.expect("every claimed slot ran");
                        stats.provenance = if slot.prepared.from_cache() {
                            PlanProvenance::PlanCached
                        } else {
                            PlanProvenance::PlanCold
                        };
                        let plan = slot.prepared.plan_arc();
                        if inner.obs.enabled() {
                            let clamp =
                                |d: std::time::Duration| d.as_nanos().min(u64::MAX as u128) as u64;
                            inner.obs.emit(TraceEvent::SolveFinished {
                                record: SolveRecord {
                                    fp: plan.fingerprint().into(),
                                    variant: plan.variant().into(),
                                    provenance: obs_provenance(stats.provenance),
                                    generation: slot.prepared.generation(),
                                    total_ns: clamp(stats.total),
                                    inspector_ns: clamp(stats.inspector),
                                    executor_ns: clamp(stats.executor),
                                    post_ns: clamp(stats.post),
                                    iterations: stats.iterations as u64,
                                    workers: stats.workers as u64,
                                    stalls: stats.stalls,
                                    wait_polls: stats.wait_polls,
                                    barrier_crossings: stats.barrier_crossings,
                                    pool: pool_index as u64,
                                    outcome: doacross_obs::SolveOutcome::Ok,
                                },
                            });
                        }
                        if let Some(adaptive) = &inner.adaptive {
                            adaptive.after_solve(inner, slot.loop_, slot.y, plan, &stats);
                        }
                        results[slot.result_index] = Some(Ok(stats));
                    }
                }
            }
        }

        // Everything else is an ordinary execute — same admission gate,
        // same scratch checkout, same hooks.
        for (i, job) in direct {
            results[i] = Some(job.prepared.execute(job.loop_, job.y));
        }

        results
            .into_iter()
            .map(|r| r.expect("every job was triaged exactly once"))
            .collect()
    }
}

impl Engine {
    /// Starts an empty [`SolveBatch`] against this engine. The loop type
    /// is inferred from the first [`SolveBatch::submit`] (annotate as
    /// `SolveBatch<'_, dyn DoacrossLoop>` — the default — to mix loop
    /// types in one batch).
    pub fn batch<'a, L: DoacrossLoop + ?Sized>(&self) -> SolveBatch<'a, L> {
        SolveBatch::new(self.clone())
    }

    /// Prepares every pattern in order — sugar for calling
    /// [`Engine::prepare`] per pattern, stopping at the first failure.
    /// Combine with [`Engine::batch`] to resolve a tenant set's plans up
    /// front and then submit solves against them.
    pub fn prepare_all<P: doacross_core::AccessPattern + ?Sized>(
        &self,
        patterns: &[&P],
    ) -> Result<Vec<PreparedLoop>, EngineError> {
        patterns.iter().map(|p| self.prepare(*p)).collect()
    }

    /// Runs every job in `batch`, returning per-job results in submission
    /// order — sugar for [`SolveBatch::execute_all`].
    pub fn execute_all<L: DoacrossLoop + ?Sized>(
        &self,
        batch: SolveBatch<'_, L>,
    ) -> Vec<Result<RunStats, EngineError>> {
        batch.execute_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_core::{AccessPattern, TestLoop};

    #[test]
    fn empty_batch_is_a_no_op() {
        let engine = Engine::builder().workers(2).build();
        // The default loop-type parameter: a heterogeneous (dyn) batch.
        let batch: SolveBatch<'_> = engine.batch();
        assert!(batch.is_empty());
        assert_eq!(batch.execute_all().len(), 0);
    }

    #[test]
    fn batched_results_match_serial_executes_bit_for_bit() {
        let engine = Engine::builder().workers(2).build();
        // Mixed sizes: small loops plan sequential (coalesced), larger
        // ones plan parallel variants (direct path).
        let loops: Vec<TestLoop> = (0..6)
            .map(|k| TestLoop::new(if k % 2 == 0 { 40 + k } else { 700 + 40 * k }, 2, 8))
            .collect();
        let prepared: Vec<_> = loops.iter().map(|l| engine.prepare(l).unwrap()).collect();

        // Serial oracle: one execute per job, in order.
        let mut serial: Vec<Vec<f64>> = loops.iter().map(|l| l.initial_y()).collect();
        for ((p, l), y) in prepared.iter().zip(&loops).zip(&mut serial) {
            p.execute(l, y).unwrap();
        }

        let mut batched: Vec<Vec<f64>> = loops.iter().map(|l| l.initial_y()).collect();
        let mut batch = engine.batch();
        for ((p, l), y) in prepared.iter().zip(&loops).zip(&mut batched) {
            batch.submit(p, l, y);
        }
        assert_eq!(batch.len(), loops.len());
        let results = batch.execute_all();
        assert_eq!(results.len(), loops.len());
        for (i, r) in results.iter().enumerate() {
            let stats = r.as_ref().unwrap();
            assert_eq!(stats.iterations, loops[i].iterations());
        }
        assert_eq!(batched, serial, "batched execution diverged from serial");
    }

    #[test]
    fn stale_handle_in_a_pending_batch_fails_typed_and_never_executes() {
        let engine = Engine::builder().workers(2).build();
        let small = TestLoop::new(40, 1, 7);
        let live = TestLoop::new(50, 1, 7);
        let stale_prepared = engine.prepare(&small).unwrap();
        let live_prepared = engine.prepare(&live).unwrap();

        let mut y_stale = small.initial_y();
        let y_stale_before = y_stale.clone();
        let mut y_live = live.initial_y();
        let mut batch = engine.batch();
        batch.submit(&stale_prepared, &small, &mut y_stale);
        batch.submit(&live_prepared, &live, &mut y_live);

        // Invalidate while the batch is queued: the flush must catch it.
        assert!(engine.invalidate(stale_prepared.fingerprint()));
        let results = batch.execute_all();
        assert!(matches!(
            results[0],
            Err(EngineError::StalePlan {
                prepared_generation: 0,
                current_generation: 1,
                ..
            })
        ));
        assert_eq!(y_stale, y_stale_before, "stale job must never execute");
        results[1].as_ref().unwrap();
        let mut oracle = live.initial_y();
        run_sequential(&live, &mut oracle);
        assert_eq!(y_live, oracle, "live job unaffected by its stale neighbor");
    }

    #[test]
    fn mismatched_buffer_fails_its_job_only() {
        let engine = Engine::builder().workers(2).build();
        let loop_ = TestLoop::new(40, 1, 7);
        let prepared = engine.prepare(&loop_).unwrap();
        let mut short = vec![0.0; 3];
        let mut ok = loop_.initial_y();
        let mut batch = engine.batch();
        batch.submit(&prepared, &loop_, &mut short);
        batch.submit(&prepared, &loop_, &mut ok);
        let results = batch.execute_all();
        assert!(matches!(
            results[0],
            Err(EngineError::Doacross(DoacrossError::DataLenMismatch {
                got: 3,
                ..
            }))
        ));
        results[1].as_ref().unwrap();
    }
}
