//! Fault-containment policy types: what the engine does when a parallel
//! solve panics, times out, or cannot be admitted.
//!
//! The mechanisms themselves live in [`crate::engine`] (`execute_plan`
//! catches the region fault; `execute_with_retry` spends the backoff
//! budget). This module only holds the knobs.

use std::time::Duration;

use rand::{rngs::SmallRng, Rng, SeedableRng};

/// What the engine does after a parallel solve is poisoned (worker panic)
/// or misses its deadline.
///
/// The parallel output buffer may be torn when a region aborts mid-flight,
/// so the fallback always replays against a pristine copy of the caller's
/// input taken before the parallel attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FallbackPolicy {
    /// Retry the solve once on the sequential variant (the paper's
    /// unpreprocessed loop) and deliver its result; the demotion is
    /// recorded in adaptive telemetry and the flight recorder. Default.
    #[default]
    SequentialRetry,
    /// Surface the typed error to the caller unmodified.
    Disabled,
}

/// Bounded exponential backoff for [`crate::EngineError::Saturated`]
/// admission failures, used by `Engine::execute_with_retry`.
///
/// Only saturation is retried: it is the one transient, load-induced
/// failure. Panics and timeouts are fault containment's job, and plan or
/// soundness errors are deterministic — retrying them spends latency to
/// reproduce the same error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each subsequent retry.
    pub base_delay: Duration,
    /// Cap applied to the doubled delay.
    pub max_delay: Duration,
    /// Seed for the deterministic jitter stream. Two tenants retrying
    /// with different seeds decorrelate instead of re-colliding on the
    /// same pool at the same instant.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_delay: Duration::from_micros(50),
            max_delay: Duration::from_millis(5),
            seed: 0x5eed_d0ac,
        }
    }
}

impl RetryPolicy {
    /// The jittered delays this policy will sleep, in order: attempt `k`
    /// (0-based) backs off `base · 2ᵏ` capped at `max_delay`, scaled by a
    /// uniform factor in `[0.5, 1.0)` drawn from the seeded stream.
    pub fn delays(&self) -> impl Iterator<Item = Duration> + '_ {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        (0..self.max_retries).map(move |k| {
            let full = self
                .base_delay
                .saturating_mul(1u32 << k.min(20))
                .min(self.max_delay);
            let jitter = 0.5 + 0.5 * rng.gen::<f64>();
            full.mul_f64(jitter)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_fallback_is_sequential_retry() {
        assert_eq!(FallbackPolicy::default(), FallbackPolicy::SequentialRetry);
    }

    #[test]
    fn delays_are_bounded_and_monotone_before_jitter() {
        let policy = RetryPolicy {
            max_retries: 8,
            base_delay: Duration::from_micros(100),
            max_delay: Duration::from_millis(1),
            seed: 7,
        };
        let delays: Vec<_> = policy.delays().collect();
        assert_eq!(delays.len(), 8);
        for d in &delays {
            // Jitter scales into [0.5, 1.0), so every delay sits within
            // [base/2, max_delay).
            assert!(*d >= policy.base_delay / 2, "{d:?}");
            assert!(*d < policy.max_delay, "{d:?}");
        }
    }

    #[test]
    fn delays_are_deterministic_per_seed() {
        let policy = RetryPolicy::default();
        let a: Vec<_> = policy.delays().collect();
        let b: Vec<_> = policy.delays().collect();
        assert_eq!(a, b);
        let other = RetryPolicy {
            seed: 99,
            ..RetryPolicy::default()
        };
        assert_ne!(a, other.delays().collect::<Vec<_>>());
    }

    #[test]
    fn zero_retries_yields_no_delays() {
        let policy = RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(policy.delays().count(), 0);
    }
}
