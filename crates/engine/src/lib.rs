//! # doacross-engine — the thread-safe session API
//!
//! The paper's economics — preprocessing "performed just once, while the
//! doacross loop may be executed many times" (§2.1) — only pay off at
//! service scale if *many concurrent callers* can share the amortized
//! artifacts. This crate is that session layer:
//!
//! * [`Engine`] — a cheaply-cloneable (`Arc`-backed), `Send + Sync`
//!   session object owning the worker [`ThreadPool`](doacross_par::ThreadPool),
//!   a cost-model [`Planner`](doacross_plan::Planner), and a **sharded,
//!   internally-synchronized plan cache**
//!   ([`ConcurrentPlanCache`](doacross_plan::ConcurrentPlanCache)).
//!   Every method takes `&self`; concurrent callers hit the cache without
//!   external locking.
//! * [`EngineBuilder`] — worker count, cache capacity, shard count,
//!   planner, and doacross configuration; [`EngineBuilder::calibrated`]
//!   wires `doacross_sim::calibrate` in so variant selection prices with
//!   the *host's* measured cost ratios instead of the Multimax preset.
//! * [`PreparedLoop`] — the compiled-loop artifact as a first-class
//!   value: a cheap cloneable handle (an `Arc`'d
//!   [`ExecutionPlan`](doacross_plan::ExecutionPlan) plus the generation
//!   it was prepared under) that can be built once and executed from many
//!   threads via [`PreparedLoop::execute`] / [`PreparedLoop::execute_into`].
//! * **Observability** — [`EngineBuilder::observability`] turns on the
//!   `doacross-obs` layer: structured trace events from plan build, cache,
//!   persistence, adaptive policy, and execute; Prometheus / JSON metrics
//!   via [`Engine::metrics_text`] / [`Engine::metrics_json`]; and a
//!   flight recorder of recent solves via [`Engine::recent_solves`].
//! * [`EngineError`] — the typed failure surface, including
//!   [`EngineError::StalePlan`] for handles outlived by
//!   [`Engine::invalidate`] and [`EngineError::Persist`] for plan stores
//!   that cannot be trusted.
//!
//! Plans are also **durable**: [`Engine::save_plans`] checkpoints the
//! cache to a versioned, checksummed store
//! ([`doacross_plan::persist`]), and [`EngineBuilder::warm_start`] /
//! [`Engine::load_plans`] restore it — recency-preserving and
//! invalidation-generation-aware — so a restarted service's first solve
//! of a known structure is a cache hit, not a preprocessing pass.
//!
//! ## Quickstart
//!
//! ```
//! use doacross_core::{seq::run_sequential, PlanProvenance, TestLoop};
//! use doacross_engine::Engine;
//!
//! let engine = Engine::builder().workers(2).build();
//! let loop_ = TestLoop::new(1_000, 1, 8);
//!
//! // One-shot: plan on first sight, serve from cache thereafter.
//! let mut y = loop_.initial_y();
//! let cold = engine.run(&loop_, &mut y).unwrap();
//! assert_eq!(cold.provenance, PlanProvenance::PlanCold);
//!
//! // Prepared handle: plan resolved once, executable from any thread.
//! let prepared = engine.prepare(&loop_).unwrap();
//! let mut y2 = loop_.initial_y();
//! prepared.execute(&loop_, &mut y2).unwrap();
//!
//! let mut oracle = loop_.initial_y();
//! run_sequential(&loop_, &mut oracle);
//! assert_eq!(y, oracle);
//! assert_eq!(y2, oracle);
//! assert_eq!(engine.cache_stats().hits, 1);
//! ```

// Audit posture: every dereference inside an `unsafe fn` must name its
// own justification in an explicit `unsafe {}` block.
#![deny(unsafe_op_in_unsafe_fn)]
pub mod adaptive;
pub mod batch;
pub mod builder;
pub mod engine;
pub mod error;
pub mod fault;
pub mod prepared;

pub use adaptive::AdaptiveStats;
pub use batch::SolveBatch;
pub use builder::EngineBuilder;
pub use engine::Engine;
pub use error::EngineError;
pub use fault::{FallbackPolicy, RetryPolicy};
pub use prepared::PreparedLoop;
// The scheduler vocabulary ([`EngineBuilder::pools`] /
// [`EngineBuilder::max_pending`], per-pool accounting behind
// [`Engine::pool_stats`]), re-exported likewise.
pub use doacross_sched::{PoolStats, DEFAULT_MAX_PENDING, MAX_POOLS};
// The persistence vocabulary engine callers need, re-exported so they can
// save/restore plans without naming doacross-plan directly.
pub use doacross_plan::{PersistError, PlanStore, StoredCalibration};
// Per-shard cache observability, re-exported for the same reason.
pub use doacross_plan::ShardStats;
// The adaptive-policy vocabulary ([`EngineBuilder::adaptive_config`],
// telemetry accessors), re-exported likewise.
pub use doacross_adapt::{AdaptiveConfig, TelemetryEntry, TelemetryTotals, VariantKind};
// The observability vocabulary ([`EngineBuilder::observability`], sinks,
// the trace/flight types behind [`Engine::trace_events`] /
// [`Engine::recent_solves`]). Metric names are documented at
// [`doacross_obs`]'s crate root.
pub use doacross_obs::{
    Obs, ObsConfig, ObsFault, ObsProvenance, ObsSink, ObsVariant, SolveOutcome, SolveRecord,
    TraceEvent, TracedEvent,
};
// The deep-profiling vocabulary ([`EngineBuilder::profiling`], the
// profile ring behind [`Engine::recent_profiles`], the Chrome-trace
// exporter behind [`Engine::profile_chrome_trace`] and its structural
// validator, and the NDJSON streaming sink).
pub use doacross_obs::profile::{
    validate_chrome_trace, ChromeTraceStats, ProfConfig, ProfSpan, ProfileSummary, SolveProfile,
    SpanKind, StreamingSink,
};
