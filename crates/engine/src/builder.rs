//! [`EngineBuilder`]: engine configuration, including host calibration
//! and warm starts from persisted plan stores.

use crate::engine::Engine;
use crate::error::EngineError;
use doacross_core::DoacrossConfig;
use doacross_par::ThreadPool;
use doacross_plan::{ConcurrentPlanCache, Planner};
use std::path::PathBuf;

/// Default total plan capacity across shards.
pub const DEFAULT_CACHE_CAPACITY: usize = 128;
/// Default shard count (power of two).
pub const DEFAULT_SHARDS: usize = 8;
/// Calibration repetitions used by [`EngineBuilder::calibrated`] — enough
/// to suppress scheduler noise without a perceptible build pause.
pub const CALIBRATION_REPS: usize = 3;

/// Configures and builds an [`Engine`].
///
/// ```
/// use doacross_engine::Engine;
///
/// let engine = Engine::builder()
///     .workers(2)
///     .cache_capacity(32)
///     .shards(4)
///     .build();
/// assert_eq!(engine.threads(), 2);
/// assert_eq!(engine.shards(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    workers: Option<usize>,
    cache_capacity: usize,
    shards: usize,
    planner: Planner,
    config: DoacrossConfig,
    warm_start: Option<PathBuf>,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineBuilder {
    /// Builder with defaults: host-sized worker count, a
    /// [`DEFAULT_CACHE_CAPACITY`]-plan cache over [`DEFAULT_SHARDS`]
    /// shards, the Multimax-calibrated planner, and the default doacross
    /// configuration.
    pub fn new() -> Self {
        Self {
            workers: None,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            shards: DEFAULT_SHARDS,
            planner: Planner::new(),
            config: DoacrossConfig::default(),
            warm_start: None,
        }
    }

    /// Worker thread count (the paper's processor count `p`). Defaults to
    /// the host's available parallelism, capped at 8 — oversubscribing
    /// busy-wait executors degrades everyone.
    ///
    /// # Panics
    /// [`EngineBuilder::build`] panics if `workers` is 0.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Total plan capacity, spread over the shards (0 disables caching —
    /// every prepare replans; useful for measuring the uncached baseline).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Shard count for the concurrent plan cache (rounded up to a power
    /// of two). More shards mean less lock contention between unrelated
    /// structures; capacity per shard shrinks correspondingly.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Explicit planner (e.g. [`Planner::with_costs`] with custom
    /// constants).
    pub fn planner(mut self, planner: Planner) -> Self {
        self.planner = planner;
        self
    }

    /// Doacross configuration for executions. `schedule` and `wait` are
    /// honored; `validate_terms` is forced off and `copy_back` forced on
    /// (see [`doacross_plan::PlanExecutor`]).
    pub fn config(mut self, config: DoacrossConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the planner's cost model with one measured on *this host*
    /// via [`doacross_sim::calibrate`] — sequential per-term/per-iteration
    /// costs, doacross executor overheads, and pool dispatch latency, in
    /// normalized units. Selection then prices variants for the machine
    /// actually running them instead of the paper's Encore Multimax.
    ///
    /// Costs a few milliseconds of measurement at build time; worth it for
    /// long-lived engines, skippable for throwaways.
    pub fn calibrated(mut self) -> Self {
        self.planner = Planner::with_costs(doacross_sim::calibrate(CALIBRATION_REPS).model);
        self
    }

    /// Warm-starts the engine from the plan store at `path` (written by a
    /// previous process via [`Engine::save_plans`]): every structure in
    /// the store begins life cached, so its first solve after a restart
    /// skips preprocessing entirely.
    ///
    /// A **missing** file is a clean cold start (the natural first-boot
    /// state), and so is a store written by a different
    /// `persist::FORMAT_VERSION` (the version policy: a rejected store is
    /// just a cold start, and the next save rewrites the current format —
    /// a format-bumping deploy must not crash-loop on its own previous
    /// checkpoint). An unreadable, corrupt, or truncated store of the
    /// current format fails [`EngineBuilder::try_build`] with
    /// [`EngineError::Persist`] — silently starting cold over a *damaged*
    /// store would hide exactly the regression persistence exists to
    /// prevent.
    pub fn warm_start(mut self, path: impl Into<PathBuf>) -> Self {
        self.warm_start = Some(path.into());
        self
    }

    /// Builds the engine: spawns the worker pool, assembles the shared
    /// session state, and applies the [`EngineBuilder::warm_start`] store
    /// if one was configured.
    pub fn try_build(self) -> Result<Engine, EngineError> {
        let workers = self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|v| v.get())
                .unwrap_or(2)
                .min(8)
        });
        let engine = Engine::from_parts(
            ThreadPool::new(workers),
            self.planner,
            self.config,
            ConcurrentPlanCache::new(self.cache_capacity, self.shards),
        );
        if let Some(path) = self.warm_start {
            engine.warm_start_plans(&path)?;
        }
        Ok(engine)
    }

    /// Builds the engine; identical to [`EngineBuilder::try_build`] except
    /// that a failing warm start panics. Infallible when
    /// [`EngineBuilder::warm_start`] is not configured; prefer `try_build`
    /// when it is.
    ///
    /// # Panics
    /// Panics if `workers` is 0 or a configured warm-start store exists
    /// but cannot be loaded.
    pub fn build(self) -> Engine {
        self.try_build()
            .expect("engine build failed: configured warm-start store is unreadable")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_core::{seq::run_sequential, TestLoop};

    #[test]
    fn defaults_are_sane() {
        let engine = EngineBuilder::new().workers(2).build();
        assert_eq!(engine.threads(), 2);
        assert_eq!(engine.shards(), DEFAULT_SHARDS);
        assert!(engine.cache_stats().hits == 0 && engine.cache_len() == 0);
    }

    #[test]
    fn fresh_engine_stats_report_zero_hit_rate() {
        // Regression for the 0/0 hit-rate case: a fresh engine's merged
        // multi-shard stats must report 0.0, never NaN.
        let engine = EngineBuilder::new().workers(2).build();
        let rate = engine.cache_stats().hit_rate();
        assert_eq!(rate, 0.0);
        assert!(!rate.is_nan());
    }

    #[test]
    fn warm_start_with_missing_store_is_a_cold_start() {
        let path = std::env::temp_dir().join(format!(
            "doacross-warm-start-missing-{}.plans",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let engine = EngineBuilder::new()
            .workers(2)
            .warm_start(&path)
            .try_build()
            .expect("missing store is first boot, not an error");
        assert_eq!(engine.cache_len(), 0);
        assert_eq!(engine.cache_stats().hit_rate(), 0.0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let engine = Engine::builder().workers(2).cache_capacity(0).build();
        let loop_ = TestLoop::new(200, 1, 8);
        for _ in 0..2 {
            let mut y = loop_.initial_y();
            engine.run(&loop_, &mut y).unwrap();
        }
        let s = engine.cache_stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 2);
        assert_eq!(engine.cache_len(), 0);
    }

    #[test]
    fn calibrated_engine_still_computes_correctly() {
        // Calibration changes pricing, never semantics: any selected
        // variant must match the sequential oracle bit for bit.
        let engine = Engine::builder().workers(2).calibrated().build();
        for l in [7usize, 8] {
            let loop_ = TestLoop::new(800, 2, l);
            let mut y = loop_.initial_y();
            engine.run(&loop_, &mut y).unwrap();
            let mut oracle = loop_.initial_y();
            run_sequential(&loop_, &mut oracle);
            assert_eq!(y, oracle, "L={l}");
        }
    }
}
