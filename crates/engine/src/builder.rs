//! [`EngineBuilder`]: engine configuration, including host calibration,
//! the adaptive feedback loop, and warm starts from persisted plan
//! stores.

use crate::adaptive::AdaptiveRuntime;
use crate::engine::Engine;
use crate::error::EngineError;
use crate::fault::FallbackPolicy;
use doacross_adapt::AdaptiveConfig;
use doacross_core::DoacrossConfig;
use doacross_obs::profile::{ProfConfig, Profiler};
use doacross_obs::{ColdStartReason, Obs, ObsConfig, TraceEvent};
use doacross_plan::{
    default_shard_count, ConcurrentPlanCache, PersistError, PlanStore, Planner, StoredCalibration,
};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Default total plan capacity across shards.
pub const DEFAULT_CACHE_CAPACITY: usize = 128;
/// The historical fixed shard count. Since the adaptive-shard change the
/// builder defaults to [`doacross_plan::default_shard_count`] (the host's
/// available parallelism, clamped to a power of two) instead; this
/// constant remains for callers that want the old behavior explicitly via
/// [`EngineBuilder::shards`].
pub const DEFAULT_SHARDS: usize = 8;
/// Calibration repetitions used by [`EngineBuilder::calibrated`] — enough
/// to suppress scheduler noise without a perceptible build pause.
pub const CALIBRATION_REPS: usize = 3;

/// Configures and builds an [`Engine`].
///
/// ```
/// use doacross_engine::Engine;
///
/// let engine = Engine::builder()
///     .workers(2)
///     .cache_capacity(32)
///     .shards(4)
///     .build();
/// assert_eq!(engine.threads(), 2);
/// assert_eq!(engine.shards(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    workers: Option<usize>,
    pools: Option<usize>,
    max_pending: usize,
    cache_capacity: usize,
    shards: Option<usize>,
    planner: Planner,
    config: DoacrossConfig,
    warm_start: Option<PathBuf>,
    calibrate: bool,
    adaptive: Option<AdaptiveConfig>,
    observability: Option<ObsConfig>,
    profiling: Option<ProfConfig>,
    solve_deadline: Option<Duration>,
    fallback: FallbackPolicy,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineBuilder {
    /// Builder with defaults: host-sized worker count, a
    /// [`DEFAULT_CACHE_CAPACITY`]-plan cache sharded per the host's
    /// available parallelism ([`doacross_plan::default_shard_count`]),
    /// the Multimax-calibrated planner, and the default doacross
    /// configuration.
    pub fn new() -> Self {
        Self {
            workers: None,
            pools: None,
            max_pending: doacross_sched::DEFAULT_MAX_PENDING,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            shards: None,
            planner: Planner::new(),
            config: DoacrossConfig::default(),
            warm_start: None,
            calibrate: false,
            adaptive: None,
            observability: None,
            profiling: None,
            solve_deadline: None,
            fallback: FallbackPolicy::default(),
        }
    }

    /// Worker thread count (the paper's processor count `p`). Defaults to
    /// the host's available parallelism, capped at 8 — oversubscribing
    /// busy-wait executors degrades everyone.
    ///
    /// # Panics
    /// [`EngineBuilder::build`] panics if `workers` is 0.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Scheduler sub-pool count: the engine's workers are partitioned
    /// into `pools` independent thread pools of
    /// [`EngineBuilder::workers`] threads each, and every solve leases
    /// exactly one — so up to `pools` solves from concurrent tenants
    /// execute truly in parallel instead of serializing at region
    /// dispatch. Each sub-pool keeps its own scratch-executor stack, so
    /// the paper's scratch-reuse economics survive multi-tenancy.
    ///
    /// Defaults to the host's available parallelism divided by the worker
    /// count (at least 1): a 16-way host with `workers(4)` gets 4
    /// sub-pools; a 1-core container gets 1 and behaves exactly like the
    /// historical single-pool engine.
    ///
    /// # Panics
    /// [`EngineBuilder::build`] panics if `pools` is 0 or exceeds
    /// [`doacross_sched::MAX_POOLS`].
    pub fn pools(mut self, pools: usize) -> Self {
        self.pools = Some(pools);
        self
    }

    /// Bounded solve admission: when every sub-pool is busy, up to
    /// `max_pending` callers block waiting for one to free; the next
    /// caller is refused with [`crate::EngineError::Saturated`] instead
    /// of queueing without bound. `0` means never wait — refuse the
    /// moment all sub-pools are busy. Defaults to
    /// [`doacross_sched::DEFAULT_MAX_PENDING`].
    pub fn max_pending(mut self, max_pending: usize) -> Self {
        self.max_pending = max_pending;
        self
    }

    /// Total plan capacity, spread over the shards (0 disables caching —
    /// every prepare replans; useful for measuring the uncached baseline).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Explicit shard count for the concurrent plan cache (rounded up to
    /// a power of two). More shards mean less lock contention between
    /// unrelated structures; capacity per shard shrinks correspondingly.
    /// When not set, the shard count adapts to the host:
    /// [`doacross_plan::default_shard_count`] matches it to the available
    /// parallelism (contention scales with threads that can actually run
    /// concurrently, so a 1-core container keeps its whole capacity in
    /// one LRU while a 32-way server spreads over 32 shards).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Explicit planner (e.g. [`Planner::with_costs`] with custom
    /// constants). Overrides a previously requested
    /// [`EngineBuilder::calibrated`].
    pub fn planner(mut self, planner: Planner) -> Self {
        self.planner = planner;
        self.calibrate = false;
        self
    }

    /// Doacross configuration for executions. `schedule` and `wait` are
    /// honored; `validate_terms` is forced off and `copy_back` forced on
    /// (see [`doacross_plan::PlanExecutor`]).
    pub fn config(mut self, config: DoacrossConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the planner's cost model with one measured on *this host*
    /// via [`doacross_sim::calibrate`] — sequential per-term/per-iteration
    /// costs, doacross executor overheads, and pool dispatch latency, in
    /// normalized units. Selection then prices variants for the machine
    /// actually running them instead of the paper's Encore Multimax.
    ///
    /// Costs a few milliseconds of measurement at build time (tens of
    /// cold solves' worth — see the ROADMAP's calibrate-by-default note);
    /// worth it for long-lived engines, skippable for throwaways. When
    /// combined with [`EngineBuilder::warm_start`], a **valid** stored
    /// calibration in the store is reused and the measurement skipped
    /// entirely — [`Engine::save_plans`] persists it, and the loaded
    /// constants are revalidated (finite, positive) with a fall back to
    /// re-measurement on mismatch.
    pub fn calibrated(mut self) -> Self {
        self.calibrate = true;
        self
    }

    /// Turns on the adaptive feedback loop with default knobs: every
    /// execute feeds a variant-telemetry recorder; when a structure's
    /// observed cost diverges from its prediction by the configured
    /// factor, the cost model is refined from the measurements and the
    /// plan re-priced; a measured-cheaper variant is trialed (swapped in
    /// under the shard lock with a generation bump — outstanding handles
    /// fail typed with [`crate::EngineError::StalePlan`]), then committed
    /// or rolled back on the measured comparison, with hysteresis. See
    /// `doacross_adapt` for the policy in full.
    ///
    /// Adaptation needs a cache to swap plans in: it is disabled when
    /// [`EngineBuilder::cache_capacity`] is 0.
    pub fn adaptive(self) -> Self {
        self.adaptive_config(AdaptiveConfig::default())
    }

    /// [`EngineBuilder::adaptive`] with explicit policy knobs.
    pub fn adaptive_config(mut self, config: AdaptiveConfig) -> Self {
        self.adaptive = Some(config);
        self
    }

    /// Turns on the observability layer with default capacities: every
    /// plan build, cache operation, persistence operation, adaptive
    /// decision, and completed solve emits a structured
    /// [`doacross_obs::TraceEvent`] into a bounded ring, feeds the metric
    /// registry behind [`crate::Engine::metrics_text`] /
    /// [`crate::Engine::metrics_json`], and (for solves) the flight
    /// recorder behind [`crate::Engine::recent_solves`]. Off by default —
    /// a disabled handle costs one branch per would-be event.
    pub fn observability_default(self) -> Self {
        self.observability(ObsConfig::default())
    }

    /// [`EngineBuilder::observability_default`] with explicit capacities
    /// (trace-ring size and sharding, flight-recorder depth, the
    /// per-fingerprint metric-series bound).
    pub fn observability(mut self, config: ObsConfig) -> Self {
        self.observability = Some(config);
        self
    }

    /// Turns on the deep solve profiler with default capacities: every
    /// solve deposits per-worker timeline spans (work intervals,
    /// ready-flag stalls, barrier arrivals, dispatch waits) into a
    /// bounded per-pool arena, harvested after each successful solve into
    /// a [`doacross_obs::profile::SolveProfile`] ring behind
    /// [`crate::Engine::recent_profiles`] /
    /// [`crate::Engine::profile_chrome_trace`], with realized-critical-
    /// path and per-level barrier-wait metrics under the
    /// `doacross_profile_` prefix. Independent of
    /// [`EngineBuilder::observability`] (the profiler keeps its own
    /// counters), though the per-solve `solve_profiled` trace event only
    /// flows when observability is also on. Off by default — a disabled
    /// profiler costs one branch per would-be span site.
    pub fn profiling_default(self) -> Self {
        self.profiling(ProfConfig::default())
    }

    /// [`EngineBuilder::profiling_default`] with explicit capacities
    /// (profile-ring depth, per-worker span cap, barrier-histogram level
    /// cardinality bound).
    pub fn profiling(mut self, config: ProfConfig) -> Self {
        self.profiling = Some(config);
        self
    }

    /// Wall-clock budget for each parallel solve. When a solve runs past
    /// the deadline, every worker aborts cooperatively at its next poll
    /// site (ready-flag wait, barrier arrival, or the iteration-body
    /// check every few dozen iterations), the region is drained, and the
    /// solve fails with [`crate::EngineError::SolveTimeout`] — unless the
    /// [`EngineBuilder::fallback`] policy then delivers the answer on the
    /// sequential variant. Partial statistics for the aborted attempt
    /// land in the flight recorder. Unset by default: solves may run
    /// arbitrarily long.
    pub fn solve_deadline(mut self, deadline: Duration) -> Self {
        self.solve_deadline = Some(deadline);
        self
    }

    /// What to do when a parallel solve panics or times out:
    /// [`FallbackPolicy::SequentialRetry`] (the default) replays the
    /// solve once on the sequential variant against a pristine copy of
    /// the caller's input and delivers that answer;
    /// [`FallbackPolicy::Disabled`] surfaces the typed error.
    pub fn fallback(mut self, policy: FallbackPolicy) -> Self {
        self.fallback = policy;
        self
    }

    /// Warm-starts the engine from the plan store at `path` (written by a
    /// previous process via [`Engine::save_plans`]): every structure in
    /// the store begins life cached, so its first solve after a restart
    /// skips preprocessing entirely.
    ///
    /// A **missing** file is a clean cold start (the natural first-boot
    /// state), and so is a store written by a different
    /// `persist::FORMAT_VERSION` (the version policy: a rejected store is
    /// just a cold start, and the next save rewrites the current format —
    /// a format-bumping deploy must not crash-loop on its own previous
    /// checkpoint). A corrupt, truncated, or structurally invalid store
    /// of the current format is **quarantined**: renamed aside to
    /// `<path>.corrupt-<n>` (the two newest quarantine files are kept for
    /// post-mortem, older ones pruned), a
    /// [`doacross_obs::TraceEvent::StoreQuarantined`] and a
    /// [`doacross_obs::ColdStartReason::Corrupt`] cold start are traced,
    /// and the boot proceeds cold — a damaged checkpoint must never
    /// crash-loop the service that wrote it. The damage stays loud (the
    /// trace, the `doacross_store_quarantines_total` counter, and the
    /// preserved `.corrupt-*` file) without becoming a boot failure; the
    /// strict typed-error path remains available via
    /// [`Engine::load_plans`].
    pub fn warm_start(mut self, path: impl Into<PathBuf>) -> Self {
        self.warm_start = Some(path.into());
        self
    }

    /// Builds the engine: spawns the worker pool, assembles the shared
    /// session state, and applies the [`EngineBuilder::warm_start`] store
    /// if one was configured.
    ///
    /// The store is loaded once and used for everything it carries: its
    /// plans warm the cache, its telemetry warms an adaptive engine's
    /// recorder, and a valid stored calibration satisfies
    /// [`EngineBuilder::calibrated`] without re-measuring. First-boot
    /// rules as in [`EngineBuilder::warm_start`]: missing or
    /// version-superseded stores are a clean cold start, damaged stores
    /// are quarantined aside and the boot proceeds cold.
    pub fn try_build(self) -> Result<Engine, EngineError> {
        let workers = self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|v| v.get())
                .unwrap_or(2)
                .min(8)
        });
        let pools = self
            .pools
            .unwrap_or_else(|| {
                let avail = std::thread::available_parallelism()
                    .map(|v| v.get())
                    .unwrap_or(1);
                (avail / workers.max(1)).max(1)
            })
            .min(doacross_sched::MAX_POOLS);
        let obs = self
            .observability
            .map(Obs::new)
            .unwrap_or_else(Obs::disabled);
        let store = match &self.warm_start {
            None => None,
            Some(path) => match PlanStore::load(path) {
                Ok(store) => Some(store),
                Err(PersistError::NotFound) => {
                    obs.emit(TraceEvent::ColdStart {
                        reason: ColdStartReason::NotFound,
                    });
                    None
                }
                Err(PersistError::UnsupportedVersion { .. }) => {
                    obs.emit(TraceEvent::ColdStart {
                        reason: ColdStartReason::VersionMismatch,
                    });
                    None
                }
                // Corruption-class failure: quarantine the damaged store
                // and boot cold rather than crash-looping on a checkpoint
                // this very process may have half-written before dying.
                Err(_corrupt) => {
                    if let Some(index) = quarantine_store(path) {
                        obs.emit(TraceEvent::StoreQuarantined { index });
                    }
                    obs.emit(TraceEvent::ColdStart {
                        reason: ColdStartReason::Corrupt,
                    });
                    None
                }
            },
        };
        let (planner, calibration) = if self.calibrate {
            // Reuse a persisted calibration when it survives revalidation
            // (finite, positive constants); anything else — absent
            // section, unphysical values — falls back to measuring.
            let calibration = store
                .as_ref()
                .and_then(|s| s.calibration().copied())
                .filter(StoredCalibration::is_valid)
                .unwrap_or_else(|| {
                    let measured = doacross_sim::calibrate(CALIBRATION_REPS);
                    StoredCalibration {
                        model: measured.model,
                        unit_ns: measured.unit_ns,
                    }
                });
            (Planner::with_costs(calibration.model), Some(calibration))
        } else {
            (self.planner, None)
        };
        let shards = self.shards.unwrap_or_else(default_shard_count);
        let adaptive = self
            .adaptive
            .filter(|_| self.cache_capacity > 0) // nothing to swap plans in
            .map(|config| AdaptiveRuntime::new(config, shards, calibration.as_ref()));
        let mut cache = ConcurrentPlanCache::new(self.cache_capacity, shards);
        cache.set_obs(obs.clone());
        let profiler = self
            .profiling
            .map(|config| Profiler::new(pools, workers, config));
        let engine = Engine::from_parts(
            doacross_sched::PoolSet::new(pools, workers, self.max_pending),
            planner,
            self.config,
            cache,
            calibration,
            adaptive,
            obs,
            profiler,
            self.solve_deadline,
            self.fallback,
        );
        if let Some(store) = &store {
            engine.warm_from(store);
        }
        Ok(engine)
    }

    /// Builds the engine; identical to [`EngineBuilder::try_build`] except
    /// that a failing build panics. Since store quarantine made damaged
    /// warm starts a cold boot instead of an error, the two only differ
    /// on future fallible configuration.
    ///
    /// # Panics
    /// Panics if `workers` is 0.
    pub fn build(self) -> Engine {
        self.try_build()
            .expect("engine build failed: configured warm-start store is unreadable")
    }
}

/// Renames a damaged plan store to `<path>.corrupt-<n>` so the next boot
/// finds no store (clean cold start) while the bytes survive for
/// post-mortem. Keeps the two newest quarantine files and prunes older
/// ones — a crash-looping writer must not fill the disk with corpses.
/// Returns the suffix index on success; `None` when the rename failed
/// (the boot still proceeds cold — quarantine is best-effort).
pub(crate) fn quarantine_store(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?.to_owned();
    let dir = path
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    let prefix = format!("{name}.corrupt-");
    let mut existing: Vec<(u64, PathBuf)> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(&dir) {
        for entry in entries.flatten() {
            let file = entry.file_name();
            let Some(file) = file.to_str() else { continue };
            if let Some(index) = file
                .strip_prefix(&prefix)
                .and_then(|suffix| suffix.parse::<u64>().ok())
            {
                existing.push((index, entry.path()));
            }
        }
    }
    let next = existing.iter().map(|(i, _)| i + 1).max().unwrap_or(0);
    std::fs::rename(path, dir.join(format!("{prefix}{next}"))).ok()?;
    // The file just written plus the newest survivor make two.
    existing.sort_unstable_by_key(|(i, _)| *i);
    while existing.len() > 1 {
        let (_, stale) = existing.remove(0);
        let _ = std::fs::remove_file(stale);
    }
    Some(next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_core::{seq::run_sequential, TestLoop};

    #[test]
    fn defaults_are_sane() {
        let engine = EngineBuilder::new().workers(2).build();
        assert_eq!(engine.threads(), 2);
        // The shard count adapts to the host (clamped power of two);
        // explicit settings still win.
        assert_eq!(engine.shards(), doacross_plan::default_shard_count());
        assert!(engine.cache_stats().hits == 0 && engine.cache_len() == 0);
        assert!(!engine.is_adaptive());
        assert_eq!(engine.adaptive_stats(), None);
        assert_eq!(engine.calibration(), None);
        let fixed = EngineBuilder::new()
            .workers(2)
            .shards(DEFAULT_SHARDS)
            .build();
        assert_eq!(fixed.shards(), DEFAULT_SHARDS);
    }

    #[test]
    fn engine_shard_routing_matches_the_adaptive_default() {
        // Skew test for the adaptive shard count: fingerprints route
        // consistently between `shard_of` and where traffic actually
        // lands, at whatever count the host picked.
        let engine = EngineBuilder::new().workers(2).build();
        let loops: Vec<TestLoop> = (1..=6).map(|k| TestLoop::new(50 + 10 * k, 1, 7)).collect();
        for l in &loops {
            let mut y = l.initial_y();
            engine.run(l, &mut y).unwrap();
        }
        let rows = engine.shard_stats();
        assert_eq!(rows.len(), doacross_plan::default_shard_count());
        for l in &loops {
            let fp = doacross_plan::PatternFingerprint::of(l);
            let shard = engine.shard_of(&fp);
            assert!(shard < rows.len());
            assert!(rows[shard].stats.misses >= 1, "traffic landed on {shard}");
        }
        let landed: usize = rows.iter().map(|r| r.len).sum();
        assert_eq!(landed, engine.cache_len());
    }

    #[test]
    fn fresh_engine_stats_report_zero_hit_rate() {
        // Regression for the 0/0 hit-rate case: a fresh engine's merged
        // multi-shard stats must report 0.0, never NaN.
        let engine = EngineBuilder::new().workers(2).build();
        let rate = engine.cache_stats().hit_rate();
        assert_eq!(rate, 0.0);
        assert!(!rate.is_nan());
    }

    #[test]
    fn warm_start_with_missing_store_is_a_cold_start() {
        let path = std::env::temp_dir().join(format!(
            "doacross-warm-start-missing-{}.plans",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let engine = EngineBuilder::new()
            .workers(2)
            .warm_start(&path)
            .try_build()
            .expect("missing store is first boot, not an error");
        assert_eq!(engine.cache_len(), 0);
        assert_eq!(engine.cache_stats().hit_rate(), 0.0);
    }

    #[test]
    fn quarantine_rotation_keeps_the_two_newest_corpses() {
        let dir = std::env::temp_dir().join(format!(
            "doacross-quarantine-rotation-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let store = dir.join("engine.plans");
        for round in 0..4u64 {
            std::fs::write(&store, b"definitely not a plan store").unwrap();
            let index = quarantine_store(&store).expect("rename succeeds");
            assert_eq!(index, round);
            assert!(!store.exists(), "original moved aside");
        }
        let corpses: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(corpses.len(), 2, "{corpses:?}");
        assert!(corpses.contains(&"engine.plans.corrupt-2".to_owned()));
        assert!(corpses.contains(&"engine.plans.corrupt-3".to_owned()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_warm_start_quarantines_and_boots_cold() {
        let dir =
            std::env::temp_dir().join(format!("doacross-quarantine-boot-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let store = dir.join("engine.plans");
        std::fs::write(&store, b"garbage bytes, not a store").unwrap();
        let engine = EngineBuilder::new()
            .workers(2)
            .warm_start(&store)
            .try_build()
            .expect("corrupt store is quarantined, not fatal");
        assert_eq!(engine.cache_len(), 0, "booted cold");
        assert!(!store.exists(), "damaged store moved aside");
        assert!(dir.join("engine.plans.corrupt-0").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let engine = Engine::builder().workers(2).cache_capacity(0).build();
        let loop_ = TestLoop::new(200, 1, 8);
        for _ in 0..2 {
            let mut y = loop_.initial_y();
            engine.run(&loop_, &mut y).unwrap();
        }
        let s = engine.cache_stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 2);
        assert_eq!(engine.cache_len(), 0);
    }

    #[test]
    fn calibrated_engine_still_computes_correctly() {
        // Calibration changes pricing, never semantics: any selected
        // variant must match the sequential oracle bit for bit.
        let engine = Engine::builder().workers(2).calibrated().build();
        for l in [7usize, 8] {
            let loop_ = TestLoop::new(800, 2, l);
            let mut y = loop_.initial_y();
            engine.run(&loop_, &mut y).unwrap();
            let mut oracle = loop_.initial_y();
            run_sequential(&loop_, &mut oracle);
            assert_eq!(y, oracle, "L={l}");
        }
    }
}
