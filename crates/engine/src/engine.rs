//! [`Engine`]: the Arc-shareable doacross session.

use crate::adaptive::{AdaptiveRuntime, AdaptiveStats};
use crate::builder::EngineBuilder;
use crate::error::EngineError;
use crate::fault::{FallbackPolicy, RetryPolicy};
use crate::prepared::PreparedLoop;
use doacross_adapt::{TelemetryEntry, TelemetryTotals, VariantKind};
use doacross_core::{AccessPattern, DoacrossConfig, DoacrossLoop, PlanProvenance, RunStats};
use doacross_obs::profile::{ProfileSummary, Profiler, SolveProfile};
use doacross_obs::{
    render, Obs, ObsFault, ObsProvenance, SolveOutcome, SolveRecord, TraceEvent, TracedEvent,
};
use doacross_par::{RegionFault, ThreadPool};
use doacross_plan::{
    CacheStats, ConcurrentPlanCache, ExecutionPlan, ExecutorPool, PatternFingerprint, PlanStore,
    PlanVariant, Planner, ShardStats, StoredCalibration,
};
use doacross_sched::{PoolSet, PoolStats};
use parking_lot::Mutex;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The observability view of a core provenance. A free function because
/// both types are foreign to this crate (orphan rule).
pub(crate) fn obs_provenance(p: PlanProvenance) -> ObsProvenance {
    match p {
        PlanProvenance::Inline => ObsProvenance::Inline,
        PlanProvenance::PlanCold => ObsProvenance::PlanCold,
        PlanProvenance::PlanCached => ObsProvenance::PlanCached,
    }
}

/// Builds the verify-ring row for one plan-soundness verdict: sound
/// verdicts carry the verified dependence census, unsound ones zeros
/// (the verifier stops at the first uncovered edge).
pub(crate) fn verify_record(
    plan: &ExecutionPlan,
    report: Option<&doacross_plan::SoundnessReport>,
) -> doacross_obs::VerifyRecord {
    doacross_obs::VerifyRecord {
        fp: plan.fingerprint().into(),
        variant: plan.variant().into(),
        sound: report.is_some(),
        references: report.map_or(0, |r| r.references),
        flow_edges: report.map_or(0, |r| r.flow_edges),
        anti_edges: report.map_or(0, |r| r.anti_edges),
        intra_refs: report.map_or(0, |r| r.intra_refs),
        unwritten_refs: report.map_or(0, |r| r.unwritten_refs),
        output_pairs: report.map_or(0, |r| r.output_pairs),
    }
}

/// Shared state behind every [`Engine`] clone and [`PreparedLoop`] handle.
pub(crate) struct EngineInner {
    /// The scheduler: engine workers partitioned into sub-pools, each an
    /// independent [`ThreadPool`], behind a lock-light dispatcher with
    /// bounded admission. One sub-pool (the default on small hosts)
    /// behaves exactly like the old single-pool engine.
    pub(crate) pools: PoolSet,
    pub(crate) planner: Planner,
    pub(crate) config: DoacrossConfig,
    pub(crate) cache: ConcurrentPlanCache,
    /// Host calibration the planner's model came from (present for
    /// `calibrated()` engines) — persisted with snapshots so a warm start
    /// can skip re-measurement, and the refinement anchor when adaptive.
    pub(crate) calibration: Option<StoredCalibration>,
    /// The feedback loop (present for `adaptive()` engines).
    pub(crate) adaptive: Option<AdaptiveRuntime>,
    /// The observability handle every layer emits into (disabled unless
    /// built with [`EngineBuilder::observability`] — then each emit is a
    /// single branch).
    pub(crate) obs: Obs,
    /// The deep solve profiler (present when built with
    /// [`EngineBuilder::profiling`]): per-pool span arenas the executors
    /// deposit per-worker timelines into, harvested after every
    /// successful solve into the profile ring and the
    /// `doacross_profile_` metric families.
    pub(crate) profiler: Option<Profiler>,
    /// Checked-out-and-returned scratch executors, one stack per
    /// sub-pool: each concurrent execution borrows a private one
    /// (per-variant scratch arrays are `&mut` state), and returning it to
    /// the stack of the sub-pool it ran on keeps the paper's
    /// scratch-reuse economics across calls *and* tenants. Grows to the
    /// peak per-pool concurrency ever seen.
    pub(crate) executors: ExecutorPool,
    /// Wall-clock budget per parallel solve
    /// ([`EngineBuilder::solve_deadline`]); `None` means unbounded.
    pub(crate) solve_deadline: Option<Duration>,
    /// What to do when a parallel solve faults
    /// ([`EngineBuilder::fallback`]).
    pub(crate) fallback: FallbackPolicy,
    /// Reusable pristine-input snapshot buffers for the sequential
    /// fallback. A faulted parallel region may leave the caller's `y`
    /// torn (the blocked variant copies back per block), so the replay
    /// needs the input as it was *before* the parallel attempt. Buffers
    /// are checked out per solve and returned, growing to peak
    /// concurrency — warm solves snapshot with zero heap allocations.
    pub(crate) snapshots: Mutex<Vec<Vec<f64>>>,
}

impl EngineInner {
    /// Executes `plan` against `loop_` with a checked-out scratch
    /// executor; stamps the handle's provenance into the stats, feeds the
    /// flight recorder/trace, and — on an adaptive engine — runs the
    /// telemetry/policy hook afterwards (off the result path — adaptation
    /// can never change what this call returns, only what a *later*
    /// prepare serves).
    pub(crate) fn execute_plan<L: DoacrossLoop + ?Sized>(
        &self,
        loop_: &L,
        y: &mut [f64],
        plan: &Arc<ExecutionPlan>,
        from_cache: bool,
        generation: u64,
    ) -> Result<RunStats, EngineError> {
        // Every solve passes through the same bounded admission gate —
        // uniform saturation semantics, and the per-pool dispatch
        // accounting reconciles exactly with the solve totals.
        let trace_dispatch = self.obs.enabled() && self.pools.pools() > 1;
        let wait_started = (trace_dispatch || self.profiler.is_some()).then(Instant::now);
        let guard = match self.pools.acquire() {
            Ok(guard) => guard,
            Err(saturated) => {
                // No pool was ever leased, but the refused attempt still
                // shows in the flight recorder (counters and histograms
                // skip non-delivered outcomes).
                self.emit_solve_record(plan, generation, 0, SolveOutcome::Saturated, &{
                    RunStats {
                        attempts: 1,
                        ..RunStats::default()
                    }
                });
                return Err(saturated.into());
            }
        };
        let pool_index = guard.index();
        if let (true, Some(t0)) = (trace_dispatch, wait_started) {
            self.obs.emit(TraceEvent::PoolDispatched {
                pool: pool_index as u64,
                stolen: guard.stolen(),
                wait_ns: t0.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            });
        }
        // Arm the profiler's arena for this pool: drop any spans a
        // previously faulted attempt abandoned, and account the acquire
        // wait on the dispatcher track. Sub-pools run one solve at a
        // time, so the arena is exclusively ours until the guard drops.
        let arena = self.profiler.as_ref().map(|profiler| {
            let arena = profiler.arena(pool_index);
            arena.reset();
            if let Some(t0) = wait_started {
                let wait_ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                let end = arena.now_ns();
                arena.record_dispatch(end.saturating_sub(wait_ns), wait_ns);
            }
            arena
        });
        // A faulted parallel region may leave `y` torn, so the sequential
        // fallback replays from a pristine copy taken up front. Only
        // parallel variants can fault (the sequential variant runs no
        // region), and a disabled policy never replays — skip the copy.
        let snapshot = (self.fallback == FallbackPolicy::SequentialRetry
            && plan.variant() != PlanVariant::Sequential)
            .then(|| {
                let mut buf = self.snapshots.lock().pop().unwrap_or_default();
                buf.clear();
                buf.extend_from_slice(y);
                buf
            });
        let deadline = self.solve_deadline.map(|budget| Instant::now() + budget);
        guard.pool().set_deadline(deadline);
        let mut executor = self.executors.checkout(pool_index);
        let allocs_before = doacross_core::alloc::thread_allocations();
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            executor.execute_profiled(guard.pool(), loop_, y, plan, arena)
        }));
        let elapsed = started.elapsed();
        let allocations = doacross_core::alloc::thread_allocations() - allocs_before;
        guard.pool().set_deadline(None);
        let result = match outcome {
            Ok(result) => {
                self.executors.restore(pool_index, executor);
                drop(guard);
                result.map_err(EngineError::from)
            }
            Err(payload) => {
                // The executor's scratch (and the barrier, for a
                // wavefront region) may be mid-flight state — discard it;
                // the pool replenishes the stack with a fresh one.
                drop(executor);
                let fault = match payload.downcast::<RegionFault>() {
                    Ok(fault) => *fault,
                    // Not a contained region fault (e.g. an assertion in
                    // engine code): containment does not apply. Free the
                    // sub-pool and let the panic keep unwinding.
                    Err(payload) => {
                        drop(guard);
                        resume_unwind(payload);
                    }
                };
                if matches!(fault, RegionFault::WorkerPanicked { .. }) {
                    // Health-probe the sub-pool before releasing it: one
                    // empty region proves every worker is answering
                    // dispatch (and `ThreadPool::run`'s entry hygiene
                    // clears the poison). A recurring panic here keeps
                    // the guard's release path intact — the next tenant
                    // gets the same typed containment, not a hang.
                    let _ = catch_unwind(AssertUnwindSafe(|| guard.pool().run(|_| {})));
                }
                drop(guard);
                if self.obs.enabled() {
                    self.obs.emit(TraceEvent::SolvePoisoned {
                        fp: plan.fingerprint().into(),
                        variant: plan.variant().into(),
                        pool: pool_index as u64,
                        fault: match fault {
                            RegionFault::WorkerPanicked { worker } => ObsFault::WorkerPanic {
                                worker: worker as u64,
                            },
                            RegionFault::DeadlineExpired => ObsFault::DeadlineExpired,
                        },
                    });
                }
                // The aborted attempt's flight record: what the engine
                // can still measure (wall time, attempt count) — the
                // per-worker counters unwound with the region.
                let partial = RunStats {
                    workers: self.pools.workers_per_pool(),
                    total: elapsed,
                    executor: elapsed,
                    attempts: 1,
                    ..RunStats::default()
                };
                let (failed_outcome, err) = match fault {
                    RegionFault::WorkerPanicked { worker } => (
                        SolveOutcome::Panicked,
                        EngineError::SolvePanicked {
                            pool: pool_index,
                            worker,
                        },
                    ),
                    RegionFault::DeadlineExpired => (
                        SolveOutcome::TimedOut,
                        EngineError::SolveTimeout {
                            pool: pool_index,
                            deadline: self.solve_deadline.unwrap_or_default(),
                        },
                    ),
                };
                self.emit_solve_record(
                    plan,
                    generation,
                    pool_index as u64,
                    failed_outcome,
                    &partial,
                );
                Err(err)
            }
        };
        let mut stats = match result {
            Ok(stats) => stats,
            Err(err) => {
                // Only contained region faults are eligible for the
                // sequential replay: a typed rejection (mismatched
                // buffer, bad plan) is deterministic and would fail — or
                // panic — identically on the sequential variant.
                let faulted = matches!(
                    err,
                    EngineError::SolvePanicked { .. } | EngineError::SolveTimeout { .. }
                );
                let Some(pristine) = snapshot.as_deref().filter(|_| faulted) else {
                    self.return_snapshot(snapshot);
                    return Err(err);
                };
                // Graceful degradation: replay on the sequential variant
                // against the restored input. The parallel attempt
                // delivered nothing, so the unpreprocessed loop — immune
                // to region faults by construction — earns its keep.
                y.copy_from_slice(pristine);
                let replay_started = Instant::now();
                doacross_core::seq::run_sequential(loop_, y);
                let replay = replay_started.elapsed();
                let ns = replay.as_nanos().min(u64::MAX as u128) as u64;
                if self.obs.enabled() {
                    self.obs.emit(TraceEvent::SolveFellBack {
                        fp: plan.fingerprint().into(),
                        from: plan.variant().into(),
                    });
                }
                if let Some(adaptive) = &self.adaptive {
                    adaptive.record_fallback(self, plan, ns);
                }
                let stats = RunStats {
                    iterations: loop_.iterations(),
                    workers: 1,
                    blocks: 1,
                    executor: replay,
                    total: replay,
                    attempts: 2,
                    ..RunStats::default()
                };
                let record = SolveRecord {
                    variant: doacross_obs::ObsVariant::Sequential,
                    ..self.solve_record(plan, generation, 0, SolveOutcome::FellBack, &stats)
                };
                if self.obs.enabled() {
                    self.obs.emit(TraceEvent::SolveFinished { record });
                }
                self.return_snapshot(snapshot);
                return Ok(stats);
            }
        };
        self.return_snapshot(snapshot);
        // The dispatching thread's heap-allocation bill for this solve —
        // exactly 0 on a warm flat-doacross solve, and always 0 unless
        // the audit allocator (`doacross_core::alloc::CountingAllocator`)
        // is installed.
        stats.allocations = allocations;
        stats.attempts = 1;
        // Stamped here, before the observability and adaptive hooks, so
        // both see the solve the caller will see.
        stats.provenance = if from_cache {
            PlanProvenance::PlanCached
        } else {
            PlanProvenance::PlanCold
        };
        self.emit_solve_record(
            plan,
            generation,
            pool_index as u64,
            SolveOutcome::Ok,
            &stats,
        );
        // Harvest the armed arena into a profile (faulted attempts never
        // reach this point: their partial spans are discarded by the
        // reset when the pool's next solve arms). The priced cost is the
        // plan's model price converted through the host calibration when
        // one exists — otherwise unpriced, never a fabricated number.
        if let Some(profiler) = &self.profiler {
            let total_ns = stats.total.as_nanos().min(u64::MAX as u128) as u64;
            let priced_ns = plan
                .costs()
                .of(plan.variant())
                .filter(|price| price.is_finite())
                .and_then(|price| self.calibration.as_ref().map(|c| price * c.unit_ns));
            let summary = profiler.harvest(
                pool_index,
                plan.fingerprint().into(),
                plan.variant().into(),
                total_ns,
                priced_ns,
            );
            if self.obs.enabled() {
                self.obs.emit(TraceEvent::SolveProfiled {
                    fp: plan.fingerprint().into(),
                    variant: plan.variant().into(),
                    realized_critical_ns: summary.realized_critical_ns,
                    work_ns: summary.work_ns,
                    flag_wait_ns: summary.flag_wait_ns,
                    barrier_wait_ns: summary.barrier_wait_ns,
                    dispatch_wait_ns: summary.dispatch_wait_ns,
                    spans: summary.spans,
                });
            }
            if let Some(adaptive) = &self.adaptive {
                adaptive.observe_profile(plan, summary);
            }
        }
        if let Some(adaptive) = &self.adaptive {
            adaptive.after_solve(self, loop_, y, plan, &stats);
        }
        Ok(stats)
    }

    /// Builds the flight-recorder row for one solve attempt.
    fn solve_record(
        &self,
        plan: &Arc<ExecutionPlan>,
        generation: u64,
        pool: u64,
        outcome: SolveOutcome,
        stats: &RunStats,
    ) -> SolveRecord {
        let clamp = |d: Duration| d.as_nanos().min(u64::MAX as u128) as u64;
        SolveRecord {
            fp: plan.fingerprint().into(),
            variant: plan.variant().into(),
            provenance: obs_provenance(stats.provenance),
            generation,
            total_ns: clamp(stats.total),
            inspector_ns: clamp(stats.inspector),
            executor_ns: clamp(stats.executor),
            post_ns: clamp(stats.post),
            iterations: stats.iterations as u64,
            workers: stats.workers as u64,
            stalls: stats.stalls,
            wait_polls: stats.wait_polls,
            barrier_crossings: stats.barrier_crossings,
            pool,
            outcome,
        }
    }

    fn emit_solve_record(
        &self,
        plan: &Arc<ExecutionPlan>,
        generation: u64,
        pool: u64,
        outcome: SolveOutcome,
        stats: &RunStats,
    ) {
        if self.obs.enabled() {
            self.obs.emit(TraceEvent::SolveFinished {
                record: self.solve_record(plan, generation, pool, outcome, stats),
            });
        }
    }

    /// Returns a fallback snapshot buffer to the reuse stack (keeps its
    /// capacity; the next solve of the same tenant snapshots alloc-free).
    fn return_snapshot(&self, snapshot: Option<Vec<f64>>) {
        if let Some(buf) = snapshot {
            self.snapshots.lock().push(buf);
        }
    }
}

/// A thread-safe doacross session: one shared thread pool, one planner,
/// one sharded plan cache — every entry point behind `&self`.
///
/// `Engine` is a cheap handle (clones share all state via `Arc`), and it
/// is `Send + Sync`: hand clones to threads, or share one instance behind
/// an `Arc`/`&'static` — both work. Executions against the pool serialize
/// at region dispatch (one parallel region at a time, like a single
/// shared-memory machine), but planning, cache lookups, and cache
/// bookkeeping all proceed concurrently.
///
/// ```
/// use doacross_core::TestLoop;
/// use doacross_engine::Engine;
///
/// let engine = Engine::builder().workers(2).cache_capacity(16).build();
/// let loop_ = TestLoop::new(400, 1, 8);
///
/// // Prepared once; the handle is cloneable and usable from any thread.
/// let prepared = engine.prepare(&loop_).unwrap();
/// let worker = {
///     let (prepared, loop_) = (prepared.clone(), loop_.clone());
///     std::thread::spawn(move || {
///         let mut y = loop_.initial_y();
///         prepared.execute(&loop_, &mut y).unwrap();
///         y
///     })
/// };
/// let mut y = loop_.initial_y();
/// prepared.execute(&loop_, &mut y).unwrap();
/// assert_eq!(worker.join().unwrap(), y);
/// ```
#[derive(Clone)]
pub struct Engine {
    pub(crate) inner: Arc<EngineInner>,
}

impl Engine {
    /// Starts configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        pools: PoolSet,
        planner: Planner,
        config: DoacrossConfig,
        cache: ConcurrentPlanCache,
        calibration: Option<StoredCalibration>,
        adaptive: Option<AdaptiveRuntime>,
        obs: Obs,
        profiler: Option<Profiler>,
        solve_deadline: Option<Duration>,
        fallback: FallbackPolicy,
    ) -> Self {
        let executors = ExecutorPool::new(config, pools.pools());
        Self {
            inner: Arc::new(EngineInner {
                pools,
                planner,
                config,
                cache,
                calibration,
                adaptive,
                obs,
                profiler,
                executors,
                solve_deadline,
                fallback,
                snapshots: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Worker ("processor") count each solve runs on — the paper's `p`,
    /// per scheduler sub-pool. Total capacity is
    /// [`Engine::total_workers`].
    pub fn threads(&self) -> usize {
        self.inner.pools.workers_per_pool()
    }

    /// The primary sub-pool's thread pool — for running non-plan work
    /// (other solvers, the simulator's calibration loops) on the engine's
    /// workers instead of spawning a second pool.
    pub fn pool(&self) -> &ThreadPool {
        self.inner.pools.primary()
    }

    /// Scheduler sub-pool count ([`crate::EngineBuilder::pools`]).
    pub fn pools(&self) -> usize {
        self.inner.pools.pools()
    }

    /// Workers across all sub-pools (`pools() × threads()`).
    pub fn total_workers(&self) -> usize {
        self.inner.pools.total_workers()
    }

    /// Callers allowed to wait for a free sub-pool before admission
    /// refuses with [`EngineError::Saturated`]
    /// ([`crate::EngineBuilder::max_pending`]).
    pub fn max_pending(&self) -> usize {
        self.inner.pools.max_pending()
    }

    /// Solve admissions refused with [`EngineError::Saturated`] so far.
    pub fn saturations(&self) -> u64 {
        self.inner.pools.saturations()
    }

    /// The per-solve wall-clock budget
    /// ([`crate::EngineBuilder::solve_deadline`]), when configured.
    pub fn solve_deadline(&self) -> Option<Duration> {
        self.inner.solve_deadline
    }

    /// What this engine does when a parallel solve faults
    /// ([`crate::EngineBuilder::fallback`]).
    pub fn fallback_policy(&self) -> FallbackPolicy {
        self.inner.fallback
    }

    /// [`PreparedLoop::execute`] with bounded, jittered exponential
    /// backoff on [`EngineError::Saturated`] — the one transient,
    /// load-induced failure. Every other error (fault containment's typed
    /// panics/timeouts included — those already spent the fallback) is
    /// returned unchanged on first sight: retrying a deterministic
    /// rejection reproduces it, slower.
    ///
    /// Each retry emits a `solve_retried` trace event (counted in
    /// `doacross_retry_total`), and the retries spent are added to the
    /// returned [`RunStats::attempts`].
    pub fn execute_with_retry<L: DoacrossLoop + ?Sized>(
        &self,
        handle: &PreparedLoop,
        loop_: &L,
        y: &mut [f64],
        policy: RetryPolicy,
    ) -> Result<RunStats, EngineError> {
        let mut delays = policy.delays();
        let mut retries = 0u32;
        loop {
            match handle.execute(loop_, y) {
                Err(EngineError::Saturated { .. }) if retries < policy.max_retries => {
                    retries += 1;
                    if self.inner.obs.enabled() {
                        self.inner.obs.emit(TraceEvent::SolveRetried {
                            fp: handle.plan().fingerprint().into(),
                            attempt: retries as u64,
                        });
                    }
                    if let Some(delay) = delays.next() {
                        if !delay.is_zero() {
                            std::thread::sleep(delay);
                        }
                    }
                }
                Ok(mut stats) => {
                    stats.attempts += retries;
                    return Ok(stats);
                }
                Err(err) => return Err(err),
            }
        }
    }

    /// Per-sub-pool dispatch and steal counters, in pool order. The
    /// dispatch sum reconciles exactly with the solves this engine has
    /// admitted (every solve leases exactly one sub-pool).
    pub fn pool_stats(&self) -> Vec<PoolStats> {
        self.inner.pools.stats()
    }

    /// The planner selecting and pricing variants.
    pub fn planner(&self) -> &Planner {
        &self.inner.planner
    }

    /// The doacross configuration executions run under (`validate_terms`
    /// forced off, `copy_back` forced on — see
    /// [`doacross_plan::PlanExecutor`]).
    pub fn config(&self) -> &DoacrossConfig {
        &self.inner.config
    }

    /// Merged traffic counters of the plan cache's shards.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.stats()
    }

    /// Plans currently cached, across all shards.
    pub fn cache_len(&self) -> usize {
        self.inner.cache.len()
    }

    /// Shard count of the plan cache.
    pub fn shards(&self) -> usize {
        self.inner.cache.shard_count()
    }

    /// Per-shard occupancy and traffic of the plan cache, in shard order —
    /// the capacity-tuning view: a shard pinned at full occupancy while
    /// others idle means this workload's fingerprints skew and the shard
    /// count (or capacity) wants adjusting. Rows reconcile exactly with
    /// [`Engine::cache_stats`] / [`Engine::cache_len`].
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.inner.cache.shard_stats()
    }

    /// The cache shard `fingerprint` routes to — correlates a structure
    /// with its [`Engine::shard_stats`] row.
    pub fn shard_of(&self, fingerprint: &PatternFingerprint) -> usize {
        self.inner.cache.shard_of(fingerprint)
    }

    /// Whether a plan for `fingerprint` is currently cached.
    pub fn contains(&self, fingerprint: &PatternFingerprint) -> bool {
        self.inner.cache.contains(fingerprint)
    }

    /// Resolves `pattern` to a [`PreparedLoop`] handle: fingerprint →
    /// cached plan (or a fresh build on miss) → handle. The handle is a
    /// cheap cloneable value; build once, execute from many threads.
    ///
    /// Two concurrent `prepare` calls for the same structure build the
    /// plan once — the second blocks on the shard lock and then hits.
    pub fn prepare<P: AccessPattern + ?Sized>(
        &self,
        pattern: &P,
    ) -> Result<PreparedLoop, EngineError> {
        let fingerprint = PatternFingerprint::of(pattern);
        // Plans are priced for one sub-pool's worker count — the
        // parallelism a solve actually gets — and planning-time probes run
        // on the primary sub-pool.
        let processors = self.inner.pools.workers_per_pool();
        let (plan, generation_cell, generation, hit) = self.inner.cache.get_or_build(
            &fingerprint,
            // A plan priced for a different worker count computes the same
            // results but may pick the wrong variant; treat it as a miss
            // and replan (the insert replaces the stale entry).
            |plan| plan.processors() == processors,
            || {
                self.inner.planner.plan_with_fingerprint(
                    self.inner.pools.primary(),
                    pattern,
                    fingerprint,
                )
            },
        )?;
        if !hit && self.inner.obs.enabled() {
            let census = plan.census();
            self.inner.obs.emit(TraceEvent::PlanBuilt {
                fp: plan.fingerprint().into(),
                variant: plan.variant().into(),
                build_ns: plan.build_time().as_nanos().min(u64::MAX as u128) as u64,
                iterations: census.iterations as u64,
                true_deps: census.true_deps,
                critical_path: census.critical_path as u64,
                chosen_price: plan.costs().of(plan.variant()).unwrap_or(f64::NAN),
                candidate_prices: plan.costs().as_candidate_prices(),
            });
        }
        Ok(PreparedLoop::new(
            Arc::clone(&self.inner),
            plan,
            generation_cell,
            generation,
            hit,
        ))
    }

    /// Statically proves the pattern's plan (cached, or built by this
    /// call) covers every flow/anti/output dependence its index arrays
    /// imply — full translation validation via `doacross-verify`, sharing
    /// no code with the planner's own census. Returns the verified
    /// dependence census on success and
    /// [`EngineError::Unsound`] naming the first uncovered dependence edge
    /// otherwise; either way the outcome is traced as a `plan_verified`
    /// event and counted in `doacross_verify_{passes,failures}_total`.
    pub fn verify_plan<P: AccessPattern + ?Sized>(
        &self,
        pattern: &P,
    ) -> Result<doacross_plan::SoundnessReport, EngineError> {
        let prepared = self.prepare(pattern)?;
        let plan = prepared.plan();
        let verdict = plan.verify_against(pattern);
        if self.inner.obs.enabled() {
            self.inner.obs.emit(TraceEvent::PlanVerified {
                fp: plan.fingerprint().into(),
                variant: plan.variant().into(),
                sound: verdict.is_ok(),
            });
            self.inner
                .obs
                .record_verification(verify_record(plan, verdict.as_ref().ok()));
        }
        verdict.map_err(EngineError::Unsound)
    }

    /// The verify ring: the latest plan-soundness verdict per recently
    /// verified fingerprint, oldest first — the flight recorder's
    /// parallel ring, fed by [`Engine::verify_plan`] and the adaptive
    /// loop's challenger gate. Empty when observability is disabled.
    pub fn recent_verifications(&self) -> Vec<doacross_obs::VerifyRecord> {
        self.inner.obs.recent_verifications()
    }

    /// Prepares and executes in one call: plan on first sight of the
    /// access pattern, preprocessing skipped thereafter. Results are
    /// bit-identical to `doacross_core::seq::run_sequential`; the returned
    /// stats carry `PlanProvenance::PlanCold` when this call built the
    /// plan and `PlanProvenance::PlanCached` when the cache served it.
    pub fn run<L: DoacrossLoop + ?Sized>(
        &self,
        loop_: &L,
        y: &mut [f64],
    ) -> Result<RunStats, EngineError> {
        self.prepare(loop_)?.execute(loop_, y)
    }

    /// Invalidates the cached plan (if any) for `fingerprint` and advances
    /// the structure's generation, so outstanding [`PreparedLoop`] handles
    /// for it fail fast with [`EngineError::StalePlan`] instead of
    /// silently executing an outdated plan. Returns `true` when a cached
    /// plan was dropped.
    ///
    /// Use when a pattern's index arrays are about to be mutated in place:
    /// the fingerprint of the *new* contents would differ anyway, but
    /// handles prepared against the old contents would otherwise keep
    /// executing the old plan forever.
    pub fn invalidate(&self, fingerprint: &PatternFingerprint) -> bool {
        if let Some(adaptive) = &self.inner.adaptive {
            // The caller asserts the structure changed: its observations,
            // rejections, and trial budget no longer apply.
            adaptive.forget(fingerprint);
        }
        self.inner.cache.invalidate(fingerprint)
    }

    /// Whether this engine runs the adaptive feedback loop
    /// ([`crate::EngineBuilder::adaptive`]).
    pub fn is_adaptive(&self) -> bool {
        self.inner.adaptive.is_some()
    }

    /// Counters of the adaptive loop (`None` for a static engine).
    pub fn adaptive_stats(&self) -> Option<AdaptiveStats> {
        self.inner.adaptive.as_ref().map(|a| a.stats())
    }

    /// Engine-wide telemetry aggregates (`None` for a static engine).
    pub fn telemetry_totals(&self) -> Option<TelemetryTotals> {
        self.inner.adaptive.as_ref().map(|a| a.telemetry_totals())
    }

    /// Snapshot of every `(structure, variant)` telemetry accumulator
    /// (empty for a static engine).
    pub fn telemetry_entries(&self) -> Vec<(PatternFingerprint, VariantKind, TelemetryEntry)> {
        self.inner
            .adaptive
            .as_ref()
            .map(|a| a.telemetry_entries())
            .unwrap_or_default()
    }

    /// One `(structure, variant)` accumulator, if observed.
    pub fn telemetry_of(
        &self,
        fingerprint: &PatternFingerprint,
        kind: VariantKind,
    ) -> Option<TelemetryEntry> {
        self.inner
            .adaptive
            .as_ref()
            .and_then(|a| a.telemetry_of(fingerprint, kind))
    }

    /// The host calibration this engine prices with (present for
    /// `calibrated()` engines, measured at build or restored from a
    /// warm-start store).
    pub fn calibration(&self) -> Option<&StoredCalibration> {
        self.inner.calibration.as_ref()
    }

    /// Drops every cached plan (traffic counters and generations survive).
    pub fn clear_cache(&self) {
        self.inner.cache.clear()
    }

    /// Captures the plan cache — resident plans in recency order, tagged
    /// with their invalidation generations — as an in-memory
    /// [`PlanStore`], together with the engine's learned state: the host
    /// calibration (for `calibrated()` engines) and the variant telemetry
    /// (for `adaptive()` engines), so a warm start resumes with learned
    /// costs instead of re-measuring and re-observing. Serialize with
    /// [`PlanStore::to_bytes`] or go straight to disk with
    /// [`Engine::save_plans`].
    pub fn snapshot(&self) -> PlanStore {
        let mut store = self.inner.cache.snapshot();
        store.set_calibration(self.inner.calibration);
        if let Some(adaptive) = &self.inner.adaptive {
            adaptive.snapshot_telemetry(&mut store);
        }
        store
    }

    /// Restores `store` into the plan cache: recency-preserving, and
    /// generation-aware — plans whose structure was invalidated after the
    /// store was captured are dropped, and the store's invalidation
    /// generations are merged forward so pre-snapshot staleness survives
    /// the restart. Returns the number of plans inserted (a store larger
    /// than the cache evicts its own oldest entries during the restore;
    /// [`Engine::cache_len`] is the resident count).
    ///
    /// Restored plans keep the worker count they were priced for: a store
    /// written by an engine with a different pool size still restores, but
    /// [`Engine::prepare`] treats such plans as misses and replans (same
    /// rule as any pricing-context mismatch).
    ///
    /// On an adaptive engine the store's telemetry records are restored
    /// too (live accumulators with more samples win over stored ones), so
    /// refinement resumes mid-confidence. Restoring a stored calibration
    /// happens at build time ([`crate::EngineBuilder::warm_start`] +
    /// [`crate::EngineBuilder::calibrated`]) — the planner's model is
    /// immutable once built.
    pub fn warm_from(&self, store: &PlanStore) -> usize {
        let restored = self.inner.cache.warm_from(store);
        if let Some(adaptive) = &self.inner.adaptive {
            adaptive.restore_telemetry(store.telemetry());
        }
        if self.inner.obs.enabled() {
            self.inner.obs.emit(TraceEvent::StoreLoaded {
                plans: store.len() as u64,
                restored: restored as u64,
            });
        }
        restored
    }

    /// Snapshots the plan cache and writes it to `path` (atomic
    /// temp-file-and-rename). Returns the number of plans saved. A later
    /// [`Engine::load_plans`] — or [`crate::EngineBuilder::warm_start`] on
    /// the next process — makes the first solve of every saved structure a
    /// cache hit instead of a full preprocessing pass.
    pub fn save_plans(&self, path: impl AsRef<std::path::Path>) -> Result<usize, EngineError> {
        let store = self.snapshot();
        store.save(path)?;
        if self.inner.obs.enabled() {
            self.inner.obs.emit(TraceEvent::StoreSaved {
                plans: store.len() as u64,
            });
        }
        Ok(store.len())
    }

    /// Loads the plan store at `path` and warm-starts the cache from it
    /// (see [`Engine::warm_from`]). Returns the number of plans restored.
    /// A missing, corrupt, truncated, or version-mismatched store fails
    /// with [`EngineError::Persist`] and leaves the cache untouched.
    pub fn load_plans(&self, path: impl AsRef<std::path::Path>) -> Result<usize, EngineError> {
        let store = PlanStore::load(path)?;
        Ok(self.warm_from(&store))
    }

    /// [`Engine::load_plans`] with first-boot semantics: a **missing**
    /// store is a clean cold start (`Ok(0)`), and so is a store written
    /// by a **different format version** — the ROADMAP's version policy
    /// ("a rejected store is just a cold start, and the next save
    /// rewrites the current format") applied at the boot path, so a
    /// deploy that bumps `persist::FORMAT_VERSION` starts cold instead of
    /// crash-looping on its own previous checkpoint. A *damaged* store of
    /// the current format (bad magic, checksum mismatch, truncation,
    /// structural inconsistency) is **quarantined**: renamed aside to
    /// `<path>.corrupt-<n>` (the two newest corpses are kept for
    /// post-mortem), traced as `store_quarantined` plus a `corrupt` cold
    /// start, and the boot proceeds cold (`Ok(0)`) — a service must never
    /// crash-loop on a checkpoint it half-wrote before dying, and the
    /// damage stays loud in the trace, the
    /// `doacross_store_quarantines_total` counter, and the preserved
    /// `.corrupt-*` file.
    ///
    /// This is the one place the boot rules live; `trisolve`'s
    /// warm-started solver routes through it
    /// ([`crate::EngineBuilder::warm_start`] applies the same rules at
    /// build time), and checking the error instead of pre-checking
    /// existence leaves no window for the store to vanish between the
    /// two. [`Engine::load_plans`] stays strict — an explicit load of a
    /// version-mismatched or damaged store reports the typed
    /// [`doacross_plan::PersistError`].
    pub fn warm_start_plans(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<usize, EngineError> {
        use doacross_obs::ColdStartReason;
        use doacross_plan::PersistError;
        let path = path.as_ref();
        match self.load_plans(path) {
            Err(EngineError::Persist(PersistError::NotFound)) => {
                if self.inner.obs.enabled() {
                    self.inner.obs.emit(TraceEvent::ColdStart {
                        reason: ColdStartReason::NotFound,
                    });
                }
                Ok(0)
            }
            Err(EngineError::Persist(PersistError::UnsupportedVersion { .. })) => {
                if self.inner.obs.enabled() {
                    self.inner.obs.emit(TraceEvent::ColdStart {
                        reason: ColdStartReason::VersionMismatch,
                    });
                }
                Ok(0)
            }
            // Anything else `PlanStore::load` reports is corruption-class:
            // quarantine the corpse and boot cold (see the doc above).
            Err(EngineError::Persist(_)) => {
                if let Some(index) = crate::builder::quarantine_store(path) {
                    if self.inner.obs.enabled() {
                        self.inner.obs.emit(TraceEvent::StoreQuarantined { index });
                    }
                }
                if self.inner.obs.enabled() {
                    self.inner.obs.emit(TraceEvent::ColdStart {
                        reason: ColdStartReason::Corrupt,
                    });
                }
                Ok(0)
            }
            other => other,
        }
    }

    /// The engine's observability handle — disabled (inert) unless the
    /// engine was built with [`EngineBuilder::observability`]. Use it to
    /// register an [`doacross_obs::ObsSink`] for live event streaming.
    pub fn obs(&self) -> &Obs {
        &self.inner.obs
    }

    /// Whether observability was enabled at build time.
    pub fn observability_enabled(&self) -> bool {
        self.inner.obs.enabled()
    }

    /// Whether the deep solve profiler was enabled at build time
    /// ([`EngineBuilder::profiling`]).
    pub fn profiling_enabled(&self) -> bool {
        self.inner.profiler.is_some()
    }

    /// The profile ring: the last N successfully profiled solves (oldest
    /// first), each with its per-worker span timeline, per-kind time
    /// attribution, and realized critical path. Empty when profiling is
    /// disabled.
    pub fn recent_profiles(&self) -> Vec<SolveProfile> {
        self.inner
            .profiler
            .as_ref()
            .map(|p| p.recent())
            .unwrap_or_default()
    }

    /// Renders the retained profiles as Chrome trace-event JSON — one
    /// process per profiled solve, one track per worker (plus the
    /// dispatcher), complete events for every work/wait span. Loads
    /// directly in Perfetto or `about://tracing`; structurally checkable
    /// with [`doacross_obs::profile::validate_chrome_trace`]. An engine
    /// without profiling renders an empty (but valid) trace document.
    pub fn profile_chrome_trace(&self) -> String {
        match &self.inner.profiler {
            Some(p) => p.chrome_trace(),
            None => String::from("{\"traceEvents\":[],\"displayTimeUnit\":\"ns\"}"),
        }
    }

    /// The latest profile evidence the adaptive layer holds for
    /// `fingerprint` — realized critical path and the work/wait split of
    /// the structure's most recent profiled solve. `None` unless the
    /// engine is both adaptive and profiling and the structure has
    /// completed a profiled solve.
    pub fn profile_evidence(&self, fingerprint: &PatternFingerprint) -> Option<ProfileSummary> {
        self.inner
            .adaptive
            .as_ref()
            .and_then(|a| a.profile_evidence(fingerprint))
    }

    /// The flight recorder: the last N completed solves (oldest first),
    /// each with its structure, variant, provenance, generation, timing
    /// split, and synchronization counters. Empty when observability is
    /// disabled.
    pub fn recent_solves(&self) -> Vec<SolveRecord> {
        self.inner.obs.recent_solves()
    }

    /// The retained trace events, oldest first (empty when observability
    /// is disabled). Strictly increasing `seq`; gaps mean the bounded
    /// ring dropped events.
    pub fn trace_events(&self) -> Vec<TracedEvent> {
        self.inner.obs.trace_events()
    }

    /// Renders the engine's metrics in Prometheus text-exposition format:
    /// first the engine-sampled values (pool and cache gauges, the cache's
    /// exact traffic counters, the adaptive decision counters under the
    /// `doacross_adaptive_` prefix), then — when observability is enabled
    /// — the full `doacross-obs` registry (solve counters and latency
    /// histograms by variant, plan-build/persistence/policy counters,
    /// per-structure series). Metric names are documented at
    /// [`doacross_obs`]'s crate root.
    ///
    /// The sampled section works on any engine; an observability-disabled
    /// engine simply scrapes a shorter document.
    pub fn metrics_text(&self) -> String {
        let mut buf = String::new();
        render::gauge(
            &mut buf,
            "doacross_workers",
            "Worker (processor) count of the engine's pool.",
            self.threads() as u64,
        );
        render::gauge(
            &mut buf,
            "doacross_pools",
            "Scheduler sub-pool count (each sub-pool runs one solve at a time).",
            self.pools() as u64,
        );
        render::gauge(
            &mut buf,
            "doacross_max_pending",
            "Callers allowed to wait for a free sub-pool before Saturated.",
            self.max_pending() as u64,
        );
        render::counter(
            &mut buf,
            "doacross_saturations_total",
            "Solve admissions refused because every sub-pool was busy and the wait queue full.",
            self.saturations(),
        );
        render::gauge(
            &mut buf,
            "doacross_cache_plans",
            "Execution plans currently cached.",
            self.cache_len() as u64,
        );
        render::gauge(
            &mut buf,
            "doacross_cache_capacity",
            "Total plan capacity across cache shards.",
            self.inner.cache.capacity() as u64,
        );
        render::gauge(
            &mut buf,
            "doacross_cache_shards",
            "Shard count of the plan cache.",
            self.shards() as u64,
        );
        let cache = self.cache_stats();
        render::counter(
            &mut buf,
            "doacross_cache_hits_total",
            "Plan-cache lookups served from a cached plan.",
            cache.hits,
        );
        render::counter(
            &mut buf,
            "doacross_cache_misses_total",
            "Plan-cache lookups that required a build.",
            cache.misses,
        );
        render::counter(
            &mut buf,
            "doacross_cache_evictions_total",
            "Plans pushed out by LRU capacity.",
            cache.evictions,
        );
        render::counter(
            &mut buf,
            "doacross_cache_insertions_total",
            "Plans admitted to the cache.",
            cache.insertions,
        );
        if let Some(a) = self.adaptive_stats() {
            render::counter(
                &mut buf,
                "doacross_adaptive_repricings_total",
                "Adaptive evaluation points that refined the model and re-priced a plan.",
                a.repricings,
            );
            render::counter(
                &mut buf,
                "doacross_adaptive_trials_total",
                "Adaptive trials started (plans swapped in on refined evidence).",
                a.trials,
            );
            render::counter(
                &mut buf,
                "doacross_adaptive_promotions_total",
                "Adaptive trials committed.",
                a.promotions,
            );
            render::counter(
                &mut buf,
                "doacross_adaptive_demotions_total",
                "Adaptive trials rolled back.",
                a.demotions,
            );
            render::counter(
                &mut buf,
                "doacross_adaptive_baseline_probes_total",
                "Sequential baseline probes run to anchor refinement.",
                a.baseline_probes,
            );
            render::counter(
                &mut buf,
                "doacross_adaptive_fallbacks_total",
                "Faulted parallel solves replayed on the sequential variant.",
                a.fallbacks,
            );
        }
        self.inner.obs.render_prometheus(&mut buf);
        if let Some(profiler) = &self.inner.profiler {
            profiler.render_prometheus(&mut buf);
        }
        buf
    }

    /// The same payload as [`Engine::metrics_text`] as one JSON object:
    /// `workers`, `cache` (gauges + exact traffic), `adaptive` (decision
    /// counters or `null` for a static engine), and `obs` (the registry —
    /// `{}` when observability is disabled).
    pub fn metrics_json(&self) -> String {
        use std::fmt::Write as _;
        let mut buf = String::new();
        let cache = self.cache_stats();
        let _ = write!(
            buf,
            "{{\"workers\":{},\"pools\":{},\"max_pending\":{},\"saturations\":{},\"cache\":{{\"plans\":{},\"capacity\":{},\"shards\":{},\"hits\":{},\"misses\":{},\"evictions\":{},\"insertions\":{}}},\"adaptive\":",
            self.threads(),
            self.pools(),
            self.max_pending(),
            self.saturations(),
            self.cache_len(),
            self.inner.cache.capacity(),
            self.shards(),
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.insertions,
        );
        match self.adaptive_stats() {
            Some(a) => {
                let _ = write!(
                    buf,
                    "{{\"repricings\":{},\"trials\":{},\"promotions\":{},\"demotions\":{},\"baseline_probes\":{},\"fallbacks\":{}}}",
                    a.repricings,
                    a.trials,
                    a.promotions,
                    a.demotions,
                    a.baseline_probes,
                    a.fallbacks,
                );
            }
            None => buf.push_str("null"),
        }
        buf.push_str(",\"obs\":");
        self.inner.obs.render_json(&mut buf);
        buf.push_str(",\"profile\":");
        match &self.inner.profiler {
            Some(profiler) => profiler.render_json(&mut buf),
            None => buf.push_str("null"),
        }
        buf.push('}');
        buf
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("threads", &self.threads())
            .field("cache", &self.inner.cache)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_core::{seq::run_sequential, DoacrossError, PlanProvenance, TestLoop};

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn engine_and_handles_are_send_sync() {
        assert_send_sync::<Engine>();
        assert_send_sync::<PreparedLoop>();
    }

    #[test]
    fn run_plans_once_and_matches_the_oracle() {
        let engine = Engine::builder().workers(2).build();
        let loop_ = TestLoop::new(600, 2, 8);
        let y0 = loop_.initial_y();
        let mut oracle = y0.clone();
        run_sequential(&loop_, &mut oracle);

        let mut y = y0.clone();
        let cold = engine.run(&loop_, &mut y).unwrap();
        assert_eq!(cold.provenance, PlanProvenance::PlanCold);
        assert_eq!(y, oracle);

        let mut y = y0;
        let hot = engine.run(&loop_, &mut y).unwrap();
        assert_eq!(hot.provenance, PlanProvenance::PlanCached);
        assert_eq!(hot.inspector, std::time::Duration::ZERO);
        assert_eq!(y, oracle);
        assert_eq!(engine.cache_stats().misses, 1);
        assert_eq!(engine.cache_stats().hits, 1);
    }

    #[test]
    fn clones_share_the_cache() {
        let engine = Engine::builder().workers(2).build();
        let clone = engine.clone();
        let loop_ = TestLoop::new(300, 1, 7);
        let mut y = loop_.initial_y();
        engine.run(&loop_, &mut y).unwrap();
        let mut y = loop_.initial_y();
        let hot = clone.run(&loop_, &mut y).unwrap();
        assert_eq!(hot.provenance, PlanProvenance::PlanCached);
        assert_eq!(clone.cache_len(), 1);
    }

    #[test]
    fn shard_stats_reconcile_with_the_merged_view() {
        let engine = Engine::builder()
            .workers(2)
            .cache_capacity(8)
            .shards(4)
            .build();
        let loops: Vec<TestLoop> = (1..=6).map(|k| TestLoop::new(100 + 10 * k, 1, 7)).collect();
        for l in &loops {
            let mut y = l.initial_y();
            engine.run(l, &mut y).unwrap();
            let mut y = l.initial_y();
            engine.run(l, &mut y).unwrap();
        }
        let rows = engine.shard_stats();
        assert_eq!(rows.len(), engine.shards());
        let mut merged = CacheStats::default();
        let mut total_len = 0;
        for row in &rows {
            merged.absorb(&row.stats);
            total_len += row.len;
        }
        assert_eq!(merged, engine.cache_stats());
        assert_eq!(total_len, engine.cache_len());
        // Each structure's traffic landed on the shard its fingerprint
        // routes to.
        for l in &loops {
            let fp = doacross_plan::PatternFingerprint::of(l);
            let shard = engine.shard_of(&fp);
            assert!(rows[shard].stats.hits >= 1, "shard {shard} saw the hit");
        }
    }

    #[test]
    fn rejects_what_the_planner_rejects() {
        let engine = Engine::builder().workers(2).build();
        struct OutOfBounds;
        impl AccessPattern for OutOfBounds {
            fn iterations(&self) -> usize {
                1
            }
            fn data_len(&self) -> usize {
                1
            }
            fn lhs(&self, _: usize) -> usize {
                0
            }
            fn terms(&self, _: usize) -> usize {
                1
            }
            fn term_element(&self, _: usize, _: usize) -> usize {
                5
            }
        }
        let err = engine.prepare(&OutOfBounds).unwrap_err();
        assert_eq!(
            err,
            EngineError::Doacross(DoacrossError::SubscriptOutOfBounds {
                iteration: 0,
                element: 5,
                data_len: 1,
            })
        );
        assert_eq!(engine.cache_len(), 0, "failed builds are not cached");
    }

    #[test]
    fn mismatched_buffer_is_rejected() {
        let engine = Engine::builder().workers(2).build();
        let loop_ = TestLoop::new(100, 1, 7);
        let mut y = vec![0.0; 3];
        let err = engine.run(&loop_, &mut y).unwrap_err();
        assert!(matches!(
            err,
            EngineError::Doacross(DoacrossError::DataLenMismatch { got: 3, .. })
        ));
    }
}
